"""Rental store: per-content rights templates and restricted gifting.

The provider sells three shapes of rights for the same movie — a
purchase, a 48-hour rental, and a 3-play rental — and a buyer gifts a
*play-only* copy of her purchased movie (narrower rights than she
holds; the provider enforces that restrictions only ever narrow).

Run:  python examples/rental_store.py
"""

from repro.core import build_deployment
from repro.errors import ProtocolError, RightsDenied
from repro.rel.parser import format_timestamp

deployment = build_deployment(seed="rental-store", rsa_bits=768)
now = deployment.clock.now()

deployment.provider.publish(
    "movie-buy", b"feature-film" * 300, title="The Film (purchase)", price=10,
    rights_template="play; display; transfer[count<=1]",
)
deployment.provider.publish(
    "movie-48h", b"feature-film" * 300, title="The Film (48h rental)", price=3,
    rights_template=f"play[before={now + 48 * 3600}]",
)
deployment.provider.publish(
    "movie-3plays", b"feature-film" * 300, title="The Film (3 plays)", price=2,
    rights_template="play[count<=3]",
)

alice = deployment.add_user("alice", balance=50)
bob = deployment.add_user("bob", balance=50)
device = deployment.add_device()

# --- the 48-hour rental -----------------------------------------------------------
rental = alice.buy("movie-48h", provider=deployment.provider,
                   issuer=deployment.issuer, bank=deployment.bank)
alice.play("movie-48h", device, provider=deployment.provider)
print(f"rental plays today ✓ (valid until "
      f"{format_timestamp(now + 48 * 3600)})")
deployment.clock.advance(49 * 3600)
try:
    alice.play("movie-48h", device, provider=deployment.provider)
except RightsDenied as denial:
    print(f"two days later: {denial.reason} ✓")
try:
    alice.transfer_out(rental.license_id, provider=deployment.provider)
except ProtocolError:
    print("rentals are not transferable ✓")

# --- the 3-play rental -------------------------------------------------------------
alice.buy("movie-3plays", provider=deployment.provider,
          issuer=deployment.issuer, bank=deployment.bank)
for play in range(3):
    alice.play("movie-3plays", device, provider=deployment.provider)
print("three plays consumed ✓")
try:
    alice.play("movie-3plays", device, provider=deployment.provider)
except RightsDenied as denial:
    print(f"fourth play: {denial.reason} ✓")

# --- restricted gift of the purchased copy ----------------------------------------------
purchase = alice.buy("movie-buy", provider=deployment.provider,
                     issuer=deployment.issuer, bank=deployment.bank)
print(f"\nAlice's purchase grants: play; display; transfer[count<=1]")
anonymous = alice.transfer_out(
    purchase.license_id, provider=deployment.provider, restrict_to=("play",)
)
print(f"she gifts a narrowed copy: "
      f"{'; '.join(p.action for p in anonymous.rights.permissions)} only")
gift = bob.redeem(anonymous, provider=deployment.provider, issuer=deployment.issuer)
device.sync_revocations(deployment.provider)
bob.play("movie-buy", device, provider=deployment.provider)
print("Bob plays his gift ✓")
try:
    bob.transfer_out(gift.license_id, provider=deployment.provider)
except ProtocolError:
    print("…but cannot pass it on: the gift carried no transfer right ✓")
