"""Anonymity audit: how much privacy does the marketplace actually give?

Runs a simulated marketplace, then attacks it with the strongest
realistic adversary — the provider colluding with the card issuer,
joining certification timestamps against transaction timestamps — and
prints anonymity-set sizes and linkage rates across traffic densities
and the certificate pre-fetch defence.

Run:  python examples/anonymity_audit.py        (takes ~1 minute)
"""

from repro.analysis import TimingAttacker
from repro.sim import MarketplaceSimulator, WorkloadConfig

WINDOW = 600  # attacker's correlation window, seconds

print(f"timing attacker, correlation window = {WINDOW}s")
print(f"{'traffic':>10s} {'prefetch':>9s} {'txns':>5s} "
      f"{'mean anon set':>14s} {'attacker success':>17s}")

for label, interarrival in (("sparse", 300), ("normal", 90), ("dense", 30)):
    for prefetch in (0.0, 1.0, 3.0):
        config = WorkloadConfig(
            n_users=12,
            n_contents=8,
            n_events=40,
            mean_interarrival=interarrival,
            prefetch_rate=prefetch,
            seed=777,
        )
        simulator = MarketplaceSimulator(config, mode="p2drm", rsa_bits=512)
        report = simulator.run()
        outcome = TimingAttacker(window_seconds=WINDOW).attack_deployment(
            simulator.deployment.issuer, simulator.provider, report.ground_truth
        )
        print(
            f"{label:>10s} {prefetch:>9.1f} {len(outcome.truths):>5d} "
            f"{outcome.mean_anonymity_set:>14.2f} {outcome.success_rate:>16.1%}"
        )

print(
    "\nReading the table: with certification at transaction time"
    "\n(prefetch 0.0) the collusion links essentially every transaction"
    "\nregardless of traffic.  Pre-fetched certificates mix users'"
    "\ncertification events together, and denser traffic widens the"
    "\ncrowd — anonymity is a property of the traffic, exactly the"
    "\ncaveat the paper concedes to traffic analysis."
)
