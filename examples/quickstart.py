"""Quickstart: buy content anonymously, play it on a compliant device.

Run:  python examples/quickstart.py
"""

from repro.core import build_deployment

# One call builds the whole cast: compliance authority, card issuer
# (TTP), bank, content provider — deterministically from a seed.
deployment = build_deployment(seed="quickstart", rsa_bits=768)

# The provider packages content once; the encrypted package is public.
deployment.provider.publish(
    "track-001",
    b"\x52\x49\x46\x46" + b"fake-wave-data" * 200,   # pretend WAV
    title="Demo Track",
    media_type="audio/wav",
    price=3,
)

# Alice enrols (the only identified step of her life in the system),
# gets a smart card, and funds her account.
alice = deployment.add_user("alice", balance=20)

# She buys anonymously: a fresh blind-certified pseudonym, blind-signed
# e-cash — the provider learns only "some enrolled user bought track-001".
license_ = alice.buy(
    "track-001",
    provider=deployment.provider,
    issuer=deployment.issuer,
    bank=deployment.bank,
)
print(f"licence issued : {license_.license_id.hex()}")
print(f"bound pseudonym: {license_.holder_fingerprint.hex()[:24]}…")
print(f"rights         : play; display; transfer[count<=1]")

# A certified device renders it; the provider is not involved at all.
device = deployment.add_device(model="living-room-player")
payload = alice.play("track-001", device, provider=deployment.provider)
print(f"rendered {len(payload)} bytes on device {device.device_id}")

# What does the provider's own register say about Alice?  Nothing.
register = deployment.provider.license_register
record = register.get(license_.license_id)
print(f"provider's view of the holder: {record.holder.hex()[:24]}… (a one-time pseudonym)")
assert b"alice" not in record.blob
print("the string 'alice' appears nowhere in the provider's records ✓")
