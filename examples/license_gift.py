"""Gifting a licence — the paper's unlinkable transfer, step by step.

Alice buys an album and gives it to Bob.  We show every artefact that
crosses the provider's desk and check, against the provider's own
records, that the sender↔receiver association stays pseudonymous.

Run:  python examples/license_gift.py
"""

from repro.analysis import build_transaction_graph
from repro.core import build_deployment
from repro.errors import RevokedLicenseError

deployment = build_deployment(seed="gift", rsa_bits=768)
deployment.provider.publish(
    "album-7", b"eight-tracks-of-joy" * 100, title="Album No. 7", price=8
)
alice = deployment.add_user("alice", balance=20)
bob = deployment.add_user("bob", balance=20)
device = deployment.add_device()

# 1. Alice buys (fresh pseudonym, anonymous payment).
license_a = alice.buy(
    "album-7", provider=deployment.provider, issuer=deployment.issuer, bank=deployment.bank
)
print(f"1. Alice's licence    : {license_a.license_id.hex()[:16]}… "
      f"(pseudonym {license_a.holder_fingerprint.hex()[:12]}…)")

# 2. Alice exchanges it for an anonymous (bearer) licence.  Her licence
#    is revoked in the same breath.
anonymous = alice.transfer_out(license_a.license_id, provider=deployment.provider)
print(f"2. anonymous licence  : token {anonymous.license_id.hex()[:16]}… "
      f"(names nobody — fields: {sorted(anonymous.as_dict())})")
print(f"   old licence revoked: "
      f"{deployment.provider.revocation_list.is_revoked(license_a.license_id)}")

# 3. The handover is out-of-band (mail the bytes, hand over a USB stick);
#    the provider never sees this step.

# 4. Bob redeems it under his own fresh pseudonym.
license_b = bob.redeem(anonymous, provider=deployment.provider, issuer=deployment.issuer)
print(f"4. Bob's licence      : {license_b.license_id.hex()[:16]}… "
      f"(pseudonym {license_b.holder_fingerprint.hex()[:12]}…)")

# 5. Bob plays; Alice cannot any more (her kept copy is on the LRL).
device.sync_revocations(deployment.provider)
bob.play("album-7", device, provider=deployment.provider)
print("5. Bob plays the album ✓")
try:
    device.render(license_a, deployment.provider.download("album-7"), alice.require_card())
    raise AssertionError("revoked licence played!")
except RevokedLicenseError:
    print("   Alice's old licence is refused by the device ✓")

# 6. What can the provider conclude?  It links the *transaction pair*
#    via the token — but both endpoints are one-time pseudonyms.
graph = build_transaction_graph(deployment.provider)
stats = graph.stats()
print(f"\nprovider's transaction graph: {stats['pseudonyms']} pseudonyms, "
      f"{stats['transfer_pairs']} transfer pair(s), {stats['users']} named users")
for giver, receiver in graph.transfer_pairs():
    print(f"  pair: {giver[:30]}… -> {receiver[:30]}…")
print("no user identity appears on either side of the pair.")
