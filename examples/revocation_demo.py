"""Revocable anonymity: catching (and proving) a double redemption.

Charlie buys a track, trades it for an anonymous licence, gives the
bytes to Dana — and then tries to redeem his kept copy too.  The
provider's spent-token store catches the second redemption, the
evidence goes to the TTP, and the TTP opens *only the cheater's*
escrow, with a Chaum–Pedersen proof anyone can audit.

Run:  python examples/revocation_demo.py
"""

from repro.core import build_deployment
from repro.core.escrow import verify_opening
from repro.core.messages import parse_redemption_transcript
from repro.core.protocols.revocation import report_misuse
from repro.errors import AuthenticationError, DoubleRedemptionError

deployment = build_deployment(seed="revocation-demo", rsa_bits=768)
deployment.provider.publish("track-9", b"contraband-beats" * 64, title="Track 9", price=2)
charlie = deployment.add_user("charlie", balance=20)
dana = deployment.add_user("dana", balance=20)

license_ = charlie.buy(
    "track-9", provider=deployment.provider, issuer=deployment.issuer, bank=deployment.bank
)
anonymous = charlie.transfer_out(license_.license_id, provider=deployment.provider)
print(f"anonymous licence token: {anonymous.license_id.hex()[:16]}…")

# Dana (honest) redeems the licence Charlie gave her.
dana.redeem(anonymous, provider=deployment.provider, issuer=deployment.issuer)
print("Dana redeems her gift ✓")

# Charlie kept a byte-copy and tries to redeem it again.
try:
    charlie.redeem(anonymous, provider=deployment.provider, issuer=deployment.issuer)
    raise AssertionError("double redemption went through!")
except DoubleRedemptionError as error:
    evidence = error.evidence
    print(f"double redemption detected; evidence holds two transcripts "
          f"({len(evidence.first_transcript)} and {len(evidence.second_transcript)} bytes)")

# The provider reports the evidence; the TTP re-verifies everything,
# opens the second redeemer's escrow, and blocks the account.
result = report_misuse(deployment.provider, deployment.issuer, evidence)
print(f"TTP opened the escrow  : offender = {result.offender_user_id!r}")
print(f"account blocked        : {result.blocked}")

# Anyone can audit the opening against the offender's own certificate —
# a TTP cannot frame an innocent user.
offender_cert = parse_redemption_transcript(evidence.second_transcript)["cert"]
verify_opening(offender_cert.escrow, result.opening, deployment.issuer.escrow_key)
print("Chaum–Pedersen opening proof verifies publicly ✓")

# Dana — the innocent first redeemer — is untouched and keeps playing.
assert deployment.issuer.accounts.get("dana").status == "active"
device = deployment.add_device()
dana.play("track-9", device, provider=deployment.provider)
print("Dana still plays her track; her anonymity was never touched ✓")

# Charlie can no longer obtain pseudonym certificates.
try:
    charlie.buy("track-9", provider=deployment.provider, issuer=deployment.issuer,
                bank=deployment.bank)
    raise AssertionError("blocked user bought content!")
except AuthenticationError:
    print("Charlie's card is refused further certification ✓")
