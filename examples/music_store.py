"""Music store: the same shop run twice — identity DRM vs P2DRM.

Several users buy from a small catalog.  Afterwards we mine each
provider's own records the way a curious operator would, and print the
dossiers side by side: full purchase histories with names in the
baseline, unlinkable one-licence shards in P2DRM.

Run:  python examples/music_store.py
"""

from repro.baseline import BaselineProvider, BaselineUser, ProfileBuilder
from repro.baseline.identity_drm import baseline_purchase
from repro.core import build_deployment
from repro.core.identity import SmartCard

CATALOG = [
    ("single-01", "Love Song", 2),
    ("single-02", "Protest Song", 2),
    ("album-01", "Greatest Hits", 8),
]
PURCHASES = [  # (user, content) — the same shopping in both worlds
    ("alice", "single-01"),
    ("alice", "album-01"),
    ("bob", "single-01"),
    ("alice", "single-02"),
    ("carol", "album-01"),
    ("bob", "single-02"),
]

deployment = build_deployment(seed="music-store", rsa_bits=768)
for content_id, title, price in CATALOG:
    deployment.provider.publish(
        content_id, f"media:{title}".encode() * 50, title=title, price=price
    )

# ---- world 1: P2DRM --------------------------------------------------------
for name in ("alice", "bob", "carol"):
    deployment.add_user(name, balance=50)
for name, content_id in PURCHASES:
    deployment.buy(name, content_id)

# ---- world 2: identity-based baseline ------------------------------------------
baseline = BaselineProvider(
    rng=deployment.rng.fork("store-baseline"),
    clock=deployment.clock,
    bank=deployment.bank,
    license_key_bits=768,
)
for content_id, title, price in CATALOG:
    baseline.publish(content_id, f"media:{title}".encode() * 50, title=title, price=price)
baseline_users = {}
for name in ("alice", "bob", "carol"):
    card = SmartCard(
        f"bl-{name}".encode().ljust(16, b"_"),
        deployment.group,
        rng=deployment.rng.fork(f"bl-{name}"),
        authority_key=deployment.authority.public_key,
    )
    user = BaselineUser(f"bl-{name}", card)
    baseline.register_user(user)
    deployment.bank.open_account(user.bank_account, initial_balance=50)
    baseline_users[name] = user
for name, content_id in PURCHASES:
    baseline_purchase(baseline_users[name], baseline, content_id, clock=deployment.clock)

# ---- what each operator knows ----------------------------------------------------


def show(label, provider):
    report = ProfileBuilder(provider).build()
    print(f"\n=== {label} ===")
    print(f"identified users : {report.identified}")
    print(f"profiles         : {report.profile_count}")
    for profile in sorted(report.profiles.values(), key=lambda p: p.display):
        spend = f", spent {profile.total_spent}" if profile.total_spent else ""
        print(f"  {profile.display:28s} -> {sorted(profile.contents)}{spend}")


show("identity DRM operator", baseline)
show("P2DRM operator", deployment.provider)

print(
    "\nSame six purchases.  The baseline operator holds three complete"
    "\ndossiers; the P2DRM operator holds six mutually-unlinkable"
    "\nsingle-purchase pseudonyms and no names."
)
