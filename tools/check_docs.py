#!/usr/bin/env python
"""Docs lint: links must resolve, docs/metrics.md must match the code.

Two checks, both cheap and both stdlib-only, run by the CI lint lane
after ruff:

1. **Link existence** — every relative markdown link in ``README.md``
   and ``docs/*.md`` must point at a file (or directory) that exists
   in the checkout.  External (``http``/``https``/``mailto``) links
   and pure in-page anchors are skipped; fragments are stripped before
   the filesystem check.

2. **Metrics cross-check** — the set of ``p2drm_*`` metric names
   documented in ``docs/metrics.md`` must equal the set exported by
   ``repro.service.metrics.SERVICE_METRIC_SPECS``, in both
   directions.  Histogram series suffixes (``_bucket`` / ``_sum`` /
   ``_count``) are accepted wherever the base name is a histogram
   spec.  Any other ``p2drm_*`` token anywhere in the scanned docs
   (a typo'd name in the runbook, say) also fails.

3. **Span cross-check** — the span names documented in the
   ``span-registry`` block of ``docs/tracing.md`` must equal the
   names registered in ``repro.service.tracing.SPAN_SPECS``, both
   directions: an undocumented span and a documented-but-unregistered
   span each fail.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.metrics import SERVICE_METRIC_SPECS  # noqa: E402
from repro.service.tracing import SPAN_SPECS  # noqa: E402

#: Inline markdown links: [text](target).  Deliberately simple — the
#: docs do not use reference-style links or angle-bracket targets.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_METRIC_RE = re.compile(r"\bp2drm_[a-z0-9_]+\b")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def check_links(files: list[Path]) -> list[str]:
    problems = []
    for doc in files:
        for match in _LINK_RE.finditer(doc.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: dead link -> {target}"
                )
    return problems


def check_metrics(files: list[Path]) -> list[str]:
    spec_names = {spec.name for spec in SERVICE_METRIC_SPECS}
    histogram_names = {
        spec.name for spec in SERVICE_METRIC_SPECS if spec.kind == "histogram"
    }

    def known(token: str) -> bool:
        if token in spec_names:
            return True
        for suffix in _HISTOGRAM_SUFFIXES:
            if token.endswith(suffix) and token[: -len(suffix)] in histogram_names:
                return True
        return False

    problems = []
    reference = REPO_ROOT / "docs" / "metrics.md"
    documented: set[str] = set()
    for doc in files:
        for match in _METRIC_RE.finditer(doc.read_text(encoding="utf-8")):
            token = match.group(0)
            if not known(token):
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: metric {token!r} is not"
                    " exported by SERVICE_METRIC_SPECS"
                )
            elif doc == reference:
                documented.add(token)
    for name in sorted(spec_names):
        if name not in documented:
            problems.append(
                f"docs/metrics.md: exported metric {name!r} is undocumented"
            )
    return problems


_SPAN_BLOCK_RE = re.compile(
    r"<!--\s*span-registry:begin\s*-->(.*?)<!--\s*span-registry:end\s*-->",
    re.DOTALL,
)
#: Backticked dotted lowercase names inside the registry block — the
#: shape every span name takes (and module paths do not: those carry
#: uppercase or underscores at the segment level the specs never use).
_SPAN_NAME_RE = re.compile(r"`([a-z]+(?:\.[a-z]+)+)`")


def check_spans(files: list[Path]) -> list[str]:
    spec_names = {spec.name for spec in SPAN_SPECS}
    reference = REPO_ROOT / "docs" / "tracing.md"
    if not reference.is_file():
        return ["docs/tracing.md: missing (the span registry must be documented)"]
    text = reference.read_text(encoding="utf-8")
    block = _SPAN_BLOCK_RE.search(text)
    if block is None:
        return [
            "docs/tracing.md: no span-registry:begin/end block to cross-check"
        ]
    documented = set(_SPAN_NAME_RE.findall(block.group(1)))
    problems = []
    for name in sorted(documented - spec_names):
        problems.append(
            f"docs/tracing.md: span {name!r} is documented but not registered"
            " in SPAN_SPECS"
        )
    for name in sorted(spec_names - documented):
        problems.append(
            f"docs/tracing.md: registered span {name!r} is undocumented"
        )
    return problems


def main() -> int:
    files = doc_files()
    problems = check_links(files) + check_metrics(files) + check_spans(files)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
