#!/usr/bin/env python
"""Render captured traces: span trees, critical paths, stage breakdowns.

Stdlib-only on purpose — this is the operator's terminal companion to
the trace surface, runnable on any box with the JSON in hand.  Input
is either

* a ``P2DRM_TRACE_DUMP`` JSONL file (one span object per line, each
  carrying its ``trace`` id), or
* the ``GET /traces`` / ``NetClient.traces()`` JSON document
  (``{"traces": [{"trace", "reason", "spans": [...]}], ...}``).

With no flags it lists every trace (id, root op, span count, total
duration, keep reason when known).  ``--trace PREFIX`` selects one
trace and prints its span tree with a ``*`` on every span of the
critical path — the root-to-leaf chain that dominates the end-to-end
latency — followed by the path itself with per-hop self time.
``--stages`` aggregates ``worker.stage`` spans across the selection
into a per-(op, stage) breakdown, the batch pipeline's cost profile.

All timings print in microseconds (the ints the trace surface carries;
no float parsing, no precision loss).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict


def load_spans(path: str) -> dict[str, list[dict]]:
    """Spans grouped by trace id hex, plus ``reason`` stitched onto the
    group when the document form carries one."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    traces: dict[str, list[dict]] = defaultdict(list)
    reasons: dict[str, str] = {}
    stripped = text.lstrip()
    if stripped.startswith("{") and not _looks_jsonl(stripped):
        document = json.loads(text)
        for entry in document.get("traces", []):
            tid = str(entry.get("trace", ""))
            reasons[tid] = str(entry.get("reason", ""))
            for span in entry.get("spans", []):
                traces[tid].append(dict(span))
    else:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            span = json.loads(line)
            traces[str(span.get("trace", ""))].append(span)
    for tid, reason in reasons.items():
        for span in traces.get(tid, ()):
            span.setdefault("_reason", reason)
    return dict(traces)


def _looks_jsonl(stripped: str) -> bool:
    first = stripped.split("\n", 1)[0].strip()
    try:
        parsed = json.loads(first)
    except json.JSONDecodeError:
        return False
    return isinstance(parsed, dict) and "span" in parsed


def _children(spans: list[dict]) -> dict[str, list[dict]]:
    by_parent: dict[str, list[dict]] = defaultdict(list)
    for span in spans:
        by_parent[str(span.get("parent", ""))].append(span)
    for group in by_parent.values():
        group.sort(key=lambda s: int(s.get("start_micros", 0)))
    return by_parent


def _roots(spans: list[dict]) -> list[dict]:
    ids = {str(s.get("span", "")) for s in spans}
    return sorted(
        (s for s in spans if str(s.get("parent", "")) not in ids),
        key=lambda s: int(s.get("start_micros", 0)),
    )


def critical_path(spans: list[dict]) -> list[dict]:
    """Root-to-leaf chain dominating latency: from each span, descend
    into the child whose duration is largest, until there is none."""
    roots = _roots(spans)
    if not roots:
        return []
    by_parent = _children(spans)
    path = [max(roots, key=lambda s: int(s.get("duration_micros", 0)))]
    while True:
        kids = by_parent.get(str(path[-1].get("span", "")), [])
        if not kids:
            return path
        path.append(max(kids, key=lambda s: int(s.get("duration_micros", 0))))


def _span_label(span: dict) -> str:
    attrs = span.get("attrs", {})
    attr_text = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    status = span.get("status", "ok")
    error = f" error={span.get('error')}" if status == "error" else ""
    return (
        f"{span.get('name', '?'):<22} {int(span.get('duration_micros', 0)):>9}us"
        f"  {attr_text}{error}"
    )


def print_tree(spans: list[dict], out) -> None:
    by_parent = _children(spans)
    on_path = {id(s) for s in critical_path(spans)}

    def walk(span: dict, depth: int) -> None:
        marker = "*" if id(span) in on_path else " "
        out.write(f"{marker} {'  ' * depth}{_span_label(span)}\n")
        for child in by_parent.get(str(span.get("span", "")), []):
            walk(child, depth + 1)

    for root in _roots(spans):
        walk(root, 0)
    path = critical_path(spans)
    if not path:
        return
    out.write("\ncritical path:\n")
    for index, span in enumerate(path):
        duration = int(span.get("duration_micros", 0))
        child = int(path[index + 1].get("duration_micros", 0)) if index + 1 < len(path) else 0
        out.write(
            f"  {span.get('name', '?'):<22} {duration:>9}us"
            f"  (self {max(0, duration - child):>9}us)\n"
        )


def print_stages(traces: dict[str, list[dict]], out) -> None:
    totals: dict[tuple[str, str], list[int]] = defaultdict(lambda: [0, 0])
    for spans in traces.values():
        for span in spans:
            if span.get("name") != "worker.stage":
                continue
            attrs = span.get("attrs", {})
            key = (str(attrs.get("op", "?")), str(attrs.get("stage", "?")))
            totals[key][0] += 1
            totals[key][1] += int(span.get("duration_micros", 0))
    if not totals:
        out.write("no worker.stage spans in selection\n")
        return
    out.write(f"{'op':<10} {'stage':<16} {'count':>6} {'total us':>10} {'mean us':>9}\n")
    for (op, stage), (count, total) in sorted(
        totals.items(), key=lambda item: -item[1][1]
    ):
        out.write(
            f"{op:<10} {stage:<16} {count:>6} {total:>10} {total // count:>9}\n"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace dump (JSONL) or GET /traces JSON")
    parser.add_argument(
        "--trace", help="hex trace-id prefix to render as a span tree"
    )
    parser.add_argument(
        "--stages",
        action="store_true",
        help="per-(op, stage) worker.stage breakdown over the selection",
    )
    args = parser.parse_args(argv)

    traces = load_spans(args.path)
    if not traces:
        print("no traces found")
        return 1
    if args.trace:
        selected = {
            tid: spans
            for tid, spans in traces.items()
            if tid.startswith(args.trace)
        }
        if not selected:
            print(f"no trace matching {args.trace!r}")
            return 1
        if len(selected) > 1 and not args.stages:
            print(f"prefix {args.trace!r} matches {len(selected)} traces:")
            for tid in selected:
                print(f"  {tid}")
            return 1
        traces = selected

    if args.stages:
        print_stages(traces, sys.stdout)
        return 0
    if args.trace:
        [(tid, spans)] = traces.items()
        reason = spans[0].get("_reason", "") if spans else ""
        suffix = f" (kept: {reason})" if reason else ""
        print(f"trace {tid}{suffix}")
        print_tree(spans, sys.stdout)
        return 0
    for tid, spans in sorted(
        traces.items(),
        key=lambda item: min(
            int(s.get("start_micros", 0)) for s in item[1]
        ) if item[1] else 0,
    ):
        roots = _roots(spans)
        root = roots[0] if roots else {}
        attrs = root.get("attrs", {})
        reason = spans[0].get("_reason", "") if spans else ""
        print(
            f"{tid}  {root.get('name', '?'):<14} op={attrs.get('op', '?'):<10}"
            f" spans={len(spans):<4}"
            f" duration={int(root.get('duration_micros', 0))}us"
            + (f"  kept={reason}" if reason else "")
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
