#!/usr/bin/env python
"""Re-validate a trace dump against the span-attribute allowlist.

The recorder already enforces the allowlist at record time, but that
proof lives inside the process being traced.  This tool is the
outside auditor CI runs over the whole test suite's
``P2DRM_TRACE_DUMP`` output: every JSONL line must be a span whose
name is registered, whose attributes re-pass
:func:`repro.service.tracing.validate_attrs`, whose error field is a
bare exception class name, and whose ids/timings have the declared
shapes.  Any line that fails means identifier material could have
reached the trace surface — in ``--strict`` mode that is a build
failure, not a warning.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.errors import ParameterError  # noqa: E402
from repro.service.tracing import (  # noqa: E402
    SPAN_ID_BYTES,
    TRACE_ID_BYTES,
    validate_attrs,
    validate_error,
)

_STATUSES = ("ok", "error")


def _check_hex(value, nbytes: int, *, empty_ok: bool = False) -> str | None:
    if not isinstance(value, str):
        return "not a string"
    if value == "":
        return None if empty_ok else "empty"
    if len(value) != 2 * nbytes:
        return f"expected {2 * nbytes} hex chars, got {len(value)}"
    try:
        bytes.fromhex(value)
    except ValueError:
        return "not hex"
    return None


def lint_span(span: dict) -> list[str]:
    """Every violation in one dumped span record (empty = clean)."""
    problems: list[str] = []
    name = span.get("name")
    if not isinstance(name, str):
        return ["span has no name"]
    for field, nbytes, empty_ok in (
        ("trace", TRACE_ID_BYTES, False),
        ("span", SPAN_ID_BYTES, False),
        ("parent", SPAN_ID_BYTES, True),
    ):
        fault = _check_hex(span.get(field), nbytes, empty_ok=empty_ok)
        if fault is not None:
            problems.append(f"{field} id: {fault}")
    for field in ("start_micros", "duration_micros"):
        value = span.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{field}: not a non-negative integer")
    if span.get("status") not in _STATUSES:
        problems.append(f"status {span.get('status')!r} not in {_STATUSES}")
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        problems.append("attrs: not a dict")
    else:
        try:
            validate_attrs(name, attrs)
        except ParameterError as exc:
            problems.append(str(exc))
    error = span.get("error", "")
    try:
        validate_error(name, error if isinstance(error, str) else "?bad?")
    except ParameterError as exc:
        problems.append(str(exc))
    if span.get("status") == "error" and not error:
        problems.append("status=error with empty error type")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="JSONL trace dump (P2DRM_TRACE_DUMP output)")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any violation (CI mode); default reports only",
    )
    args = parser.parse_args(argv)

    spans = 0
    bad = 0
    names: set[str] = set()
    with open(args.path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            spans += 1
            try:
                span = json.loads(line)
            except json.JSONDecodeError as exc:
                bad += 1
                print(f"line {lineno}: not JSON: {exc}")
                continue
            if not isinstance(span, dict):
                bad += 1
                print(f"line {lineno}: not a span object")
                continue
            problems = lint_span(span)
            if problems:
                bad += 1
                for problem in problems:
                    print(f"line {lineno}: {problem}")
            elif isinstance(span.get("name"), str):
                names.add(span["name"])
    print(
        f"trace lint: {spans} spans, {len(names)} distinct names,"
        f" {bad} violating"
    )
    if bad:
        return 1 if args.strict else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
