#!/usr/bin/env python
"""Offline ledger integrity scan over a service shard directory.

Run with the worker pool **stopped** — the scan reads every shard file
directly and cross-checks the three durable artefacts a deposit
leaves behind (coin spend rows, intent rows, ledger entries) against
the 2PC invariants:

1. **balance drift** — every account's stored balance must equal the
   sum of its journal entries;
2. **lost credit** — a committed intent must have exactly one ledger
   entry crediting it (the commit transaction writes both rows
   atomically, so zero means a torn store);
3. **double credit** — more than one entry for one intent id;
4. **committed amount mismatch** — a committed intent's recorded
   amount must equal both its credit entry and the sum of the coin
   values in its payload;
5. **leaked aborted spend** — a coin spend row attributed to an
   aborted intent (abort releases its spends; a leftover row would
   refuse an honest respend);
6. **stuck pending intent** — with the pool stopped, any pending
   intent is a crash leftover.  ``--repair`` resolves these the same
   way gateway startup does (presumed-abort: release the intent's own
   spends, mark it aborted);
7. **unaccounted spend** — a coin spend row naming an intent id that
   no shard knows;
8. **replay-cache consistency** — a cached idempotent receipt must
   tell the truth: corrupt records, records naming an intent no shard
   knows, and committed-intent records whose cached amount disagrees
   with the intent are all flagged.  Stale records pointing at aborted
   intents are *expected* (crash-before-commit leftovers the runtime
   releases lazily on lookup) and only counted.

Exit status 0 when clean (after repairs, if requested); 1 with one
line per problem otherwise.  ``--json`` emits the machine-readable
report the CI service lane archives.  ``--selfcheck`` stages a broken
in-memory ledger and asserts the scan catches every class above — the
CI proof that a green audit means something.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service.ledger import (  # noqa: E402
    ShardedLedger,
    decode_intent_payload,
    recover_intents,
    spend_transcript_fields,
)
from repro.service.replay import (  # noqa: E402
    REPLAY_KIND,
    decode_replay_record,
)
from repro.service.sharding import ShardedSpentTokenStore, ShardSet  # noqa: E402
from repro.storage.ledger import (  # noqa: E402
    INTENT_ABORTED,
    INTENT_COMMITTED,
    INTENT_PENDING,
)

#: Wide-open spent_at window: sim clocks are arbitrary ints.
_ALL_TIME = (-(2**62), 2**62)

COIN_KIND = "ecash"


def shard_paths(directory: str) -> list[str]:
    paths = sorted(glob.glob(os.path.join(directory, "shard-*.sqlite")))
    if not paths:
        raise SystemExit(f"ledger_audit: no shard-*.sqlite files in {directory!r}")
    return paths


def audit(shards: ShardSet) -> dict:
    """The full scan; returns ``{"problems": [...], "stats": {...}}``."""
    ledger = ShardedLedger(shards)
    spent = ShardedSpentTokenStore(shards, COIN_KIND)
    problems: list[str] = []

    # -- per-account balance vs journal ---------------------------------
    accounts = ledger.accounts()
    for account in accounts:
        balance = ledger.store_for(account).balance(account)
        entry_sum = ledger.entry_sum(account)
        if balance != entry_sum:
            problems.append(
                f"balance drift: account {account!r} balance {balance}"
                f" != journal sum {entry_sum}"
            )

    # -- intent/entry cross-check ---------------------------------------
    intents = ledger.intents()
    by_id = {record.intent_id: record for record in intents}
    state_counts = ledger.intent_counts()
    #: Reference "now" for pending ages: the newest intent activity the
    #: shard files have seen (the same clock basis repair() aborts at —
    #: sim clocks are arbitrary ints, so wall time would be meaningless).
    now = max([record.updated_at for record in intents] + [0])
    stuck: list[dict] = []
    for record in intents:
        hexid = record.intent_id.hex()[:16]
        entries = ledger.store_for(record.account_id).entries_for_intent(
            record.intent_id
        )
        if record.state == INTENT_COMMITTED:
            if not entries:
                problems.append(
                    f"lost credit: committed intent {hexid} has no ledger entry"
                )
            elif len(entries) > 1:
                problems.append(
                    f"double credit: intent {hexid} has {len(entries)} entries"
                )
            else:
                credited = entries[0].amount
                if credited != record.amount:
                    problems.append(
                        f"amount mismatch: intent {hexid} recorded"
                        f" {record.amount}, credited {credited}"
                    )
            try:
                payload_sum = sum(
                    value for _t, value in decode_intent_payload(record.payload)
                )
            except Exception:
                payload_sum = None
            if payload_sum is not None and payload_sum != record.amount:
                problems.append(
                    f"amount mismatch: intent {hexid} payload sums to"
                    f" {payload_sum}, recorded {record.amount}"
                )
        else:
            if entries:
                problems.append(
                    f"phantom credit: {record.state} intent {hexid} has"
                    f" {len(entries)} ledger entries"
                )
            if record.state == INTENT_PENDING:
                age = now - record.created_at
                problems.append(
                    f"stuck pending intent {hexid}"
                    f" (account {record.account_id!r}, amount {record.amount},"
                    f" pending {age}s)"
                )
                stuck.append(
                    {
                        "intent": hexid,
                        "account": record.account_id,
                        "amount": record.amount,
                        "created_at": record.created_at,
                        "age_seconds": age,
                    }
                )

    # -- spend rows vs their owning intents -----------------------------
    spends = 0
    for store in spent._stores:  # noqa: SLF001 - offline scan reads all shards
        for record in store.spent_between(*_ALL_TIME):
            spends += 1
            fields = spend_transcript_fields(record.transcript)
            if fields is None or "intent" not in fields:
                continue  # pre-intent legacy row: settled by definition
            intent_id = bytes(fields["intent"])
            owner = by_id.get(intent_id)
            if owner is None:
                problems.append(
                    "unaccounted spend: token"
                    f" {record.token_id.hex()[:16]} names unknown intent"
                    f" {intent_id.hex()[:16]}"
                )
            elif owner.state == INTENT_ABORTED:
                problems.append(
                    "leaked aborted spend: token"
                    f" {record.token_id.hex()[:16]} still spent under aborted"
                    f" intent {intent_id.hex()[:16]}"
                )

    # -- replay-cache receipts vs the intents they describe -------------
    replay = ShardedSpentTokenStore(shards, REPLAY_KIND)
    replay_records = 0
    replay_bare = 0
    replay_stale = 0
    for store in replay._stores:  # noqa: SLF001 - offline scan reads all shards
        for record in store.spent_between(*_ALL_TIME):
            replay_records += 1
            hexnonce = record.token_id.hex()[:16]
            fields = decode_replay_record(record.transcript)
            if fields is None:
                problems.append(
                    f"corrupt replay record: nonce {hexnonce} transcript"
                    " does not decode"
                )
                continue
            intent_id = fields["intent"]
            if intent_id == b"":
                # Bare record: completion evidence for a non-2PC
                # operation.  Nothing in the ledger to cross-check.
                replay_bare += 1
                continue
            owner = by_id.get(intent_id)
            if owner is None:
                problems.append(
                    f"dangling replay record: nonce {hexnonce} names"
                    f" unknown intent {intent_id.hex()[:16]}"
                )
                continue
            if owner.state == INTENT_COMMITTED:
                if fields["amount"] != owner.amount:
                    problems.append(
                        f"replay amount mismatch: nonce {hexnonce} caches"
                        f" {fields['amount']} for intent"
                        f" {intent_id.hex()[:16]} recorded {owner.amount}"
                    )
                if fields["account"] != owner.account_id:
                    problems.append(
                        f"replay account mismatch: nonce {hexnonce} caches"
                        f" account {fields['account']!r} for intent"
                        f" {intent_id.hex()[:16]} owned by"
                        f" {owner.account_id!r}"
                    )
            else:
                # Aborted (or, with the pool stopped, a stuck pending
                # already flagged above): a stale record the runtime
                # treats as a miss and releases on next lookup.
                replay_stale += 1

    return {
        "problems": problems,
        "stats": {
            "shards": len(shards),
            "accounts": len(accounts),
            "total_balance": ledger.total_balance(),
            "intents": state_counts,
            "coin_spends": spends,
            "stuck_intents": stuck,
            "replay_records": replay_records,
            "replay_bare": replay_bare,
            "replay_stale": replay_stale,
        },
    }


def repair(shards: ShardSet) -> dict:
    """Offline presumed-abort: what gateway startup recovery would do."""
    ledger = ShardedLedger(shards)
    spent = ShardedSpentTokenStore(shards, COIN_KIND)
    at = max(
        [record.updated_at for record in ledger.intents()] + [0]
    )
    return recover_intents(ledger, spent, at=at)


def selfcheck() -> int:
    """Stage every problem class in-memory; the scan must catch each."""
    from repro import codec
    from repro.service.ledger import intent_payload
    from repro.service.replay import encode_replay_record

    shards = ShardSet.in_memory(2)
    ledger = ShardedLedger(shards)
    spent = ShardedSpentTokenStore(shards, COIN_KIND)

    # A healthy account first: open, credit under a committed intent.
    good = "alice"
    ledger.open_account(good, at=1)
    store = ledger.store_for(good)
    intent_ok = b"I" * 16
    store.create_intent(
        intent_ok, good, 5, at=2, payload=intent_payload([(b"t1", 5)])
    )
    spent.try_spend(
        b"t1",
        at=2,
        transcript=codec.encode(
            {"depositor": good, "at": 2, "value": 5, "intent": intent_ok}
        ),
    )
    store.commit_intent(intent_ok, at=3, transcript=b"")
    # Healthy replay-cache rows: a truthful receipt for the committed
    # intent and a bare (non-2PC) completion record.
    replay = ShardedSpentTokenStore(shards, REPLAY_KIND)
    replay.try_spend(
        b"N" * 16,
        at=3,
        transcript=encode_replay_record(
            response=b"receipt", intent_id=intent_ok, account=good, amount=5
        ),
    )
    replay.try_spend(
        b"B" * 16,
        at=3,
        transcript=encode_replay_record(
            response=b"bare-receipt", intent_id=b"", account="", amount=0
        ),
    )
    clean = audit(shards)
    if clean["problems"]:
        print("selfcheck: clean ledger reported problems:")
        for problem in clean["problems"]:
            print(f"  {problem}")
        return 1

    # Now break it, one invariant per staged fault.
    bob = "bob"
    ledger.open_account(bob, at=4)
    bob_store = ledger.store_for(bob)
    # stuck pending intent + leaked aborted spend + unaccounted spend
    pending = b"P" * 16
    bob_store.create_intent(
        pending, bob, 3, at=5, payload=intent_payload([(b"t2", 3)])
    )
    aborted = b"A" * 16
    bob_store.create_intent(
        aborted, bob, 2, at=5, payload=intent_payload([(b"t3", 2)])
    )
    bob_store.abort_intent(aborted, at=6)
    spent.try_spend(
        b"t3",
        at=5,
        transcript=codec.encode(
            {"depositor": bob, "at": 5, "value": 2, "intent": aborted}
        ),
    )
    spent.try_spend(
        b"t4",
        at=5,
        transcript=codec.encode(
            {"depositor": bob, "at": 5, "value": 1, "intent": b"X" * 16}
        ),
    )
    # balance drift: poke the stored balance directly
    bob_store.database.execute(
        "UPDATE ledger_accounts SET balance = balance + 7"
        " WHERE account_id = ?",
        (bob,),
    )
    # replay-cache faults: a corrupt row, a receipt lying about a
    # committed amount, and a receipt naming an intent nobody knows.
    replay.try_spend(b"C" * 16, at=7, transcript=b"\x00not-a-record")
    replay.try_spend(
        b"M" * 16,
        at=7,
        transcript=encode_replay_record(
            response=b"liar", intent_id=intent_ok, account=good, amount=9
        ),
    )
    replay.try_spend(
        b"D" * 16,
        at=7,
        transcript=encode_replay_record(
            response=b"orphan", intent_id=b"Z" * 16, account=bob, amount=1
        ),
    )
    report = audit(shards)
    expected = (
        "balance drift",
        "stuck pending intent",
        "leaked aborted spend",
        "unaccounted spend",
        "corrupt replay record",
        "replay amount mismatch",
        "dangling replay record",
    )
    missed = [
        label
        for label in expected
        if not any(problem.startswith(label) for problem in report["problems"])
    ]
    if missed:
        print(f"selfcheck: scan missed staged faults: {missed}")
        for problem in report["problems"]:
            print(f"  found: {problem}")
        return 1

    # --repair must clear the pending intent and release its spends...
    spent.try_spend(
        b"t2",
        at=5,
        transcript=codec.encode(
            {"depositor": bob, "at": 5, "value": 3, "intent": pending}
        ),
    )
    summary = repair(shards)
    if summary != {"aborted": 1, "released": 1}:
        print(f"selfcheck: repair did {summary}, wanted 1 abort / 1 release")
        return 1
    after = audit(shards)
    if any(p.startswith("stuck pending intent") for p in after["problems"]):
        print("selfcheck: pending intent survived --repair")
        return 1
    print("selfcheck ok: staged faults caught, repair resolves pending intents")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "directory",
        nargs="?",
        help="service shard directory (containing shard-*.sqlite)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="presumed-abort pending intents before scanning"
        " (pool MUST be stopped)",
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help="verify the scan catches staged faults (no directory needed)",
    )
    args = parser.parse_args(argv)

    if args.selfcheck:
        return selfcheck()
    if not args.directory:
        parser.error("a shard directory is required (or --selfcheck)")

    shards = ShardSet(shard_paths(args.directory))
    try:
        repaired = repair(shards) if args.repair else None
        report = audit(shards)
    finally:
        shards.close()
    if repaired is not None:
        report["repaired"] = repaired

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for problem in report["problems"]:
            print(f"PROBLEM: {problem}")
        stats = report["stats"]
        print(
            f"scanned {stats['shards']} shards, {stats['accounts']} accounts,"
            f" {stats['coin_spends']} coin spends; intents {stats['intents']};"
            f" total balance {stats['total_balance']}"
        )
        if repaired is not None:
            print(
                f"repair: aborted {repaired['aborted']} pending intents,"
                f" released {repaired['released']} spends"
            )
        print("ledger audit:", "CLEAN" if not report["problems"] else "DIRTY")
    return 1 if report["problems"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
