"""E10 "Table 4" — the end-to-end marketplace comparison.

One identical workload (same seed, same users, contents, actions and
timing) executed against both systems; the table reports what got done
and what the operator ended up knowing.  This is the paper's whole
thesis in one table: the functionality columns match, the knowledge
columns diverge completely.
"""

from __future__ import annotations

import pytest

from repro.sim import MarketplaceSimulator, WorkloadConfig

CONFIG = WorkloadConfig(
    n_users=10,
    n_contents=10,
    n_events=60,
    mean_interarrival=60,
    seed=1010,
)


@pytest.fixture(scope="module")
def reports():
    results = {}
    for mode in ("p2drm", "baseline"):
        simulator = MarketplaceSimulator(CONFIG, mode=mode, rsa_bits=512)
        results[mode] = simulator.run()
    return results


class TestMarketplaceComparison:
    def test_run_and_tabulate(self, benchmark, experiment, reports):
        def one_run():
            simulator = MarketplaceSimulator(CONFIG, mode="p2drm", rsa_bits=512)
            return simulator.run()

        benchmark.pedantic(one_run, rounds=1, iterations=1)

        for mode, report in reports.items():
            knowledge = report.operator_knowledge
            experiment.row(
                mode=mode,
                purchases=report.purchases,
                plays=report.plays,
                transfers=report.transfers,
                denials=report.denials,
                operator_identifies_users=knowledge["identified"],
                operator_profiles=knowledge["profiles"],
                max_profile=knowledge["max_profile"],
                named_transfer_edges=knowledge["transfer_edges"],
            )

    def test_functionality_identical(self, reports):
        """Same events completed in both modes — privacy cost ≠ feature
        cost."""
        p2, bl = reports["p2drm"], reports["baseline"]
        assert (p2.purchases, p2.plays, p2.transfers) == (
            bl.purchases,
            bl.plays,
            bl.transfers,
        )

    def test_knowledge_diverges(self, reports):
        p2, bl = reports["p2drm"], reports["baseline"]
        assert bl.operator_knowledge["identified"]
        assert not p2.operator_knowledge["identified"]
        assert p2.operator_knowledge["max_profile"] == 1
        assert bl.operator_knowledge["max_profile"] >= 1
        assert p2.operator_knowledge["transfer_edges"] == 0
        if bl.transfers:
            assert bl.operator_knowledge["transfer_edges"] == bl.transfers
