"""E2 "Figure 1" — protocol latency vs RSA modulus size.

The paper-era objection "public-key cryptography is slow, privacy will
reduce the rate of simultaneous connections" (quoted in the survey
literature) is a claim about *how* protocol cost scales with key size.
This bench sweeps 512/1024/2048-bit provider+issuer+bank keys and times
the purchase and transfer protocols end to end.

Expected shape: latency grows roughly cubically with modulus size
(schoolbook modular exponentiation), and the purchase stays within a
small constant of the baseline purchase at every size — privacy does
not change the asymptotics.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.protocols import purchase_content, transfer_license

_counter = itertools.count()

KEY_SIZES = [512, 1024, 2048]


@pytest.mark.parametrize("rsa_bits", KEY_SIZES)
class TestPurchaseLatency:
    def test_purchase(self, benchmark, deployment_for_bits, experiment, rsa_bits):
        deployment = deployment_for_bits(rsa_bits)
        user = deployment.add_user(f"e2-user-{next(_counter)}", balance=100_000)

        def run():
            return purchase_content(
                user, deployment.provider, deployment.issuer, deployment.bank,
                "bench-song",
            )

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.content_id == "bench-song"
        experiment.row(
            protocol="purchase",
            rsa_bits=rsa_bits,
            mean_ms=benchmark.stats["mean"] * 1000,
        )


@pytest.mark.parametrize("rsa_bits", KEY_SIZES)
class TestTransferLatency:
    def test_transfer(self, benchmark, deployment_for_bits, experiment, rsa_bits):
        deployment = deployment_for_bits(rsa_bits)
        sender = deployment.add_user(f"e2-sender-{next(_counter)}", balance=100_000)
        receiver = deployment.add_user(f"e2-recv-{next(_counter)}", balance=100_000)

        def run():
            license_ = purchase_content(
                sender, deployment.provider, deployment.issuer, deployment.bank,
                "bench-song",
            )
            return transfer_license(
                sender, receiver, deployment.provider, deployment.issuer,
                license_.license_id,
            )

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.content_id == "bench-song"
        experiment.row(
            protocol="purchase+transfer",
            rsa_bits=rsa_bits,
            mean_ms=benchmark.stats["mean"] * 1000,
        )
