"""Compare a benchmark JSON dump against a committed baseline.

The ``bench-regression`` CI lane runs the smoke benchmarks with
``P2DRM_BENCH_JSON=BENCH_smoke.json`` and then::

    python benchmarks/check_regression.py BENCH_smoke.json \
        benchmarks/baselines/BENCH_smoke_baseline.json

**Op-count metrics are enforced, timings are advisory.**  Operation
counts (modexp chains, RSA operations, message counts, wire bytes) are
deterministic functions of the protocol code, so a >20% increase is a
real regression — someone dropped a batch path or added a redundant
verification — and fails the job.  Throughput/latency numbers depend on
the runner and are only reported as warnings, never failures.

**Backends change wall time, never op counts.**  The arithmetic
backend a run executed under (``meta.backend``; rows that sweep
backends explicitly carry it in their ``arm`` label) does not alter
how many modexp chains the protocol code issues, so op-count bands
stay strict across backends.  When the current run and the baseline
were produced under *different* process-default backends (the
``backend-gmpy2`` CI lane comparing against a pure-backend baseline),
wall-time deltas are expected and not even worth warning about, so
timing drift lines are suppressed and replaced by one informational
note.  Deliberately, the ``backend`` *column* (attribution on e11
rows) is **not** part of a row's identity — the same sweep run under
a different backend must keep matching its baseline rows.

Rows marked ``conditional`` in the baseline (E12's gmpy2 and speedup
arms, which only exist where gmpy2 is installed) downgrade "row
missing" to a warning: a pure-only runner losing them is expected,
losing anything else is still a hard failure.

A metric, row or experiment that exists in the baseline but not in the
current run also fails: silently losing benchmark coverage is how
regressions go unnoticed.  New rows/metrics are fine (the baseline is
updated by re-running with ``P2DRM_BENCH_JSON`` and committing).
"""

from __future__ import annotations

import argparse
import json
import sys

#: Metrics that count operations (deterministic per code version) —
#: enforced against the tolerance band.  Everything else is advisory.
ENFORCED_METRICS = {
    "modexp",
    "modexp_warm",
    "modexp_multi",
    "rsa_ops",
    "rsa_private",
    "messages",
    "bytes",
}

#: Keys that identify a row within its experiment table (categorical
#: axes), and numeric sweep parameters that disambiguate repeated
#: categories (e.g. the same object measured at several key sizes).
_LABEL_KEYS = (
    "protocol",
    "mode",
    "arm",
    "case",
    "name",
    "op",
    "design",
    "object",
    "engine",
    "path",
    "adversary",
    "config",
)
_PARAM_KEYS = (
    "rsa_bits",
    "keysize",
    "store_size",
    "spent_db_size",
    "lrl_size",
    "window_s",
)


def row_label(row: dict, index: int) -> str:
    parts = [f"{key}={row[key]}" for key in _LABEL_KEYS if key in row]
    parts += [f"{key}={row[key]}" for key in _PARAM_KEYS if key in row]
    if parts:
        return " ".join(parts)
    for key, value in row.items():
        if isinstance(value, str):
            return f"{key}={value}"
    return f"row[{index}]"


def index_rows(tables: dict) -> dict[tuple[str, str], dict]:
    indexed: dict[tuple[str, str], dict] = {}
    for experiment_id, rows in tables.items():
        for position, row in enumerate(rows):
            indexed[(experiment_id, row_label(row, position))] = row
    return indexed


def compare(current: dict, baseline: dict, tolerance: float):
    """Returns ``(failures, warnings)`` as lists of human-readable lines."""
    failures: list[str] = []
    warnings: list[str] = []
    if current.get("meta", {}).get("smoke") != baseline.get("meta", {}).get("smoke"):
        failures.append(
            "smoke-mode mismatch between current run and baseline"
            " (comparing different key-size regimes is meaningless)"
        )
        return failures, warnings
    current_backend = current.get("meta", {}).get("backend", "pure")
    baseline_backend = baseline.get("meta", {}).get("backend", "pure")
    cross_backend = current_backend != baseline_backend
    if cross_backend:
        warnings.append(
            f"cross-backend comparison ({baseline_backend} baseline vs"
            f" {current_backend} run): wall-time deltas are expected and"
            " suppressed; op-count bands stay strict"
        )

    current_rows = index_rows(current.get("experiments", {}))
    baseline_rows = index_rows(baseline.get("experiments", {}))

    for key, base_row in sorted(baseline_rows.items()):
        experiment_id, label = key
        where = f"{experiment_id} / {label}"
        row = current_rows.get(key)
        if row is None:
            if base_row.get("conditional"):
                warnings.append(
                    f"{where}: conditional row absent from current run"
                    " (backend-dependent arm; expected on pure-only hosts)"
                )
            else:
                failures.append(f"{where}: row missing from current run")
            continue
        for metric, base_value in base_row.items():
            if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
                continue
            value = row.get(metric)
            if value is None:
                if metric in ENFORCED_METRICS:
                    failures.append(f"{where}: metric {metric!r} missing")
                continue
            if metric in ENFORCED_METRICS:
                if value > base_value * (1 + tolerance):
                    failures.append(
                        f"{where}: {metric} regressed {base_value} -> {value}"
                        f" (>{tolerance:.0%} above baseline)"
                    )
                elif base_value > 0 and value < base_value * (1 - tolerance):
                    warnings.append(
                        f"{where}: {metric} improved {base_value} -> {value};"
                        " consider refreshing the baseline"
                    )
            elif base_value > 0 and value < base_value * (1 - tolerance):
                # Throughput-style metric: lower is worse, but timing on
                # shared runners is noise — advisory only.  Across
                # backends the delta is the whole point of the sweep,
                # so not even a warning.
                if not cross_backend:
                    warnings.append(
                        f"{where}: {metric} {base_value:.4g} -> {value:.4g}"
                        " (timing drift, advisory)"
                    )
    return failures, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="JSON dump from this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="relative band before an op-count change fails (default 0.2)",
    )
    args = parser.parse_args(argv)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures, warnings = compare(current, baseline, args.tolerance)
    for line in warnings:
        print(f"WARN  {line}")
    for line in failures:
        print(f"FAIL  {line}")
    if failures:
        print(f"{len(failures)} benchmark regression(s) against {args.baseline}")
        return 1
    print(f"benchmarks within tolerance of {args.baseline} ({len(warnings)} warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
