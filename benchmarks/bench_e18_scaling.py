"""E18 — pool scaling economics: one table build, N workers, zero-copy
frames.

Two tables:

- **Warmup**: mean per-worker fastexp warmup seconds and worker RSS
  for each of the three warm routes — ``build`` (spawn, no segment:
  every worker computes its own comb tables), ``attach`` (spawn +
  the gateway's shared-memory segment, rows materialized lazily) and
  ``cow`` (fork: the registry arrives by copy-on-write, zero work).
  The interesting ratio is ``build / attach`` — the shared segment
  must make a spawned worker's warmup several times cheaper, since
  deserializing fixed-width rows on demand replaces computing
  ``2^window`` products per table row.
- **Throughput**: requests/s through the queue transport and over
  localhost TCP (one pipelined connection per worker), swept over
  worker count × available arithmetic backend, against the in-process
  desk as the zero-IPC reference.  Deterministic issuance makes every
  arm self-checking: the ``byte_identical`` column records that the
  arm's licences matched the reference byte for byte.

Timings are advisory in the regression lane (runner-dependent, and a
1-core runner shows queueing overhead instead of speedup — the honest
number for that machine); the rows' presence is enforced.  The
nightly expectation on a multi-core runner is 4-worker TCP throughput
around 3-4x the single-worker arm and attach-mode warmup >= 5x
cheaper than build mode.
"""

from __future__ import annotations

import os
import shutil
import statistics
import tempfile
import threading
import time

from repro import codec
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.system import build_deployment
from repro.crypto.backend import available_backends, backend_name, set_backend
from repro.service.gateway import build_gateway
from repro.service.netserver import NetClient, NetServer
from repro.service.pool import WorkerPool
from repro.service.sharding import ShardSet
from repro.service.workers import ServiceConfig, publish_shared_tables

BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

WORKER_SWEEP = (1, 2) if BENCH_SMOKE else (1, 2, 4)
#: Worker count for the warmup-route comparison (fixed: the routes are
#: per-worker costs, the worker count only averages them).
WARMUP_WORKERS = 2
N_REQUESTS = 12 if BENCH_SMOKE else 64
RSA_BITS = 512 if BENCH_SMOKE else 1024


def _worker_rss_mb(processes) -> float:
    """Peak per-worker resident set in MiB (0.0 where /proc is absent)."""
    peak_kb = 0
    for process in processes:
        try:
            with open(f"/proc/{process.pid}/status") as status:
                for line in status:
                    if line.startswith("VmRSS:"):
                        peak_kb = max(peak_kb, int(line.split()[1]))
                        break
        except (OSError, ValueError):
            continue
    return peak_kb / 1024


def _run_partitioned(clients, requests):
    """Round-robin ``requests`` over pipelined connections; returns
    results in request order plus the slowest thread's wall-clock."""
    results = [None] * len(requests)
    slices = [
        (client, list(range(index, len(requests), len(clients))))
        for index, client in enumerate(clients)
    ]

    def drive(client, indices):
        answered = client.call_many([requests[i] for i in indices])
        for position, result in zip(indices, answered):
            results[position] = result

    threads = [
        threading.Thread(target=drive, args=(client, indices))
        for client, indices in slices
        if indices
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, time.perf_counter() - start


class TestWarmupRoutes:
    def test_build_vs_attach_vs_cow(self, experiment):
        deployment = build_deployment(seed="bench-e18-warm", rsa_bits=RSA_BITS)
        deployment.provider.publish(
            "bench-song", b"BENCH-PAYLOAD" * 64, title="Bench Song", price=3
        )
        directory = tempfile.mkdtemp(prefix="p2drm-e18-warm-")
        paths = ShardSet.paths_in_directory(directory, WARMUP_WORKERS)
        base_config = ServiceConfig.from_deployment(deployment, paths)
        shared_config, segment = publish_shared_tables(base_config)
        arms = [
            # (label, config, start method) — "build" spawns with no
            # segment, "attach" spawns against it, "cow" forks from
            # this (already warm) process.
            ("build", base_config, "spawn"),
            ("attach", shared_config, "spawn"),
            ("cow", shared_config, "fork"),
        ]
        try:
            for label, config, start_method in arms:
                import multiprocessing

                if start_method not in multiprocessing.get_all_start_methods():
                    continue
                pool = WorkerPool(
                    config, workers=WARMUP_WORKERS, start_method=start_method
                )
                try:
                    reports = pool.wait_warmup(timeout=300.0)
                    modes = sorted({mode for mode, _ in reports.values()})
                    seconds = [s for _, s in reports.values()]
                    rss_mb = _worker_rss_mb(pool.processes)
                finally:
                    pool.close()
                assert modes == [label], (
                    f"expected every worker on the {label!r} route, got {modes}"
                )
                experiment.row(
                    case=f"warmup-{label}",
                    mode=label,
                    workers=WARMUP_WORKERS,
                    cores=os.cpu_count(),
                    backend=backend_name(),
                    mean_warmup_s=statistics.mean(seconds),
                    max_warmup_s=max(seconds),
                    worker_rss_mb=rss_mb,
                )
        finally:
            if segment is not None:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            shutil.rmtree(directory, ignore_errors=True)


class TestScalingSweep:
    def test_workers_by_backend(self, experiment):
        from repro.crypto import fastexp

        original = backend_name()
        try:
            for backend in available_backends():
                # Isolated registry per arm: each backend warms its own
                # tables (E12 does the same), and nothing leaks into
                # the next bench module.
                with fastexp.isolated_state():
                    set_backend(backend)
                    fastexp.reset()
                    self._sweep_backend(experiment, backend)
        finally:
            set_backend(original)

    def _sweep_backend(self, experiment, backend):
        deployment = build_deployment(seed="bench-e18-scale", rsa_bits=RSA_BITS)
        deployment.provider.publish(
            "bench-song", b"BENCH-PAYLOAD" * 64, title="Bench Song", price=3
        )
        deployment.provider.deterministic_issuance = True
        senders = [
            deployment.add_user(f"e18-sender-{i}", balance=1_000_000)
            for i in range(4)
        ]
        purchase_requests = [
            build_purchase_request(
                senders[i % len(senders)],
                deployment.provider,
                deployment.issuer,
                deployment.bank,
                "bench-song",
            )
            for i in range(N_REQUESTS)
        ]
        start = time.perf_counter()
        local_licenses = deployment.provider.sell_batch(purchase_requests)
        local_seconds = time.perf_counter() - start
        assert not any(isinstance(r, Exception) for r in local_licenses)
        reference = [codec.encode(r.as_dict()) for r in local_licenses]
        experiment.row(
            case=f"in-process-{backend}",
            transport="none",
            arm=backend,
            workers=0,
            cores=os.cpu_count(),
            requests_per_s=N_REQUESTS / local_seconds,
        )

        baselines: dict[str, float] = {}
        for workers in WORKER_SWEEP:
            for transport in ("queue", "tcp"):
                directory = tempfile.mkdtemp(
                    prefix=f"p2drm-e18-{transport}{workers}-"
                )
                gateway = build_gateway(
                    deployment, directory, workers=workers, shards=workers
                )
                server = None
                clients = []
                try:
                    if transport == "tcp":
                        server = NetServer(gateway)
                        address = server.start()
                        clients = [NetClient(address) for _ in range(workers)]
                        sold, seconds = _run_partitioned(
                            clients, purchase_requests
                        )
                    else:
                        start = time.perf_counter()
                        sold = gateway.sell_batch(purchase_requests)
                        seconds = time.perf_counter() - start
                    warmups = list(gateway.pool.warmup_reports.values())
                    rss_mb = _worker_rss_mb(gateway.pool.processes)
                finally:
                    for client in clients:
                        client.close()
                    if server is not None:
                        server.close()
                    gateway.close()
                    shutil.rmtree(directory, ignore_errors=True)
                byte_identical = not any(
                    isinstance(r, Exception) for r in sold
                ) and [codec.encode(r.as_dict()) for r in sold] == reference
                assert byte_identical, (
                    f"{transport} arm (backend={backend},"
                    f" workers={workers}) diverged from the desk"
                )
                requests_per_s = N_REQUESTS / seconds
                baselines.setdefault(transport, requests_per_s)
                experiment.row(
                    case=f"{transport}-{backend}-w{workers}",
                    transport=transport,
                    arm=backend,
                    workers=workers,
                    cores=os.cpu_count(),
                    requests_per_s=requests_per_s,
                    speedup_vs_1=requests_per_s / baselines[transport],
                    mean_warmup_s=(
                        statistics.mean(s for _mode, s in warmups)
                        if warmups
                        else 0.0
                    ),
                    worker_rss_mb=rss_mb,
                    byte_identical=byte_identical,
                )
