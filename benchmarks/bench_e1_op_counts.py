"""E1 "Table 1" — per-protocol cost table, P2DRM vs baseline.

Reproduces the paper's cost argument: for each protocol, how many
public-key operations run, how many messages cross the wire, and how
many bytes they carry.  The paper's qualitative claim is that the
privacy layer adds a *constant, small* number of public-key operations
per transaction (blind signature + Schnorr + KEM) on top of identity
DRM — the rows let you read the constant off directly.
"""

from __future__ import annotations

import itertools

import pytest

from repro import instrument
from repro.baseline.identity_drm import (
    BaselineProvider,
    BaselineUser,
    baseline_purchase,
    baseline_transfer,
)
from repro.core.identity import SmartCard
from repro.core.protocols import (
    Transcript,
    certify_pseudonym,
    purchase_content,
    render_content,
    transfer_license,
    withdraw_coins,
)

_user_counter = itertools.count()


def _new_user(deployment, balance=10_000):
    user = deployment.add_user(f"e1-user-{next(_user_counter)}", balance=balance)
    return user


def _measured(experiment, protocol: str, run) -> None:
    """Run ``run(transcript)`` once under instrumentation and record."""
    transcript = Transcript()
    with instrument.measure() as ops:
        run(transcript)
    counts = ops.as_dict()
    experiment.row(
        protocol=protocol,
        rsa_ops=counts.get("rsa.private_op", 0) + counts.get("rsa.public_op", 0),
        rsa_private=counts.get("rsa.private_op", 0),
        modexp=counts.get("modexp", 0),
        modexp_warm=counts.get("modexp.fixed_base", 0),
        modexp_multi=counts.get("modexp.multi", 0),
        messages=transcript.message_count,
        bytes=transcript.total_bytes,
    )


class TestP2drmProtocolCosts:
    def test_certification(self, benchmark, bench_deployment, experiment):
        user = _new_user(bench_deployment)
        _measured(
            experiment,
            "certify-pseudonym",
            lambda tr: certify_pseudonym(user, bench_deployment.issuer, transcript=tr),
        )
        benchmark.pedantic(
            lambda: certify_pseudonym(user, bench_deployment.issuer),
            rounds=5,
            iterations=1,
        )

    def test_withdrawal(self, benchmark, bench_deployment, experiment):
        user = _new_user(bench_deployment)
        _measured(
            experiment,
            "withdraw-3-coins",
            lambda tr: withdraw_coins(user, bench_deployment.bank, 3, transcript=tr),
        )
        benchmark.pedantic(
            lambda: withdraw_coins(user, bench_deployment.bank, 3),
            rounds=5,
            iterations=1,
        )

    def test_purchase(self, benchmark, bench_deployment, experiment):
        d = bench_deployment
        user = _new_user(d)
        _measured(
            experiment,
            "purchase (p2drm)",
            lambda tr: purchase_content(
                user, d.provider, d.issuer, d.bank, "bench-song", transcript=tr
            ),
        )
        benchmark.pedantic(
            lambda: purchase_content(user, d.provider, d.issuer, d.bank, "bench-song"),
            rounds=5,
            iterations=1,
        )

    def test_access(self, benchmark, bench_deployment, experiment):
        d = bench_deployment
        user = _new_user(d)
        device = d.add_device()
        purchase_content(user, d.provider, d.issuer, d.bank, "bench-song")
        _measured(
            experiment,
            "access (local render)",
            lambda tr: render_content(user, device, d.provider, "bench-song", transcript=tr),
        )
        benchmark.pedantic(
            lambda: render_content(user, device, d.provider, "bench-song"),
            rounds=5,
            iterations=1,
        )

    def test_transfer(self, benchmark, bench_deployment, experiment):
        d = bench_deployment
        sender = _new_user(d)
        receiver = _new_user(d)
        license_ = purchase_content(sender, d.provider, d.issuer, d.bank, "bench-song")
        _measured(
            experiment,
            "transfer (exchange+redeem)",
            lambda tr: transfer_license(
                sender, receiver, d.provider, d.issuer, license_.license_id, transcript=tr
            ),
        )

        def full_transfer():
            new_license = purchase_content(
                sender, d.provider, d.issuer, d.bank, "bench-song"
            )
            return transfer_license(
                sender, receiver, d.provider, d.issuer, new_license.license_id
            )

        benchmark.pedantic(full_transfer, rounds=3, iterations=1)


class TestBaselineProtocolCosts:
    @pytest.fixture(scope="class")
    def baseline(self, bench_deployment):
        provider = BaselineProvider(
            rng=bench_deployment.rng.fork("e1-baseline"),
            clock=bench_deployment.clock,
            bank=bench_deployment.bank,
            license_key_bits=1024,
            name="e1-baseline-provider",
        )
        provider.publish("bench-song", b"BENCH" * 64, title="B", price=3)
        users = []
        for index in range(2):
            card = SmartCard(
                f"e1-bl-{index}".encode().ljust(16, b"_"),
                bench_deployment.group,
                rng=bench_deployment.rng.fork(f"e1-bl-card-{index}"),
                authority_key=bench_deployment.authority.public_key,
            )
            user = BaselineUser(f"e1-bl-user-{index}", card)
            provider.register_user(user)
            bench_deployment.bank.open_account(user.bank_account, initial_balance=10_000)
            users.append(user)
        return provider, users, bench_deployment.clock

    def test_baseline_purchase(self, benchmark, baseline, experiment):
        provider, users, clock = baseline
        with instrument.measure() as ops:
            baseline_purchase(users[0], provider, "bench-song", clock=clock)
        counts = ops.as_dict()
        experiment.row(
            protocol="purchase (baseline)",
            rsa_ops=counts.get("rsa.private_op", 0) + counts.get("rsa.public_op", 0),
            rsa_private=counts.get("rsa.private_op", 0),
            modexp=counts.get("modexp", 0),
            messages=2,
            bytes=None,
        )
        benchmark.pedantic(
            lambda: baseline_purchase(users[0], provider, "bench-song", clock=clock),
            rounds=5,
            iterations=1,
        )

    def test_baseline_transfer(self, benchmark, baseline, experiment):
        provider, users, clock = baseline
        license_ = baseline_purchase(users[0], provider, "bench-song", clock=clock)
        with instrument.measure() as ops:
            baseline_transfer(users[0], users[1], provider, license_.license_id, clock=clock)
        counts = ops.as_dict()
        experiment.row(
            protocol="transfer (baseline)",
            rsa_ops=counts.get("rsa.private_op", 0) + counts.get("rsa.public_op", 0),
            rsa_private=counts.get("rsa.private_op", 0),
            modexp=counts.get("modexp", 0),
            messages=2,
            bytes=None,
        )

        def full_transfer():
            license_ = baseline_purchase(users[0], provider, "bench-song", clock=clock)
            baseline_transfer(users[0], users[1], provider, license_.license_id, clock=clock)

        benchmark.pedantic(full_transfer, rounds=3, iterations=1)
