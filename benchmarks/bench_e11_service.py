"""E11 — service-layer throughput: the sharded worker pool under load.

Measures sustained provider-side throughput (sales + redemptions)
through the :mod:`repro.service` gateway at 1/2/4/8 workers, against
the in-process desk as the zero-IPC reference.  The workload is
prepared once (user-side certification, payment and signing are off
the clock) and replayed against a fresh shard set per arm, so every
arm validates and personalizes the *same* request bytes.

Deterministic issuance makes the arms cross-check themselves: every
worker count — and the in-process desk — must produce byte-identical
licences for the same requests, and the ``byte_identical`` column
records that the run actually verified it.

Scaling expectation: verification is pure CPU, so throughput scales
with *cores actually available* (the ``cores`` column); a 1-core
runner shows queueing overhead instead of speedup, which is the
honest number for that machine.  Smoke mode trims the sweep to 1/2
workers and small keys; the nightly run sweeps the full 1/2/4/8 at
real key sizes.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro import codec
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.protocols.transfer import build_exchange_request, build_redeem_request
from repro.core.system import build_deployment
from repro.crypto.backend import backend_name
from repro.service.gateway import build_gateway

BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

WORKER_SWEEP = (1, 2) if BENCH_SMOKE else (1, 2, 4, 8)
#: Requests per family and arm: every arm sells N and redeems N.
N_REQUESTS = 16 if BENCH_SMOKE else 96
RSA_BITS = 512 if BENCH_SMOKE else 1024


class TestServiceThroughput:
    def test_worker_sweep(self, experiment):
        deployment = build_deployment(seed="bench-e11", rsa_bits=RSA_BITS)
        deployment.provider.publish(
            "bench-song", b"BENCH-PAYLOAD" * 256, title="Bench Song", price=3
        )
        deployment.provider.deterministic_issuance = True
        senders = [
            deployment.add_user(f"e11-sender-{i}", balance=1_000_000)
            for i in range(4)
        ]
        receiver = deployment.add_user("e11-receiver", balance=1_000_000)

        purchase_requests = [
            build_purchase_request(
                senders[i % len(senders)],
                deployment.provider,
                deployment.issuer,
                deployment.bank,
                "bench-song",
            )
            for i in range(N_REQUESTS)
        ]

        # -- in-process reference arm (also births the redeem queue) ----
        start = time.perf_counter()
        local_licenses = deployment.provider.sell_batch(purchase_requests)
        sell_seconds = time.perf_counter() - start
        assert not any(isinstance(r, Exception) for r in local_licenses)
        exchange_requests = [
            build_exchange_request(senders[i % len(senders)], license_)
            for i, license_ in enumerate(local_licenses)
        ]
        anonymous = [
            deployment.provider.exchange(request) for request in exchange_requests
        ]
        redeem_requests = [
            build_redeem_request(
                receiver, deployment.provider, deployment.issuer, anon
            )
            for anon in anonymous
        ]
        start = time.perf_counter()
        local_redeemed = deployment.provider.redeem_batch(redeem_requests)
        redeem_seconds = time.perf_counter() - start
        assert not any(isinstance(r, Exception) for r in local_redeemed)
        reference = {
            "licenses": [codec.encode(r.as_dict()) for r in local_licenses],
            "anonymous": [codec.encode(a.as_dict()) for a in anonymous],
            "redeemed": [codec.encode(r.as_dict()) for r in local_redeemed],
        }
        experiment.row(
            case="in-process",
            workers=0,
            shards=0,
            cores=os.cpu_count(),
            backend=backend_name(),
            sells_per_s=N_REQUESTS / sell_seconds,
            redemptions_per_s=N_REQUESTS / redeem_seconds,
            ops_per_s=2 * N_REQUESTS / (sell_seconds + redeem_seconds),
        )

        # -- gateway arms -----------------------------------------------
        baseline_ops_per_s = None
        for workers in WORKER_SWEEP:
            directory = tempfile.mkdtemp(prefix=f"p2drm-e11-w{workers}-")
            gateway = build_gateway(
                deployment, directory, workers=workers, shards=workers
            )
            try:
                start = time.perf_counter()
                sold = gateway.sell_batch(purchase_requests)
                sell_seconds = time.perf_counter() - start
                assert not any(isinstance(r, Exception) for r in sold)
                exchanged = gateway.call_many(exchange_requests)
                assert not any(isinstance(r, Exception) for r in exchanged)
                start = time.perf_counter()
                redeemed = gateway.redeem_batch(redeem_requests)
                redeem_seconds = time.perf_counter() - start
                assert not any(isinstance(r, Exception) for r in redeemed)
            finally:
                gateway.close()
                shutil.rmtree(directory, ignore_errors=True)

            byte_identical = (
                [codec.encode(r.as_dict()) for r in sold] == reference["licenses"]
                and [codec.encode(a.as_dict()) for a in exchanged]
                == reference["anonymous"]
                and [codec.encode(r.as_dict()) for r in redeemed]
                == reference["redeemed"]
            )
            assert byte_identical, (
                f"{workers}-worker gateway output diverged from in-process desk"
            )
            ops_per_s = 2 * N_REQUESTS / (sell_seconds + redeem_seconds)
            if baseline_ops_per_s is None:
                baseline_ops_per_s = ops_per_s
            experiment.row(
                case=f"workers-{workers}",
                workers=workers,
                shards=workers,
                cores=os.cpu_count(),
                backend=backend_name(),
                sells_per_s=N_REQUESTS / sell_seconds,
                redemptions_per_s=N_REQUESTS / redeem_seconds,
                ops_per_s=ops_per_s,
                speedup_vs_1=ops_per_s / baseline_ops_per_s,
                byte_identical=byte_identical,
            )
