"""E13 — network transport: the socket gateway under concurrent clients.

Sweeps **client concurrency × worker count** over localhost TCP
sockets (the asyncio :class:`~repro.service.netserver.NetServer` in
front of the shared worker pool) against the in-process queue
transport as the zero-socket baseline, plus the bare in-process desk
as the zero-IPC reference.  The workload is prepared once (user-side
certification, payment and signing are off the clock) and replayed
against a fresh shard set per arm, so every arm validates and
personalizes the *same* request bytes.

Deterministic issuance makes the arms cross-check themselves: every
transport, worker count and client interleaving must produce
byte-identical licences for the same requests — the acceptance check
for the transport refactor — and the ``byte_identical`` column
records that the run actually verified it.

Reading the numbers: the delta between a ``queue-w{N}`` row and its
``net-w{N}-c{C}`` rows is the price of framing + TCP + the event
loop; rising ``clients`` at fixed workers shows how far pipelined
connections hide that latency.  Timings are advisory in the
regression lane (runner-dependent); the rows' presence is enforced.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

from repro import codec
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.protocols.transfer import build_exchange_request, build_redeem_request
from repro.core.system import build_deployment
from repro.crypto.backend import backend_name
from repro.service.gateway import build_gateway
from repro.service.netserver import NetClient, NetServer

BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

WORKER_SWEEP = (1, 2) if BENCH_SMOKE else (1, 2, 4)
CLIENT_SWEEP = (1, 4) if BENCH_SMOKE else (1, 4, 16)
#: Requests per family and arm: every arm sells N and redeems N.
N_REQUESTS = 12 if BENCH_SMOKE else 96
RSA_BITS = 512 if BENCH_SMOKE else 1024


def _run_partitioned(clients: list[NetClient], requests: list) -> tuple[list, float]:
    """Fan ``requests`` round-robin over the clients, one thread per
    connection (each pipelines its whole slice); returns results in
    request order plus the wall-clock of the slowest thread."""
    results: list = [None] * len(requests)
    slices: list[tuple[NetClient, list[int]]] = [
        (client, list(range(index, len(requests), len(clients))))
        for index, client in enumerate(clients)
    ]

    def drive(client: NetClient, indices: list[int]) -> None:
        answered = client.call_many([requests[i] for i in indices])
        for position, result in zip(indices, answered):
            results[position] = result

    threads = [
        threading.Thread(target=drive, args=(client, indices))
        for client, indices in slices
        if indices
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, time.perf_counter() - start


class TestNetworkTransport:
    def test_concurrency_sweep(self, experiment):
        deployment = build_deployment(seed="bench-e13", rsa_bits=RSA_BITS)
        deployment.provider.publish(
            "bench-song", b"BENCH-PAYLOAD" * 256, title="Bench Song", price=3
        )
        deployment.provider.deterministic_issuance = True
        senders = [
            deployment.add_user(f"e13-sender-{i}", balance=1_000_000)
            for i in range(4)
        ]
        receiver = deployment.add_user("e13-receiver", balance=1_000_000)

        purchase_requests = [
            build_purchase_request(
                senders[i % len(senders)],
                deployment.provider,
                deployment.issuer,
                deployment.bank,
                "bench-song",
            )
            for i in range(N_REQUESTS)
        ]

        # -- in-process desk: zero-IPC reference + the identity oracle --
        start = time.perf_counter()
        local_licenses = deployment.provider.sell_batch(purchase_requests)
        sell_seconds = time.perf_counter() - start
        assert not any(isinstance(r, Exception) for r in local_licenses)
        exchange_requests = [
            build_exchange_request(senders[i % len(senders)], license_)
            for i, license_ in enumerate(local_licenses)
        ]
        anonymous = [
            deployment.provider.exchange(request) for request in exchange_requests
        ]
        redeem_requests = [
            build_redeem_request(
                receiver, deployment.provider, deployment.issuer, anon
            )
            for anon in anonymous
        ]
        start = time.perf_counter()
        local_redeemed = deployment.provider.redeem_batch(redeem_requests)
        redeem_seconds = time.perf_counter() - start
        assert not any(isinstance(r, Exception) for r in local_redeemed)
        reference = {
            "licenses": [codec.encode(r.as_dict()) for r in local_licenses],
            "anonymous": [codec.encode(a.as_dict()) for a in anonymous],
            "redeemed": [codec.encode(r.as_dict()) for r in local_redeemed],
        }
        experiment.row(
            case="in-process",
            transport="none",
            workers=0,
            clients=0,
            cores=os.cpu_count(),
            backend=backend_name(),
            sells_per_s=N_REQUESTS / sell_seconds,
            redemptions_per_s=N_REQUESTS / redeem_seconds,
            ops_per_s=2 * N_REQUESTS / (sell_seconds + redeem_seconds),
        )

        for workers in WORKER_SWEEP:
            # -- queue-transport arm: same pool, no sockets -------------
            directory = tempfile.mkdtemp(prefix=f"p2drm-e13-q{workers}-")
            gateway = build_gateway(
                deployment, directory, workers=workers, shards=workers
            )
            try:
                start = time.perf_counter()
                sold = gateway.sell_batch(purchase_requests)
                sell_seconds = time.perf_counter() - start
                exchanged = gateway.call_many(exchange_requests)
                start = time.perf_counter()
                redeemed = gateway.redeem_batch(redeem_requests)
                redeem_seconds = time.perf_counter() - start
            finally:
                gateway.close()
                shutil.rmtree(directory, ignore_errors=True)
            byte_identical = self._identical(
                reference, sold, exchanged, redeemed
            )
            assert byte_identical, (
                f"queue transport at {workers} workers diverged from the desk"
            )
            queue_ops_per_s = 2 * N_REQUESTS / (sell_seconds + redeem_seconds)
            experiment.row(
                case=f"queue-w{workers}",
                transport="queue",
                workers=workers,
                clients=0,
                cores=os.cpu_count(),
                backend=backend_name(),
                sells_per_s=N_REQUESTS / sell_seconds,
                redemptions_per_s=N_REQUESTS / redeem_seconds,
                ops_per_s=queue_ops_per_s,
                byte_identical=byte_identical,
            )

            # -- socket arms: client concurrency sweep ------------------
            for client_count in CLIENT_SWEEP:
                directory = tempfile.mkdtemp(
                    prefix=f"p2drm-e13-n{workers}c{client_count}-"
                )
                gateway = build_gateway(
                    deployment, directory, workers=workers, shards=workers
                )
                server = NetServer(gateway)
                clients: list[NetClient] = []
                try:
                    address = server.start()
                    clients = [
                        NetClient(address) for _ in range(client_count)
                    ]
                    sold, sell_seconds = _run_partitioned(
                        clients, purchase_requests
                    )
                    exchanged = clients[0].call_many(exchange_requests)
                    redeemed, redeem_seconds = _run_partitioned(
                        clients, redeem_requests
                    )
                finally:
                    for client in clients:
                        client.close()
                    server.close()
                    gateway.close()
                    shutil.rmtree(directory, ignore_errors=True)
                byte_identical = self._identical(
                    reference, sold, exchanged, redeemed
                )
                assert byte_identical, (
                    f"socket transport (workers={workers},"
                    f" clients={client_count}) diverged from the desk"
                )
                ops_per_s = 2 * N_REQUESTS / (sell_seconds + redeem_seconds)
                experiment.row(
                    case=f"net-w{workers}-c{client_count}",
                    transport="tcp",
                    workers=workers,
                    clients=client_count,
                    cores=os.cpu_count(),
                    backend=backend_name(),
                    sells_per_s=N_REQUESTS / sell_seconds,
                    redemptions_per_s=N_REQUESTS / redeem_seconds,
                    ops_per_s=ops_per_s,
                    net_vs_queue=ops_per_s / queue_ops_per_s,
                    byte_identical=byte_identical,
                )

    @staticmethod
    def _identical(reference, sold, exchanged, redeemed) -> bool:
        if any(isinstance(r, Exception) for r in sold + exchanged + redeemed):
            return False
        return (
            [codec.encode(r.as_dict()) for r in sold] == reference["licenses"]
            and [codec.encode(a.as_dict()) for a in exchanged]
            == reference["anonymous"]
            and [codec.encode(r.as_dict()) for r in redeemed]
            == reference["redeemed"]
        )
