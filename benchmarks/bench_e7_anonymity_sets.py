"""E7 "Figure 5" — anonymity-set size vs traffic density and pre-fetch.

The paper concedes that cryptographic unlinkability leaves traffic
analysis open.  This experiment quantifies the residue: a colluding
issuer+provider joins certification times against transaction times;
the defender's knobs are traffic density (busier shop → bigger crowd)
and certificate pre-fetching (decoupling certification from use).

Expected shape:
- without pre-fetch, the attacker's top-1 guess is essentially always
  right (certification happens at transaction time);
- with pre-fetch cover traffic, mean anonymity-set size grows with
  traffic density and attacker success collapses toward 1/set-size.
"""

from __future__ import annotations

import pytest

from repro.analysis import TimingAttacker
from repro.sim import MarketplaceSimulator, WorkloadConfig

WINDOW = 600
CONFIGS = [
    # (label, mean_interarrival, prefetch_rate)
    ("sparse/no-prefetch", 300, 0.0),
    ("dense/no-prefetch", 30, 0.0),
    ("sparse/prefetch", 300, 2.0),
    ("dense/prefetch", 30, 2.0),
]


@pytest.mark.parametrize("label,interarrival,prefetch", CONFIGS)
class TestAnonymitySets:
    def test_config(self, benchmark, experiment, label, interarrival, prefetch):
        def run():
            simulator = MarketplaceSimulator(
                WorkloadConfig(
                    n_users=10,
                    n_contents=8,
                    n_events=50,
                    mean_interarrival=interarrival,
                    prefetch_rate=prefetch,
                    seed=170,
                ),
                mode="p2drm",
                rsa_bits=512,
            )
            report = simulator.run()
            outcome = TimingAttacker(window_seconds=WINDOW).attack_deployment(
                simulator.deployment.issuer, simulator.provider, report.ground_truth
            )
            return outcome

        outcome = benchmark.pedantic(run, rounds=1, iterations=1)
        experiment.row(
            config=label,
            window_s=WINDOW,
            transactions=len(outcome.truths),
            mean_anonymity_set=outcome.mean_anonymity_set,
            attacker_success=outcome.success_rate,
        )
        if prefetch == 0.0:
            # Certification-at-use: the attacker links ~everything.
            assert outcome.success_rate > 0.9
        else:
            assert outcome.success_rate < 0.9
