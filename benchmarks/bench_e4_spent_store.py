"""E4 "Figure 3" — spent-token store scaling.

The exactly-once redemption check sits on every redemption and every
coin deposit; the paper's design silently assumes it stays cheap as
the store grows.  This bench sweeps store population from 10^2 to 10^5
(in-memory and on-disk sqlite) and times the check-and-insert path.

Expected shape: near-flat lookup/insert cost across three decades of
store size (B-tree index), with the file engine a constant factor
above the in-memory engine.
"""

from __future__ import annotations

import itertools

import pytest

from repro.storage.engine import Database
from repro.storage.spent_tokens import SpentTokenStore

SIZES = [100, 1_000, 10_000, 100_000]
_counter = itertools.count()


def _filled_store(db: Database, size: int) -> SpentTokenStore:
    store = SpentTokenStore(db, "bench")
    with db.transaction():
        for i in range(size):
            store.try_spend(b"tok-%012d" % i, at=i)
    return store


@pytest.mark.parametrize("size", SIZES)
class TestSpentStoreScaling:
    def test_memory_engine(self, benchmark, experiment, size):
        store = _filled_store(Database(), size)
        fresh = itertools.count(size)

        def spend_and_check():
            index = next(fresh)
            assert store.try_spend(b"new-%012d" % index, at=index) is None
            assert store.is_spent(b"tok-%012d" % (index % size))

        benchmark(spend_and_check)
        experiment.row(
            engine="memory",
            store_size=size,
            op_us=benchmark.stats["mean"] * 1e6,
        )

    def test_file_engine(self, benchmark, experiment, size, tmp_path):
        db = Database(str(tmp_path / f"spent-{size}-{next(_counter)}.db"))
        store = _filled_store(db, size)
        fresh = itertools.count(size)

        def spend_and_check():
            index = next(fresh)
            assert store.try_spend(b"new-%012d" % index, at=index) is None
            assert store.is_spent(b"tok-%012d" % (index % size))

        benchmark(spend_and_check)
        experiment.row(
            engine="file",
            store_size=size,
            op_us=benchmark.stats["mean"] * 1e6,
        )
