"""E8 "Table 3" — end-to-end linkage: who can identify whom.

Three adversaries against the same workload:

1. the **baseline operator**, reading its own records — linkage is
   total by construction (licences name accounts);
2. the **P2DRM provider alone** — structurally limited to one-time
   pseudonyms (profiles shatter to singletons, no user names);
3. the **P2DRM provider colluding with the issuer** via the timing
   join — success depends on the pre-fetch defence.

Expected shape: 100% / 0% / (high without pre-fetch → low with).
"""

from __future__ import annotations

import pytest

from repro.analysis import TimingAttacker
from repro.baseline.tracking import ProfileBuilder
from repro.sim import MarketplaceSimulator, WorkloadConfig


def _config(prefetch: float = 0.0) -> WorkloadConfig:
    return WorkloadConfig(
        n_users=8,
        n_contents=6,
        n_events=40,
        mean_interarrival=60,
        prefetch_rate=prefetch,
        seed=180,
    )


class TestLinkageTable:
    def test_baseline_operator(self, benchmark, experiment):
        def run():
            simulator = MarketplaceSimulator(_config(), mode="baseline", rsa_bits=512)
            simulator.run()
            return ProfileBuilder(simulator.provider).build()

        report = benchmark.pedantic(run, rounds=1, iterations=1)
        # Every issued licence is attributed to a named account.
        experiment.row(
            adversary="baseline operator (own records)",
            identified_users=report.profile_count,
            max_profile=report.max_profile_size,
            named_transfer_edges=report.named_edges,
            linkage_rate=1.0 if report.identified else 0.0,
        )
        assert report.identified

    def test_p2drm_provider_alone(self, benchmark, experiment):
        def run():
            simulator = MarketplaceSimulator(_config(), mode="p2drm", rsa_bits=512)
            simulator.run()
            return ProfileBuilder(simulator.provider).build()

        report = benchmark.pedantic(run, rounds=1, iterations=1)
        experiment.row(
            adversary="p2drm provider (own records)",
            identified_users=0,
            max_profile=report.max_profile_size,
            named_transfer_edges=report.named_edges,
            linkage_rate=0.0,
        )
        assert not report.identified
        assert report.max_profile_size == 1

    @pytest.mark.parametrize("prefetch,label", [(0.0, "no-prefetch"), (2.0, "prefetch")])
    def test_collusion_with_timing(self, benchmark, experiment, prefetch, label):
        def run():
            simulator = MarketplaceSimulator(
                _config(prefetch), mode="p2drm", rsa_bits=512
            )
            report = simulator.run()
            return TimingAttacker(window_seconds=600).attack_deployment(
                simulator.deployment.issuer, simulator.provider, report.ground_truth
            )

        outcome = benchmark.pedantic(run, rounds=1, iterations=1)
        experiment.row(
            adversary=f"issuer+provider timing join ({label})",
            identified_users=None,
            max_profile=None,
            named_transfer_edges=None,
            linkage_rate=outcome.success_rate,
        )
        if prefetch == 0.0:
            assert outcome.success_rate > 0.9
        else:
            assert outcome.success_rate < 0.9
