"""E17 — exactly-once money over a flaky network.

The robustness acceptance run: a fleet of reconnecting clients pushes
deposits through a deterministic fault-injection proxy
(:class:`~repro.service.faults.ChaosListener` — resets, mid-frame
truncations, blackholes, duplicates, delays on a seeded schedule) and
every receipt must still be **byte-identical** to a clean same-seeded
queue-transport reference, with zero lost and zero double-applied
credits certified two ways: per-account balances, and the offline
``tools/ledger_audit.py`` scan (which now also cross-checks every
surviving replay-cache record against the ledger).

Second arm: the post-commit kill.  A deposit lands, the whole service
is torn down (the client "never learned" whether its receipt was
real), the pool restarts over the same shard files, and the retry —
same coins, same idempotency nonce — must be answered with the
**original receipt** by the durable replay cache, not the false
``DoubleSpendError`` a cache-less server would produce.

Wall-clock figures are advisory; the asserted signal is identity and
conservation.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import threading
import time

from repro import codec
from repro.core.protocols.payment import withdraw_coins
from repro.core.system import build_deployment
from repro.crypto.backend import backend_name
from repro.service.faults import ChaosListener, FaultPlan, FaultSpec
from repro.service.gateway import build_gateway
from repro.service.netserver import NetServer
from repro.service.retry import ReconnectingNetClient, RetryPolicy

BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

RSA_BITS = 512 if BENCH_SMOKE else 1024
N_CLIENTS = 6 if BENCH_SMOKE else 48
DEPOSITS_PER_CLIENT = 2 if BENCH_SMOKE else 4
PAYMENT_AMOUNT = 26  # decomposes to [20, 5, 1]: every deposit is multi-coin
SEED = "bench-e17"
FAULT_SEED = 7

#: The network under test: roughly one frame in seven is harmed.
FAULTS = FaultSpec(
    reset_rate=0.03,
    truncate_rate=0.02,
    drop_rate=0.03,
    duplicate_rate=0.03,
    delay_rate=0.05,
    delay_s=0.001,
)

_AUDIT_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "ledger_audit.py",
)


def _deployment():
    return build_deployment(seed=SEED, rsa_bits=RSA_BITS)


def _policy(index: int) -> RetryPolicy:
    return RetryPolicy(
        deadline_s=60.0,
        attempt_timeout_s=0.5,
        max_attempts=30,
        rng=random.Random(index),
    )


def _withdrawals(deployment):
    """Every client's coins, withdrawn same-seeded and in one fixed
    order so both arms see byte-identical wallets."""
    plan = []
    for index in range(N_CLIENTS):
        user = deployment.add_user(f"e17-payer-{index:02d}", balance=1_000)
        coins = [
            withdraw_coins(user, deployment.bank, PAYMENT_AMOUNT)
            for _ in range(DEPOSITS_PER_CLIENT)
        ]
        plan.append((f"e17-merchant-{index:02d}", coins))
    return plan


def _run_audit(directory: str) -> dict:
    completed = subprocess.run(
        [sys.executable, _AUDIT_TOOL, directory, "--json"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    report = json.loads(completed.stdout)
    report["exit_code"] = completed.returncode
    return report


class TestFlaky:
    def test_fleet_through_chaos_is_exactly_once(self, experiment):
        # -- clean queue-transport reference ----------------------------
        reference = _deployment()
        directory = tempfile.mkdtemp(prefix="p2drm-e17-ref-")
        gateway = build_gateway(reference, directory, workers=2, shards=4)
        ref_receipts: dict[str, list[bytes]] = {}
        try:
            for account, wallets in _withdrawals(reference):
                ref_receipts[account] = [
                    codec.encode(gateway.deposit(account, coins))
                    for coins in wallets
                ]
        finally:
            gateway.close()
            shutil.rmtree(directory, ignore_errors=True)

        # -- the fleet, through the chaos proxy --------------------------
        flaky = _deployment()
        directory = tempfile.mkdtemp(prefix="p2drm-e17-chaos-")
        gateway = build_gateway(flaky, directory, workers=2, shards=4)
        plan = FaultPlan(FAULTS, seed=FAULT_SEED)
        receipts: dict[str, list[bytes]] = {}
        failures: list[str] = []
        reconnects = retries = 0
        try:
            with NetServer(gateway) as server:
                with ChaosListener(server.address, plan) as proxy:
                    lock = threading.Lock()

                    def run_client(index, account, wallets):
                        nonlocal reconnects, retries
                        client = ReconnectingNetClient(
                            proxy.address,
                            policy=_policy(index),
                            timeout=10.0,
                        )
                        mine = []
                        try:
                            for coins in wallets:
                                try:
                                    receipt = client.deposit(account, coins)
                                except Exception as exc:  # noqa: BLE001
                                    with lock:
                                        failures.append(
                                            f"{account}: {type(exc).__name__}:"
                                            f" {exc}"
                                        )
                                    continue
                                mine.append(codec.encode(receipt))
                        finally:
                            local = client.local_metrics
                            with lock:
                                receipts[account] = mine
                                reconnects += local.get(
                                    "p2drm_reconnects_total"
                                ).value()
                                retries += sum(
                                    count
                                    for _labels, count in local.get(
                                        "p2drm_retries_total"
                                    ).samples()
                                )
                            client.close()

                    start = time.perf_counter()
                    threads = [
                        threading.Thread(
                            target=run_client, args=(i, account, wallets)
                        )
                        for i, (account, wallets) in enumerate(
                            _withdrawals(flaky)
                        )
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join(timeout=300)
                    elapsed = time.perf_counter() - start
                    connections = proxy.connections_accepted
            replay_hits = gateway.metrics.get("p2drm_replay_hits_total").value()

            assert failures == [], failures
            # Byte identity: every receipt equals the queue reference's.
            for account, expected in ref_receipts.items():
                assert receipts[account] == expected, account
            # Zero lost, zero double-applied: the durable balances say
            # exactly one credit per receipt.
            for account in ref_receipts:
                assert gateway.balance(account) == (
                    DEPOSITS_PER_CLIENT * PAYMENT_AMOUNT
                ), account
        finally:
            gateway.close()

        # The offline auditor must agree from the shard files alone —
        # including the replay-cache consistency scan.
        try:
            report = _run_audit(directory)
            assert report["exit_code"] == 0, report
            assert report["problems"] == [], report["problems"]
            assert report["stats"]["total_balance"] == (
                N_CLIENTS * DEPOSITS_PER_CLIENT * PAYMENT_AMOUNT
            )
            replay_records = report["stats"]["replay_records"]
        finally:
            shutil.rmtree(directory, ignore_errors=True)

        total = N_CLIENTS * DEPOSITS_PER_CLIENT
        experiment.row(
            case="fleet-chaos",
            transport="tcp-chaos",
            clients=N_CLIENTS,
            deposits=total,
            deposits_per_s=total / elapsed,
            connections=connections,
            reconnects=reconnects,
            retries=retries,
            replay_hits_front_door=replay_hits,
            replay_records=replay_records,
            lost_credits=0,
            double_credits=0,
            audit_problems=0,
            byte_identical=True,
            backend=backend_name(),
        )

    def test_post_commit_kill_serves_original_receipt(self, experiment):
        deployment = _deployment()
        directory = tempfile.mkdtemp(prefix="p2drm-e17-kill-")
        user = deployment.add_user("e17-kill-payer", balance=1_000)
        coins = withdraw_coins(user, deployment.bank, PAYMENT_AMOUNT)
        nonce = b"E17-KILL-NONCE-0"  # 16 bytes, fixed across both lives
        account = "e17-kill-merchant"
        try:
            gateway = build_gateway(deployment, directory, workers=2, shards=4)
            try:
                with NetServer(gateway) as server:
                    client = ReconnectingNetClient(
                        server.address,
                        policy=_policy(0),
                        nonces=lambda: nonce,
                    )
                    try:
                        first = client.deposit(account, coins)
                    finally:
                        client.close()
                assert first == {
                    "account": account,
                    "credited": PAYMENT_AMOUNT,
                }
            finally:
                gateway.close()  # the kill: deposit is past its commit point

            # Restart over the same shard files; retry the same payment
            # with the same idempotency nonce.
            gateway = build_gateway(deployment, directory, workers=2, shards=4)
            try:
                with NetServer(gateway) as server:
                    client = ReconnectingNetClient(
                        server.address,
                        policy=_policy(0),
                        nonces=lambda: nonce,
                    )
                    try:
                        retried = client.deposit(account, coins)
                    finally:
                        client.close()
                # The original receipt — NOT DoubleSpendError.
                assert retried == first
                assert gateway.balance(account) == PAYMENT_AMOUNT
                replay_hits = gateway.metrics.get(
                    "p2drm_replay_hits_total"
                ).value()
                assert replay_hits >= 1
            finally:
                gateway.close()

            report = _run_audit(directory)
            assert report["exit_code"] == 0, report
            assert report["problems"] == [], report["problems"]
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        experiment.row(
            case="post-commit-kill-retry",
            transport="tcp",
            payments=1,
            replay_hits_front_door=replay_hits,
            credited_once=True,
            original_receipt_served=True,
            audit_problems=0,
            backend=backend_name(),
        )
