"""E14 — overload: open-loop arrivals past capacity, shed-rate and
tail latency.

Closed-loop drivers (E11/E13) can never overload the pool — each
client waits for its answer before sending the next request — so this
experiment switches to **open-loop** arrivals: requests are released
on a fixed schedule (``offered_per_s``) whether or not earlier ones
have finished, the way real traffic behaves.  The schedule sweeps
from half the measured capacity to twice it, against a one-worker
gateway whose admission ceiling is deliberately small, and reports
what the runbook cares about: achieved throughput, shed rate, and
p50/p99/p999 latency read from the pool's own
``p2drm_request_latency_seconds`` histogram (the same numbers a
Prometheus scrape would show).

Two invariants are *asserted*, not just reported:

- past capacity the service sheds **loudly and typed** — every refusal
  is an :class:`~repro.errors.OverloadedError` (synchronous on the
  queue transport, a wire error envelope over TCP), never a hang or a
  silent drop;
- shedding is **side-effect-free and exactly-once** — after the open
  loop, every shed request is retried to completion and every licence
  (first-try or retried) is byte-identical to the in-process desk's
  deterministic-issuance reference.  A shed that half-applied would
  surface here as a double-spend or a diverging licence.

Timings are advisory in the regression lane (runner-dependent); the
rows' presence is enforced.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro import codec
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.system import build_deployment
from repro.crypto.backend import backend_name
from repro.errors import OverloadedError
from repro.service.gateway import build_gateway
from repro.service.netserver import NetClient, NetServer

BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

N_REQUESTS = 16 if BENCH_SMOKE else 64
RSA_BITS = 512 if BENCH_SMOKE else 1024
#: Pool/server admission ceiling for the open-loop arms: small enough
#: that a 2x-capacity schedule must shed, big enough to ride out the
#: arrival jitter of a half-capacity schedule.
CEILING = 4
RATE_MULTIPLIERS = (0.5, 2.0)


def _quantiles_ms(registry) -> dict:
    hist = registry.get("p2drm_request_latency_seconds")
    out = {}
    for label, q in (("p50_ms", 0.5), ("p99_ms", 0.99), ("p999_ms", 0.999)):
        value = hist.quantile(q, op="sell")
        out[label] = None if value is None else value * 1000.0
    return out


def _open_loop_queue(gateway, requests, rate):
    """Release ``requests`` at ``rate``/s against the gateway; returns
    ``(results_by_index, shed_indices, elapsed)``.  Submits never
    block on earlier answers — that is the open loop."""
    tickets: dict[int, int] = {}
    shed: list[int] = []
    start = time.perf_counter()
    for index, request in enumerate(requests):
        target = start + index / rate
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            tickets[index] = gateway.submit(request)
        except OverloadedError:
            shed.append(index)
    answered = gateway.gather(list(tickets.values()))
    elapsed = time.perf_counter() - start
    results = dict(zip(tickets.keys(), answered))
    return results, shed, elapsed


def _open_loop_tcp(client, requests, rate):
    """The same schedule over one pipelined socket: submits only write
    frames, so arrivals keep their times; sheds come back as typed
    error envelopes in the gathered results."""
    tickets: list[int] = []
    start = time.perf_counter()
    for index, request in enumerate(requests):
        target = start + index / rate
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        tickets.append(client.submit(request))
    answered = client.gather(tickets)
    elapsed = time.perf_counter() - start
    results, shed = {}, []
    for index, result in enumerate(answered):
        if isinstance(result, OverloadedError):
            shed.append(index)
        else:
            results[index] = result
    return results, shed, elapsed


def _drain(submit_one, requests, shed: list[int], results: dict) -> None:
    """Retry every shed request until admitted (closed loop now —
    draining, not offering).  Exactly-once means each retry succeeds;
    a shed with side effects would reject its own retry here."""
    for index in shed:
        deadline = time.monotonic() + 60
        while True:
            try:
                results[index] = submit_one(requests[index])
                break
            except OverloadedError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.005)


def _assert_byte_identical(results: dict, reference: list[bytes], label: str):
    assert len(results) == len(reference), f"{label}: lost requests"
    for index, result in results.items():
        assert not isinstance(result, Exception), f"{label}[{index}]: {result!r}"
        assert codec.encode(result.as_dict()) == reference[index], (
            f"{label}[{index}] diverged from the in-process reference"
        )


class TestOverload:
    def test_open_loop_sweep(self, experiment):
        deployment = build_deployment(seed="bench-e14", rsa_bits=RSA_BITS)
        deployment.provider.publish(
            "bench-song", b"BENCH-PAYLOAD" * 256, title="Bench Song", price=3
        )
        deployment.provider.deterministic_issuance = True
        buyers = [
            deployment.add_user(f"e14-buyer-{i}", balance=1_000_000)
            for i in range(4)
        ]
        requests = [
            build_purchase_request(
                buyers[i % len(buyers)],
                deployment.provider,
                deployment.issuer,
                deployment.bank,
                "bench-song",
            )
            for i in range(N_REQUESTS)
        ]

        # -- in-process desk: the byte-identity oracle ------------------
        reference_licenses = deployment.provider.sell_batch(requests)
        assert not any(isinstance(r, Exception) for r in reference_licenses)
        reference = [codec.encode(r.as_dict()) for r in reference_licenses]

        # -- closed-loop capacity: what one worker can actually do ------
        directory = tempfile.mkdtemp(prefix="p2drm-e14-cap-")
        gateway = build_gateway(deployment, directory, workers=1, shards=1)
        try:
            start = time.perf_counter()
            sold = gateway.sell_batch(requests)
            capacity = N_REQUESTS / (time.perf_counter() - start)
            quantiles = _quantiles_ms(gateway.metrics)
        finally:
            gateway.close()
            shutil.rmtree(directory, ignore_errors=True)
        assert not any(isinstance(r, Exception) for r in sold)
        experiment.row(
            case="capacity-w1",
            transport="queue",
            offered_per_s=None,
            achieved_per_s=capacity,
            shed=0,
            shed_rate=0.0,
            backend=backend_name(),
            byte_identical=True,
            **quantiles,
        )

        # -- open-loop queue arms: sweep the offered rate ---------------
        for multiplier in RATE_MULTIPLIERS:
            rate = capacity * multiplier
            directory = tempfile.mkdtemp(prefix=f"p2drm-e14-q{multiplier}-")
            gateway = build_gateway(
                deployment, directory, workers=1, shards=1,
                max_inflight=CEILING,
            )
            try:
                results, shed, elapsed = _open_loop_queue(
                    gateway, requests, rate
                )
                quantiles = _quantiles_ms(gateway.metrics)
                _drain(
                    lambda r: gateway.sell(r), requests, shed, results
                )
            finally:
                gateway.close()
                shutil.rmtree(directory, ignore_errors=True)
            if multiplier > 1.0:
                # Past capacity behind a small ceiling the open loop
                # cannot fit: the server must shed (and did so typed —
                # _open_loop_queue only counts OverloadedError).
                assert shed, (
                    f"no shed at {multiplier}x capacity with a"
                    f" {CEILING}-deep ceiling"
                )
            _assert_byte_identical(results, reference, f"queue-{multiplier}x")
            experiment.row(
                case=f"open-queue-{multiplier}x",
                transport="queue",
                offered_per_s=rate,
                achieved_per_s=(N_REQUESTS - len(shed)) / elapsed,
                shed=len(shed),
                shed_rate=len(shed) / N_REQUESTS,
                backend=backend_name(),
                byte_identical=True,
                **quantiles,
            )

        # -- open-loop TCP arm at 2x: sheds cross the wire typed --------
        directory = tempfile.mkdtemp(prefix="p2drm-e14-tcp-")
        gateway = build_gateway(deployment, directory, workers=1, shards=1)
        server = NetServer(gateway, max_server_inflight=CEILING)
        client = None
        try:
            client = NetClient(server.start())
            rate = capacity * 2.0
            results, shed, elapsed = _open_loop_tcp(client, requests, rate)
            quantiles = _quantiles_ms(gateway.metrics)
            assert shed, (
                f"no typed shed over TCP at 2x capacity with a"
                f" {CEILING}-deep server ceiling"
            )

            def submit_one(request):
                [result] = client.gather([client.submit(request)])
                if isinstance(result, OverloadedError):
                    raise result
                return result

            _drain(submit_one, requests, shed, results)
        finally:
            if client is not None:
                client.close()
            server.close()
            gateway.close()
            shutil.rmtree(directory, ignore_errors=True)
        _assert_byte_identical(results, reference, "tcp-2.0x")
        experiment.row(
            case="open-tcp-2.0x",
            transport="tcp",
            offered_per_s=rate,
            achieved_per_s=(N_REQUESTS - len(shed)) / elapsed,
            shed=len(shed),
            shed_rate=len(shed) / N_REQUESTS,
            backend=backend_name(),
            byte_identical=True,
            **quantiles,
        )
