"""E15 — the durable ledger: cross-shard 2PC deposits, crash recovery,
and the offline audit.

Three questions, each an arm:

1. **Byte identity** — the BankSurface must not change a single byte
   of the money protocol.  Three same-seeded deployments run the same
   withdrawals and deposits through the in-process bank, the queue
   gateway and the TCP client; every coin and every deposit receipt
   must encode identically across the arms.
2. **Throughput** — what the sequencer's intent protocol costs: the
   closed-loop deposit rate through a 2-worker pool (advisory; op
   counts are the regression signal, wall-clock only ever warns).
3. **Crash window** — the acceptance scenario: a worker is SIGKILLed
   mid-deposit-stream, the pool is restarted over the same shard
   directory (startup recovery runs presumed-abort), the failed
   payments are retried, and ``tools/ledger_audit.py`` must report
   **zero** problems — no lost credits, no double credits — with
   every account reconciling to exactly its payment amount.

The retry path deliberately tolerates :class:`~repro.errors.
DoubleSpendError`: a payment whose worker died *after* the commit
point is already credited, and the truthful refusal of its retry is
the 2PC contract working, not a failure.  The per-account balance
check below is what actually proves exactly-once.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro import codec
from repro.core.messages import DepositRequest
from repro.core.protocols.payment import withdraw_coins
from repro.core.system import build_deployment
from repro.crypto.backend import backend_name
from repro.errors import DoubleSpendError, ServiceError
from repro.service.gateway import build_gateway
from repro.service.netserver import NetClient, NetServer

BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

RSA_BITS = 512 if BENCH_SMOKE else 1024
N_PAYMENTS = 6 if BENCH_SMOKE else 24
PAYMENT_AMOUNT = 26  # decomposes to [20, 5, 1]: every deposit is multi-coin
SEED = "bench-e15"

_AUDIT_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "ledger_audit.py",
)


def _deployment():
    return build_deployment(seed=SEED, rsa_bits=RSA_BITS)


def _payer(deployment, index):
    """Same-seeded deployments produce identical users, wallets and
    coin serials — the cross-arm identity hinges on this."""
    return deployment.add_user(f"e15-payer-{index:02d}", balance=1_000)


def _coin_bytes(coins) -> list[bytes]:
    return [codec.encode(coin.as_dict()) for coin in coins]


def _run_audit(directory: str) -> dict:
    """The offline audit exactly as CI runs it: the CLI, not the
    library — a green arm certifies the operator-facing tool."""
    completed = subprocess.run(
        [sys.executable, _AUDIT_TOOL, directory, "--json"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    report = json.loads(completed.stdout)
    report["exit_code"] = completed.returncode
    return report


class TestLedger:
    def test_byte_identity_and_throughput(self, experiment):
        # -- in-process reference ---------------------------------------
        reference = _deployment()
        ref_coins, ref_receipts = [], []
        for index in range(N_PAYMENTS):
            user = _payer(reference, index)
            coins = withdraw_coins(user, reference.bank, PAYMENT_AMOUNT)
            account = f"merchant-{index:02d}"
            reference.bank.open_account(account)
            reference.bank.deposit_batch(account, coins)
            ref_coins.append(_coin_bytes(coins))
            ref_receipts.append(
                codec.encode(
                    {
                        "account": account,
                        "credited": reference.bank.balance(account),
                    }
                )
            )

        # -- queue arm ---------------------------------------------------
        queue_side = _deployment()
        directory = tempfile.mkdtemp(prefix="p2drm-e15-queue-")
        gateway = build_gateway(queue_side, directory, workers=2, shards=4)
        try:
            payments = []
            for index in range(N_PAYMENTS):
                user = _payer(queue_side, index)
                gateway.open_account(user.bank_account, initial_balance=1_000)
                coins = withdraw_coins(user, gateway, PAYMENT_AMOUNT)
                assert _coin_bytes(coins) == ref_coins[index], (
                    f"queue withdrawal {index} diverged from the in-process"
                    " reference"
                )
                payments.append((index, coins))
            start = time.perf_counter()
            for index, coins in payments:
                receipt = gateway.deposit(f"merchant-{index:02d}", coins)
                assert codec.encode(receipt) == ref_receipts[index], (
                    f"queue receipt {index} diverged"
                )
            elapsed = time.perf_counter() - start
        finally:
            gateway.close()
            shutil.rmtree(directory, ignore_errors=True)
        experiment.row(
            case="deposit-byte-identity",
            transport="queue",
            payments=N_PAYMENTS,
            coins_per_payment=len(ref_coins[0]),
            deposits_per_s=N_PAYMENTS / elapsed,
            backend=backend_name(),
            byte_identical=True,
        )

        # -- TCP arm -----------------------------------------------------
        tcp_side = _deployment()
        directory = tempfile.mkdtemp(prefix="p2drm-e15-tcp-")
        gateway = build_gateway(tcp_side, directory, workers=2, shards=4)
        try:
            # This arm IS the trusted-client case the withdraw opt-in
            # exists for (the TCP surface is deposit-only by default).
            with NetServer(gateway, allow_withdraw=True) as server:
                with NetClient(server.address) as client:
                    start = time.perf_counter()
                    for index in range(N_PAYMENTS):
                        user = _payer(tcp_side, index)
                        gateway.open_account(
                            user.bank_account, initial_balance=1_000
                        )
                        coins = withdraw_coins(user, client, PAYMENT_AMOUNT)
                        assert _coin_bytes(coins) == ref_coins[index], (
                            f"TCP withdrawal {index} diverged"
                        )
                        receipt = client.deposit(
                            f"merchant-{index:02d}", coins
                        )
                        assert codec.encode(receipt) == ref_receipts[index], (
                            f"TCP receipt {index} diverged"
                        )
                    elapsed = time.perf_counter() - start
                    # The read surface agrees across transports too.
                    for index in range(N_PAYMENTS):
                        account = f"merchant-{index:02d}"
                        assert client.balance(account) == gateway.balance(
                            account
                        ) == PAYMENT_AMOUNT
        finally:
            gateway.close()
            shutil.rmtree(directory, ignore_errors=True)
        experiment.row(
            case="deposit-byte-identity",
            transport="tcp",
            payments=N_PAYMENTS,
            coins_per_payment=len(ref_coins[0]),
            deposits_per_s=N_PAYMENTS / elapsed,
            backend=backend_name(),
            byte_identical=True,
        )

    def test_crash_recovery_audit_clean(self, experiment):
        deployment = _deployment()
        directory = tempfile.mkdtemp(prefix="p2drm-e15-crash-")
        try:
            gateway = build_gateway(deployment, directory, workers=2, shards=4)
            payments = []
            try:
                for index in range(N_PAYMENTS):
                    user = _payer(deployment, index)
                    coins = withdraw_coins(
                        user, deployment.bank, PAYMENT_AMOUNT
                    )
                    payments.append((f"merchant-{index:02d}", coins))
                # Open loop: submit everything, then kill one worker
                # while the stream is in flight.
                tickets = [
                    (account, gateway.submit(
                        DepositRequest(account=account, coins=tuple(coins))
                    ))
                    for account, coins in payments
                ]
                os.kill(gateway._processes[0].pid, signal.SIGKILL)
                failed = []
                for account, ticket in tickets:
                    try:
                        [result] = gateway.gather([ticket])
                    except ServiceError:
                        failed.append(account)
                        continue
                    if isinstance(result, Exception):
                        failed.append(account)
            finally:
                gateway.close()

            # Restart the pool over the same shard files: startup
            # recovery rolls every torn deposit back (presumed-abort).
            reopened = build_gateway(deployment, directory, workers=2, shards=4)
            try:
                recovery = reopened.recovery_summary
                retried = 0
                for account, coins in payments:
                    if account not in failed:
                        continue
                    retried += 1
                    try:
                        reopened.deposit(account, coins)
                    except DoubleSpendError:
                        # The worker died after the commit point: the
                        # credit is durable and the refusal truthful.
                        pass
                # Exactly-once, per account, no matter which path ran.
                lost = sum(
                    1
                    for account, _coins in payments
                    if reopened.balance(account) != PAYMENT_AMOUNT
                )
                doubled = sum(
                    1
                    for account, _coins in payments
                    if reopened.balance(account) > PAYMENT_AMOUNT
                )
                counts = reopened.refresh_ledger_metrics()
            finally:
                reopened.close()
            assert lost == 0, f"{lost} accounts lost credits"
            assert doubled == 0, f"{doubled} accounts double-credited"
            assert counts["pending"] == 0

            # The offline auditor must agree, from the files alone.
            report = _run_audit(directory)
            assert report["exit_code"] == 0, report
            assert report["problems"] == [], report["problems"]
            assert report["stats"]["total_balance"] == (
                N_PAYMENTS * PAYMENT_AMOUNT
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        experiment.row(
            case="crash-recovery",
            transport="queue",
            payments=N_PAYMENTS,
            failed_first_pass=len(failed),
            retried=retried,
            recovery_aborted=recovery["aborted"],
            recovery_released=recovery["released"],
            lost_credits=0,
            double_credits=0,
            audit_problems=0,
            backend=backend_name(),
        )
