"""A1 — ablations for the design choices DESIGN.md calls out.

Three decisions get measured against their rejected alternatives:

1. **Pseudonyms as DH keys + hashed-ElGamal KEM** (chosen) vs RSA
   pseudonyms + OAEP wrapping (the paper-era default).  The policy
   "fresh pseudonym per transaction" makes *pseudonym creation* part
   of every purchase; RSA would put a prime generation there.

2. **Fresh vs reused pseudonyms**: what the unlinkability policy costs
   in time, and what reuse costs in linkage (the provider can cluster
   a reused pseudonym's purchases with zero effort).

3. **Request replay filter**: the per-request nonce spend costs one
   indexed insert — measured so nobody "optimizes" it away.
"""

from __future__ import annotations

import itertools

import pytest

from repro.crypto.elgamal import generate_elgamal_key
from repro.crypto.groups import named_group
from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.rsa import generate_rsa_key

_counter = itertools.count()


class TestKeyWrapAblation:
    """Decision 1: per-pseudonym key material cost."""

    def test_dh_pseudonym_and_kem_wrap(self, benchmark, experiment):
        group = named_group("modp-1536")  # production-size group
        rng = DeterministicRandomSource(b"a1-dh")
        content_key = b"K" * 16

        def fresh_pseudonym_and_wrap():
            key = generate_elgamal_key(group, rng=rng)
            wrapped = key.public_key.kem_wrap(content_key, context=b"lic", rng=rng)
            assert key.kem_unwrap(wrapped, context=b"lic") == content_key

        benchmark.pedantic(fresh_pseudonym_and_wrap, rounds=5, iterations=1)
        experiment.row(
            design="DH pseudonym + KEM (chosen)",
            keysize="1536-bit group",
            mean_ms=benchmark.stats["mean"] * 1000,
        )

    def test_rsa_pseudonym_and_oaep_wrap(self, benchmark, experiment):
        rng = DeterministicRandomSource(b"a1-rsa")
        content_key = b"K" * 16

        def fresh_pseudonym_and_wrap():
            key = generate_rsa_key(1024, rng=rng)  # prime gen per pseudonym!
            ciphertext = key.public_key.encrypt_oaep(content_key, rng=rng)
            assert key.decrypt_oaep(ciphertext) == content_key

        benchmark.pedantic(fresh_pseudonym_and_wrap, rounds=3, iterations=1)
        experiment.row(
            design="RSA pseudonym + OAEP (rejected)",
            keysize="1024-bit modulus",
            mean_ms=benchmark.stats["mean"] * 1000,
        )


class TestPseudonymPolicyAblation:
    """Decision 2: fresh-per-transaction vs reuse."""

    @pytest.mark.parametrize("fresh", [True, False])
    def test_policy(self, benchmark, bench_deployment, experiment, fresh):
        d = bench_deployment
        user = d.add_user(
            f"a1-user-{next(_counter)}",
            balance=1_000_000,
            fresh_pseudonym_per_transaction=fresh,
        )
        from repro.core.protocols import purchase_content

        benchmark.pedantic(
            lambda: purchase_content(user, d.provider, d.issuer, d.bank, "bench-song"),
            rounds=5,
            iterations=1,
        )
        # Linkage the provider gets for free: licences per distinct holder.
        holders = {
            lic.holder_fingerprint for lic in user.licenses.values()
        }
        purchases = len(user.licenses)
        experiment.row(
            design=f"pseudonym policy: {'fresh' if fresh else 'reused'}",
            mean_ms=benchmark.stats["mean"] * 1000,
            purchases=purchases,
            distinct_pseudonyms=len(holders),
            free_linkage=purchases - len(holders),
        )
        if fresh:
            assert len(holders) == purchases          # unlinkable
        else:
            assert len(holders) == 1                  # fully clustered


class TestReplayFilterAblation:
    """Decision 3: what the nonce replay filter costs per request."""

    def test_nonce_spend_cost(self, benchmark, experiment):
        from repro.storage.engine import Database
        from repro.storage.spent_tokens import SpentTokenStore

        store = SpentTokenStore(Database(), "request-nonce")
        fresh = itertools.count()

        def spend():
            index = next(fresh)
            assert store.try_spend(b"fp" + index.to_bytes(8, "big"), at=index) is None

        benchmark(spend)
        experiment.row(
            design="request replay filter",
            mean_ms=benchmark.stats["mean"] * 1000,
        )
