"""E9 "Figure 6" — e-cash operation costs and double-spend DB scaling.

The anonymous payment channel must not become the bottleneck the
paper's critics predicted.  Measured: withdrawal (blind sign +
unblind), deposit (verify + exactly-once), and how deposit cost moves
as the spent-coin database grows.

Expected shape: withdrawal dominated by one RSA private op at the bank;
deposit by one RSA public op (fast, small exponent) plus an O(1)
indexed insert — flat across database decades.
"""

from __future__ import annotations

import itertools

import pytest

from repro.clock import SimClock
from repro.core.actors.bank import Bank
from repro.core.actors.user import UserAgent
from repro.core.protocols.payment import withdraw_coins
from repro.crypto.rand import DeterministicRandomSource

_counter = itertools.count()


@pytest.fixture(scope="module")
def bank():
    bank = Bank(
        rng=DeterministicRandomSource(b"e9-bank"),
        clock=SimClock(),
        denominations=(1, 5, 20),
        key_bits=1024,
    )
    bank.open_account("merchant")
    return bank


def _funded_user(bank) -> UserAgent:
    user = UserAgent(
        f"e9-user-{next(_counter)}",
        rng=DeterministicRandomSource(f"e9-user-{next(_counter)}"),
        clock=SimClock(),
    )
    bank.open_account(user.bank_account, initial_balance=10**9)
    return user


class TestCoinOperations:
    def test_withdraw_one_coin(self, benchmark, bank, experiment):
        user = _funded_user(bank)
        benchmark.pedantic(
            lambda: withdraw_coins(user, bank, 1), rounds=10, iterations=1
        )
        experiment.row(op="withdraw", mean_ms=benchmark.stats["mean"] * 1000)

    def test_verify_coin(self, benchmark, bank, experiment):
        user = _funded_user(bank)
        (coin,) = withdraw_coins(user, bank, 1)
        benchmark(lambda: bank.verify_coin(coin))
        experiment.row(op="verify", mean_ms=benchmark.stats["mean"] * 1000)

    def test_deposit_coin(self, benchmark, bank, experiment):
        user = _funded_user(bank)
        coins = withdraw_coins(user, bank, 30)  # 20+5+5×1 → several coins

        coin_iter = iter(coins)

        def deposit():
            bank.deposit("merchant", next(coin_iter))

        benchmark.pedantic(deposit, rounds=min(5, len(coins)), iterations=1)
        experiment.row(op="deposit", mean_ms=benchmark.stats["mean"] * 1000)


@pytest.mark.parametrize("spent_count", [100, 1_000, 10_000])
class TestDoubleSpendDbScaling:
    def test_deposit_with_populated_db(self, benchmark, experiment, spent_count):
        bank = Bank(
            rng=DeterministicRandomSource(b"e9-scale-%d" % spent_count),
            clock=SimClock(),
            denominations=(1,),
            key_bits=512,
        )
        bank.open_account("merchant")
        # Populate the spent store directly (the scaling subject).
        store = bank._spent
        with store._db.transaction():
            for i in range(spent_count):
                store.try_spend(b"old-%012d" % i, at=i)

        user = UserAgent(
            "e9-scale-user",
            rng=DeterministicRandomSource(b"e9-scale-user"),
            clock=SimClock(),
        )
        bank.open_account(user.bank_account, initial_balance=10**6)
        coins = withdraw_coins(user, bank, 40)
        coin_iter = iter(coins)

        def deposit():
            bank.deposit("merchant", next(coin_iter))

        benchmark.pedantic(deposit, rounds=min(10, len(coins)), iterations=1)
        experiment.row(
            op="deposit",
            spent_db_size=spent_count,
            mean_ms=benchmark.stats["mean"] * 1000,
        )
