"""E16 — tracing overhead: the span recorder's price at the median.

The same prepared workload (individual sells plus one multi-coin
deposit, the 2PC-heavy path) runs against two otherwise identical
gateways: tracing off, and tracing on at the production threshold
(nothing kept — the always-on recording cost is what we meter, not
the keep path).  Every protocol output must stay byte-identical
across the arms — the tracing switch may never reach the bytes — and
the on-arm's p50 must stay within budget of the off-arm's.

The roadmap budget is **< 3% p50 overhead**; the asserted ceiling here
is deliberately looser (shared CI runners jitter far more than 3% on
millisecond medians), so the hard gate catches "tracing made requests
half again slower" regressions while the recorded ``p50_overhead``
column tracks the real number run to run.  Timings are advisory in
the regression lane; the rows' presence is enforced.
"""

from __future__ import annotations

import os
import shutil
import statistics
import tempfile
import time

from repro import codec
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.system import build_deployment
from repro.crypto.backend import backend_name
from repro.service import tracing
from repro.service.gateway import build_gateway

BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

N_REQUESTS = 12 if BENCH_SMOKE else 64
N_WARMUP = 2 if BENCH_SMOKE else 8
DEPOSIT_COINS = 4 if BENCH_SMOKE else 12
RSA_BITS = 512 if BENCH_SMOKE else 1024
#: Hard ceiling on p50(on)/p50(off).  The documented target is 1.03;
#: this gate only fails on order-of-magnitude regressions that no
#: amount of runner noise explains.
OVERHEAD_CEILING = 1.5


class TestTracingOverhead:
    def test_tracing_on_vs_off(self, experiment):
        deployment = build_deployment(seed="bench-e16", rsa_bits=RSA_BITS)
        deployment.provider.publish(
            "bench-song", b"BENCH-PAYLOAD" * 256, title="Bench Song", price=3
        )
        deployment.provider.deterministic_issuance = True
        users = [
            deployment.add_user(f"e16-user-{i}", balance=1_000_000)
            for i in range(4)
        ]
        requests = [
            build_purchase_request(
                users[i % len(users)],
                deployment.provider,
                deployment.issuer,
                deployment.bank,
                "bench-song",
            )
            for i in range(N_WARMUP + N_REQUESTS)
        ]
        depositor = deployment.add_user("e16-depositor", balance=1_000_000)
        coins = depositor.coins_for(DEPOSIT_COINS, deployment.bank)

        results: dict[str, dict] = {}
        for arm in ("off", "on"):
            directory = tempfile.mkdtemp(prefix=f"p2drm-e16-{arm}-")
            gateway = build_gateway(
                deployment,
                directory,
                workers=2,
                shards=2,
                tracing=(arm == "on"),
            )
            try:
                for request in requests[:N_WARMUP]:
                    gateway.sell(request)
                latencies = []
                licenses = []
                start = time.perf_counter()
                for request in requests[N_WARMUP:]:
                    t0 = time.perf_counter()
                    licenses.append(gateway.sell(request))
                    latencies.append(time.perf_counter() - t0)
                elapsed = time.perf_counter() - start
                receipt = gateway.deposit("e16-merchant", coins)
                results[arm] = {
                    "licenses": [
                        codec.encode(lic.as_dict()) for lic in licenses
                    ],
                    "receipt": receipt,
                    "p50": statistics.median(latencies),
                    "ops_per_s": N_REQUESTS / elapsed,
                }
            finally:
                gateway.close()
                shutil.rmtree(directory, ignore_errors=True)
                tracing.disable()

        # Byte-identity across the switch: tracing must never reach the
        # protocol outputs (deterministic issuance makes them exact).
        byte_identical = (
            results["on"]["licenses"] == results["off"]["licenses"]
            and results["on"]["receipt"] == results["off"]["receipt"]
        )
        assert byte_identical, "tracing changed protocol outputs"
        assert results["off"]["receipt"]["credited"] == DEPOSIT_COINS

        overhead = results["on"]["p50"] / results["off"]["p50"]
        assert overhead < OVERHEAD_CEILING, (
            f"tracing p50 overhead {overhead:.2f}x exceeds the"
            f" {OVERHEAD_CEILING}x ceiling"
        )
        for arm in ("off", "on"):
            experiment.row(
                case=f"tracing-{arm}",
                tracing=(arm == "on"),
                workers=2,
                requests=N_REQUESTS,
                cores=os.cpu_count(),
                backend=backend_name(),
                p50_ms=results[arm]["p50"] * 1_000,
                ops_per_s=results[arm]["ops_per_s"],
                p50_overhead=overhead if arm == "on" else 1.0,
                byte_identical=byte_identical,
            )
