"""E5 "Figure 4" — device-side revocation checking.

The paper requires devices to consult a revocation list on every
render; this bench measures that cost as the list grows, with and
without the Bloom pre-filter, plus the cost of a verified delta sync.

Expected shape: the common case (licence not revoked) is O(1) with the
Bloom filter regardless of list size; the exact-set fallback is also
hash-set O(1) here, so the filter's win shows in the *miss* path cost
and the measured false-positive rate staying near the configured 1%.
"""

from __future__ import annotations

import itertools

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.rsa import generate_rsa_key
from repro.storage.engine import Database
from repro.storage.revocation import DeviceRevocationView, RevocationList

SIZES = [100, 1_000, 10_000]
_KEY = generate_rsa_key(1024, rng=DeterministicRandomSource(b"e5-key"))
_counter = itertools.count()


def _synced_view(size: int) -> tuple[RevocationList, DeviceRevocationView]:
    lrl = RevocationList(Database())
    db = lrl._db
    with db.transaction():
        for i in range(size):
            db.execute(
                "INSERT INTO revoked_licenses(license_id, version, revoked_at, reason)"
                " VALUES (?, ?, ?, ?)",
                (b"rev-%012d" % i, i + 1, i, "exchanged"),
            )
    view = DeviceRevocationView(_KEY.public_key)
    view.apply_sync(lrl.entries_since(0), lrl.snapshot(_KEY))
    return lrl, view


@pytest.mark.parametrize("size", SIZES)
class TestCheckCost:
    def test_clean_license_with_bloom(self, benchmark, experiment, size):
        _, view = _synced_view(size)
        probe = itertools.count()

        def check():
            assert not view.check(b"clean-%012d" % next(probe))

        benchmark(check)
        experiment.row(
            path="bloom+exact",
            lrl_size=size,
            check_us=benchmark.stats["mean"] * 1e6,
        )

    def test_clean_license_exact_only(self, benchmark, experiment, size):
        _, view = _synced_view(size)
        probe = itertools.count()

        def check():
            assert not view.check_exact_only(b"clean-%012d" % next(probe))

        benchmark(check)
        experiment.row(
            path="exact-only",
            lrl_size=size,
            check_us=benchmark.stats["mean"] * 1e6,
        )

    def test_revoked_license(self, benchmark, experiment, size):
        _, view = _synced_view(size)
        probe = itertools.count()

        def check():
            assert view.check(b"rev-%012d" % (next(probe) % size))

        benchmark(check)
        experiment.row(
            path="revoked-hit",
            lrl_size=size,
            check_us=benchmark.stats["mean"] * 1e6,
        )


@pytest.mark.parametrize("size", SIZES)
class TestSyncAndFpRate:
    def test_full_sync_cost(self, benchmark, experiment, size):
        lrl, _ = _synced_view(size)
        entries = lrl.entries_since(0)
        snapshot = lrl.snapshot(_KEY)

        def sync():
            view = DeviceRevocationView(_KEY.public_key)
            view.apply_sync(entries, snapshot)

        benchmark.pedantic(sync, rounds=3, iterations=1)
        experiment.row(
            path="full-sync",
            lrl_size=size,
            check_us=benchmark.stats["mean"] * 1e6,
        )

    def test_bloom_fp_rate(self, benchmark, experiment, size):
        lrl, _ = _synced_view(size)
        bloom = lrl.bloom_filter(fp_rate=0.01)
        probes = [b"fp-probe-%012d" % i for i in range(10_000)]

        def measure_fp():
            return sum(1 for p in probes if p in bloom)

        false_positives = benchmark.pedantic(measure_fp, rounds=1, iterations=1)
        experiment.row(
            path="bloom-fp-rate",
            lrl_size=size,
            fp_rate=false_positives / len(probes),
        )
        assert false_positives / len(probes) < 0.05
