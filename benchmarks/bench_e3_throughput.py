"""E3 "Figure 2" — provider purchase throughput, P2DRM vs baseline.

Measures sustained sales per second at the content provider in both
modes (same substrates, same key sizes), giving the *privacy overhead
factor* on the provider's hot path.

Expected shape: P2DRM throughput is lower by a small constant factor
(the blind certification adds one RSA private op at the issuer and the
certificate + escrow verification adds modexps at the provider), not
by an order of magnitude — the paper's feasibility claim.

Extra rows quantify the fast-exponentiation kernel on this hot path:
``p2drm-no-tables`` re-runs the purchase loop with the fixed-base
tables disabled (the pre-kernel cost), ``p2drm-no-tables-wnaf`` does
the same with the windowed-NAF cold path selected (comb vs wNAF vs
naive, measured honestly), and ``p2drm-batch`` sells the whole batch
through :meth:`ContentProvider.sell_batch` (aggregated Schnorr
verification + batched coin deposits).

The redemption rows measure the other half of every transfer session:
``p2drm-redeem`` personalizes bearer licences one at a time,
``p2drm-redeem-batch`` pushes the same queue through
:meth:`ContentProvider.redeem_batch` (PKCS#1 screening + certificate
screening + aggregated escrow bindings + Schnorr batch verification +
one revocation-list pass); the ``redeem-speedup`` row reports the
provider-side ratio.
"""

from __future__ import annotations

import itertools

from repro import instrument
from repro.baseline.identity_drm import (
    BaselineProvider,
    BaselineUser,
    baseline_purchase,
)
from repro.core.identity import SmartCard
from repro.core.protocols import purchase_content
from repro.core.protocols.acquisition import accept_license, build_purchase_request
from repro.core.protocols.transfer import (
    build_redeem_request,
    exchange_for_anonymous,
)
from repro.crypto import fastexp

_counter = itertools.count()
BATCH = 10
#: Queue length for the redemption rows.  The aggregated checks keep
#: amortizing as the queue grows (the per-item share of each folded
#: equation shrinks), so the redemption desk is measured at a burst
#: size a loaded provider would actually coalesce.
REDEEM_BATCH = 64

#: Mean per-item redemption times, filled by the single/batch redemption
#: tests so the speedup row can report the ratio.
_REDEEM_SECONDS: dict[str, float] = {}


class TestThroughput:
    def test_p2drm_purchases(self, benchmark, bench_deployment, experiment):
        d = bench_deployment
        user = d.add_user(f"e3-user-{next(_counter)}", balance=1_000_000)

        def batch():
            for _ in range(BATCH):
                purchase_content(user, d.provider, d.issuer, d.bank, "bench-song")

        benchmark.pedantic(batch, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="p2drm", purchases_per_s=per_second)

    def test_p2drm_purchases_no_tables(self, benchmark, bench_deployment, experiment):
        """The same loop with every exponentiation on the cold path."""
        d = bench_deployment
        user = d.add_user(f"e3-user-{next(_counter)}", balance=1_000_000)

        def batch():
            with fastexp.tables_disabled():
                for _ in range(BATCH):
                    purchase_content(user, d.provider, d.issuer, d.bank, "bench-song")

        benchmark.pedantic(batch, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="p2drm-no-tables", purchases_per_s=per_second)

    def test_p2drm_purchases_no_tables_wnaf(
        self, benchmark, bench_deployment, experiment
    ):
        """Cold path again, but with signed-digit wNAF exponentiation."""
        d = bench_deployment
        user = d.add_user(f"e3-user-{next(_counter)}", balance=1_000_000)

        def batch():
            with fastexp.tables_disabled(), fastexp.exp_mode_set(fastexp.MODE_WNAF):
                for _ in range(BATCH):
                    purchase_content(user, d.provider, d.issuer, d.bank, "bench-song")

        benchmark.pedantic(batch, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="p2drm-no-tables-wnaf", purchases_per_s=per_second)

    def test_p2drm_batch_sales(self, benchmark, bench_deployment, experiment):
        """Queue the whole batch and validate it with sell_batch."""
        d = bench_deployment
        user = d.add_user(f"e3-user-{next(_counter)}", balance=1_000_000)

        def build():
            requests = [
                build_purchase_request(user, d.provider, d.issuer, d.bank, "bench-song")
                for _ in range(BATCH)
            ]
            return (requests,), {}

        def sell(requests):
            results = d.provider.sell_batch(requests)
            bad = [r for r in results if isinstance(r, Exception)]
            assert not bad, bad

        benchmark.pedantic(sell, setup=build, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="p2drm-batch (provider only)", purchases_per_s=per_second)

    def _redeem_queue(self, deployment):
        """A fresh queue of REDEEM_BATCH redeem requests (user-side work done)."""
        d = deployment
        sender = d.add_user(f"e3-sender-{next(_counter)}", balance=1_000_000)
        receiver = d.add_user(f"e3-receiver-{next(_counter)}", balance=1_000_000)
        purchase_requests = [
            build_purchase_request(sender, d.provider, d.issuer, d.bank, "bench-song")
            for _ in range(REDEEM_BATCH)
        ]
        requests = []
        for purchase, license_ in zip(
            purchase_requests, d.provider.sell_batch(purchase_requests)
        ):
            assert not isinstance(license_, Exception), license_
            accept_license(sender, d.provider, purchase, license_)
            anonymous = exchange_for_anonymous(
                sender, d.provider, license_.license_id
            )
            requests.append(
                build_redeem_request(receiver, d.provider, d.issuer, anonymous)
            )
        return requests

    def test_p2drm_single_redemptions(self, benchmark, bench_deployment, experiment):
        """Provider-side redemption, one request at a time."""
        d = bench_deployment

        def build():
            return (self._redeem_queue(d),), {}

        def redeem(requests):
            for request in requests:
                d.provider.redeem(request)

        benchmark.pedantic(redeem, setup=build, rounds=3, iterations=1)
        _REDEEM_SECONDS["single"] = benchmark.stats["mean"] / REDEEM_BATCH
        per_second = REDEEM_BATCH / benchmark.stats["mean"]
        count_queue = self._redeem_queue(d)
        with instrument.measure() as ops:
            redeem(count_queue)
        experiment.row(
            mode="p2drm-redeem (provider only)",
            redemptions_per_s=per_second,
            modexp=ops.get("modexp"),
        )

    def test_p2drm_batch_redemptions(self, benchmark, bench_deployment, experiment):
        """The same queue through the batched redemption desk."""
        d = bench_deployment

        def build():
            return (self._redeem_queue(d),), {}

        def redeem(requests):
            results = d.provider.redeem_batch(requests)
            bad = [r for r in results if isinstance(r, Exception)]
            assert not bad, bad

        benchmark.pedantic(redeem, setup=build, rounds=3, iterations=1)
        _REDEEM_SECONDS["batch"] = benchmark.stats["mean"] / REDEEM_BATCH
        per_second = REDEEM_BATCH / benchmark.stats["mean"]
        count_queue = self._redeem_queue(d)
        with instrument.measure() as ops:
            redeem(count_queue)
        experiment.row(
            mode="p2drm-redeem-batch (provider only)",
            redemptions_per_s=per_second,
            modexp=ops.get("modexp"),
        )
        if "single" in _REDEEM_SECONDS:
            experiment.row(
                mode="redeem-speedup (batch vs single)",
                redemptions_per_s=None,
                speedup=_REDEEM_SECONDS["single"] / _REDEEM_SECONDS["batch"],
            )

    def _spent_queue(self, deployment):
        """Requests for bearer licences that are already redeemed.

        Every request carries valid signatures, a valid certificate and
        a fresh nonce, so the full screening pipeline runs — but the
        spent store rejects each token before any licence is minted.
        This isolates the verification desk (what batching actually
        amortizes) from per-licence issuance, and it is the throughput
        that matters under a replayed-bearer-token flood — the abuse
        case the spent store exists to absorb.
        """
        d = deployment
        requests = self._redeem_queue(d)
        for result in d.provider.redeem_batch(requests):
            assert not isinstance(result, Exception), result
        receiver = d.add_user(f"e3-receiver-{next(_counter)}", balance=1_000_000)
        return [
            build_redeem_request(
                receiver, d.provider, d.issuer, request.anonymous_license
            )
            for request in requests
        ]

    def test_p2drm_single_redemption_screening(
        self, benchmark, bench_deployment, experiment
    ):
        """Screening a spent queue one request at a time."""
        from repro.errors import DoubleRedemptionError

        d = bench_deployment

        def build():
            return (self._spent_queue(d),), {}

        def screen(requests):
            for request in requests:
                try:
                    d.provider.redeem(request)
                except DoubleRedemptionError:
                    continue
                raise AssertionError("spent token was redeemed")

        benchmark.pedantic(screen, setup=build, rounds=3, iterations=1)
        _REDEEM_SECONDS["screen-single"] = benchmark.stats["mean"] / REDEEM_BATCH
        per_second = REDEEM_BATCH / benchmark.stats["mean"]
        experiment.row(
            mode="p2drm-redeem-screen (provider only)", redemptions_per_s=per_second
        )

    def test_p2drm_batch_redemption_screening(
        self, benchmark, bench_deployment, experiment
    ):
        """The same spent queue through the batched desk."""
        from repro.errors import DoubleRedemptionError

        d = bench_deployment

        def build():
            return (self._spent_queue(d),), {}

        def screen(requests):
            results = d.provider.redeem_batch(requests)
            assert all(isinstance(r, DoubleRedemptionError) for r in results)

        benchmark.pedantic(screen, setup=build, rounds=3, iterations=1)
        _REDEEM_SECONDS["screen-batch"] = benchmark.stats["mean"] / REDEEM_BATCH
        per_second = REDEEM_BATCH / benchmark.stats["mean"]
        experiment.row(
            mode="p2drm-redeem-batch-screen (provider only)",
            redemptions_per_s=per_second,
        )
        if "screen-single" in _REDEEM_SECONDS:
            experiment.row(
                mode="redeem-screen-speedup (batch vs single)",
                redemptions_per_s=None,
                speedup=(
                    _REDEEM_SECONDS["screen-single"]
                    / _REDEEM_SECONDS["screen-batch"]
                ),
            )

    def test_baseline_purchases(self, benchmark, bench_deployment, experiment):
        d = bench_deployment
        provider = BaselineProvider(
            rng=d.rng.fork("e3-baseline"),
            clock=d.clock,
            bank=d.bank,
            license_key_bits=1024,
            name="e3-baseline-provider",
        )
        provider.publish("bench-song", b"BENCH" * 64, title="B", price=3)
        card = SmartCard(
            b"e3-baseline-card",
            d.group,
            rng=d.rng.fork("e3-bl-card"),
            authority_key=d.authority.public_key,
        )
        user = BaselineUser("e3-bl-user", card)
        provider.register_user(user)
        d.bank.open_account(user.bank_account, initial_balance=1_000_000)

        def batch():
            for _ in range(BATCH):
                baseline_purchase(user, provider, "bench-song", clock=d.clock)

        benchmark.pedantic(batch, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="baseline", purchases_per_s=per_second)
