"""E3 "Figure 2" — provider purchase throughput, P2DRM vs baseline.

Measures sustained sales per second at the content provider in both
modes (same substrates, same key sizes), giving the *privacy overhead
factor* on the provider's hot path.

Expected shape: P2DRM throughput is lower by a small constant factor
(the blind certification adds one RSA private op at the issuer and the
certificate + escrow verification adds modexps at the provider), not
by an order of magnitude — the paper's feasibility claim.

Two extra rows quantify the fast-exponentiation kernel on this hot
path: ``p2drm-no-tables`` re-runs the purchase loop with the fixed-base
tables disabled (the pre-kernel cost), and ``p2drm-batch`` sells the
whole batch through :meth:`ContentProvider.sell_batch` (aggregated
Schnorr verification + batched coin deposits).
"""

from __future__ import annotations

import itertools

from repro.baseline.identity_drm import (
    BaselineProvider,
    BaselineUser,
    baseline_purchase,
)
from repro.core.identity import SmartCard
from repro.core.protocols import purchase_content
from repro.core.protocols.acquisition import build_purchase_request
from repro.crypto import fastexp

_counter = itertools.count()
BATCH = 10


class TestThroughput:
    def test_p2drm_purchases(self, benchmark, bench_deployment, experiment):
        d = bench_deployment
        user = d.add_user(f"e3-user-{next(_counter)}", balance=1_000_000)

        def batch():
            for _ in range(BATCH):
                purchase_content(user, d.provider, d.issuer, d.bank, "bench-song")

        benchmark.pedantic(batch, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="p2drm", purchases_per_s=per_second)

    def test_p2drm_purchases_no_tables(self, benchmark, bench_deployment, experiment):
        """The same loop with every exponentiation on the cold path."""
        d = bench_deployment
        user = d.add_user(f"e3-user-{next(_counter)}", balance=1_000_000)

        def batch():
            with fastexp.tables_disabled():
                for _ in range(BATCH):
                    purchase_content(user, d.provider, d.issuer, d.bank, "bench-song")

        benchmark.pedantic(batch, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="p2drm-no-tables", purchases_per_s=per_second)

    def test_p2drm_batch_sales(self, benchmark, bench_deployment, experiment):
        """Queue the whole batch and validate it with sell_batch."""
        d = bench_deployment
        user = d.add_user(f"e3-user-{next(_counter)}", balance=1_000_000)

        def build():
            requests = [
                build_purchase_request(user, d.provider, d.issuer, d.bank, "bench-song")
                for _ in range(BATCH)
            ]
            return (requests,), {}

        def sell(requests):
            results = d.provider.sell_batch(requests)
            bad = [r for r in results if isinstance(r, Exception)]
            assert not bad, bad

        benchmark.pedantic(sell, setup=build, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="p2drm-batch (provider only)", purchases_per_s=per_second)

    def test_baseline_purchases(self, benchmark, bench_deployment, experiment):
        d = bench_deployment
        provider = BaselineProvider(
            rng=d.rng.fork("e3-baseline"),
            clock=d.clock,
            bank=d.bank,
            license_key_bits=1024,
            name="e3-baseline-provider",
        )
        provider.publish("bench-song", b"BENCH" * 64, title="B", price=3)
        card = SmartCard(
            b"e3-baseline-card",
            d.group,
            rng=d.rng.fork("e3-bl-card"),
            authority_key=d.authority.public_key,
        )
        user = BaselineUser("e3-bl-user", card)
        provider.register_user(user)
        d.bank.open_account(user.bank_account, initial_balance=1_000_000)

        def batch():
            for _ in range(BATCH):
                baseline_purchase(user, provider, "bench-song", clock=d.clock)

        benchmark.pedantic(batch, rounds=3, iterations=1)
        per_second = BATCH / benchmark.stats["mean"]
        experiment.row(mode="baseline", purchases_per_s=per_second)
