"""Shared benchmark infrastructure.

Every experiment records its result rows through the ``experiment``
fixture; a terminal-summary hook prints all tables at the end of the
run (so ``pytest benchmarks/ --benchmark-only`` shows the paper-style
rows alongside pytest-benchmark's timing table).  Deployments are
cached per RSA key size — 2048-bit pure-Python keygen is expensive and
only needs to happen once per run.

Setting ``P2DRM_BENCH_JSON=<path>`` additionally dumps every table to
that file as JSON — the artifact the ``bench-regression`` CI lane
compares against its committed baseline (see ``check_regression.py``)
and the nightly workflow uploads.
"""

from __future__ import annotations

import functools
import json
import os

import pytest

#: CI smoke mode: ``P2DRM_BENCH_SMOKE=1`` clamps RSA key sizes so every
#: bench module exercises its full code path in seconds (key generation
#: and private operations dominate bench runtime).  Timing numbers are
#: meaningless in this mode — the job exists to catch import/API
#: breakage, not regressions.
BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

_RESULT_TABLES: dict[str, list[dict]] = {}


@pytest.fixture(autouse=True)
def _fastexp_state_guard():
    """No bench arm may leak the exp-mode/enabled switches into the
    next test (tables stay warm on purpose — the cached deployments
    rely on them; see :func:`repro.crypto.fastexp.switch_guard`)."""
    from repro.crypto import fastexp

    with fastexp.switch_guard():
        yield


class ExperimentRecorder:
    """Collects result rows for one experiment id."""

    def __init__(self, experiment_id: str):
        self.experiment_id = experiment_id

    def row(self, **fields) -> None:
        _RESULT_TABLES.setdefault(self.experiment_id, []).append(fields)


@pytest.fixture()
def experiment(request):
    """Recorder named after the bench module (one table per experiment)."""
    module = request.module.__name__.replace("bench_", "")
    return ExperimentRecorder(module)


def _dump_json_tables(path: str) -> None:
    """Write the experiment tables (plus run metadata) as JSON."""
    from repro.crypto.backend import backend_name

    payload = {
        "meta": {"smoke": BENCH_SMOKE, "backend": backend_name()},
        "experiments": {
            experiment_id: [
                {key: _jsonable(value) for key, value in row.items()}
                for row in rows
            ]
            for experiment_id, rows in sorted(_RESULT_TABLES.items())
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _jsonable(value):
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    json_path = os.environ.get("P2DRM_BENCH_JSON", "")
    if json_path and _RESULT_TABLES:
        _dump_json_tables(json_path)
        terminalreporter.write_line(f"experiment tables written to {json_path}")
    if not _RESULT_TABLES:
        return
    terminalreporter.write_sep("=", "experiment result tables")
    for experiment_id in sorted(_RESULT_TABLES):
        rows = _RESULT_TABLES[experiment_id]
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {experiment_id} ---")
        if not rows:
            continue
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        widths = {
            column: max(len(column), *(len(_fmt(r.get(column))) for r in rows))
            for column in columns
        }
        header = "  ".join(column.ljust(widths[column]) for column in columns)
        terminalreporter.write_line(header)
        terminalreporter.write_line("-" * len(header))
        for row in rows:
            terminalreporter.write_line(
                "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
            )


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@functools.lru_cache(maxsize=None)
def _deployment_for_bits(rsa_bits: int):
    from repro.core.system import build_deployment

    if BENCH_SMOKE:
        rsa_bits = min(rsa_bits, 512)
    deployment = build_deployment(seed=f"bench-{rsa_bits}", rsa_bits=rsa_bits)
    deployment.provider.publish(
        "bench-song", b"BENCH-PAYLOAD" * 256, title="Bench Song", price=3
    )
    return deployment


@pytest.fixture(scope="session")
def deployment_for_bits():
    """Factory: cached deployment per RSA modulus size."""
    return _deployment_for_bits


@pytest.fixture(scope="session")
def bench_deployment():
    """The default 1024-bit deployment."""
    return _deployment_for_bits(1024)
