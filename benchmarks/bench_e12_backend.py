"""E12 — arithmetic-backend parity: pure Python vs gmpy2 on the core ops.

Runs the E3/E11 core operation pipeline — batched sales, licence
exchange, batched redemption, and spent-token screening — once per
available arithmetic backend (:mod:`repro.crypto.backend`), from the
same deterministic seed, and:

- **asserts byte-identical protocol outputs** across backends (the
  backend is a performance knob, never a correctness one: every
  licence, anonymous licence and personalized licence must encode to
  the same bytes whichever backend produced it);
- reports wall time and modexp chains per op and backend, plus a
  ``speedup`` row per op when more than one backend is available.

The pure rows always exist (they are what the committed baseline
pins, op counts enforced); the gmpy2 and speedup rows appear only
where the package is installed — the ``backend-gmpy2`` CI lane and
the nightly runner — and are marked ``conditional`` so
``check_regression.py`` treats their absence as a warning, not lost
coverage.  The backend is part of the row's ``arm`` label (rows of
different arms are different rows); the modexp-dominated arms
(screening, redemption) are where the C backend pays: the
expectation recorded in the README is ≥3x.
"""

from __future__ import annotations

import os
import time

from repro import codec, instrument
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.protocols.transfer import build_exchange_request, build_redeem_request
from repro.core.system import build_deployment
from repro.crypto import backend as abackend
from repro.crypto import fastexp
from repro.errors import DoubleRedemptionError

BENCH_SMOKE = os.environ.get("P2DRM_BENCH_SMOKE", "") not in ("", "0")

#: Requests per op and arm.  Big enough that the aggregated pipelines
#: have something to fold; small enough that the pure arm stays quick.
N_REQUESTS = 8 if BENCH_SMOKE else 32
RSA_BITS = 512 if BENCH_SMOKE else 1024

#: The core ops, in pipeline order.
OPS = ("sell-batch", "exchange", "redeem-batch", "redeem-screen")


def _timed(fn):
    """``(seconds, modexp_chains, result)`` for one op invocation."""
    with instrument.measure() as ops:
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
    return seconds, ops.get("modexp"), result


def _core_ops(backend_name: str):
    """One full sell→exchange→redeem→screen pass under ``backend_name``.

    Everything — key generation, request building, validation — runs
    under the selected backend with freshly warmed tables, from the
    same deterministic seed, so two invocations differ **only** by
    arithmetic implementation.  Returns per-op ``(seconds, modexp)``
    and the canonical encodings of every protocol output.
    """
    with fastexp.isolated_state():
        abackend.set_backend(backend_name)
        fastexp.reset()
        deployment = build_deployment(seed="bench-e12", rsa_bits=RSA_BITS)
        deployment.provider.publish(
            "bench-song", b"BENCH-PAYLOAD" * 256, title="Bench Song", price=3
        )
        deployment.provider.deterministic_issuance = True
        senders = [
            deployment.add_user(f"e12-sender-{i}", balance=1_000_000)
            for i in range(4)
        ]
        receiver = deployment.add_user("e12-receiver", balance=1_000_000)
        replayer = deployment.add_user("e12-replayer", balance=1_000_000)

        purchase_requests = [
            build_purchase_request(
                senders[i % len(senders)],
                deployment.provider,
                deployment.issuer,
                deployment.bank,
                "bench-song",
            )
            for i in range(N_REQUESTS)
        ]
        timings: dict[str, tuple[float, int]] = {}

        seconds, modexp, licenses = _timed(
            lambda: deployment.provider.sell_batch(purchase_requests)
        )
        assert not any(isinstance(r, Exception) for r in licenses)
        timings["sell-batch"] = (seconds, modexp)

        exchange_requests = [
            build_exchange_request(senders[i % len(senders)], license_)
            for i, license_ in enumerate(licenses)
        ]
        seconds, modexp, anonymous = _timed(
            lambda: [deployment.provider.exchange(r) for r in exchange_requests]
        )
        timings["exchange"] = (seconds, modexp)

        redeem_requests = [
            build_redeem_request(
                receiver, deployment.provider, deployment.issuer, anon
            )
            for anon in anonymous
        ]
        seconds, modexp, redeemed = _timed(
            lambda: deployment.provider.redeem_batch(redeem_requests)
        )
        assert not any(isinstance(r, Exception) for r in redeemed)
        timings["redeem-batch"] = (seconds, modexp)

        # Screening: replay the (now spent) bearer tokens through the
        # full verification desk — every check runs, no licence is
        # minted, so the row is pure modexp + hash throughput.
        replay_requests = [
            build_redeem_request(
                replayer,
                deployment.provider,
                deployment.issuer,
                request.anonymous_license,
            )
            for request in redeem_requests
        ]
        seconds, modexp, verdicts = _timed(
            lambda: deployment.provider.redeem_batch(replay_requests)
        )
        assert all(isinstance(v, DoubleRedemptionError) for v in verdicts)
        timings["redeem-screen"] = (seconds, modexp)

        outputs = {
            "licenses": [codec.encode(r.as_dict()) for r in licenses],
            "anonymous": [codec.encode(a.as_dict()) for a in anonymous],
            "redeemed": [codec.encode(r.as_dict()) for r in redeemed],
        }
    return timings, outputs


class TestBackendParity:
    def test_backend_parity_and_speedup(self, experiment):
        backends = ["pure"]
        if abackend.gmpy2_available():
            backends.append("gmpy2")
        timings: dict[str, dict[str, tuple[float, int]]] = {}
        outputs: dict[str, dict[str, list[bytes]]] = {}
        for name in backends:
            timings[name], outputs[name] = _core_ops(name)
            for op in OPS:
                seconds, modexp = timings[name][op]
                experiment.row(
                    op=op,
                    arm=name,
                    seconds=seconds,
                    ops_per_s=N_REQUESTS / seconds,
                    modexp=modexp,
                    # gmpy2 arms only exist where the package does;
                    # the regression checker must not read their
                    # absence on a pure-only host as lost coverage.
                    conditional=name != "pure",
                )

        # Byte-identity across backends: whichever backend computed
        # them, the protocol outputs must be the same bytes.
        reference = outputs[backends[0]]
        for name in backends[1:]:
            for kind, encoded in reference.items():
                assert outputs[name][kind] == encoded, (
                    f"{kind} bytes diverge between {backends[0]} and {name}"
                )

        if len(backends) > 1:
            for op in OPS:
                pure_seconds, _ = timings["pure"][op]
                fast_seconds, _ = timings[backends[-1]][op]
                experiment.row(
                    op=op,
                    arm=f"speedup ({backends[-1]} vs pure)",
                    seconds=None,
                    ops_per_s=None,
                    speedup=pure_seconds / fast_seconds,
                    conditional=True,
                )
