"""E6 "Table 2" — wire sizes of the system's objects.

The paper's structural claim about anonymous licences — "they do not
include any identifier of the user ... however they include a unique
identifier" — has a measurable consequence: the anonymous licence is
the *smallest* credential in the system, and the personalized licence
pays for the pseudonym and wrapped key it carries.  This table pins
those sizes at two key strengths.
"""

from __future__ import annotations

import itertools

import pytest

from repro import codec
from repro.core.protocols import purchase_content

_counter = itertools.count()

KEY_SIZES = [1024, 2048]


@pytest.mark.parametrize("rsa_bits", KEY_SIZES)
class TestObjectSizes:
    def test_sizes(self, benchmark, deployment_for_bits, experiment, rsa_bits):
        deployment = deployment_for_bits(rsa_bits)
        user = deployment.add_user(f"e6-user-{next(_counter)}", balance=10_000)
        license_ = purchase_content(
            user, deployment.provider, deployment.issuer, deployment.bank, "bench-song"
        )
        anonymous = user.transfer_out(license_.license_id, provider=deployment.provider)
        certificate = user.certificate_for_transaction(deployment.issuer)
        coins = user.coins_for(1, deployment.bank)
        coin = coins[0]

        # Benchmark the encode path itself (the hot marshalling op).
        benchmark(lambda: codec.encode(license_.as_dict()))

        experiment.row(
            rsa_bits=rsa_bits, object="personal-license", bytes=license_.wire_size()
        )
        experiment.row(
            rsa_bits=rsa_bits, object="anonymous-license", bytes=anonymous.wire_size()
        )
        experiment.row(
            rsa_bits=rsa_bits, object="pseudonym-certificate", bytes=certificate.wire_size()
        )
        experiment.row(rsa_bits=rsa_bits, object="coin", bytes=coin.wire_size())

        # The structural claim, asserted.
        assert anonymous.wire_size() < license_.wire_size()
        payload = anonymous.as_dict()
        assert "pseudonym" not in payload and "key" not in payload
