"""Marketplace simulator: both modes run; the privacy diff is measurable."""

import pytest

from repro.sim.marketplace import MODE_BASELINE, MODE_P2DRM, MarketplaceSimulator
from repro.sim.workload import WorkloadConfig


def small_config(**overrides):
    defaults = dict(n_users=4, n_contents=5, n_events=25, seed=11)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


@pytest.fixture(scope="module")
def p2drm_report():
    simulator = MarketplaceSimulator(small_config(), mode=MODE_P2DRM, rsa_bits=512)
    return simulator, simulator.run()


@pytest.fixture(scope="module")
def baseline_report():
    simulator = MarketplaceSimulator(small_config(), mode=MODE_BASELINE, rsa_bits=512)
    return simulator, simulator.run()


class TestRuns:
    def test_events_accounted(self, p2drm_report):
        _, report = p2drm_report
        total = report.purchases + report.plays + report.transfers
        assert total + report.skipped + report.denials == 25

    def test_identical_event_streams_across_modes(self, p2drm_report, baseline_report):
        """Same seed → same workload → same action counts in both modes
        (the comparison is apples-to-apples)."""
        _, p2 = p2drm_report
        _, bl = baseline_report
        assert (p2.purchases, p2.plays, p2.transfers) == (
            bl.purchases,
            bl.plays,
            bl.transfers,
        )

    def test_time_advances(self, p2drm_report):
        _, report = p2drm_report
        assert report.sim_seconds > 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MarketplaceSimulator(small_config(), mode="quantum")


class TestGroundTruth:
    def test_ground_truth_covers_transactions(self, p2drm_report):
        simulator, report = p2drm_report
        assert len(report.ground_truth) >= report.purchases
        cards = {u.card.card_id for u in simulator._users.values()}
        assert set(report.ground_truth.values()) <= cards

    def test_baseline_needs_no_ground_truth(self, baseline_report):
        _, report = baseline_report
        assert report.ground_truth == {}


class TestOperatorKnowledgeDiff:
    def test_baseline_identifies_p2drm_does_not(self, p2drm_report, baseline_report):
        _, p2 = p2drm_report
        _, bl = baseline_report
        assert bl.operator_knowledge["identified"] is True
        assert p2.operator_knowledge["identified"] is False

    def test_profile_granularity(self, p2drm_report, baseline_report):
        """Baseline: profiles ≈ users with multi-item dossiers.
        P2DRM: one licence per profile shard."""
        simulator, p2 = p2drm_report
        _, bl = baseline_report
        if bl.purchases >= 2:
            assert bl.operator_knowledge["max_profile"] >= 1
            assert bl.operator_knowledge["profiles"] <= simulator.config.n_users
        assert p2.operator_knowledge["max_profile"] == 1

    def test_p2drm_transfer_edges_pseudonymous_only(self, p2drm_report):
        _, report = p2drm_report
        assert report.operator_knowledge["transfer_edges"] == 0
        if report.transfers:
            assert report.operator_knowledge["graph_transfer_pairs"] == report.transfers


class TestPrefetch:
    def test_prefetch_certifications_appear(self):
        config = small_config(prefetch_rate=1.0, n_events=15)
        simulator = MarketplaceSimulator(config, mode=MODE_P2DRM, rsa_bits=512)
        report = simulator.run()
        certifications = simulator.deployment.issuer.audit_log.entries(
            event="pseudonym_certified"
        )
        # More certs than transactions: the cover traffic exists.
        transactions = report.purchases + report.transfers
        assert len(certifications) >= transactions


class TestDeferredRedemption:
    @pytest.fixture(scope="class")
    def redemption_report(self):
        from repro.sim.workload import (
            ACTION_BUY,
            ACTION_PLAY,
            ACTION_REDEEM,
            ACTION_TRANSFER,
        )

        config = small_config(
            n_events=40,
            seed=7,
            action_weights={
                ACTION_BUY: 0.40,
                ACTION_PLAY: 0.15,
                ACTION_TRANSFER: 0.30,
                ACTION_REDEEM: 0.15,
            },
            redeem_batch_size=3,
        )
        simulator = MarketplaceSimulator(config, mode=MODE_P2DRM, rsa_bits=512)
        return simulator, simulator.run()

    def test_redemptions_happen_and_batch(self, redemption_report):
        _, report = redemption_report
        assert report.redemptions > 0
        # With batch size 3 and enough parked licences, at least some
        # redemption events went through the batched desk.
        assert report.batched_redemptions > 0

    def test_conservation_of_bearer_licenses(self, redemption_report):
        """Every exchanged licence is either redeemed or still parked."""
        _, report = redemption_report
        assert (
            report.redemptions + report.pending_redemptions == report.transfers
        )

    def test_events_accounted_with_redemptions(self, redemption_report):
        _, report = redemption_report
        total = (
            report.purchases
            + report.plays
            + report.transfers
            + report.skipped
            + report.denials
        )
        # Redeem events drain the pool but are themselves one event;
        # they show up as neither purchase/play/transfer nor denial.
        redeem_events = 40 - total
        assert redeem_events > 0

    def test_ground_truth_covers_redeemed(self, redemption_report):
        simulator, report = redemption_report
        cards = {u.card.card_id for u in simulator._users.values()}
        assert set(report.ground_truth.values()) <= cards
        assert len(report.ground_truth) >= report.purchases + report.redemptions

    def test_default_config_unchanged(self, p2drm_report):
        """Without a redeem weight, transfers personalize inline."""
        _, report = p2drm_report
        assert report.pending_redemptions == 0
        assert report.batched_redemptions == 0

    def test_redeem_batch_size_validated(self):
        with pytest.raises(ValueError):
            small_config(redeem_batch_size=0)


class TestServiceMode:
    def test_service_workers_requires_p2drm(self):
        with pytest.raises(ValueError):
            MarketplaceSimulator(
                small_config(), mode=MODE_BASELINE, service_workers=2
            )

    def test_small_run_through_gateway(self):
        """The sim drives the 2-worker gateway end to end; the report
        schema is byte-for-byte the in-process one."""
        config = small_config(n_events=12, seed=23)
        with MarketplaceSimulator(
            config, rsa_bits=512, service_workers=2
        ) as simulator:
            from repro.service.gateway import ServiceGateway

            assert isinstance(simulator.provider, ServiceGateway)
            report = simulator.run()
        assert report.mode == MODE_P2DRM
        assert report.purchases + report.plays + report.transfers + report.skipped \
            == config.n_events
        assert set(report.summary()) >= {"purchases", "operator_identified"}

    def test_tcp_transport_requires_workers(self):
        with pytest.raises(ValueError):
            MarketplaceSimulator(small_config(), service_transport="tcp")
        with pytest.raises(ValueError):
            MarketplaceSimulator(
                small_config(), service_workers=2, service_transport="carrier-pigeon"
            )

    def test_small_run_over_tcp_matches_queue_transport(self):
        """The same workload through real localhost sockets and through
        the in-process queues: identical report, identical ground
        truth — the transport is invisible to the protocol."""
        config = small_config(n_events=12, seed=23)
        with MarketplaceSimulator(
            config, rsa_bits=512, service_workers=2, service_shards=4
        ) as queue_sim:
            queue_report = queue_sim.run()
        with MarketplaceSimulator(
            config,
            rsa_bits=512,
            service_workers=2,
            service_shards=4,
            service_transport="tcp",
        ) as tcp_sim:
            from repro.service.netserver import NetClient

            assert isinstance(tcp_sim.provider, NetClient)
            tcp_report = tcp_sim.run()
        assert tcp_report.summary() == queue_report.summary()
        assert tcp_report.ground_truth == queue_report.ground_truth

    @pytest.mark.slow
    def test_gateway_run_matches_in_process_run(self):
        """Same seed, same workload: the service-layer run and the
        in-process run produce the identical report — counts and
        operator knowledge both."""
        from repro.sim.workload import (
            ACTION_BUY,
            ACTION_PLAY,
            ACTION_REDEEM,
            ACTION_TRANSFER,
        )

        config = small_config(
            n_events=30,
            seed=31,
            action_weights={
                ACTION_BUY: 0.4,
                ACTION_PLAY: 0.3,
                ACTION_TRANSFER: 0.2,
                ACTION_REDEEM: 0.1,
            },
            redeem_batch_size=3,
        )
        with MarketplaceSimulator(
            config, rsa_bits=512, service_workers=2, service_shards=4
        ) as service_sim:
            service_report = service_sim.run()
        in_process_report = MarketplaceSimulator(config, rsa_bits=512).run()
        assert service_report.summary() == in_process_report.summary()
        assert service_report.ground_truth == in_process_report.ground_truth
