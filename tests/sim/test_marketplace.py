"""Marketplace simulator: both modes run; the privacy diff is measurable."""

import pytest

from repro.sim.marketplace import MODE_BASELINE, MODE_P2DRM, MarketplaceSimulator
from repro.sim.workload import WorkloadConfig


def small_config(**overrides):
    defaults = dict(n_users=4, n_contents=5, n_events=25, seed=11)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


@pytest.fixture(scope="module")
def p2drm_report():
    simulator = MarketplaceSimulator(small_config(), mode=MODE_P2DRM, rsa_bits=512)
    return simulator, simulator.run()


@pytest.fixture(scope="module")
def baseline_report():
    simulator = MarketplaceSimulator(small_config(), mode=MODE_BASELINE, rsa_bits=512)
    return simulator, simulator.run()


class TestRuns:
    def test_events_accounted(self, p2drm_report):
        _, report = p2drm_report
        total = report.purchases + report.plays + report.transfers
        assert total + report.skipped + report.denials == 25

    def test_identical_event_streams_across_modes(self, p2drm_report, baseline_report):
        """Same seed → same workload → same action counts in both modes
        (the comparison is apples-to-apples)."""
        _, p2 = p2drm_report
        _, bl = baseline_report
        assert (p2.purchases, p2.plays, p2.transfers) == (
            bl.purchases,
            bl.plays,
            bl.transfers,
        )

    def test_time_advances(self, p2drm_report):
        _, report = p2drm_report
        assert report.sim_seconds > 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MarketplaceSimulator(small_config(), mode="quantum")


class TestGroundTruth:
    def test_ground_truth_covers_transactions(self, p2drm_report):
        simulator, report = p2drm_report
        assert len(report.ground_truth) >= report.purchases
        cards = {u.card.card_id for u in simulator._users.values()}
        assert set(report.ground_truth.values()) <= cards

    def test_baseline_needs_no_ground_truth(self, baseline_report):
        _, report = baseline_report
        assert report.ground_truth == {}


class TestOperatorKnowledgeDiff:
    def test_baseline_identifies_p2drm_does_not(self, p2drm_report, baseline_report):
        _, p2 = p2drm_report
        _, bl = baseline_report
        assert bl.operator_knowledge["identified"] is True
        assert p2.operator_knowledge["identified"] is False

    def test_profile_granularity(self, p2drm_report, baseline_report):
        """Baseline: profiles ≈ users with multi-item dossiers.
        P2DRM: one licence per profile shard."""
        simulator, p2 = p2drm_report
        _, bl = baseline_report
        if bl.purchases >= 2:
            assert bl.operator_knowledge["max_profile"] >= 1
            assert bl.operator_knowledge["profiles"] <= simulator.config.n_users
        assert p2.operator_knowledge["max_profile"] == 1

    def test_p2drm_transfer_edges_pseudonymous_only(self, p2drm_report):
        _, report = p2drm_report
        assert report.operator_knowledge["transfer_edges"] == 0
        if report.transfers:
            assert report.operator_knowledge["graph_transfer_pairs"] == report.transfers


class TestPrefetch:
    def test_prefetch_certifications_appear(self):
        config = small_config(prefetch_rate=1.0, n_events=15)
        simulator = MarketplaceSimulator(config, mode=MODE_P2DRM, rsa_bits=512)
        report = simulator.run()
        certifications = simulator.deployment.issuer.audit_log.entries(
            event="pseudonym_certified"
        )
        # More certs than transactions: the cover traffic exists.
        transactions = report.purchases + report.transfers
        assert len(certifications) >= transactions
