"""Workload generator: distributions and determinism."""

import numpy as np
import pytest

from repro.sim.workload import (
    ACTION_BUY,
    ACTION_PLAY,
    ACTION_TRANSFER,
    WorkloadConfig,
    WorkloadGenerator,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0},
            {"n_contents": 0},
            {"mean_interarrival": 0},
            {"action_weights": {}},
            {"action_weights": {"buy": -1}},
            {"min_price": 0},
            {"max_price": 0, "min_price": 2},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)


class TestDistributions:
    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(WorkloadConfig(seed=42))
        b = WorkloadGenerator(WorkloadConfig(seed=42))
        assert [a.pick_content() for _ in range(20)] == [
            b.pick_content() for _ in range(20)
        ]
        assert [a.pick_action() for _ in range(20)] == [
            b.pick_action() for _ in range(20)
        ]

    def test_zipf_head_heavier_than_tail(self):
        generator = WorkloadGenerator(
            WorkloadConfig(n_contents=50, zipf_s=1.2, seed=1)
        )
        draws = [generator.pick_content() for _ in range(3000)]
        head = sum(1 for d in draws if d < 5)
        tail = sum(1 for d in draws if d >= 45)
        assert head > 5 * tail

    def test_popularity_pmf_normalized_and_decreasing(self):
        generator = WorkloadGenerator(WorkloadConfig(n_contents=10))
        pmf = generator.content_popularity()
        assert pmf.sum() == pytest.approx(1.0)
        assert all(pmf[i] >= pmf[i + 1] for i in range(9))

    def test_action_mix_respected(self):
        config = WorkloadConfig(
            action_weights={ACTION_BUY: 1.0, ACTION_PLAY: 0.0, ACTION_TRANSFER: 0.0}
        )
        generator = WorkloadGenerator(config)
        assert all(generator.pick_action() == ACTION_BUY for _ in range(50))

    def test_gaps_positive_with_mean(self):
        generator = WorkloadGenerator(WorkloadConfig(mean_interarrival=30, seed=3))
        gaps = [generator.next_gap() for _ in range(2000)]
        assert min(gaps) >= 1
        assert 20 < np.mean(gaps) < 40

    def test_user_ranges(self):
        generator = WorkloadGenerator(WorkloadConfig(n_users=5))
        assert all(0 <= generator.pick_user() < 5 for _ in range(100))
        assert all(
            generator.pick_other_user(2) != 2 for _ in range(100)
        )

    def test_other_user_needs_two(self):
        generator = WorkloadGenerator(WorkloadConfig(n_users=1))
        with pytest.raises(ValueError):
            generator.pick_other_user(0)

    def test_prices_in_range(self):
        generator = WorkloadGenerator(WorkloadConfig(min_price=2, max_price=4))
        assert all(2 <= generator.pick_price() <= 4 for _ in range(100))

    def test_prefetch_counts(self):
        off = WorkloadGenerator(WorkloadConfig(prefetch_rate=0.0))
        assert all(off.pick_prefetch_count() == 0 for _ in range(20))
        on = WorkloadGenerator(WorkloadConfig(prefetch_rate=2.0, seed=5))
        counts = [on.pick_prefetch_count() for _ in range(500)]
        assert 1.5 < np.mean(counts) < 2.5
