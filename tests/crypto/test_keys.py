"""Key serialization and fingerprints."""

import pytest

from repro.crypto import keys as keymod
from repro.crypto.elgamal import generate_elgamal_key
from repro.crypto.schnorr import generate_schnorr_key
from repro.errors import KeyFormatError


@pytest.fixture()
def all_keys(test_group, rsa512, rng):
    schnorr = generate_schnorr_key(test_group, rng=rng)
    elgamal = generate_elgamal_key(test_group, rng=rng)
    return [
        rsa512,
        rsa512.public_key,
        schnorr,
        schnorr.public_key,
        elgamal,
        elgamal.public_key,
    ]


class TestRoundTrips:
    def test_all_kinds_roundtrip(self, all_keys):
        for key in all_keys:
            data = keymod.key_to_dict(key)
            assert keymod.key_from_dict(data) == key

    def test_bytes_roundtrip(self, all_keys):
        from repro import codec

        for key in all_keys:
            assert keymod.key_from_dict(codec.decode(keymod.key_bytes(key))) == key


class TestPublicPart:
    def test_private_maps_to_public(self, all_keys):
        private_keys = all_keys[::2]
        public_keys = all_keys[1::2]
        for private, public in zip(private_keys, public_keys):
            assert keymod.public_part(private) == public

    def test_public_passes_through(self, all_keys):
        for key in all_keys[1::2]:
            assert keymod.public_part(key) is key


class TestFingerprints:
    def test_private_and_public_share_fingerprint(self, all_keys):
        for private, public in zip(all_keys[::2], all_keys[1::2]):
            assert keymod.fingerprint(private) == keymod.fingerprint(public)

    def test_distinct_keys_distinct_fingerprints(self, all_keys):
        fingerprints = {keymod.fingerprint(k).hex() for k in all_keys[1::2]}
        assert len(fingerprints) == 3

    def test_fingerprint_is_32_bytes(self, all_keys):
        assert all(len(keymod.fingerprint(k)) == 32 for k in all_keys)


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(KeyFormatError):
            keymod.key_from_dict({"kind": "dsa-pub"})

    def test_malformed_dict(self):
        with pytest.raises(KeyFormatError):
            keymod.key_from_dict({"kind": "rsa-pub", "n": "not-an-int-able"})
        with pytest.raises(KeyFormatError):
            keymod.key_from_dict({"kind": "schnorr-pub", "group": "nope", "y": 4})

    def test_unsupported_object(self):
        with pytest.raises(KeyFormatError):
            keymod.key_to_dict(object())
        with pytest.raises(KeyFormatError):
            keymod.public_part("not-a-key")
