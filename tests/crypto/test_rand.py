"""Random sources: determinism, ranges, forking."""

import pytest

from repro.crypto.rand import DeterministicRandomSource, SystemRandomSource


class TestDeterministicSource:
    def test_same_seed_same_stream(self):
        a = DeterministicRandomSource(b"seed")
        b = DeterministicRandomSource(b"seed")
        assert a.random_bytes(100) == b.random_bytes(100)

    def test_different_seed_different_stream(self):
        a = DeterministicRandomSource(b"seed-1")
        b = DeterministicRandomSource(b"seed-2")
        assert a.random_bytes(32) != b.random_bytes(32)

    def test_chunking_does_not_change_stream(self):
        a = DeterministicRandomSource(b"s")
        b = DeterministicRandomSource(b"s")
        left = a.random_bytes(10) + a.random_bytes(22)
        assert left == b.random_bytes(32)

    @pytest.mark.parametrize("seed", [b"bytes", "string", 1234, -5])
    def test_seed_types(self, seed):
        source = DeterministicRandomSource(seed)
        assert len(source.random_bytes(8)) == 8

    def test_fork_independent_and_deterministic(self):
        a = DeterministicRandomSource(b"root")
        b = DeterministicRandomSource(b"root")
        fork_a = a.fork("child")
        fork_b = b.fork("child")
        assert fork_a.random_bytes(16) == fork_b.random_bytes(16)
        other = DeterministicRandomSource(b"root").fork("other")
        assert other.random_bytes(16) != DeterministicRandomSource(b"root").fork(
            "child"
        ).random_bytes(16)

    def test_fork_does_not_disturb_parent(self):
        a = DeterministicRandomSource(b"root")
        b = DeterministicRandomSource(b"root")
        a.fork("x")
        assert a.random_bytes(16) == b.random_bytes(16)


class TestIntegerHelpers:
    def test_randbits_range(self):
        source = DeterministicRandomSource(b"bits")
        for bits in (1, 7, 8, 9, 64, 200):
            for _ in range(20):
                value = source.randbits(bits)
                assert 0 <= value < 2**bits

    def test_randbits_zero(self):
        assert DeterministicRandomSource(b"z").randbits(0) == 0

    def test_randint_below_covers_range(self):
        source = DeterministicRandomSource(b"below")
        seen = {source.randint_below(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_randint_below_rejects_nonpositive(self):
        source = DeterministicRandomSource(b"x")
        with pytest.raises(ValueError):
            source.randint_below(0)

    def test_randint_range(self):
        source = DeterministicRandomSource(b"range")
        for _ in range(100):
            value = source.randint_range(10, 15)
            assert 10 <= value < 15

    def test_random_odd_has_exact_bits(self):
        source = DeterministicRandomSource(b"odd")
        for _ in range(20):
            value = source.random_odd(64)
            assert value % 2 == 1
            assert value.bit_length() == 64

    def test_shuffle_is_permutation(self):
        source = DeterministicRandomSource(b"shuffle")
        items = list(range(50))
        shuffled = list(items)
        source.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_choice(self):
        source = DeterministicRandomSource(b"choice")
        items = ["a", "b", "c"]
        assert all(source.choice(items) in items for _ in range(20))
        with pytest.raises(ValueError):
            source.choice([])


class TestSystemSource:
    def test_basic_properties(self):
        source = SystemRandomSource()
        assert len(source.random_bytes(16)) == 16
        assert source.random_bytes(16) != source.random_bytes(16)
        assert source.fork("x") is source

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SystemRandomSource().random_bytes(-1)
