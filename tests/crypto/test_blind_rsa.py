"""Blind signatures: unblinding correctness and — the property the whole
system rides on — signer-side unlinkability."""

import pytest

from repro.crypto.blind_rsa import (
    BlindingClient,
    BlindSigner,
    full_domain_hash,
    verify_blind_signature,
)
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import InvalidSignature, ParameterError


@pytest.fixture()
def signer(rsa768):
    return BlindSigner(rsa768)


@pytest.fixture()
def client(rsa768, rng):
    return BlindingClient(rsa768.public_key, rng=rng)


class TestBlindFlow:
    def test_blind_sign_unblind_verify(self, signer, client):
        blinded, state = client.blind(b"credential")
        signature = client.unblind(signer.sign_blinded(blinded), state)
        verify_blind_signature(b"credential", signature, signer.public_key)

    def test_signature_is_plain_fdh(self, signer, client, rsa768):
        """The unblinded signature equals a direct FDH signature — the
        signer could not watermark it even if it wanted to."""
        blinded, state = client.blind(b"msg")
        signature = client.unblind(signer.sign_blinded(blinded), state)
        direct = rsa768.private_op(full_domain_hash(b"msg", rsa768.public_key))
        assert int.from_bytes(signature, "big") == direct

    def test_wrong_message_rejected(self, signer, client):
        blinded, state = client.blind(b"one")
        signature = client.unblind(signer.sign_blinded(blinded), state)
        with pytest.raises(InvalidSignature):
            verify_blind_signature(b"two", signature, signer.public_key)

    def test_tampered_signature_rejected(self, signer, client):
        blinded, state = client.blind(b"m")
        signature = bytearray(client.unblind(signer.sign_blinded(blinded), state))
        signature[0] ^= 1
        with pytest.raises(InvalidSignature):
            verify_blind_signature(b"m", bytes(signature), signer.public_key)

    def test_unblind_detects_bad_blind_signature(self, signer, client):
        blinded, state = client.blind(b"m")
        with pytest.raises(InvalidSignature):
            client.unblind((signer.sign_blinded(blinded) + 1) % signer.public_key.n, state)

    def test_out_of_range_rejected(self, signer, client):
        with pytest.raises(ParameterError):
            signer.sign_blinded(signer.public_key.n)
        __, state = client.blind(b"m")
        with pytest.raises(ParameterError):
            client.unblind(-1, state)


class TestBlindness:
    def test_signer_view_independent_of_message(self, rsa768):
        """The blinded value for message A under blinding factor r is a
        valid blinded value for *any* message B under some factor r' —
        computationally the signer's view carries no message info.
        Concretely: blinded values for distinct messages are both
        uniform-looking group elements; check they never equal the raw
        FDH (i.e. blinding actually happened) and differ per run."""
        rng = DeterministicRandomSource(b"blindness")
        client = BlindingClient(rsa768.public_key, rng=rng)
        for message in (b"A", b"B"):
            blinded_1, _ = client.blind(message)
            blinded_2, _ = client.blind(message)
            digest = full_domain_hash(message, rsa768.public_key)
            assert blinded_1 != blinded_2
            assert blinded_1 != digest and blinded_2 != digest

    def test_two_signatures_not_linkable_by_equality(self, rsa768):
        """Signatures from two blind sessions cannot be matched to the
        sessions by comparing signer-side transcripts to the final
        signatures (the unblinded value never appears in them)."""
        rng = DeterministicRandomSource(b"sessions")
        signer = BlindSigner(rsa768)
        client = BlindingClient(rsa768.public_key, rng=rng)
        transcripts = []
        signatures = []
        for message in (b"cert-1", b"cert-2"):
            blinded, state = client.blind(message)
            blind_signature = signer.sign_blinded(blinded)
            transcripts.append((blinded, blind_signature))
            signatures.append(int.from_bytes(client.unblind(blind_signature, state), "big"))
        flat = [value for pair in transcripts for value in pair]
        assert not set(signatures) & set(flat)


class TestFdh:
    def test_domain_separated(self, rsa768):
        assert full_domain_hash(b"x", rsa768.public_key) != int.from_bytes(
            b"x", "big"
        )

    def test_in_range(self, rsa768):
        for i in range(20):
            assert 0 <= full_domain_hash(str(i).encode(), rsa768.public_key) < rsa768.n

    def test_signature_length_check(self, rsa768):
        with pytest.raises(InvalidSignature):
            verify_blind_signature(b"m", b"short", rsa768.public_key)
