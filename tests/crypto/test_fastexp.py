"""Fast-exponentiation kernel: fixed-base tables, multi-exp, batching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import instrument
from repro.crypto import fastexp
from repro.crypto.blind_rsa import (
    BlindingClient,
    BlindSigner,
    batch_verify_blind_signatures,
)
from repro.crypto.fastexp import FixedBaseExp, multi_pow
from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.schnorr import (
    SchnorrSignature,
    batch_verify,
    generate_schnorr_key,
)
from repro.errors import InvalidSignature, ParameterError

# A small safe prime (p = 2q + 1, q = 11) keeps pure-arithmetic
# property tests fast; group-level tests use the real test-512 group.
_SMALL_P = 23


class TestFixedBaseExp:
    def test_matches_pow_small(self):
        table = FixedBaseExp(5, _SMALL_P, exponent_bits=16, window=3)
        for exponent in range(200):
            assert table.pow(exponent) == pow(5, exponent, _SMALL_P)

    @given(exponent=st.integers(min_value=0, max_value=2**512 - 1))
    @settings(max_examples=30, deadline=None)
    def test_matches_pow_group_sized(self, test_group, exponent):
        table = FixedBaseExp(
            test_group.g, test_group.p, exponent_bits=test_group.p.bit_length()
        )
        assert table.pow(exponent) == pow(test_group.g, exponent, test_group.p)

    @given(window=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_every_window_width_agrees(self, window):
        table = FixedBaseExp(7, 1009, exponent_bits=24, window=window)
        for exponent in (0, 1, 2, 255, 1000, (1 << 24) - 1):
            assert table.pow(exponent) == pow(7, exponent, 1009)

    def test_out_of_range_exponents_fall_back(self):
        table = FixedBaseExp(3, _SMALL_P, exponent_bits=8)
        assert table.pow(1 << 20) == pow(3, 1 << 20, _SMALL_P)
        assert table.pow(-3) == pow(3, -3, _SMALL_P)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            FixedBaseExp(3, 1, exponent_bits=8)
        with pytest.raises(ParameterError):
            FixedBaseExp(3, _SMALL_P, exponent_bits=0)
        with pytest.raises(ParameterError):
            FixedBaseExp(3, _SMALL_P, exponent_bits=8, window=0)


class TestRegistry:
    def test_precompute_idempotent(self, test_group):
        first = fastexp.precompute(
            test_group.g, test_group.p, exponent_bits=test_group.p.bit_length()
        )
        second = fastexp.precompute(
            test_group.g, test_group.p, exponent_bits=test_group.p.bit_length()
        )
        assert first is second

    def test_lookup_honours_disable_switch(self, test_group):
        fastexp.precompute(test_group.g, test_group.p, exponent_bits=64)
        assert fastexp.lookup(test_group.g, test_group.p) is not None
        with fastexp.tables_disabled():
            assert fastexp.lookup(test_group.g, test_group.p) is None
            assert fastexp.has_table(test_group.g, test_group.p)
        assert fastexp.lookup(test_group.g, test_group.p) is not None

    def test_power_identical_with_and_without_tables(self, test_group, rng):
        exponent = test_group.random_exponent(rng)
        test_group.precompute_generator()
        warm = test_group.power(test_group.g, exponent)
        with fastexp.tables_disabled():
            cold = test_group.power(test_group.g, exponent)
        assert warm == cold == pow(test_group.g, exponent, test_group.p)

    def test_table_hits_are_counted(self, test_group, rng):
        test_group.precompute_generator()
        with instrument.measure() as ops:
            test_group.power(test_group.g, test_group.random_exponent(rng))
        assert ops.get("modexp") == 1
        assert ops.get("modexp.fixed_base") == 1
        assert ops.get("modexp.cold") == 0
        with fastexp.tables_disabled():
            with instrument.measure() as ops:
                test_group.power(test_group.g, test_group.random_exponent(rng))
        assert ops.get("modexp.cold") == 1
        assert ops.get("modexp.fixed_base") == 0


class TestMultiPow:
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1008),
                st.integers(min_value=0, max_value=2**64),
            ),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_product_of_pows(self, pairs):
        expected = 1
        for base, exponent in pairs:
            expected = (expected * pow(base, exponent, 1009)) % 1009
        assert multi_pow(pairs, 1009) == expected

    def test_empty_product_is_one(self):
        assert multi_pow([], 1009) == 1

    def test_negative_exponent_rejected(self):
        with pytest.raises(ParameterError):
            multi_pow([(3, -1)], 1009)

    def test_group_multi_power_counts_one_chain(self, test_group, rng):
        pairs = [
            (test_group.power(test_group.g, test_group.random_exponent(rng)),
             test_group.random_exponent(rng))
            for _ in range(5)
        ]
        with instrument.measure() as ops:
            result = test_group.multi_power(pairs)
        assert ops.get("modexp") == 1
        assert ops.get("modexp.multi") == 1
        expected = 1
        for base, exponent in pairs:
            expected = (expected * pow(base, exponent, test_group.p)) % test_group.p
        assert result == expected


class TestSubgroupMembership:
    @given(exponent=st.integers(min_value=1, max_value=2**64))
    @settings(max_examples=30, deadline=None)
    def test_jacobi_contains_matches_exponentiation(self, test_group, exponent):
        element = pow(test_group.g, exponent, test_group.p)
        assert test_group.contains(element)
        assert pow(element, test_group.q, test_group.p) == 1

    @given(value=st.integers(min_value=2, max_value=2**64))
    @settings(max_examples=30, deadline=None)
    def test_jacobi_contains_matches_on_arbitrary_values(self, test_group, value):
        value %= test_group.p
        by_jacobi = test_group.contains(value)
        by_pow = (
            1 <= value < test_group.p
            and pow(value, test_group.q, test_group.p) == 1
        )
        assert by_jacobi == by_pow


def _signed_batch(group, rng, count):
    keys = [generate_schnorr_key(group, rng=rng) for _ in range(count)]
    messages = [f"batch-message-{index}".encode() for index in range(count)]
    signatures = [key.sign(message, rng=rng) for key, message in zip(keys, messages)]
    return [
        (key.public_key, message, signature)
        for key, message, signature in zip(keys, messages, signatures)
    ]


class TestSchnorrBatchVerify:
    def test_valid_batch_accepted(self, test_group, rng):
        batch_verify(_signed_batch(test_group, rng, 8), rng=rng)

    def test_empty_and_singleton(self, test_group, rng):
        batch_verify([], rng=rng)
        batch_verify(_signed_batch(test_group, rng, 1), rng=rng)

    @given(position=st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_one_forged_signature_rejects_batch(self, test_group, position):
        rng = DeterministicRandomSource(f"forge-{position}")
        items = _signed_batch(test_group, rng, 8)
        key, message, signature = items[position]
        forged = SchnorrSignature(
            challenge=signature.challenge,
            response=(signature.response + 1) % test_group.q,
            commitment=signature.commitment,
        )
        items[position] = (key, message, forged)
        with pytest.raises(InvalidSignature):
            batch_verify(items, rng=rng)

    def test_tampered_message_rejects_batch(self, test_group, rng):
        items = _signed_batch(test_group, rng, 4)
        key, _, signature = items[2]
        items[2] = (key, b"tampered", signature)
        with pytest.raises(InvalidSignature):
            batch_verify(items, rng=rng)

    def test_wrong_commitment_rejects_batch(self, test_group, rng):
        items = _signed_batch(test_group, rng, 4)
        key, message, signature = items[1]
        bogus = test_group.power(test_group.g, 12345)
        items[1] = (
            key,
            message,
            SchnorrSignature(
                challenge=signature.challenge,
                response=signature.response,
                commitment=bogus,
            ),
        )
        with pytest.raises(InvalidSignature):
            batch_verify(items, rng=rng)

    def test_non_subgroup_commitment_rejected(self, test_group, rng):
        items = _signed_batch(test_group, rng, 3)
        key, message, signature = items[0]
        # p - R is the cofactor-2 sign flip: same square, not in the
        # order-q subgroup.  The Jacobi membership check must catch it.
        items[0] = (
            key,
            message,
            SchnorrSignature(
                challenge=signature.challenge,
                response=signature.response,
                commitment=test_group.p - signature.commitment,
            ),
        )
        with pytest.raises(InvalidSignature):
            batch_verify(items, rng=rng)

    def test_legacy_signatures_without_commitment_still_verify(self, test_group, rng):
        items = _signed_batch(test_group, rng, 4)
        legacy = [
            (key, message, SchnorrSignature(sig.challenge, sig.response))
            for key, message, sig in items
        ]
        batch_verify(legacy, rng=rng)
        bad = list(legacy)
        key, message, sig = bad[3]
        bad[3] = (key, message, SchnorrSignature(sig.challenge, (sig.response + 1) % test_group.q))
        with pytest.raises(InvalidSignature):
            batch_verify(bad, rng=rng)

    def test_mixed_groups_rejected(self, test_group, rng):
        from repro.crypto.groups import named_group

        other = named_group("modp-1536")
        items = _signed_batch(test_group, rng, 2)
        other_key = generate_schnorr_key(other, rng=rng)
        items.append((other_key.public_key, b"m", other_key.sign(b"m", rng=rng)))
        with pytest.raises(ParameterError):
            batch_verify(items, rng=rng)

    def test_batch_uses_fewer_exponentiations_than_individual(self, test_group):
        """The acceptance criterion: 64 signatures, counted via instrument."""
        rng = DeterministicRandomSource("batch-64")
        items = _signed_batch(test_group, rng, 64)
        with instrument.measure() as individual:
            for public_key, message, signature in items:
                public_key.verify(message, signature)
        with instrument.measure() as batched:
            batch_verify(items, rng=rng)
        assert batched.get("modexp") < individual.get("modexp")
        # The aggregate equation needs ~3 chains: g^Σ, Π y^zc, Π R^z.
        assert batched.get("modexp") <= 4
        assert individual.get("modexp") >= 64
        assert batched.get("schnorr.batch_verify") == 1
        assert batched.get("schnorr.batch_verify.signatures") == 64


class TestBlindRsaBatch:
    @pytest.fixture()
    def signed_coins(self, rsa512, rng):
        client = BlindingClient(rsa512.public_key, rng=rng)
        signer = BlindSigner(rsa512)
        items = []
        for index in range(6):
            message = f"coin-{index}".encode()
            blinded, state = client.blind(message)
            signature = client.unblind(signer.sign_blinded(blinded), state)
            items.append((message, signature))
        return items

    def test_valid_batch_accepted(self, rsa512, signed_coins):
        with instrument.measure() as ops:
            batch_verify_blind_signatures(signed_coins, rsa512.public_key)
        assert ops.get("rsa.public_op") == 1
        assert ops.get("rsa.batch_verify") == 1

    def test_forged_member_rejected(self, rsa512, signed_coins):
        message, signature = signed_coins[3]
        forged = bytes([signature[0] ^ 1]) + signature[1:]
        signed_coins[3] = (message, forged)
        with pytest.raises(InvalidSignature):
            batch_verify_blind_signatures(signed_coins, rsa512.public_key)

    def test_duplicate_messages_fall_back_to_individual(self, rsa512, signed_coins):
        duplicated = signed_coins + [signed_coins[0]]
        with instrument.measure() as ops:
            batch_verify_blind_signatures(duplicated, rsa512.public_key)
        # Screening needs distinct messages; the duplicate path verifies
        # one by one (no aggregate counter, one public op per item).
        assert ops.get("rsa.batch_verify") == 0
        assert ops.get("rsa.public_op") == len(duplicated)

    def test_empty_batch(self, rsa512):
        batch_verify_blind_signatures([], rsa512.public_key)


class TestCrtPrivateOp:
    def test_private_op_matches_plain_pow(self, rsa512):
        value = 0xDEADBEEF % rsa512.n
        assert rsa512.private_op(value) == pow(value, rsa512.d, rsa512.n)


class TestWnaf:
    @given(
        exponent=st.integers(min_value=0, max_value=2**300),
        width=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_digits_reconstruct_exponent(self, exponent, width):
        digits = fastexp.wnaf_digits(exponent, width)
        assert sum(d << i for i, d in enumerate(digits)) == exponent
        half = 1 << (width - 1)
        for position, digit in enumerate(digits):
            if digit:
                assert digit % 2 != 0 and abs(digit) < half
                # wNAF sparsity: one non-zero digit per width window.
                assert all(d == 0 for d in digits[position + 1 : position + width])

    def test_digit_parameter_validation(self):
        with pytest.raises(ParameterError):
            fastexp.wnaf_digits(-1)
        with pytest.raises(ParameterError):
            fastexp.wnaf_digits(5, 1)

    @given(
        base=st.integers(min_value=0, max_value=2**64),
        exponent=st.integers(min_value=0, max_value=2**256),
        modulus=st.integers(min_value=2, max_value=2**64),
    )
    @settings(max_examples=80, deadline=None)
    def test_wnaf_pow_matches_builtin(self, base, exponent, modulus):
        """Including non-invertible bases, which must fall back."""
        assert fastexp.wnaf_pow(base, exponent, modulus) == pow(base, exponent, modulus)

    def test_wnaf_pow_group_sized(self, test_group, rng):
        for _ in range(5):
            exponent = test_group.random_exponent(rng)
            assert fastexp.wnaf_pow(test_group.g, exponent, test_group.p) == pow(
                test_group.g, exponent, test_group.p
            )

    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1008),
                st.integers(min_value=0, max_value=2**128),
            ),
            min_size=0,
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_multi_pow_wnaf_matches_product(self, pairs):
        expected = 1
        for base, exponent in pairs:
            expected = (expected * pow(base, exponent, 1009)) % 1009
        assert fastexp.multi_pow_wnaf(pairs, 1009) == expected

    @given(
        base=st.integers(min_value=1, max_value=2**64),
        exponent=st.integers(min_value=-(2**256), max_value=-1),
        modulus=st.integers(min_value=2, max_value=2**64),
    )
    @settings(max_examples=80, deadline=None)
    def test_wnaf_pow_negative_exponents(self, base, exponent, modulus):
        """Negative exponents invert once and recode — no pow fallback."""
        try:
            expected = pow(base, exponent, modulus)
        except ValueError:
            with pytest.raises(ValueError):
                fastexp.wnaf_pow(base, exponent, modulus)
            return
        assert fastexp.wnaf_pow(base, exponent, modulus) == expected

    def test_wnaf_pow_negative_group_sized(self, test_group, rng):
        """A full-width negative exponent goes through the signed
        recoding (the satellite fix), matching pow exactly."""
        exponent = -test_group.random_exponent(rng)
        base = pow(test_group.g, 7, test_group.p)
        assert fastexp.wnaf_pow(base, exponent, test_group.p) == pow(
            base, exponent, test_group.p
        )

    def test_wnaf_pow_negative_non_invertible_raises(self):
        # pow(15, -77, 1005) raises ValueError; the recoded path must too.
        with pytest.raises(ValueError):
            fastexp.wnaf_pow(15, -77, 1005)

    def test_multi_pow_wnaf_negative_exponent_rejected(self):
        with pytest.raises(ParameterError):
            fastexp.multi_pow_wnaf([(3, -1)], 1009)

    def test_multi_pow_wnaf_batch_inversion_wide(self, test_group, rng):
        """A batch wide enough that Montgomery's trick covers many
        bases still matches the naive product."""
        pairs = [
            (
                pow(test_group.g, k + 2, test_group.p),
                rng.randint_range(1, test_group.q),
            )
            for k in range(20)
        ]
        expected = 1
        for base, exponent in pairs:
            expected = expected * pow(base, exponent, test_group.p) % test_group.p
        assert fastexp.multi_pow_wnaf(pairs, test_group.p) == expected

    def test_multi_pow_wnaf_non_invertible_base_falls_back(self):
        # 15 shares a factor with 1005; the product must still be exact.
        pairs = [(15, 77), (7, 123)]
        expected = pow(15, 77, 1005) * pow(7, 123, 1005) % 1005
        assert fastexp.multi_pow_wnaf(pairs, 1005) == expected


class TestExpMode:
    def test_default_is_naive(self):
        assert fastexp.exp_mode() == fastexp.MODE_NAIVE

    def test_per_backend_default_is_recorded(self):
        """The PR 4 open question has a written-down answer: both
        built-in backends default to naive (C ``pow``/GMP ``powmod``
        beat a Python-level wNAF loop — numbers in the README), and
        unknown backends get the conservative choice."""
        assert fastexp.default_exp_mode("pure") == fastexp.MODE_NAIVE
        assert fastexp.default_exp_mode("gmpy2") == fastexp.MODE_NAIVE
        assert fastexp.default_exp_mode("some-future-backend") == fastexp.MODE_NAIVE
        # No argument = the active backend's default.
        assert fastexp.default_exp_mode() == fastexp.MODE_NAIVE

    def test_reset_applies_the_backend_default(self):
        fastexp.set_exp_mode(fastexp.MODE_WNAF)
        fastexp.reset()
        assert fastexp.exp_mode() == fastexp.default_exp_mode()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError):
            fastexp.set_exp_mode("montgomery")

    def test_context_manager_restores_mode(self):
        with fastexp.exp_mode_set(fastexp.MODE_WNAF):
            assert fastexp.exp_mode() == fastexp.MODE_WNAF
        assert fastexp.exp_mode() == fastexp.MODE_NAIVE

    def test_cold_pow_dispatches_identically(self, test_group, rng):
        exponent = test_group.random_exponent(rng)
        base = pow(test_group.g, 3, test_group.p)
        naive = fastexp.cold_pow(base, exponent, test_group.p)
        with fastexp.exp_mode_set(fastexp.MODE_WNAF):
            wnaf = fastexp.cold_pow(base, exponent, test_group.p)
        assert naive == wnaf == pow(base, exponent, test_group.p)

    def test_group_power_routes_through_wnaf_and_counts(self, test_group, rng):
        exponent = test_group.random_exponent(rng)
        base = pow(test_group.g, 5, test_group.p)
        with fastexp.tables_disabled(), fastexp.exp_mode_set(fastexp.MODE_WNAF):
            with instrument.measure() as ops:
                result = test_group.power(base, exponent)
        assert result == pow(base, exponent, test_group.p)
        assert ops.get("modexp.cold") == 1
        assert ops.get("modexp.cold.wnaf") == 1

    def test_multi_power_wnaf_mode_counts(self, test_group, rng):
        pairs = [
            (pow(test_group.g, k + 2, test_group.p), test_group.random_exponent(rng))
            for k in range(3)
        ]
        with fastexp.exp_mode_set(fastexp.MODE_WNAF):
            with instrument.measure() as ops:
                result = test_group.multi_power(pairs)
        expected = 1
        for base, exponent in pairs:
            expected = (expected * pow(base, exponent, test_group.p)) % test_group.p
        assert result == expected
        assert ops.get("modexp.multi.wnaf") == 1

    def test_wide_products_stay_exact(self, test_group, rng):
        """The wide-chunk switch in multi_pow_shamir is exercised by
        aggregation-sized products (>= threshold bases)."""
        pairs = [
            (pow(test_group.g, k + 2, test_group.p), test_group.random_exponent(rng))
            for k in range(20)
        ]
        expected = 1
        for base, exponent in pairs:
            expected = (expected * pow(base, exponent, test_group.p)) % test_group.p
        assert fastexp.multi_pow_shamir(pairs, test_group.p) == expected


class TestStateReset:
    def test_reset_restores_pristine_globals(self):
        fastexp.precompute(3, 1009, exponent_bits=16)
        fastexp.set_tables_enabled(False)
        fastexp.set_exp_mode(fastexp.MODE_WNAF)
        fastexp.reset()
        assert fastexp.table_count() == 0
        assert fastexp.tables_enabled() is True
        assert fastexp.exp_mode() == fastexp.MODE_NAIVE

    def test_isolated_state_contains_all_three_globals(self):
        fastexp.reset()
        fastexp.precompute(3, 1009, exponent_bits=16)
        before = fastexp.table_count()
        with fastexp.isolated_state():
            fastexp.set_exp_mode(fastexp.MODE_WNAF)
            fastexp.set_tables_enabled(False)
            fastexp.precompute(5, 1009, exponent_bits=16)
            fastexp.clear_tables()
            assert fastexp.table_count() == 0
        # Everything as it was on entry, including the table registry.
        assert fastexp.table_count() == before
        assert fastexp.has_table(3, 1009)
        assert fastexp.tables_enabled() is True
        assert fastexp.exp_mode() == fastexp.MODE_NAIVE

    def test_isolated_state_restores_on_exception(self):
        fastexp.reset()
        with pytest.raises(RuntimeError):
            with fastexp.isolated_state():
                fastexp.set_exp_mode(fastexp.MODE_WNAF)
                raise RuntimeError("boom")
        assert fastexp.exp_mode() == fastexp.MODE_NAIVE
