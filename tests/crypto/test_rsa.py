"""RSA: keygen invariants, signature schemes, OAEP, tampering."""

import pytest

from repro.crypto.numbers import gcd
from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.rsa import generate_rsa_key
from repro.errors import DecryptionError, InvalidSignature, ParameterError


class TestKeyGeneration:
    def test_modulus_size_exact(self, rsa768):
        assert rsa768.n.bit_length() == 768

    def test_key_equation(self, rsa768):
        lam_multiple = (rsa768.p - 1) * (rsa768.q - 1)
        assert (rsa768.e * rsa768.d) % (lam_multiple // gcd(rsa768.p - 1, rsa768.q - 1)) == 1

    def test_deterministic_generation(self):
        a = generate_rsa_key(512, rng=DeterministicRandomSource(b"k"))
        b = generate_rsa_key(512, rng=DeterministicRandomSource(b"k"))
        assert a == b

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ParameterError):
            generate_rsa_key(256)

    def test_rejects_odd_bits(self):
        with pytest.raises(ParameterError):
            generate_rsa_key(511)

    def test_mismatched_factors_rejected(self, rsa512):
        from repro.crypto.rsa import RsaPrivateKey

        with pytest.raises(ParameterError):
            RsaPrivateKey(n=rsa512.n + 2, e=rsa512.e, d=rsa512.d, p=rsa512.p, q=rsa512.q)


class TestRawOps:
    def test_private_public_inverse(self, rsa512):
        value = 0xDEADBEEF
        assert rsa512.public_key.public_op(rsa512.private_op(value)) == value

    def test_out_of_range_rejected(self, rsa512):
        with pytest.raises(ParameterError):
            rsa512.private_op(rsa512.n)
        with pytest.raises(ParameterError):
            rsa512.public_key.public_op(-1)


class TestPkcs1Signatures:
    def test_sign_verify(self, rsa768):
        signature = rsa768.sign_pkcs1(b"message")
        rsa768.public_key.verify_pkcs1(b"message", signature)

    def test_deterministic(self, rsa768):
        assert rsa768.sign_pkcs1(b"m") == rsa768.sign_pkcs1(b"m")

    def test_wrong_message_rejected(self, rsa768):
        signature = rsa768.sign_pkcs1(b"message")
        with pytest.raises(InvalidSignature):
            rsa768.public_key.verify_pkcs1(b"other", signature)

    def test_bitflip_rejected(self, rsa768):
        signature = bytearray(rsa768.sign_pkcs1(b"message"))
        signature[5] ^= 1
        with pytest.raises(InvalidSignature):
            rsa768.public_key.verify_pkcs1(b"message", bytes(signature))

    def test_wrong_key_rejected(self, rsa768, rsa512):
        signature = rsa768.sign_pkcs1(b"message")
        with pytest.raises(InvalidSignature):
            rsa512.public_key.verify_pkcs1(b"message", signature)

    def test_wrong_length_rejected(self, rsa768):
        with pytest.raises(InvalidSignature):
            rsa768.public_key.verify_pkcs1(b"message", b"\x00" * 10)

    def test_empty_message_ok(self, rsa768):
        rsa768.public_key.verify_pkcs1(b"", rsa768.sign_pkcs1(b""))


class TestPssSignatures:
    def test_sign_verify(self, rsa768, rng):
        signature = rsa768.sign_pss(b"message", rng=rng)
        rsa768.public_key.verify_pss(b"message", signature)

    def test_randomized(self, rsa768, rng):
        a = rsa768.sign_pss(b"m", rng=rng)
        b = rsa768.sign_pss(b"m", rng=rng)
        assert a != b
        rsa768.public_key.verify_pss(b"m", a)
        rsa768.public_key.verify_pss(b"m", b)

    def test_wrong_message_rejected(self, rsa768, rng):
        signature = rsa768.sign_pss(b"message", rng=rng)
        with pytest.raises(InvalidSignature):
            rsa768.public_key.verify_pss(b"other", signature)

    def test_tamper_rejected(self, rsa768, rng):
        signature = bytearray(rsa768.sign_pss(b"message", rng=rng))
        signature[-1] ^= 0xFF
        with pytest.raises(InvalidSignature):
            rsa768.public_key.verify_pss(b"message", bytes(signature))


class TestOaep:
    def test_roundtrip(self, rsa768, rng):
        ciphertext = rsa768.public_key.encrypt_oaep(b"content-key", rng=rng)
        assert rsa768.decrypt_oaep(ciphertext) == b"content-key"

    def test_label_mismatch_rejected(self, rsa768, rng):
        ciphertext = rsa768.public_key.encrypt_oaep(b"secret", label=b"L1", rng=rng)
        with pytest.raises(DecryptionError):
            rsa768.decrypt_oaep(ciphertext, label=b"L2")
        assert rsa768.decrypt_oaep(ciphertext, label=b"L1") == b"secret"

    def test_randomized_encryption(self, rsa768, rng):
        a = rsa768.public_key.encrypt_oaep(b"x", rng=rng)
        b = rsa768.public_key.encrypt_oaep(b"x", rng=rng)
        assert a != b

    def test_tamper_rejected(self, rsa768, rng):
        ciphertext = bytearray(rsa768.public_key.encrypt_oaep(b"x", rng=rng))
        ciphertext[10] ^= 1
        with pytest.raises(DecryptionError):
            rsa768.decrypt_oaep(bytes(ciphertext))

    def test_empty_plaintext(self, rsa768, rng):
        ciphertext = rsa768.public_key.encrypt_oaep(b"", rng=rng)
        assert rsa768.decrypt_oaep(ciphertext) == b""

    def test_max_length_enforced(self, rsa768, rng):
        max_len = rsa768.byte_length - 2 * 32 - 2
        rsa768.public_key.encrypt_oaep(b"x" * max_len, rng=rng)
        with pytest.raises(ParameterError):
            rsa768.public_key.encrypt_oaep(b"x" * (max_len + 1), rng=rng)

    def test_modulus_too_small_for_oaep(self, rsa512, rng):
        with pytest.raises(ParameterError):
            rsa512.public_key.encrypt_oaep(b"x", rng=rng)


class TestBatchVerifyPkcs1:
    @pytest.fixture()
    def signed_batch(self, rsa512):
        return [
            (f"msg-{index}".encode(), rsa512.sign_pkcs1(f"msg-{index}".encode()))
            for index in range(6)
        ]

    def test_valid_batch_one_public_op(self, rsa512, signed_batch):
        from repro import instrument
        from repro.crypto.rsa import batch_verify_pkcs1

        with instrument.measure() as ops:
            batch_verify_pkcs1(signed_batch, rsa512.public_key)
        assert ops.get("rsa.public_op") == 1
        assert ops.get("rsa.batch_verify") == 1
        assert ops.get("rsa.batch_verify.signatures") == 6

    def test_forged_member_named(self, rsa512, signed_batch):
        from repro.crypto.rsa import batch_verify_pkcs1

        message, signature = signed_batch[2]
        signed_batch[2] = (message, bytes([signature[0] ^ 1]) + signature[1:])
        with pytest.raises(InvalidSignature):
            batch_verify_pkcs1(signed_batch, rsa512.public_key)

    def test_tampered_message_rejected(self, rsa512, signed_batch):
        from repro.crypto.rsa import batch_verify_pkcs1

        _, signature = signed_batch[0]
        signed_batch[0] = (b"tampered", signature)
        with pytest.raises(InvalidSignature):
            batch_verify_pkcs1(signed_batch, rsa512.public_key)

    def test_duplicate_messages_fall_back_to_individual(self, rsa512, signed_batch):
        from repro import instrument
        from repro.crypto.rsa import batch_verify_pkcs1

        duplicated = signed_batch + [signed_batch[0]]
        with instrument.measure() as ops:
            batch_verify_pkcs1(duplicated, rsa512.public_key)
        assert ops.get("rsa.batch_verify") == 0
        assert ops.get("rsa.public_op") == len(duplicated)

    def test_malformed_signature_rejected(self, rsa512, signed_batch):
        from repro.crypto.rsa import batch_verify_pkcs1

        message, _ = signed_batch[1]
        signed_batch[1] = (message, b"\x01")
        with pytest.raises(InvalidSignature):
            batch_verify_pkcs1(signed_batch, rsa512.public_key)

    def test_empty_and_singleton(self, rsa512, signed_batch):
        from repro.crypto.rsa import batch_verify_pkcs1

        batch_verify_pkcs1([], rsa512.public_key)
        batch_verify_pkcs1(signed_batch[:1], rsa512.public_key)


class TestMultiPrime:
    @pytest.fixture(scope="class")
    def rsa3p(self):
        from repro.crypto.rand import DeterministicRandomSource
        from repro.crypto.rsa import generate_rsa_key

        return generate_rsa_key(
            768, rng=DeterministicRandomSource("rsa-3p"), prime_count=3
        )

    def test_modulus_width_and_prime_product(self, rsa3p):
        assert rsa3p.n.bit_length() == 768
        assert len(rsa3p.extra_primes) == 1
        product = rsa3p.p * rsa3p.q
        for prime in rsa3p.extra_primes:
            product *= prime
        assert product == rsa3p.n

    def test_private_op_matches_plain_pow(self, rsa3p):
        value = 0xC0FFEE % rsa3p.n
        assert rsa3p.private_op(value) == pow(value, rsa3p.d, rsa3p.n)

    def test_sign_verify_and_oaep(self, rsa3p, rng):
        signature = rsa3p.sign_pkcs1(b"multi-prime")
        rsa3p.public_key.verify_pkcs1(b"multi-prime", signature)
        ciphertext = rsa3p.public_key.encrypt_oaep(b"key material", rng=rng)
        assert rsa3p.decrypt_oaep(ciphertext) == b"key material"

    def test_blind_signature_roundtrip(self, rsa3p, rng):
        from repro.crypto.blind_rsa import BlindingClient, BlindSigner

        client = BlindingClient(rsa3p.public_key, rng=rng)
        blinded, state = client.blind(b"coin")
        signature = client.unblind(BlindSigner(rsa3p).sign_blinded(blinded), state)
        from repro.crypto.blind_rsa import verify_blind_signature

        verify_blind_signature(b"coin", signature, rsa3p.public_key)

    def test_wrong_prime_product_rejected(self, rsa3p):
        from repro.crypto.rsa import RsaPrivateKey

        with pytest.raises(ParameterError):
            RsaPrivateKey(
                n=rsa3p.n,
                e=rsa3p.e,
                d=rsa3p.d,
                p=rsa3p.p,
                q=rsa3p.q,
                extra_primes=(),
            )

    def test_prime_count_validated(self, rng):
        from repro.crypto.rsa import generate_rsa_key

        with pytest.raises(ParameterError):
            generate_rsa_key(512, rng=rng, prime_count=1)
        with pytest.raises(ParameterError):
            generate_rsa_key(512, rng=rng, prime_count=5)

    def test_serialization_roundtrip(self, rsa3p):
        from repro.crypto.keys import key_from_dict, key_to_dict

        data = key_to_dict(rsa3p)
        assert data["r"] == list(rsa3p.extra_primes)
        assert key_from_dict(data) == rsa3p
