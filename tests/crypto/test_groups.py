"""Named groups: structure, membership, element encoding."""

import pytest

from repro.crypto.groups import available_groups, named_group
from repro.crypto.numbers import is_probable_prime
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ParameterError


class TestNamedGroups:
    def test_available_groups(self):
        assert set(available_groups()) == {"test-512", "modp-1536", "modp-2048"}

    def test_unknown_group_rejected(self):
        with pytest.raises(ParameterError):
            named_group("modp-9999")

    def test_test_group_is_safe_prime(self, test_group):
        assert is_probable_prime(test_group.p)
        assert is_probable_prime(test_group.q)
        assert test_group.p == 2 * test_group.q + 1

    @pytest.mark.parametrize("name,bits", [("modp-1536", 1536), ("modp-2048", 2048)])
    def test_modp_group_sizes(self, name, bits):
        group = named_group(name)
        assert group.bits == bits

    def test_generator_in_subgroup(self, test_group):
        assert test_group.contains(test_group.g)


class TestMembership:
    def test_identity_is_member(self, test_group):
        assert test_group.contains(1)

    def test_zero_and_p_not_members(self, test_group):
        assert not test_group.contains(0)
        assert not test_group.contains(test_group.p)

    def test_squares_are_members(self, test_group):
        rng = DeterministicRandomSource(b"sq")
        for _ in range(5):
            x = rng.randint_range(2, test_group.p - 1)
            assert test_group.contains(pow(x, 2, test_group.p))

    def test_non_residue_not_member(self, test_group):
        # -1 is a non-residue mod a safe prime p ≡ 3 (mod 4).
        assert test_group.p % 4 == 3
        assert not test_group.contains(test_group.p - 1)

    def test_require_member_raises(self, test_group):
        with pytest.raises(ParameterError, match="not a subgroup member"):
            test_group.require_member(test_group.p - 1, "value")


class TestOperations:
    def test_power_matches_pow(self, test_group):
        assert test_group.power(test_group.g, 5) == pow(
            test_group.g, 5, test_group.p
        )

    def test_random_exponent_range(self, test_group):
        rng = DeterministicRandomSource(b"exp")
        for _ in range(20):
            e = test_group.random_exponent(rng)
            assert 1 <= e < test_group.q

    def test_exponent_arithmetic_mod_q(self, test_group):
        rng = DeterministicRandomSource(b"arith")
        a = test_group.random_exponent(rng)
        b = test_group.random_exponent(rng)
        left = test_group.power(test_group.g, (a + b) % test_group.q)
        right = (
            test_group.power(test_group.g, a) * test_group.power(test_group.g, b)
        ) % test_group.p
        assert left == right


class TestEncodeElement:
    def test_encoded_elements_are_members(self, test_group):
        for i in range(10):
            element = test_group.encode_element(f"tag-{i}".encode())
            assert test_group.contains(element)

    def test_deterministic(self, test_group):
        assert test_group.encode_element(b"x") == test_group.encode_element(b"x")

    def test_distinct_inputs_distinct_elements(self, test_group):
        elements = {test_group.encode_element(str(i).encode()) for i in range(50)}
        assert len(elements) == 50
