"""Cipher modes: padding, CBC/CTR/ECB, the EtM AEAD."""

import pytest

from repro.crypto.modes import (
    EtmCipher,
    ctr_transform,
    decrypt_cbc,
    decrypt_ecb,
    encrypt_cbc,
    encrypt_ecb,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.errors import DecryptionError, ParameterError


class TestPadding:
    @pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 31, 32, 100])
    def test_roundtrip(self, length):
        data = bytes(range(256))[:length] * 1
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_always_pads(self):
        assert len(pkcs7_pad(b"x" * 16)) == 32

    def test_malformed_padding_rejected(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"x" * 15 + b"\x00")
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"x" * 15 + b"\x11")  # 17 > block
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"x" * 14 + b"\x01\x02")  # inconsistent
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"")
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"x" * 15)  # not block multiple


class TestEcb:
    def test_roundtrip(self, rng):
        key = rng.random_bytes(16)
        data = rng.random_bytes(100)
        assert decrypt_ecb(key, encrypt_ecb(key, data)) == data

    def test_determinism_leak_documented(self, rng):
        """ECB is deterministic — the very property that disqualifies it
        for content; the test pins the behaviour the docstring warns of."""
        key = rng.random_bytes(16)
        assert encrypt_ecb(key, b"A" * 32) == encrypt_ecb(key, b"A" * 32)

    def test_bad_length_rejected(self, rng):
        with pytest.raises(DecryptionError):
            decrypt_ecb(rng.random_bytes(16), b"x" * 15)


class TestCbc:
    def test_roundtrip(self, rng):
        key = rng.random_bytes(16)
        data = rng.random_bytes(333)
        assert decrypt_cbc(key, encrypt_cbc(key, data, rng=rng)) == data

    def test_random_iv_randomizes(self, rng):
        key = rng.random_bytes(16)
        assert encrypt_cbc(key, b"msg", rng=rng) != encrypt_cbc(key, b"msg", rng=rng)

    def test_explicit_iv(self, rng):
        key = rng.random_bytes(16)
        iv = bytes(16)
        a = encrypt_cbc(key, b"msg", iv=iv)
        b = encrypt_cbc(key, b"msg", iv=iv)
        assert a == b

    def test_bad_iv_length(self, rng):
        with pytest.raises(ParameterError):
            encrypt_cbc(rng.random_bytes(16), b"m", iv=b"short")

    def test_truncated_rejected(self, rng):
        key = rng.random_bytes(16)
        blob = encrypt_cbc(key, b"message", rng=rng)
        with pytest.raises(DecryptionError):
            decrypt_cbc(key, blob[:16])

    def test_wrong_key_fails(self, rng):
        blob = encrypt_cbc(rng.random_bytes(16), b"message-is-long-enough", rng=rng)
        with pytest.raises(DecryptionError):
            decrypt_cbc(rng.random_bytes(16), blob)


class TestCtr:
    def test_involution(self, rng):
        key = rng.random_bytes(16)
        nonce = rng.random_bytes(12)
        data = rng.random_bytes(1000)
        assert ctr_transform(key, nonce, ctr_transform(key, nonce, data)) == data

    def test_empty(self, rng):
        assert ctr_transform(rng.random_bytes(16), bytes(12), b"") == b""

    def test_nonce_length_checked(self, rng):
        with pytest.raises(ParameterError):
            ctr_transform(rng.random_bytes(16), b"short", b"data")

    def test_distinct_nonces_distinct_streams(self, rng):
        key = rng.random_bytes(16)
        data = bytes(64)
        a = ctr_transform(key, bytes(12), data)
        b = ctr_transform(key, b"\x01" + bytes(11), data)
        assert a != b

    def test_partial_block(self, rng):
        key = rng.random_bytes(16)
        nonce = rng.random_bytes(12)
        data = rng.random_bytes(20)
        full = ctr_transform(key, nonce, data + bytes(12))
        assert ctr_transform(key, nonce, data) == full[:20]


class TestEtmCipher:
    def test_roundtrip(self, rng):
        cipher = EtmCipher(rng.random_bytes(16))
        blob = cipher.encrypt(b"payload", aad=b"header", rng=rng)
        assert cipher.decrypt(blob, aad=b"header") == b"payload"

    def test_aad_mismatch_rejected(self, rng):
        cipher = EtmCipher(rng.random_bytes(16))
        blob = cipher.encrypt(b"payload", aad=b"header", rng=rng)
        with pytest.raises(DecryptionError):
            cipher.decrypt(blob, aad=b"other")

    def test_ciphertext_tamper_rejected(self, rng):
        cipher = EtmCipher(rng.random_bytes(16))
        blob = bytearray(cipher.encrypt(b"payload-data", rng=rng))
        blob[14] ^= 1
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(blob))

    def test_tag_tamper_rejected(self, rng):
        cipher = EtmCipher(rng.random_bytes(16))
        blob = bytearray(cipher.encrypt(b"payload", rng=rng))
        blob[-1] ^= 1
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(blob))

    def test_truncation_rejected(self, rng):
        cipher = EtmCipher(rng.random_bytes(16))
        with pytest.raises(DecryptionError):
            cipher.decrypt(b"short")

    def test_wrong_key_rejected(self, rng):
        blob = EtmCipher(rng.random_bytes(16)).encrypt(b"payload", rng=rng)
        with pytest.raises(DecryptionError):
            EtmCipher(rng.random_bytes(16)).decrypt(blob)

    def test_empty_plaintext(self, rng):
        cipher = EtmCipher(rng.random_bytes(16))
        assert cipher.decrypt(cipher.encrypt(b"", rng=rng)) == b""

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_key_sizes(self, key_len, rng):
        cipher = EtmCipher(rng.random_bytes(key_len))
        assert cipher.decrypt(cipher.encrypt(b"x", rng=rng)) == b"x"

    def test_bad_key_size(self):
        with pytest.raises(ParameterError):
            EtmCipher(b"tiny")

    def test_explicit_nonce_deterministic_ciphertext(self, rng):
        key = rng.random_bytes(16)
        cipher = EtmCipher(key)
        nonce = bytes(12)
        assert cipher.encrypt(b"m", nonce=nonce) == cipher.encrypt(b"m", nonce=nonce)
