"""The pluggable bigint-arithmetic backend (repro.crypto.backend).

Covers selection semantics (strict names, context-manager restore,
switch-guard integration), the pure backend's primitive contracts,
Montgomery batch inversion, lazy re-residencing of fixed-base tables
across backend switches, and — via a registered fake backend whose
residue type is *not* an int — that the residency plumbing converts
back to plain ints at every protocol boundary.  gmpy2-specific parity
runs only where the package is installed (the ``backend-gmpy2`` CI
lane); the round-trip byte-identity test also runs against the fake
backend so the conversion paths are exercised everywhere.
"""

from __future__ import annotations

import pytest

from repro import codec
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.protocols.transfer import build_exchange_request, build_redeem_request
from repro.crypto import backend as abackend
from repro.crypto import fastexp
from repro.crypto.numbers import jacobi_symbol, modinv
from repro.errors import ParameterError

GMPY2 = abackend.gmpy2_available()

_P = 0xFFFFFFFFFFFFFFC5  # a 64-bit prime


class TestSelection:
    def test_active_backend_is_selectable(self):
        assert abackend.backend_name() in abackend.available_backends()

    def test_pure_always_available(self):
        assert "pure" in abackend.available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            abackend.set_backend("quantum")

    @pytest.mark.skipif(GMPY2, reason="gmpy2 installed on this host")
    def test_missing_gmpy2_is_loud(self):
        """Selecting gmpy2 without the package must never silently
        fall back — the backend-gmpy2 CI lane depends on the error."""
        with pytest.raises(ParameterError):
            abackend.set_backend("gmpy2")

    def test_backend_set_restores(self):
        before = abackend.backend_name()
        with abackend.backend_set("pure"):
            assert abackend.backend_name() == "pure"
        assert abackend.backend_name() == before

    def test_switch_guard_restores_backend(self):
        before = abackend.backend_name()
        with fastexp.switch_guard():
            abackend.set_backend("pure")
        assert abackend.backend_name() == before

    def test_register_backend_requires_name(self):
        class Nameless:
            pass

        with pytest.raises(ParameterError):
            abackend.register_backend(Nameless())


class TestPureBackend:
    def test_powmod_matches_pow(self):
        pure = abackend.PureBackend()
        assert pure.powmod(7, 123, _P) == pow(7, 123, _P)
        assert pure.powmod(7, -5, _P) == pow(7, -5, _P)

    def test_invert_matches_pow(self):
        pure = abackend.PureBackend()
        assert pure.invert(7, _P) == pow(7, -1, _P)
        with pytest.raises(ValueError):
            pure.invert(6, 9)

    def test_jacobi_known_values(self):
        pure = abackend.PureBackend()
        # (2/7) = 1, (3/7) = -1, (7/7) = 0.
        assert pure.jacobi(2, 7) == 1
        assert pure.jacobi(3, 7) == -1
        assert pure.jacobi(7, 7) == 0
        with pytest.raises(ValueError):
            pure.jacobi(3, 8)

    def test_powmod_base_list(self):
        pure = abackend.PureBackend()
        bases = [3, 5, 7, 11]
        assert pure.powmod_base_list(bases, 65537, _P) == [
            pow(base, 65537, _P) for base in bases
        ]

    def test_module_conveniences_dispatch(self):
        with abackend.backend_set("pure"):
            assert abackend.powmod(3, 10, 1009) == pow(3, 10, 1009)
            assert abackend.invert(3, 1009) == pow(3, -1, 1009)
            assert abackend.jacobi(3, 1009) == jacobi_symbol(3, 1009)
            assert abackend.powmod_base_list([2, 3], 5, 1009) == [
                pow(2, 5, 1009),
                pow(3, 5, 1009),
            ]


class TestBatchInvert:
    def test_empty(self):
        assert abackend.batch_invert([], _P) == []

    def test_singleton(self):
        assert abackend.batch_invert([42], _P) == [pow(42, -1, _P)]

    def test_many_match_individual_inverses(self, rng):
        values = [rng.randint_range(1, _P) for _ in range(17)]
        assert abackend.batch_invert(values, _P) == [
            modinv(value, _P) for value in values
        ]

    def test_values_reduced_mod_modulus(self):
        assert abackend.batch_invert([_P + 3, 2 * _P + 5], _P) == [
            pow(3, -1, _P),
            pow(5, -1, _P),
        ]

    def test_non_invertible_member_raises(self):
        # 15 shares the factor 3 with 1005: the grand product cannot
        # be inverted, so the batch fails exactly like pow(15, -1, m).
        with pytest.raises(ValueError):
            abackend.batch_invert([7, 15, 11], 1005)

    def test_non_positive_modulus_rejected(self):
        with pytest.raises(ValueError):
            abackend.batch_invert([3], 0)


# ---------------------------------------------------------------------------
# A fake backend with a non-int residue type: exercises the residency
# conversion paths (mpz-shaped) without needing gmpy2 installed.
# ---------------------------------------------------------------------------


class FakeMpz:
    """Minimal mpz stand-in: multiply/reduce/convert, nothing more."""

    __slots__ = ("v",)

    def __init__(self, value):
        self.v = int(value)

    def __mul__(self, other):
        return FakeMpz(self.v * int(other))

    __rmul__ = __mul__

    def __mod__(self, other):
        return FakeMpz(self.v % int(other))

    def __rmod__(self, other):
        return FakeMpz(int(other) % self.v)

    def __int__(self):
        return self.v

    def __index__(self):
        return self.v

    def __eq__(self, other):
        return self.v == int(other)

    def __hash__(self):
        return hash(self.v)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"FakeMpz({self.v})"


class FakeResidueBackend(abackend.PureBackend):
    name = "fake-mpz"
    residue = staticmethod(FakeMpz)


def _sell_exchange_redeem(deployment):
    """One sell→exchange→redeem pass; returns the canonical bytes."""
    deployment.provider.deterministic_issuance = True
    sender = deployment.add_user("backend-sender", balance=1_000_000)
    receiver = deployment.add_user("backend-receiver", balance=1_000_000)
    purchases = [
        build_purchase_request(
            sender,
            deployment.provider,
            deployment.issuer,
            deployment.bank,
            "song-1",
        )
        for _ in range(2)
    ]
    licenses = deployment.provider.sell_batch(purchases)
    assert not any(isinstance(r, Exception) for r in licenses)
    anonymous = [
        deployment.provider.exchange(build_exchange_request(sender, license_))
        for license_ in licenses
    ]
    redeemed = deployment.provider.redeem_batch(
        [
            build_redeem_request(
                receiver, deployment.provider, deployment.issuer, anon
            )
            for anon in anonymous
        ]
    )
    assert not any(isinstance(r, Exception) for r in redeemed)
    return {
        "licenses": [codec.encode(r.as_dict()) for r in licenses],
        "anonymous": [codec.encode(a.as_dict()) for a in anonymous],
        "redeemed": [codec.encode(r.as_dict()) for r in redeemed],
    }


def _round_trip_under(backend_name: str, fresh_deployment):
    with fastexp.isolated_state():
        abackend.set_backend(backend_name)
        fastexp.reset()
        return _sell_exchange_redeem(fresh_deployment(seed="backend-parity"))


class TestResidueBackend:
    @pytest.fixture(autouse=True)
    def _registered(self):
        abackend.register_backend(FakeResidueBackend())
        yield
        # The registry is process-global: leave no fake backend behind
        # for later tests enumerating available_backends().
        abackend._REGISTRY.pop("fake-mpz", None)

    def test_table_results_are_plain_ints(self, test_group):
        with fastexp.isolated_state():
            abackend.set_backend("fake-mpz")
            fastexp.reset()
            table = test_group.precompute_generator()
            result = table.pow(12345)
            assert type(result) is int
            assert result == pow(test_group.g, 12345, test_group.p)

    def test_lookup_rebinds_tables_across_switch(self, test_group):
        with fastexp.isolated_state():
            abackend.set_backend("pure")
            fastexp.reset()
            test_group.precompute_generator()
            abackend.set_backend("fake-mpz")
            table = fastexp.lookup(test_group.g, test_group.p)
            assert isinstance(table._rows[0][1], FakeMpz)
            assert table.pow(999) == pow(test_group.g, 999, test_group.p)
            abackend.set_backend("pure")
            table = fastexp.lookup(test_group.g, test_group.p)
            assert type(table._rows[0][1]) is int

    def test_multi_pow_returns_plain_int(self, test_group, rng):
        pairs = [
            (pow(test_group.g, k, test_group.p), rng.randint_range(1, test_group.q))
            for k in (2, 3, 5)
        ]
        expected = 1
        for base, exponent in pairs:
            expected = expected * pow(base, exponent, test_group.p) % test_group.p
        with abackend.backend_set("fake-mpz"):
            for mode in (fastexp.MODE_NAIVE, fastexp.MODE_WNAF):
                with fastexp.exp_mode_set(mode):
                    result = fastexp.multi_pow(pairs, test_group.p)
                    assert type(result) is int and result == expected

    @pytest.mark.slow
    def test_round_trip_byte_identical_to_pure(self, fresh_deployment):
        pure = _round_trip_under("pure", fresh_deployment)
        fake = _round_trip_under("fake-mpz", fresh_deployment)
        assert fake == pure


@pytest.mark.skipif(not GMPY2, reason="gmpy2 not installed")
class TestGmpy2Backend:
    def test_selectable_and_listed(self):
        assert "gmpy2" in abackend.available_backends()
        with abackend.backend_set("gmpy2"):
            assert abackend.backend_name() == "gmpy2"

    def test_primitive_parity(self, rng):
        pure = abackend.PureBackend()
        fast = abackend._instantiate("gmpy2")
        for _ in range(25):
            base = rng.randint_range(1, _P)
            exponent = rng.randint_range(1, _P)
            assert fast.powmod(base, exponent, _P) == pure.powmod(base, exponent, _P)
            assert fast.invert(base, _P) == pure.invert(base, _P)
            assert fast.jacobi(base, _P) == pure.jacobi(base, _P)

    def test_results_are_plain_ints(self):
        fast = abackend._instantiate("gmpy2")
        assert type(fast.powmod(3, 5, 1009)) is int
        assert type(fast.invert(3, 1009)) is int
        assert all(
            type(v) is int for v in fast.powmod_base_list([2, 3], 5, 1009)
        )

    def test_non_invertible_raises_value_error(self):
        fast = abackend._instantiate("gmpy2")
        with pytest.raises(ValueError):
            fast.invert(6, 9)
        with pytest.raises(ValueError):
            fast.powmod(6, -1, 9)

    @pytest.mark.slow
    def test_round_trip_byte_identical_to_pure(self, fresh_deployment):
        """The satellite parity guarantee: a full sell→exchange→redeem
        round trip produces the same bytes under both backends."""
        pure = _round_trip_under("pure", fresh_deployment)
        fast = _round_trip_under("gmpy2", fresh_deployment)
        assert fast == pure


class TestServiceBackendAttribution:
    def test_config_captures_and_warmup_applies(self, fresh_deployment, tmp_path):
        from repro.service.workers import ServiceConfig, warm_fastexp

        deployment = fresh_deployment(seed="backend-service")
        config = ServiceConfig.from_deployment(
            deployment, [str(tmp_path / "shard-0.sqlite")]
        )
        assert config.backend_name == abackend.backend_name()
        with fastexp.isolated_state():
            backend_name, mode = warm_fastexp(config)
            assert backend_name == config.backend_name
            assert mode == "build"
            assert abackend.backend_name() == config.backend_name
