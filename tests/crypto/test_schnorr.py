"""Schnorr signatures, discrete-log PoK, Chaum–Pedersen proofs."""

import pytest

from repro.crypto.schnorr import (
    SchnorrPrivateKey,
    SchnorrPublicKey,
    SchnorrSignature,
    generate_schnorr_key,
    prove_equality,
    prove_knowledge,
    verify_equality,
    verify_knowledge,
)
from repro.errors import InvalidProof, InvalidSignature, ParameterError


@pytest.fixture()
def key(test_group, rng):
    return generate_schnorr_key(test_group, rng=rng)


class TestSignatures:
    def test_sign_verify(self, key, rng):
        signature = key.sign(b"message", rng=rng)
        key.public_key.verify(b"message", signature)

    def test_wrong_message_rejected(self, key, rng):
        signature = key.sign(b"message", rng=rng)
        with pytest.raises(InvalidSignature):
            key.public_key.verify(b"other", signature)

    def test_wrong_key_rejected(self, test_group, key, rng):
        other = generate_schnorr_key(test_group, rng=rng)
        signature = key.sign(b"message", rng=rng)
        with pytest.raises(InvalidSignature):
            other.public_key.verify(b"message", signature)

    def test_randomized(self, key, rng):
        a = key.sign(b"m", rng=rng)
        b = key.sign(b"m", rng=rng)
        assert a != b

    def test_scalar_range_checked(self, test_group, key, rng):
        signature = key.sign(b"m", rng=rng)
        bad = SchnorrSignature(challenge=test_group.q, response=signature.response)
        with pytest.raises(InvalidSignature):
            key.public_key.verify(b"m", bad)

    def test_signature_dict_roundtrip(self, key, rng):
        signature = key.sign(b"m", rng=rng)
        assert SchnorrSignature.from_dict(signature.as_dict()) == signature

    def test_fingerprint_stable_and_distinct(self, test_group, key, rng):
        other = generate_schnorr_key(test_group, rng=rng)
        assert key.public_key.fingerprint() == key.public_key.fingerprint()
        assert key.public_key.fingerprint() != other.public_key.fingerprint()

    def test_key_validation(self, test_group):
        with pytest.raises(ParameterError):
            SchnorrPrivateKey(group=test_group, x=0)
        with pytest.raises(ParameterError):
            SchnorrPublicKey(group=test_group, y=test_group.p - 1)


class TestDlogProof:
    def test_prove_verify(self, test_group, key, rng):
        proof = prove_knowledge(
            test_group, test_group.g, key.public_key.y, key.x, context=b"ctx", rng=rng
        )
        verify_knowledge(test_group, test_group.g, key.public_key.y, proof, context=b"ctx")

    def test_context_binding(self, test_group, key, rng):
        proof = prove_knowledge(
            test_group, test_group.g, key.public_key.y, key.x, context=b"A", rng=rng
        )
        with pytest.raises(InvalidProof):
            verify_knowledge(
                test_group, test_group.g, key.public_key.y, proof, context=b"B"
            )

    def test_wrong_statement_rejected(self, test_group, key, rng):
        proof = prove_knowledge(
            test_group, test_group.g, key.public_key.y, key.x, rng=rng
        )
        other_public = test_group.power(test_group.g, key.x + 1)
        with pytest.raises(InvalidProof):
            verify_knowledge(test_group, test_group.g, other_public, proof)

    def test_mismatched_secret_rejected_at_prove(self, test_group, key, rng):
        with pytest.raises(ParameterError):
            prove_knowledge(
                test_group, test_group.g, key.public_key.y, key.x + 1, rng=rng
            )

    def test_non_generator_base(self, test_group, key, rng):
        base = test_group.power(test_group.g, 7)
        public = test_group.power(base, key.x)
        proof = prove_knowledge(test_group, base, public, key.x, rng=rng)
        verify_knowledge(test_group, base, public, proof)


class TestChaumPedersen:
    def test_prove_verify_dh_tuple(self, test_group, key, rng):
        base2 = test_group.power(test_group.g, 3)
        public2 = test_group.power(base2, key.x)
        proof = prove_equality(
            test_group,
            test_group.g,
            key.public_key.y,
            base2,
            public2,
            key.x,
            context=b"ctx",
            rng=rng,
        )
        verify_equality(
            test_group,
            test_group.g,
            key.public_key.y,
            base2,
            public2,
            proof,
            context=b"ctx",
        )

    def test_non_dh_tuple_rejected(self, test_group, key, rng):
        base2 = test_group.power(test_group.g, 3)
        public2 = test_group.power(base2, key.x)
        proof = prove_equality(
            test_group, test_group.g, key.public_key.y, base2, public2, key.x, rng=rng
        )
        wrong_public2 = test_group.power(base2, key.x + 1)
        with pytest.raises(InvalidProof):
            verify_equality(
                test_group,
                test_group.g,
                key.public_key.y,
                base2,
                wrong_public2,
                proof,
            )

    def test_context_binding(self, test_group, key, rng):
        base2 = test_group.power(test_group.g, 3)
        public2 = test_group.power(base2, key.x)
        proof = prove_equality(
            test_group, test_group.g, key.public_key.y, base2, public2, key.x,
            context=b"A", rng=rng,
        )
        with pytest.raises(InvalidProof):
            verify_equality(
                test_group, test_group.g, key.public_key.y, base2, public2, proof,
                context=b"B",
            )

    def test_inconsistent_secret_rejected_at_prove(self, test_group, key, rng):
        base2 = test_group.power(test_group.g, 3)
        public2 = test_group.power(base2, key.x + 1)  # different exponent
        with pytest.raises(ParameterError):
            prove_equality(
                test_group, test_group.g, key.public_key.y, base2, public2, key.x,
                rng=rng,
            )


class TestBatchVerifyKnowledge:
    def _proof_batch(self, test_group, rng, count):
        items = []
        for index in range(count):
            key = generate_schnorr_key(test_group, rng=rng)
            context = f"batch-ctx-{index}".encode()
            proof = prove_knowledge(
                test_group, test_group.g, key.public_key.y, key.x,
                context=context, rng=rng,
            )
            items.append((test_group, test_group.g, key.public_key.y, proof, context))
        return items

    def test_valid_batch_accepted_in_few_chains(self, test_group, rng):
        from repro import instrument
        from repro.crypto.schnorr import batch_verify_knowledge

        items = self._proof_batch(test_group, rng, 8)
        with instrument.measure() as individual:
            for group, base, public, proof, context in items:
                verify_knowledge(group, base, public, proof, context=context)
        with instrument.measure() as batched:
            batch_verify_knowledge(items, rng=rng)
        assert batched.get("modexp") < individual.get("modexp")
        assert batched.get("modexp") <= 3
        assert batched.get("schnorr.batch_knowledge") == 1
        assert batched.get("schnorr.batch_knowledge.proofs") == 8

    def test_forged_member_rejected(self, test_group, rng):
        from repro.crypto.schnorr import DlogProof, batch_verify_knowledge

        items = self._proof_batch(test_group, rng, 5)
        group, base, public, proof, context = items[3]
        items[3] = (
            group, base, public,
            DlogProof(proof.challenge, (proof.response + 1) % test_group.q,
                      proof.commitment),
            context,
        )
        with pytest.raises(InvalidProof):
            batch_verify_knowledge(items, rng=rng)

    def test_wrong_commitment_rejected(self, test_group, rng):
        from repro.crypto.schnorr import DlogProof, batch_verify_knowledge

        items = self._proof_batch(test_group, rng, 4)
        group, base, public, proof, context = items[0]
        items[0] = (
            group, base, public,
            DlogProof(proof.challenge, proof.response, test_group.power(test_group.g, 99)),
            context,
        )
        with pytest.raises(InvalidProof):
            batch_verify_knowledge(items, rng=rng)

    def test_non_subgroup_commitment_rejected(self, test_group, rng):
        from repro.crypto.schnorr import DlogProof, batch_verify_knowledge

        items = self._proof_batch(test_group, rng, 3)
        group, base, public, proof, context = items[1]
        items[1] = (
            group, base, public,
            DlogProof(proof.challenge, proof.response, test_group.p - proof.commitment),
            context,
        )
        with pytest.raises(InvalidProof):
            batch_verify_knowledge(items, rng=rng)

    def test_legacy_proofs_without_commitment_fall_back(self, test_group, rng):
        from repro import instrument
        from repro.crypto.schnorr import DlogProof, batch_verify_knowledge

        items = [
            (group, base, public, DlogProof(proof.challenge, proof.response), context)
            for group, base, public, proof, context in self._proof_batch(test_group, rng, 4)
        ]
        with instrument.measure() as ops:
            batch_verify_knowledge(items, rng=rng)
        # No aggregation possible: each proof verified by the scalar path.
        assert ops.get("schnorr.batch_knowledge") == 0

    def test_mixed_groups_rejected(self, test_group, rng):
        from repro.crypto.groups import named_group
        from repro.crypto.schnorr import batch_verify_knowledge

        other = named_group("modp-1536")
        other_key = generate_schnorr_key(other, rng=rng)
        proof = prove_knowledge(
            other, other.g, other_key.public_key.y, other_key.x, rng=rng
        )
        items = self._proof_batch(test_group, rng, 2)
        items.append((other, other.g, other_key.public_key.y, proof, b""))
        with pytest.raises(ParameterError):
            batch_verify_knowledge(items, rng=rng)

    def test_empty_and_singleton(self, test_group, rng):
        from repro.crypto.schnorr import batch_verify_knowledge

        batch_verify_knowledge([], rng=rng)
        batch_verify_knowledge(self._proof_batch(test_group, rng, 1), rng=rng)

    def test_proof_commitment_roundtrips(self, test_group, key, rng):
        from repro.crypto.schnorr import DlogProof

        proof = prove_knowledge(
            test_group, test_group.g, key.public_key.y, key.x, rng=rng
        )
        assert proof.commitment is not None
        parsed = DlogProof.from_dict(proof.as_dict())
        assert parsed == proof
        # Legacy dict without R still parses.
        legacy = DlogProof.from_dict({"c": proof.challenge, "s": proof.response})
        assert legacy.commitment is None
