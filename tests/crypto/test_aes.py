"""AES: FIPS-197 vectors, inversion, key handling."""

import pytest

from repro.crypto.aes import BLOCK_SIZE, AesCipher
from repro.errors import ParameterError

# FIPS-197 Appendix C vectors: key 000102..., plaintext 00112233...
_FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_FIPS_VECTORS = {
    16: "69c4e0d86a7b0430d8cdb78070b4c55a",
    24: "dda97ca4864cdfe06eaf70a0ec0d7191",
    32: "8ea2b7ca516745bfeafc49904b496089",
}

# FIPS-197 Appendix B example.
_APP_B_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_APP_B_PLAINTEXT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
_APP_B_CIPHERTEXT = "3925841d02dc09fbdc118597196a0b32"


class TestVectors:
    @pytest.mark.parametrize("key_len,expected", sorted(_FIPS_VECTORS.items()))
    def test_fips197_appendix_c(self, key_len, expected):
        cipher = AesCipher(bytes(range(key_len)))
        assert cipher.encrypt_block(_FIPS_PLAINTEXT).hex() == expected

    def test_fips197_appendix_b(self):
        cipher = AesCipher(_APP_B_KEY)
        assert cipher.encrypt_block(_APP_B_PLAINTEXT).hex() == _APP_B_CIPHERTEXT


class TestInversion:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_len, rng):
        cipher = AesCipher(rng.random_bytes(key_len))
        for _ in range(10):
            block = rng.random_bytes(BLOCK_SIZE)
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_distinct_keys_distinct_ciphertexts(self, rng):
        block = rng.random_bytes(16)
        a = AesCipher(rng.random_bytes(16)).encrypt_block(block)
        b = AesCipher(rng.random_bytes(16)).encrypt_block(block)
        assert a != b

    def test_avalanche(self, rng):
        """One flipped plaintext bit changes about half the output bits."""
        key = rng.random_bytes(16)
        cipher = AesCipher(key)
        block = bytearray(rng.random_bytes(16))
        base = cipher.encrypt_block(bytes(block))
        block[0] ^= 1
        flipped = cipher.encrypt_block(bytes(block))
        differing = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
        assert 40 <= differing <= 88  # ~64 expected out of 128


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ParameterError):
            AesCipher(b"short")

    def test_bad_block_length(self, rng):
        cipher = AesCipher(rng.random_bytes(16))
        with pytest.raises(ParameterError):
            cipher.encrypt_block(b"not-16-bytes")
        with pytest.raises(ParameterError):
            cipher.decrypt_block(b"x" * 17)
