"""ElGamal: element encryption, re-randomization, the KEM."""

import pytest

from repro.crypto.elgamal import (
    ElGamalCiphertext,
    ElGamalPrivateKey,
    ElGamalPublicKey,
    generate_elgamal_key,
)
from repro.errors import DecryptionError, ParameterError


@pytest.fixture()
def key(test_group, rng):
    return generate_elgamal_key(test_group, rng=rng)


class TestElementEncryption:
    def test_roundtrip(self, test_group, key, rng):
        element = test_group.encode_element(b"identity-tag")
        ciphertext = key.public_key.encrypt_element(element, rng=rng)
        assert key.decrypt_element(ciphertext) == element

    def test_randomized(self, test_group, key, rng):
        element = test_group.encode_element(b"tag")
        a = key.public_key.encrypt_element(element, rng=rng)
        b = key.public_key.encrypt_element(element, rng=rng)
        assert (a.c1, a.c2) != (b.c1, b.c2)

    def test_wrong_key_decrypts_to_garbage(self, test_group, key, rng):
        other = generate_elgamal_key(test_group, rng=rng)
        element = test_group.encode_element(b"tag")
        ciphertext = key.public_key.encrypt_element(element, rng=rng)
        assert other.decrypt_element(ciphertext) != element

    def test_non_member_plaintext_rejected(self, test_group, key, rng):
        with pytest.raises(ParameterError):
            key.public_key.encrypt_element(test_group.p - 1, rng=rng)

    def test_deterministic_with_explicit_randomness(self, test_group, key):
        element = test_group.encode_element(b"tag")
        a = key.public_key.encrypt_element_with_randomness(element, 12345)
        b = key.public_key.encrypt_element_with_randomness(element, 12345)
        assert a == b
        assert key.decrypt_element(a) == element

    def test_randomness_range_checked(self, test_group, key):
        element = test_group.encode_element(b"tag")
        with pytest.raises(ParameterError):
            key.public_key.encrypt_element_with_randomness(element, 0)
        with pytest.raises(ParameterError):
            key.public_key.encrypt_element_with_randomness(element, test_group.q)

    def test_ciphertext_dict_roundtrip(self, test_group, key, rng):
        element = test_group.encode_element(b"tag")
        ciphertext = key.public_key.encrypt_element(element, rng=rng)
        assert ElGamalCiphertext.from_dict(ciphertext.as_dict()) == ciphertext


class TestRerandomization:
    def test_same_plaintext_new_ciphertext(self, test_group, key, rng):
        element = test_group.encode_element(b"tag")
        original = key.public_key.encrypt_element(element, rng=rng)
        rerandomized = key.public_key.rerandomize(original, rng=rng)
        assert (original.c1, original.c2) != (rerandomized.c1, rerandomized.c2)
        assert key.decrypt_element(rerandomized) == element

    def test_chain_of_rerandomizations(self, test_group, key, rng):
        element = test_group.encode_element(b"tag")
        ciphertext = key.public_key.encrypt_element(element, rng=rng)
        for _ in range(5):
            ciphertext = key.public_key.rerandomize(ciphertext, rng=rng)
        assert key.decrypt_element(ciphertext) == element


class TestKem:
    def test_wrap_unwrap(self, key, rng):
        payload = rng.random_bytes(16)
        wrapped = key.public_key.kem_wrap(payload, context=b"ctx", rng=rng)
        assert key.kem_unwrap(wrapped, context=b"ctx") == payload

    def test_context_binding(self, key, rng):
        wrapped = key.public_key.kem_wrap(b"secret-key-1234", context=b"lic-A", rng=rng)
        with pytest.raises(DecryptionError):
            key.kem_unwrap(wrapped, context=b"lic-B")

    def test_wrong_key_rejected(self, test_group, key, rng):
        other = generate_elgamal_key(test_group, rng=rng)
        wrapped = key.public_key.kem_wrap(b"secret", context=b"c", rng=rng)
        with pytest.raises(DecryptionError):
            other.kem_unwrap(wrapped, context=b"c")

    def test_ciphertext_tamper_rejected(self, key, rng):
        wrapped = key.public_key.kem_wrap(b"secret-payload", context=b"c", rng=rng)
        tampered = dict(wrapped)
        body = bytearray(tampered["ct"])
        body[0] ^= 1
        tampered["ct"] = bytes(body)
        with pytest.raises(DecryptionError):
            key.kem_unwrap(tampered, context=b"c")

    def test_ephemeral_tamper_rejected(self, key, rng):
        wrapped = key.public_key.kem_wrap(b"secret", context=b"c", rng=rng)
        tampered = dict(wrapped)
        tampered["c1"] = 1  # valid member, wrong shared secret
        with pytest.raises(DecryptionError):
            key.kem_unwrap(tampered, context=b"c")

    def test_non_member_ephemeral_rejected(self, test_group, key, rng):
        wrapped = key.public_key.kem_wrap(b"secret", context=b"c", rng=rng)
        tampered = dict(wrapped)
        tampered["c1"] = test_group.p - 1
        with pytest.raises(DecryptionError):
            key.kem_unwrap(tampered, context=b"c")

    def test_malformed_blob_rejected(self, key):
        with pytest.raises(DecryptionError):
            key.kem_unwrap({"bogus": 1}, context=b"c")

    def test_empty_payload(self, key, rng):
        wrapped = key.public_key.kem_wrap(b"", context=b"c", rng=rng)
        assert key.kem_unwrap(wrapped, context=b"c") == b""


class TestKeyValidation:
    def test_public_key_membership_checked(self, test_group):
        with pytest.raises(ParameterError):
            ElGamalPublicKey(group=test_group, y=test_group.p - 1)

    def test_private_exponent_range_checked(self, test_group):
        with pytest.raises(ParameterError):
            ElGamalPrivateKey(group=test_group, x=0)
        with pytest.raises(ParameterError):
            ElGamalPrivateKey(group=test_group, x=test_group.q)


class TestKemEphemeralSize:
    def test_short_ephemeral_bounds(self, test_group, rng):
        from repro.crypto.elgamal import KEM_EPHEMERAL_BITS, _kem_ephemeral

        ceiling = min(1 << KEM_EPHEMERAL_BITS, test_group.q)
        for _ in range(20):
            k = _kem_ephemeral(test_group, rng)
            assert 1 <= k < ceiling

    def test_wrap_unwrap_with_short_ephemeral(self, test_group, rng):
        from repro.crypto.elgamal import generate_elgamal_key

        key = generate_elgamal_key(test_group, rng=rng)
        wrapped = key.public_key.kem_wrap(b"content-key", context=b"ctx", rng=rng)
        assert key.kem_unwrap(wrapped, context=b"ctx") == b"content-key"
