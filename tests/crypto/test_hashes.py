"""Hash helpers: known vectors, HKDF behaviour, integer mapping."""

import hashlib

import pytest

from repro.crypto.hashes import (
    bytes_to_int,
    constant_time_equal,
    hash_to_int,
    hkdf,
    hmac_sha256,
    int_to_bytes,
    mgf1,
    sha256,
    sha512,
)


class TestDigests:
    def test_sha256_empty_vector(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha256_abc_vector(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha512_matches_hashlib(self):
        assert sha512(b"data") == hashlib.sha512(b"data").digest()

    def test_hmac_rfc4231_case(self):
        # RFC 4231 test case 2.
        tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )


class TestHkdf:
    def test_rfc5869_case_1(self):
        okm = hkdf(
            bytes.fromhex("0b" * 22),
            42,
            salt=bytes.fromhex("000102030405060708090a0b0c"),
            info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
        )
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_length_zero(self):
        assert hkdf(b"ikm", 0) == b""

    def test_distinct_info_distinct_output(self):
        assert hkdf(b"k", 32, info=b"a") != hkdf(b"k", 32, info=b"b")

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"k", 255 * 32 + 1)

    def test_prefix_property(self):
        assert hkdf(b"k", 64, info=b"x")[:32] == hkdf(b"k", 32, info=b"x")


class TestMgf1:
    def test_known_behaviour(self):
        # MGF1 output must be the concatenation of H(seed||counter).
        seed = b"seed"
        expected = hashlib.sha256(seed + b"\x00\x00\x00\x00").digest()
        assert mgf1(seed, 32) == expected
        assert mgf1(seed, 16) == expected[:16]

    def test_spans_counters(self):
        seed = b"s"
        block0 = hashlib.sha256(seed + (0).to_bytes(4, "big")).digest()
        block1 = hashlib.sha256(seed + (1).to_bytes(4, "big")).digest()
        assert mgf1(seed, 48) == (block0 + block1)[:48]


class TestIntBytes:
    def test_roundtrip(self):
        for value in (0, 1, 255, 256, 2**64, 2**127 - 1):
            assert bytes_to_int(int_to_bytes(value)) == value

    def test_fixed_length(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_zero_is_single_byte(self):
        assert int_to_bytes(0) == b"\x00"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)


class TestHashToInt:
    def test_in_range_and_deterministic(self):
        upper = 2**255 - 19
        value = hash_to_int(b"input", upper)
        assert 0 <= value < upper
        assert value == hash_to_int(b"input", upper)

    def test_distinct_inputs(self):
        upper = 2**128
        assert hash_to_int(b"a", upper) != hash_to_int(b"b", upper)

    def test_small_upper(self):
        seen = {hash_to_int(str(i).encode(), 7) for i in range(100)}
        assert seen == set(range(7))

    def test_invalid_upper(self):
        with pytest.raises(ValueError):
            hash_to_int(b"x", 0)


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal(self):
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"abcd")
