"""Canonical codec: round-trips, canonicality enforcement, rejection."""

import pytest

from repro import codec
from repro.errors import CodecError, NonCanonicalEncoding


class TestRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            255,
            256,
            -(2**70),
            2**200,
            b"",
            b"\x00\x01\x02",
            "",
            "hello",
            "päper ünïcode ✓",
            [],
            [1, 2, 3],
            [None, True, b"x", "y", [-5]],
            {},
            {"a": 1},
            {"z": None, "a": [1, {"nested": b"bytes"}], "m": "mid"},
        ],
    )
    def test_roundtrip(self, value):
        assert codec.decode(codec.encode(value)) == value

    def test_reencode_is_identity(self):
        value = {"k": [1, b"\xff", {"x": -9}], "a": "s"}
        encoded = codec.encode(value)
        assert codec.encode(codec.decode(encoded)) == encoded

    def test_deep_nesting_roundtrip(self):
        value = [0]
        for _ in range(60):
            value = [value]
        assert codec.decode(codec.encode(value)) == value

    def test_tuple_encodes_as_list(self):
        assert codec.decode(codec.encode((1, 2))) == [1, 2]

    def test_bytearray_and_memoryview_encode_as_bytes(self):
        assert codec.decode(codec.encode(bytearray(b"ab"))) == b"ab"
        assert codec.decode(codec.encode(memoryview(b"ab"))) == b"ab"


class TestDeterminism:
    def test_dict_key_order_irrelevant(self):
        left = codec.encode({"a": 1, "b": 2})
        right = codec.encode({"b": 2, "a": 1})
        assert left == right

    def test_distinct_values_distinct_encodings(self):
        values = [None, True, False, 0, 1, "", "0", b"", b"0", [], {}, [0], {"0": 0}]
        encodings = {codec.encode(v) for v in values}
        assert len(encodings) == len(values)

    def test_int_zero_is_empty_magnitude(self):
        # tag, sign, varint-length 0
        assert codec.encode(0) == bytes([codec.TAG_INT, 0, 0])


class TestRejection:
    def test_unsupported_type(self):
        with pytest.raises(CodecError):
            codec.encode(1.5)

    def test_non_string_dict_key(self):
        with pytest.raises(CodecError):
            codec.encode({1: "x"})

    def test_excessive_nesting(self):
        value = [0]
        for _ in range(70):
            value = [value]
        with pytest.raises(CodecError):
            codec.encode(value)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            codec.decode(codec.encode(1) + b"\x00")

    def test_truncated_input_rejected(self):
        encoded = codec.encode(b"hello-world")
        with pytest.raises(CodecError):
            codec.decode(encoded[:-1])

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="unknown tag"):
            codec.decode(b"\x7f")

    def test_invalid_utf8_rejected(self):
        raw = bytes([codec.TAG_STR, 2, 0xFF, 0xFE])
        with pytest.raises(CodecError):
            codec.decode(raw)

    def test_empty_input_rejected(self):
        with pytest.raises(CodecError):
            codec.decode(b"")


class TestCanonicality:
    def test_leading_zero_int_rejected(self):
        # int 1 encoded with a leading zero byte in the magnitude
        raw = bytes([codec.TAG_INT, 0, 2, 0x00, 0x01])
        with pytest.raises(NonCanonicalEncoding):
            codec.decode(raw)

    def test_negative_zero_rejected(self):
        raw = bytes([codec.TAG_INT, 1, 0])
        with pytest.raises(NonCanonicalEncoding):
            codec.decode(raw)

    def test_invalid_sign_byte_rejected(self):
        raw = bytes([codec.TAG_INT, 2, 0])
        with pytest.raises(CodecError):
            codec.decode(raw)

    def test_unsorted_dict_keys_rejected(self):
        good = codec.encode({"a": 1, "b": 2})
        # Build a dict encoding with keys out of order: swap the two
        # (key, value) groups after the header.
        header = bytes([codec.TAG_DICT, 2])
        key_a = bytes([codec.TAG_STR, 1]) + b"a" + codec.encode(1)
        key_b = bytes([codec.TAG_STR, 1]) + b"b" + codec.encode(2)
        assert header + key_a + key_b == good
        with pytest.raises(NonCanonicalEncoding):
            codec.decode(header + key_b + key_a)

    def test_duplicate_dict_keys_rejected(self):
        header = bytes([codec.TAG_DICT, 2])
        entry = bytes([codec.TAG_STR, 1]) + b"a" + codec.encode(1)
        with pytest.raises(NonCanonicalEncoding):
            codec.decode(header + entry + entry)

    def test_non_minimal_varint_rejected(self):
        # length 1 written as two varint groups (0x81 0x00)
        raw = bytes([codec.TAG_BYTES, 0x81, 0x00]) + b"x"
        with pytest.raises(NonCanonicalEncoding):
            codec.decode(raw)


class TestIterDecode:
    def test_stream_of_values(self):
        stream = codec.encode(1) + codec.encode("two") + codec.encode([3])
        assert list(codec.iter_decode(stream)) == [1, "two", [3]]

    def test_empty_stream(self):
        assert list(codec.iter_decode(b"")) == []
