"""Number theory: primality, generation, inverses, CRT, Jacobi."""

import pytest

from repro.crypto.numbers import (
    crt_pair,
    gcd,
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    jacobi_symbol,
    lcm,
    modinv,
)
from repro.crypto.rand import DeterministicRandomSource


KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 100, 7917, 2**31 + 1, 561, 41041, 825265]  # incl. Carmichael


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    def test_negative_not_prime(self):
        assert not is_probable_prime(-7)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)
        assert not is_probable_prime(2**127 + 1)


class TestGeneration:
    def test_generate_prime_size_and_primality(self):
        rng = DeterministicRandomSource(b"prime-gen")
        p = generate_prime(128, rng)
        assert p.bit_length() == 128
        assert is_probable_prime(p)

    def test_generate_prime_deterministic(self):
        assert generate_prime(64, DeterministicRandomSource(b"a")) == generate_prime(
            64, DeterministicRandomSource(b"a")
        )

    def test_generate_prime_too_small(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_generate_safe_prime(self):
        rng = DeterministicRandomSource(b"safe-gen")
        p = generate_safe_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)


class TestModularArithmetic:
    def test_modinv(self):
        assert modinv(3, 11) == 4
        assert (7 * modinv(7, 97)) % 97 == 1

    def test_modinv_nonexistent(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_crt_pair(self):
        p, q = 17, 29
        x = 123
        assert crt_pair(x % p, p, x % q, q) == x % (p * q)

    def test_crt_pair_roundtrip_random(self):
        rng = DeterministicRandomSource(b"crt")
        p = generate_prime(32, rng)
        q = generate_prime(32, rng)
        for _ in range(10):
            x = rng.randint_below(p * q)
            assert crt_pair(x % p, p, x % q, q) == x

    def test_gcd_lcm(self):
        assert gcd(12, 18) == 6
        assert gcd(0, 5) == 5
        assert gcd(-12, 18) == 6
        assert lcm(4, 6) == 12
        assert lcm(0, 7) == 0


class TestJacobi:
    def test_quadratic_residues_mod_prime(self):
        p = 23
        residues = {pow(x, 2, p) for x in range(1, p)}
        for a in range(1, p):
            expected = 1 if a in residues else -1
            assert jacobi_symbol(a, p) == expected

    def test_zero_when_shared_factor(self):
        assert jacobi_symbol(15, 9) == 0

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            jacobi_symbol(3, 8)
