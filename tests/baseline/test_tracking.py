"""Tracking/profiles: the operator-knowledge diff between the systems."""

import pytest

from repro.baseline.identity_drm import (
    BaselineProvider,
    BaselineUser,
    baseline_purchase,
    baseline_transfer,
)
from repro.baseline.tracking import ProfileBuilder
from repro.core.identity import SmartCard
from repro.crypto.rand import DeterministicRandomSource


@pytest.fixture()
def baseline_world(fresh_deployment):
    d = fresh_deployment("tracking")
    provider = BaselineProvider(
        rng=d.rng.fork("bl"),
        clock=d.clock,
        bank=d.bank,
        license_key_bits=512,
    )
    provider.publish("song-1", b"S1" * 8, title="One", price=2)
    provider.publish("song-2", b"S2" * 8, title="Two", price=4)
    users = {}
    for name in ("alice", "bob"):
        card = SmartCard(
            f"tr-{name}".encode().ljust(16, b"_"),
            d.group,
            rng=DeterministicRandomSource(f"tr-{name}"),
        )
        user = BaselineUser(name, card)
        provider.register_user(user)
        d.bank.open_account(user.bank_account, initial_balance=100)
        users[name] = user
    return d, provider, users


class TestBaselineProfiles:
    def test_full_dossier(self, baseline_world):
        d, provider, users = baseline_world
        baseline_purchase(users["alice"], provider, "song-1", clock=d.clock)
        d.clock.advance(1000)
        baseline_purchase(users["alice"], provider, "song-2", clock=d.clock)
        baseline_purchase(users["bob"], provider, "song-1", clock=d.clock)
        report = ProfileBuilder(provider).build()
        assert report.identified
        assert report.profile_count == 2
        alice_profile = report.profiles[b"alice"]
        assert sorted(alice_profile.contents) == ["song-1", "song-2"]
        assert alice_profile.total_spent == 6
        assert alice_profile.span_seconds == 1000

    def test_transfer_edges_recorded(self, baseline_world):
        d, provider, users = baseline_world
        license_ = baseline_purchase(users["alice"], provider, "song-1", clock=d.clock)
        baseline_transfer(users["alice"], users["bob"], provider, license_.license_id, clock=d.clock)
        report = ProfileBuilder(provider).build()
        assert ("alice", "bob", "song-1") in report.transfer_edges

    def test_summary_shape(self, baseline_world):
        d, provider, users = baseline_world
        baseline_purchase(users["alice"], provider, "song-1", clock=d.clock)
        summary = ProfileBuilder(provider).build().summary()
        assert summary["identified"] is True
        assert summary["profiles"] == 1
        assert summary["max_profile"] == 1


class TestP2drmProfiles:
    def test_profiles_shatter_to_singletons(self, fresh_deployment):
        """The same mining code against the P2DRM provider: one human,
        three purchases, three unlinkable one-licence 'profiles' and no
        names anywhere."""
        d = fresh_deployment("tracking-p2drm")
        d.add_user("alice", balance=100)
        for _ in range(3):
            d.buy("alice", "song-1")
        report = ProfileBuilder(d.provider).build()
        assert not report.identified
        assert report.profile_count == 3
        assert report.max_profile_size == 1
        assert report.transfer_edges == []
        assert all("alice" not in p.display for p in report.profiles.values())

    def test_anonymous_licences_not_profiled(self, fresh_deployment):
        d = fresh_deployment("tracking-anon")
        d.add_user("a", balance=100)
        d.add_user("b", balance=100)
        license_ = d.buy("a", "song-1")
        d.transfer("a", "b", license_.license_id)
        report = ProfileBuilder(d.provider).build()
        # Issued licences: a's purchase + b's redemption = 2 profiles;
        # the anonymous intermediate has no holder and appears in none.
        assert report.profile_count == 2

    def test_total_spend_invisible(self, fresh_deployment):
        """Coins carry no account info, so P2DRM profiles show zero
        attributable spending."""
        d = fresh_deployment("tracking-spend")
        d.add_user("alice", balance=100)
        d.buy("alice", "song-1")
        report = ProfileBuilder(d.provider).build()
        assert all(p.total_spent == 0 for p in report.profiles.values())
