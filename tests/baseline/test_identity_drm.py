"""Baseline identity-bound DRM: same enforcement, none of the privacy."""

import pytest

from repro.baseline.identity_drm import (
    BaselineProvider,
    BaselineUser,
    baseline_purchase,
    baseline_transfer,
)
from repro.core.identity import SmartCard
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import (
    AuthenticationError,
    PaymentError,
    ProtocolError,
    RevokedLicenseError,
)


@pytest.fixture(scope="module")
def world(deployment):
    provider = BaselineProvider(
        rng=deployment.rng.fork("bl-provider"),
        clock=deployment.clock,
        bank=deployment.bank,
        license_key_bits=512,
    )
    provider.publish("song-1", b"SONG" * 16, title="Song", price=3)
    users = {}
    for name in ("alice", "bob", "mallory"):
        card = SmartCard(
            f"bl-card-{name}".encode().ljust(16, b"0"),
            deployment.group,
            rng=DeterministicRandomSource(f"bl-{name}"),
            authority_key=deployment.authority.public_key,
        )
        user = BaselineUser(name, card)
        provider.register_user(user)
        deployment.bank.open_account(user.bank_account, initial_balance=100)
        users[name] = user
    return provider, users, deployment


class TestPurchase:
    def test_happy_path_debits_ledger(self, world):
        provider, users, deployment = world
        alice = users["alice"]
        before = deployment.bank.balance(alice.bank_account)
        license_ = baseline_purchase(alice, provider, "song-1", clock=deployment.clock)
        assert deployment.bank.balance(alice.bank_account) == before - 3
        assert license_.license_id in alice.licenses

    def test_license_names_account(self, world):
        provider, users, deployment = world
        license_ = baseline_purchase(
            users["alice"], provider, "song-1", clock=deployment.clock
        )
        record = provider.license_register.get(license_.license_id)
        assert record.holder == b"alice"
        assert record.kind == "identity"

    def test_audit_names_user_and_price(self, world):
        provider, users, deployment = world
        baseline_purchase(users["bob"], provider, "song-1", clock=deployment.clock)
        events = provider.audit_log.entries(event="license_issued")
        assert any(e.payload.get("user") == "bob" and e.payload.get("price") == 3 for e in events)

    def test_unknown_user_rejected(self, world):
        provider, users, deployment = world
        card = SmartCard(
            b"ghost-card-00000",
            deployment.group,
            rng=DeterministicRandomSource(b"ghost"),
        )
        stranger = BaselineUser("ghost", card)
        deployment.bank.open_account(stranger.bank_account, initial_balance=10)
        with pytest.raises(AuthenticationError):
            baseline_purchase(stranger, provider, "song-1", clock=deployment.clock)

    def test_insufficient_funds(self, world):
        provider, users, deployment = world
        card = SmartCard(
            b"poor-card-000000",
            deployment.group,
            rng=DeterministicRandomSource(b"poor"),
        )
        poor = BaselineUser("poor", card)
        provider.register_user(poor)
        deployment.bank.open_account(poor.bank_account, initial_balance=1)
        with pytest.raises(PaymentError):
            baseline_purchase(poor, provider, "song-1", clock=deployment.clock)


class TestTransfer:
    def test_happy_path_moves_license(self, world):
        provider, users, deployment = world
        alice, bob = users["alice"], users["bob"]
        license_ = baseline_purchase(alice, provider, "song-1", clock=deployment.clock)
        new_license = baseline_transfer(
            alice, bob, provider, license_.license_id, clock=deployment.clock
        )
        assert license_.license_id not in alice.licenses
        assert new_license.license_id in bob.licenses
        assert provider.revocation_list.is_revoked(license_.license_id)

    def test_transfer_logs_social_edge(self, world):
        """The leak the paper targets: the operator records who gave
        what to whom."""
        provider, users, deployment = world
        alice, bob = users["alice"], users["bob"]
        license_ = baseline_purchase(alice, provider, "song-1", clock=deployment.clock)
        baseline_transfer(alice, bob, provider, license_.license_id, clock=deployment.clock)
        events = provider.audit_log.entries(event="license_transferred")
        assert any(
            e.payload.get("from") == "alice" and e.payload.get("to") == "bob"
            for e in events
        )

    def test_non_holder_cannot_transfer(self, world):
        provider, users, deployment = world
        alice, mallory, bob = users["alice"], users["mallory"], users["bob"]
        license_ = baseline_purchase(alice, provider, "song-1", clock=deployment.clock)
        with pytest.raises(AuthenticationError):
            baseline_transfer(
                mallory, bob, provider, license_.license_id, clock=deployment.clock
            )

    def test_double_transfer_rejected(self, world):
        provider, users, deployment = world
        alice, bob = users["alice"], users["bob"]
        license_ = baseline_purchase(alice, provider, "song-1", clock=deployment.clock)
        baseline_transfer(alice, bob, provider, license_.license_id, clock=deployment.clock)
        with pytest.raises(RevokedLicenseError):
            baseline_transfer(
                alice, bob, provider, license_.license_id, clock=deployment.clock
            )


class TestEndpointsDisabled:
    def test_anonymous_endpoints_refused(self, world):
        provider, *_ = world
        with pytest.raises(ProtocolError):
            provider.sell(None)
        with pytest.raises(ProtocolError):
            provider.exchange(None)
        with pytest.raises(ProtocolError):
            provider.redeem(None)

    def test_duplicate_registration_rejected(self, world):
        provider, users, _ = world
        with pytest.raises(ProtocolError):
            provider.register_user(users["alice"])
