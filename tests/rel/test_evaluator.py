"""REL evaluator: constraint enforcement, usage accounting."""

import pytest

from repro.errors import RightsDenied
from repro.rel.evaluator import EvaluationContext, RightsEvaluator, UsageState
from repro.rel.parser import parse_rights

LICENSE = b"L" * 16
OTHER = b"M" * 16


@pytest.fixture()
def evaluator():
    return RightsEvaluator()


def ctx(now=1000, device_id="ab12", region="eu"):
    return EvaluationContext(now=now, device_id=device_id, region=region)


class TestActionGrant:
    def test_granted_action_allowed(self, evaluator):
        rights = parse_rights("play")
        permission = evaluator.authorize(rights, LICENSE, "play", ctx())
        assert permission.action == "play"

    def test_ungranted_action_denied(self, evaluator):
        rights = parse_rights("play")
        with pytest.raises(RightsDenied) as err:
            evaluator.authorize(rights, LICENSE, "copy", ctx())
        assert err.value.action == "copy"
        assert "not granted" in err.value.reason


class TestCountConstraint:
    def test_counts_per_license_and_action(self, evaluator):
        rights = parse_rights("play[count<=2]")
        for _ in range(2):
            evaluator.authorize(rights, LICENSE, "play", ctx())
            evaluator.record_use(LICENSE, "play")
        with pytest.raises(RightsDenied, match="exhausted"):
            evaluator.authorize(rights, LICENSE, "play", ctx())
        # A different licence has its own counter.
        evaluator.authorize(rights, OTHER, "play", ctx())

    def test_authorize_does_not_consume(self, evaluator):
        rights = parse_rights("play[count<=1]")
        evaluator.authorize(rights, LICENSE, "play", ctx())
        evaluator.authorize(rights, LICENSE, "play", ctx())  # still fine
        evaluator.record_use(LICENSE, "play")
        with pytest.raises(RightsDenied):
            evaluator.authorize(rights, LICENSE, "play", ctx())

    def test_remaining_uses(self, evaluator):
        rights = parse_rights("play[count<=3]; display")
        assert evaluator.remaining_uses(rights, LICENSE, "play") == 3
        evaluator.record_use(LICENSE, "play")
        assert evaluator.remaining_uses(rights, LICENSE, "play") == 2
        assert evaluator.remaining_uses(rights, LICENSE, "display") is None
        assert evaluator.remaining_uses(rights, LICENSE, "copy") == 0


class TestIntervalConstraint:
    def test_window_enforced(self, evaluator):
        rights = parse_rights("play[after=500, before=1500]")
        evaluator.authorize(rights, LICENSE, "play", ctx(now=1000))
        with pytest.raises(RightsDenied, match="not valid before"):
            evaluator.authorize(rights, LICENSE, "play", ctx(now=499))
        with pytest.raises(RightsDenied, match="expired"):
            evaluator.authorize(rights, LICENSE, "play", ctx(now=1501))

    def test_boundaries_inclusive(self, evaluator):
        rights = parse_rights("play[after=500, before=1500]")
        evaluator.authorize(rights, LICENSE, "play", ctx(now=500))
        evaluator.authorize(rights, LICENSE, "play", ctx(now=1500))


class TestDeviceConstraint:
    def test_binding(self, evaluator):
        rights = parse_rights("play[device=ab12|cd34]")
        evaluator.authorize(rights, LICENSE, "play", ctx(device_id="cd34"))
        with pytest.raises(RightsDenied, match="device"):
            evaluator.authorize(rights, LICENSE, "play", ctx(device_id="ffff"))
        with pytest.raises(RightsDenied):
            evaluator.authorize(
                rights, LICENSE, "play", EvaluationContext(now=1000)
            )


class TestRegionConstraint:
    def test_binding(self, evaluator):
        rights = parse_rights("play[region=eu]")
        evaluator.authorize(rights, LICENSE, "play", ctx(region="eu"))
        with pytest.raises(RightsDenied, match="region"):
            evaluator.authorize(rights, LICENSE, "play", ctx(region="us"))


class TestUsageState:
    def test_record_and_read(self):
        state = UsageState()
        assert state.uses(LICENSE, "play") == 0
        assert state.record(LICENSE, "play") == 1
        assert state.record(LICENSE, "play") == 2
        assert state.uses(LICENSE, "play") == 2
        assert state.uses(LICENSE, "copy") == 0

    def test_merge_is_pointwise_max(self):
        a = UsageState()
        b = UsageState()
        a.record(LICENSE, "play")
        a.record(LICENSE, "play")
        b.record(LICENSE, "play")
        b.record(LICENSE, "copy")
        a.merge_from(b)
        assert a.uses(LICENSE, "play") == 2  # max, not sum
        assert a.uses(LICENSE, "copy") == 1

    def test_evaluator_accepts_preloaded_state(self):
        state = UsageState()
        state.record(LICENSE, "play")
        evaluator = RightsEvaluator(state)
        rights = parse_rights("play[count<=1]")
        with pytest.raises(RightsDenied):
            evaluator.authorize(rights, LICENSE, "play", ctx())
