"""REL data model: validation, canonical ordering, set operations."""

import pytest

from repro.errors import RightsParseError
from repro.rel.model import (
    ACTIONS,
    CountConstraint,
    DeviceConstraint,
    IntervalConstraint,
    Permission,
    RegionConstraint,
    Rights,
    constraint_from_dict,
)


class TestConstraints:
    def test_count_validation(self):
        assert CountConstraint(max_uses=1).max_uses == 1
        with pytest.raises(RightsParseError):
            CountConstraint(max_uses=0)

    def test_interval_validation(self):
        IntervalConstraint(not_before=1, not_after=2)
        IntervalConstraint(not_before=None, not_after=5)
        with pytest.raises(RightsParseError):
            IntervalConstraint(not_before=None, not_after=None)
        with pytest.raises(RightsParseError):
            IntervalConstraint(not_before=10, not_after=5)

    def test_device_validation(self):
        DeviceConstraint(device_ids=frozenset({"ab12"}))
        with pytest.raises(RightsParseError):
            DeviceConstraint(device_ids=frozenset())
        with pytest.raises(RightsParseError):
            DeviceConstraint(device_ids=frozenset({"XY"}))  # uppercase

    def test_region_validation(self):
        RegionConstraint(regions=frozenset({"eu", "us"}))
        with pytest.raises(RightsParseError):
            RegionConstraint(regions=frozenset({"E1"}))
        with pytest.raises(RightsParseError):
            RegionConstraint(regions=frozenset())

    def test_constraint_dict_roundtrip(self):
        constraints = [
            CountConstraint(max_uses=5),
            IntervalConstraint(not_before=1, not_after=9),
            DeviceConstraint(device_ids=frozenset({"aa", "bb"})),
            RegionConstraint(regions=frozenset({"eu"})),
        ]
        for constraint in constraints:
            assert constraint_from_dict(constraint.as_dict()) == constraint

    def test_unknown_constraint_dict(self):
        with pytest.raises(RightsParseError):
            constraint_from_dict({"type": "weather"})


class TestPermission:
    def test_unknown_action_rejected(self):
        with pytest.raises(RightsParseError):
            Permission(action="teleport")

    def test_duplicate_constraint_type_rejected(self):
        with pytest.raises(RightsParseError):
            Permission(
                action="play",
                constraints=(CountConstraint(max_uses=1), CountConstraint(max_uses=2)),
            )

    def test_constraints_canonically_ordered(self):
        p = Permission(
            action="play",
            constraints=(
                RegionConstraint(regions=frozenset({"eu"})),
                CountConstraint(max_uses=3),
            ),
        )
        kinds = [c.as_dict()["type"] for c in p.constraints]
        assert kinds == ["count", "region"]

    def test_equality_independent_of_input_order(self):
        a = Permission(
            action="play",
            constraints=(
                CountConstraint(max_uses=3),
                RegionConstraint(regions=frozenset({"eu"})),
            ),
        )
        b = Permission(
            action="play",
            constraints=(
                RegionConstraint(regions=frozenset({"eu"})),
                CountConstraint(max_uses=3),
            ),
        )
        assert a == b

    def test_max_count(self):
        assert Permission(action="play").max_count() is None
        assert (
            Permission(action="play", constraints=(CountConstraint(max_uses=7),)).max_count()
            == 7
        )

    def test_dict_roundtrip(self):
        p = Permission(
            action="copy",
            constraints=(
                CountConstraint(max_uses=2),
                DeviceConstraint(device_ids=frozenset({"ab"})),
            ),
        )
        assert Permission.from_dict(p.as_dict()) == p


class TestRights:
    def test_requires_permission(self):
        with pytest.raises(RightsParseError):
            Rights(permissions=())

    def test_duplicate_action_rejected(self):
        with pytest.raises(RightsParseError):
            Rights(
                permissions=(Permission(action="play"), Permission(action="play"))
            )

    def test_actions_canonically_ordered(self):
        r = Rights(
            permissions=(Permission(action="transfer"), Permission(action="play"))
        )
        assert [p.action for p in r.permissions] == ["play", "transfer"]

    def test_permission_for(self):
        r = Rights(permissions=(Permission(action="play"),))
        assert r.permission_for("play") is not None
        assert r.permission_for("copy") is None

    def test_transferable(self):
        assert Rights(permissions=(Permission(action="transfer"),)).transferable
        assert not Rights(permissions=(Permission(action="play"),)).transferable

    def test_without_action(self):
        r = Rights(
            permissions=(Permission(action="play"), Permission(action="transfer"))
        )
        stripped = r.without_action("transfer")
        assert not stripped.transferable
        assert stripped.permission_for("play") is not None
        with pytest.raises(RightsParseError):
            stripped.without_action("play")

    def test_restricted_to(self):
        r = Rights(
            permissions=(
                Permission(action="play"),
                Permission(action="copy"),
                Permission(action="transfer"),
            )
        )
        restricted = r.restricted_to(["play", "copy"])
        assert restricted.permission_for("transfer") is None
        with pytest.raises(RightsParseError):
            r.restricted_to(["burn"])

    def test_is_subset_of(self):
        big = Rights(
            permissions=(Permission(action="play"), Permission(action="transfer"))
        )
        small = big.without_action("transfer")
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)
        # Same action but different constraints is NOT a subset.
        constrained = Rights(
            permissions=(
                Permission(action="play", constraints=(CountConstraint(max_uses=1),)),
            )
        )
        assert not constrained.is_subset_of(big)

    def test_dict_roundtrip(self):
        r = Rights(
            permissions=(
                Permission(action="play", constraints=(CountConstraint(max_uses=9),)),
                Permission(action="export"),
            )
        )
        assert Rights.from_dict(r.as_dict()) == r

    def test_all_actions_known(self):
        assert set(ACTIONS) >= {"play", "copy", "transfer", "export", "burn"}
