"""REL serialization: canonical bytes and text round-trips."""

import pytest

from repro.errors import RightsParseError
from repro.rel.parser import parse_rights
from repro.rel.serializer import rights_from_bytes, rights_to_bytes, rights_to_text

EXPRESSIONS = [
    "play",
    "play[count<=10]",
    "play[after=2004-01-01T00:00:00Z, before=2005-01-01T00:00:00Z]",
    "copy[device=ab12|cd34]; play[region=eu|us]",
    "play[count<=2]; display; transfer[count<=1]",
    "burn[count<=1, device=ff00]",
]


class TestBytesRoundTrip:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_roundtrip(self, text):
        rights = parse_rights(text)
        assert rights_from_bytes(rights_to_bytes(rights)) == rights

    def test_canonical_bytes_stable(self):
        a = parse_rights("transfer; play")
        b = parse_rights("play; transfer")
        assert rights_to_bytes(a) == rights_to_bytes(b)

    def test_distinct_rights_distinct_bytes(self):
        encodings = {rights_to_bytes(parse_rights(t)) for t in EXPRESSIONS}
        assert len(encodings) == len(EXPRESSIONS)

    def test_bad_bytes_rejected(self):
        from repro import codec

        with pytest.raises(RightsParseError):
            rights_from_bytes(codec.encode([1, 2, 3]))


class TestTextRoundTrip:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_text_roundtrip(self, text):
        rights = parse_rights(text)
        assert parse_rights(rights_to_text(rights)) == rights

    def test_text_is_human_readable(self):
        rights = parse_rights("play[count<=5, before=2005-01-01T00:00:00Z]")
        text = rights_to_text(rights)
        assert "count<=5" in text
        assert "before=2005-01-01T00:00:00Z" in text
