"""REL parser: grammar coverage and error reporting."""

import pytest

from repro.errors import RightsParseError
from repro.rel.model import (
    CountConstraint,
    DeviceConstraint,
    IntervalConstraint,
    RegionConstraint,
)
from repro.rel.parser import format_timestamp, parse_rights, parse_timestamp


class TestTimestamps:
    def test_iso_roundtrip(self):
        assert parse_timestamp("2004-06-04T12:00:00Z") == 1086350400
        assert format_timestamp(1086350400) == "2004-06-04T12:00:00Z"

    def test_epoch_accepted(self):
        assert parse_timestamp("12345") == 12345

    def test_garbage_rejected(self):
        with pytest.raises(RightsParseError):
            parse_timestamp("yesterday")
        with pytest.raises(RightsParseError):
            parse_timestamp("2004-06-04")  # date only


class TestBasicParsing:
    def test_single_action(self):
        r = parse_rights("play")
        assert [p.action for p in r.permissions] == ["play"]
        assert r.permissions[0].constraints == ()

    def test_multiple_actions(self):
        r = parse_rights("play; transfer; copy")
        assert {p.action for p in r.permissions} == {"play", "transfer", "copy"}

    def test_whitespace_tolerant(self):
        assert parse_rights("  play ;  transfer ") == parse_rights("play; transfer")

    def test_count_constraint(self):
        r = parse_rights("play[count<=10]")
        assert r.permission_for("play").constraints == (CountConstraint(max_uses=10),)

    def test_interval_merging(self):
        r = parse_rights(
            "play[after=2004-01-01T00:00:00Z, before=2005-01-01T00:00:00Z]"
        )
        (constraint,) = r.permission_for("play").constraints
        assert isinstance(constraint, IntervalConstraint)
        assert constraint.not_before < constraint.not_after

    def test_before_only(self):
        r = parse_rights("play[before=2005-01-01T00:00:00Z]")
        (constraint,) = r.permission_for("play").constraints
        assert constraint.not_before is None

    def test_device_list(self):
        r = parse_rights("copy[device=ab12|cd34]")
        (constraint,) = r.permission_for("copy").constraints
        assert constraint == DeviceConstraint(device_ids=frozenset({"ab12", "cd34"}))

    def test_region_list(self):
        r = parse_rights("play[region=eu|us]")
        (constraint,) = r.permission_for("play").constraints
        assert constraint == RegionConstraint(regions=frozenset({"eu", "us"}))

    def test_combined_constraints(self):
        r = parse_rights("play[count<=3, region=eu, after=1000, before=2000]")
        kinds = {c.as_dict()["type"] for c in r.permission_for("play").constraints}
        assert kinds == {"count", "interval", "region"}


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            ";",
            "play;; transfer",
            "fly",
            "play[count<=0]",
            "play[count=5]",
            "play[count<=abc]",
            "play[unknown=1]",
            "play[]",
            "play[after=xx]",
            "play[device=XY]",
            "play[region=EU]",
            "play[after=5, after=6]",
            "play; play",
            "play[before=1000, after=2000]",  # empty interval
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(RightsParseError):
            parse_rights(text)

    def test_non_string_rejected(self):
        with pytest.raises(RightsParseError):
            parse_rights(None)


class TestPaperTemplates:
    """The rights templates the P2DRM deployment actually issues."""

    def test_default_catalog_rights(self):
        r = parse_rights("play; display; transfer[count<=1]")
        assert r.transferable
        assert r.permission_for("transfer").max_count() == 1
        assert r.permission_for("play").max_count() is None

    def test_rental_rights(self):
        r = parse_rights("play[count<=5, before=2004-12-31T23:59:59Z]")
        assert not r.transferable
