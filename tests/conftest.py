"""Shared fixtures.

Key generation dominates test runtime, so RSA keys are generated once
per session (deterministically) and deployments once per module.
Tests that mutate global deployment state build their own via the
``fresh_deployment`` factory.
"""

from __future__ import annotations

import pytest

from repro.clock import SimClock
from repro.crypto.groups import named_group
from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.rsa import generate_rsa_key


@pytest.fixture(autouse=True)
def _fastexp_state_guard():
    """Tests must not inherit (or leak) the exp-mode/enabled switches
    (tables stay warm — see :func:`repro.crypto.fastexp.switch_guard`)."""
    from repro.crypto import fastexp

    with fastexp.switch_guard():
        yield


@pytest.fixture()
def rng(request):
    """A deterministic random source, seeded per test.

    Per-test seeding keeps runs reproducible while preventing identical
    streams from colliding in module-scoped stores (e.g. two tests
    minting coins with the same serial).
    """
    return DeterministicRandomSource(f"test-rng-{request.node.nodeid}")


@pytest.fixture()
def clock():
    return SimClock()


@pytest.fixture(scope="session")
def test_group():
    return named_group("test-512")


@pytest.fixture(scope="session")
def rsa512():
    return generate_rsa_key(512, rng=DeterministicRandomSource(b"rsa512"))


@pytest.fixture(scope="session")
def rsa768():
    return generate_rsa_key(768, rng=DeterministicRandomSource(b"rsa768"))


@pytest.fixture(scope="session")
def rsa1024():
    return generate_rsa_key(1024, rng=DeterministicRandomSource(b"rsa1024"))


@pytest.fixture(scope="module")
def deployment(request):
    """A module-scoped deployment with one published content item.

    Seeded by module name, so modules never share key material but
    each module is reproducible in isolation.
    """
    from repro.core.system import build_deployment

    d = build_deployment(seed=f"module-{request.module.__name__}", rsa_bits=512)
    d.provider.publish(
        "song-1", b"SONG-ONE-PAYLOAD" * 64, title="Song One", price=3
    )
    return d


@pytest.fixture()
def fresh_deployment():
    """Factory for isolated deployments (tests that mutate state)."""
    from repro.core.system import build_deployment

    def make(seed: str = "fresh", **kwargs):
        kwargs.setdefault("rsa_bits", 512)
        d = build_deployment(seed=seed, **kwargs)
        d.provider.publish(
            "song-1", b"SONG-ONE-PAYLOAD" * 64, title="Song One", price=3
        )
        return d

    return make
