"""The socket transport end to end: asyncio server, blocking client.

Two layers of coverage:

- **shared-surface tests** parametrized over both transports — the
  same test body drives the in-process :class:`ServiceGateway` and a
  :class:`NetClient` talking to a :class:`NetServer` over localhost
  TCP, proving the provider facade behaves identically through either
  path (the point of the pluggable-transport refactor);
- **socket-specific tests** — byte-identity against the queue path,
  cross-worker races staged *through the network*, backpressure,
  malformed/oversized frames, truncated streams, concurrent clients.
"""

import logging
import re
import socket
import struct
import threading
import time
import urllib.request

import pytest

from repro import codec
from repro.core.messages import (
    NONCE_SIZE,
    DepositRequest,
    PurchaseRequest,
    purchase_signing_payload,
)
from repro.core.protocols.acquisition import accept_license, build_purchase_request
from repro.core.protocols.transfer import (
    accept_redeemed_license,
    build_exchange_request,
    build_redeem_request,
)
from repro.core.system import build_deployment
from repro.errors import (
    AuthenticationError,
    DoubleRedemptionError,
    DoubleSpendError,
    FrameTooLargeError,
    ServiceError,
    TruncatedFrameError,
    WireError,
)
from repro.service import wire
from repro.service.gateway import build_gateway
from repro.service.netserver import NetClient, NetServer
from repro.service.transport import (
    FRAME_REQUEST,
    FRAME_REQUEST_PINNED,
    FRAME_RESPONSE,
    WIRE_MAGIC,
    WIRE_VERSION,
    encode_frame,
)


def _deployment(seed="netserver-test"):
    d = build_deployment(seed=seed, rsa_bits=512)
    d.provider.publish("song-1", b"SONG-ONE" * 32, title="Song One", price=3)
    return d


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """One deployment, one 2-worker/4-shard gateway, one socket server
    and one long-lived client — shared by the cheap tests (each test
    uses fresh users and tokens)."""
    d = _deployment()
    directory = tmp_path_factory.mktemp("netserver-shards")
    gateway = build_gateway(d, str(directory), workers=2, shards=4)
    server = NetServer(gateway)
    address = server.start()
    client = NetClient(address)
    yield d, gateway, server, client
    client.close()
    server.close()
    gateway.close()


@pytest.fixture(params=["queue", "tcp"])
def surface(request, stack):
    """The same provider surface through either transport."""
    d, gateway, _server, client = stack
    return d, (gateway if request.param == "queue" else client)


def _same_coin_purchase(user, deployment, coins):
    """A purchase request paying with externally chosen coins."""
    certificate = user.certificate_for_transaction(deployment.issuer)
    nonce = user.rng.random_bytes(NONCE_SIZE)
    at = user.clock.now()
    payload = purchase_signing_payload(
        "song-1",
        certificate.fingerprint,
        [coin.serial for coin in coins],
        nonce,
        at,
    )
    return PurchaseRequest(
        content_id="song-1",
        certificate=certificate,
        coins=tuple(coins),
        nonce=nonce,
        at=at,
        signature=user.require_card().sign(certificate.pseudonym, payload),
    )


# -- shared-surface tests (one body, both transports) ------------------------


def test_sell_end_to_end(surface):
    d, provider = surface
    user = d.add_user(f"net-buyer-{provider.__class__.__name__}", balance=1_000)
    request = build_purchase_request(user, provider, d.issuer, d.bank, "song-1")
    license_ = provider.sell(request)
    accept_license(user, provider, request, license_)
    assert user.owns_content("song-1")


def test_exchange_redeem_and_proofs(surface):
    d, provider = surface
    tag = provider.__class__.__name__
    sender = d.add_user(f"net-sender-{tag}", balance=1_000)
    receiver = d.add_user(f"net-receiver-{tag}", balance=1_000)
    request = build_purchase_request(sender, provider, d.issuer, d.bank, "song-1")
    license_ = provider.sell(request)
    accept_license(sender, provider, request, license_)
    anonymous = sender.transfer_out(license_.license_id, provider=provider)
    redeem = build_redeem_request(receiver, provider, d.issuer, anonymous)
    new_license = provider.redeem(redeem)
    accept_redeemed_license(receiver, provider, redeem, new_license)
    assert receiver.owns_content("song-1")
    # The read surface agrees through either path: the old licence is
    # revoked (non-revocation proof refused), the new one provable.
    from repro.errors import RevokedLicenseError

    with pytest.raises(RevokedLicenseError):
        provider.prove_not_revoked(license_.license_id)
    snapshot, proof = provider.prove_not_revoked(new_license.license_id)
    snapshot.verify(provider.license_key)


def test_batch_offender_isolation(surface):
    d, provider = surface
    tag = provider.__class__.__name__
    sender = d.add_user(f"iso-sender-{tag}", balance=1_000)
    receiver = d.add_user(f"iso-receiver-{tag}", balance=1_000)
    anonymous_licenses = []
    for _ in range(3):
        request = build_purchase_request(sender, provider, d.issuer, d.bank, "song-1")
        license_ = provider.sell(request)
        accept_license(sender, provider, request, license_)
        anonymous_licenses.append(
            sender.transfer_out(license_.license_id, provider=provider)
        )
    requests = [
        build_redeem_request(receiver, provider, d.issuer, anonymous)
        for anonymous in anonymous_licenses
    ]
    # Burn the middle token; its re-presentation must be the only
    # rejection in the pipelined batch.
    provider.redeem(
        build_redeem_request(receiver, provider, d.issuer, anonymous_licenses[1])
    )
    results = provider.redeem_batch(requests)
    assert isinstance(results[1], DoubleRedemptionError)
    assert not isinstance(results[0], Exception)
    assert not isinstance(results[2], Exception)


def test_bad_signature_rejected_with_typed_error(surface):
    from dataclasses import replace

    d, provider = surface
    user = d.add_user(f"forger-{provider.__class__.__name__}", balance=1_000)
    request = build_purchase_request(user, provider, d.issuer, d.bank, "song-1")
    with pytest.raises(AuthenticationError):
        provider.sell(replace(request, at=request.at + 1))


def test_deposit_and_replay(surface):
    d, provider = surface
    tag = provider.__class__.__name__
    payer = d.add_user(f"dep-payer-{tag}", balance=1_000)
    coins = payer.coins_for(5, d.bank)
    receipt = provider.deposit(f"merchant-{tag}", coins)
    assert receipt == {"account": f"merchant-{tag}", "credited": 5}
    with pytest.raises(DoubleSpendError):
        provider.call(
            DepositRequest(account="any-other", coins=tuple(coins))
        )


def test_read_surface_parity(stack):
    """Catalog, prices, packages and hello metadata agree across the
    wire with the gateway's local answers."""
    _d, gateway, _server, client = stack
    assert client.name == gateway.name
    assert client.workers == gateway.workers
    assert client.shards == gateway.shards
    assert (client.license_key.n, client.license_key.e) == (
        gateway.license_key.n,
        gateway.license_key.e,
    )
    assert client.catalog() == gateway.catalog()
    assert client.price("song-1") == gateway.price("song-1")
    assert client.package("song-1") == gateway.package("song-1")
    assert client.download("song-1").content_id == "song-1"
    entries_client, snapshot_client, cursor_client = client.revocation_sync(0)
    entries_local, snapshot_local, cursor_local = gateway.revocation_sync(0)
    assert entries_client == entries_local
    assert snapshot_client.version == snapshot_local.version
    assert cursor_client == tuple(cursor_local)


# -- socket-specific behaviour ----------------------------------------------


def test_byte_identity_with_queue_transport(tmp_path):
    """The acceptance check: identical requests through the socket
    path and the in-process queue path yield byte-identical protocol
    outputs at every stage (fresh shard sets on both sides)."""
    seed = "net-byte-identity"
    d = _deployment(seed=seed)
    users = [d.add_user(f"bi-{i}", balance=1_000) for i in range(3)]
    receiver = d.add_user("bi-receiver", balance=1_000)
    requests = [
        build_purchase_request(user, d.provider, d.issuer, d.bank, "song-1")
        for user in users
        for _ in range(2)
    ]

    queue_gateway = build_gateway(d, str(tmp_path / "queue"), workers=2, shards=4)
    net_gateway = build_gateway(d, str(tmp_path / "net"), workers=2, shards=4)
    server = NetServer(net_gateway)
    try:
        client = NetClient(server.start())
        try:
            sold_queue = queue_gateway.sell_batch(requests)
            sold_net = client.sell_batch(requests)
            assert [codec.encode(r.as_dict()) for r in sold_net] == [
                codec.encode(r.as_dict()) for r in sold_queue
            ]
            owners = [user for user in users for _ in range(2)]
            exchanges = [
                build_exchange_request(owner, license_)
                for owner, license_ in zip(owners, sold_queue)
            ]
            exchanged_queue = queue_gateway.call_many(exchanges)
            exchanged_net = client.call_many(exchanges)
            assert [codec.encode(a.as_dict()) for a in exchanged_net] == [
                codec.encode(a.as_dict()) for a in exchanged_queue
            ]
            redeems = [
                build_redeem_request(receiver, queue_gateway, d.issuer, anonymous)
                for anonymous in exchanged_queue
            ]
            redeemed_queue = queue_gateway.redeem_batch(redeems)
            redeemed_net = client.redeem_batch(redeems)
            assert [codec.encode(r.as_dict()) for r in redeemed_net] == [
                codec.encode(r.as_dict()) for r in redeemed_queue
            ]
            # Deposits too: same coins, same receipt, then exactly-once
            # on replay through the *other* transport.
            payer = d.add_user("bi-payer", balance=1_000)
            coins = payer.coins_for(4, d.bank)
            assert client.deposit("m", coins) == queue_gateway.deposit("m", coins)
            with pytest.raises(DoubleSpendError):
                client.deposit("m", coins)
            with pytest.raises(DoubleSpendError):
                queue_gateway.deposit("m", coins)
        finally:
            client.close()
    finally:
        server.close()
        net_gateway.close()
        queue_gateway.close()


def test_double_redemption_race_through_sockets(stack):
    """One bearer token pinned onto BOTH workers through the network
    path: exactly one personalization, one typed evidence-carrying
    rejection — the exactly-once gate holds across the wire."""
    d, _gateway, _server, client = stack
    sender = d.add_user("net-race-sender", balance=1_000)
    receiver = d.add_user("net-race-receiver", balance=1_000)
    request = build_purchase_request(sender, client, d.issuer, d.bank, "song-1")
    license_ = client.sell(request)
    accept_license(sender, client, request, license_)
    anonymous = sender.transfer_out(license_.license_id, provider=client)
    first = build_redeem_request(receiver, client, d.issuer, anonymous)
    second = build_redeem_request(receiver, client, d.issuer, anonymous)
    tickets = [client.submit(first, worker=0), client.submit(second, worker=1)]
    results = client.gather(tickets)
    errors = [r for r in results if isinstance(r, Exception)]
    assert len(errors) == 1, results
    assert isinstance(errors[0], DoubleRedemptionError)
    assert errors[0].evidence.token_id == anonymous.license_id


def test_double_spend_race_through_sockets(stack):
    d, gateway, _server, client = stack
    alice = d.add_user("net-ds-alice", balance=1_000)
    bob = d.add_user("net-ds-bob", balance=1_000)
    coins = alice.coins_for(3, d.bank)
    spent_before = gateway.coin_spent_tokens.count()
    first = _same_coin_purchase(alice, d, coins)
    second = _same_coin_purchase(bob, d, coins)
    tickets = [client.submit(first, worker=0), client.submit(second, worker=1)]
    results = client.gather(tickets)
    errors = [r for r in results if isinstance(r, Exception)]
    successes = [r for r in results if not isinstance(r, Exception)]
    assert len(successes) == 1 and len(errors) == 1, results
    assert isinstance(errors[0], DoubleSpendError)
    # Exactly one payment's coins ended up spent.
    assert gateway.coin_spent_tokens.count() == spent_before + len(coins)


def test_backpressure_pipelined_batch_completes(tmp_path):
    """max_inflight=1 throttles the read loop to one outstanding
    request, but a pipelined batch still completes in order."""
    d = _deployment(seed="net-backpressure")
    gateway = build_gateway(d, str(tmp_path / "shards"), workers=1)
    server = NetServer(gateway, max_inflight=1)
    try:
        client = NetClient(server.start())
        try:
            users = [d.add_user(f"bp-{i}", balance=1_000) for i in range(4)]
            requests = [
                build_purchase_request(u, gateway, d.issuer, d.bank, "song-1")
                for u in users
            ]
            results = client.sell_batch(requests)
            assert not any(isinstance(r, Exception) for r in results)
        finally:
            client.close()
    finally:
        server.close()
        gateway.close()


def test_concurrent_clients(stack):
    """Several connections sell at once on one event loop; every
    request lands exactly once."""
    d, gateway, server, _client = stack
    users = [d.add_user(f"cc-{i}", balance=1_000) for i in range(4)]
    requests = [
        build_purchase_request(u, gateway, d.issuer, d.bank, "song-1")
        for u in users
    ]
    results: list = [None] * len(requests)

    def drive(index: int) -> None:
        with NetClient(server.address) as mine:
            results[index] = mine.sell(requests[index])

    threads = [
        threading.Thread(target=drive, args=(i,)) for i in range(len(requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(r is not None and not isinstance(r, Exception) for r in results)
    for request, license_ in zip(requests, results):
        assert license_.holder_fingerprint == request.certificate.fingerprint


def test_malformed_bytes_drop_the_connection(stack):
    """Garbage on the wire closes the connection (no resync attempts);
    the server keeps serving other clients."""
    _d, _gateway, server, client = stack
    raw = socket.create_connection(server.address, timeout=10)
    try:
        raw.sendall(b"NOT-A-P2DRM-FRAME" * 4)
        assert raw.recv(65536) == b""  # server hung up
    finally:
        raw.close()
    # The long-lived client's connection is unaffected.
    assert client.price("song-1") == 3


def test_oversized_frame_dropped_not_buffered(stack):
    """A header declaring a huge payload gets the connection dropped
    from the 16 header bytes alone — the payload never needs to exist."""
    _d, _gateway, server, _client = stack
    raw = socket.create_connection(server.address, timeout=10)
    try:
        raw.sendall(
            struct.pack("!2sBBQI", WIRE_MAGIC, WIRE_VERSION, 0x01, 0, 1 << 31)
        )
        assert raw.recv(65536) == b""
    finally:
        raw.close()


def test_client_refuses_oversized_send():
    """The sender-side ceiling is enforced before bytes leave: no
    connection needed to prove it."""
    with pytest.raises(FrameTooLargeError):
        encode_frame(0x01, 0, b"x" * 200, max_payload=100)


def test_malformed_control_reply_is_typed():
    """A version-skewed/hostile server answering a control frame with
    a wrong-shaped body gets a typed WireError, not a raw KeyError."""
    from repro.service.transport import FRAME_CONTROL_REPLY, FrameDecoder

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def wrong_shape():
        conn, _ = listener.accept()
        decoder = FrameDecoder()
        frames = []
        while not frames:
            frames = decoder.feed(conn.recv(65536))
        # ok:false but no error body — the shape the client must refuse.
        conn.sendall(
            encode_frame(
                FRAME_CONTROL_REPLY, frames[0].request_id, codec.encode({"ok": False})
            )
        )
        conn.close()

    thread = threading.Thread(target=wrong_shape, daemon=True)
    thread.start()
    client = NetClient(listener.getsockname(), timeout=10)
    try:
        with pytest.raises(WireError):
            client._control("hello")
    finally:
        client.close()
        thread.join(timeout=5)
        listener.close()


def test_truncated_server_stream_is_typed_not_a_hang():
    """A server dying mid-frame surfaces as TruncatedFrameError."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def half_answer():
        conn, _ = listener.accept()
        conn.recv(65536)
        # Half a response frame, then a hard close.
        frame = encode_frame(0x03, 0, b"never-finished-payload")
        conn.sendall(frame[: len(frame) - 5])
        conn.close()

    thread = threading.Thread(target=half_answer, daemon=True)
    thread.start()
    client = NetClient(listener.getsockname(), timeout=10)
    try:
        with pytest.raises(TruncatedFrameError):
            client._control("hello")
    finally:
        client.close()
        thread.join(timeout=5)
        listener.close()


def _raw_request(client: NetClient, frame_type: int, payload: bytes):
    """Send one hand-built request frame; returns the decoded answer."""
    with client._lock:
        ticket = next(client._next_id)
        client._send(frame_type, ticket, payload)
    return wire.decode_response(client._await_frame(ticket, FRAME_RESPONSE))


def test_malformed_request_body_is_answered_not_hung(stack):
    """A well-framed envelope whose body is garbage must come back as
    a typed error response — never an unanswered ticket that leaves
    the client waiting out its timeout."""
    _d, _gateway, server, _client = stack
    client = NetClient(server.address, timeout=30)
    try:
        hollow = codec.encode(
            {"what": "service-request", "kind": "sell", "body": {}}
        )
        result = _raw_request(client, FRAME_REQUEST, hollow)
        from repro.errors import CodecError

        assert isinstance(result, CodecError), result
        # The connection is still perfectly serviceable afterwards.
        assert client.price("song-1") == 3
    finally:
        client.close()


def test_short_pinned_payload_is_answered_not_hung(stack):
    """A pinned frame too short to carry its worker index gets a typed
    error answer, not a dropped ticket."""
    _d, _gateway, server, _client = stack
    client = NetClient(server.address, timeout=30)
    try:
        result = _raw_request(client, FRAME_REQUEST_PINNED, b"\x01")
        assert isinstance(result, WireError), result
    finally:
        client.close()


def test_oversized_reply_becomes_typed_error(tmp_path):
    """A reply above the server's frame ceiling (a big package through
    a small-frame server) is answered with a typed error instead of
    silently never arriving."""
    d = _deployment(seed="net-oversize-reply")
    gateway = build_gateway(d, str(tmp_path / "shards"), workers=1)
    server = NetServer(gateway, max_payload=256)
    try:
        client = NetClient(server.start(), timeout=30)
        try:
            assert client.price("song-1") == 3  # small replies still flow
            with pytest.raises(ServiceError):
                client.package("song-1")  # ~390 B package > 256 B ceiling
        finally:
            client.close()
    finally:
        server.close()
        gateway.close()


def test_deep_pipeline_does_not_deadlock(stack):
    """Thousands of pipelined requests on one connection, submitted
    before a single reply is read: the client's opportunistic drain
    keeps the reply stream flowing, so neither side wedges on full
    kernel buffers (the submit-all-then-gather distributed deadlock)."""
    _d, _gateway, server, _client = stack
    client = NetClient(server.address, timeout=60)
    try:
        hollow = codec.encode(
            {"what": "service-request", "kind": "sell", "body": {}}
        )
        tickets = []
        with client._lock:
            for _ in range(3000):
                ticket = next(client._next_id)
                client._send(FRAME_REQUEST, ticket, hollow)
                tickets.append(ticket)
        results = client.gather(tickets)
        from repro.errors import CodecError

        assert len(results) == 3000
        assert all(isinstance(r, CodecError) for r in results)
    finally:
        client.close()


def test_unknown_control_op_is_typed(stack):
    _d, _gateway, _server, client = stack
    with pytest.raises(WireError):
        client._control("no-such-op")


def test_closed_client_refuses_work(stack):
    d, _gateway, server, _client = stack
    mine = NetClient(server.address)
    mine.close()
    mine.close()  # idempotent
    user = d.add_user("late-net-user", balance=100)
    request = build_purchase_request(user, _gateway, d.issuer, d.bank, "song-1")
    with pytest.raises(ServiceError):
        mine.sell(request)


def test_server_start_is_single_shot(stack):
    _d, _gateway, server, _client = stack
    with pytest.raises(ServiceError):
        server.start()


_SAMPLE_LINE_RE = re.compile(
    r"^[a-z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9a-zA-Z+.eE\-]*$"
)


def _requests_total(text: str, failures: list) -> float:
    """Sum of ``p2drm_requests_total`` in one exposition; any line that
    does not parse as a whole sample is a torn scrape."""
    total = 0.0
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        if not _SAMPLE_LINE_RE.match(line):
            failures.append(f"torn exposition line: {line!r}")
            continue
        if line.startswith("p2drm_requests_total"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def test_concurrent_metrics_scrape_untorn_and_monotone(tmp_path):
    """GET /metrics and the metrics control frame hammered from four
    threads while deposits flow on a fifth: every exposition parses
    whole (no torn text) and every scraper sees the request counter
    move only forwards."""
    d = _deployment(seed="net-scrape")
    gateway = build_gateway(d, str(tmp_path / "shards"), workers=2, shards=4)
    server = NetServer(gateway, metrics_port=0)
    address = server.start()
    host, port = server.metrics_address
    url = f"http://{host}:{port}/metrics"
    stop = threading.Event()
    failures: list[str] = []

    def http_scraper():
        last = 0.0
        try:
            for _ in range(200):
                with urllib.request.urlopen(url, timeout=30) as response:
                    text = response.read().decode("utf-8")
                total = _requests_total(text, failures)
                if total < last:
                    failures.append(f"http total went back: {last}->{total}")
                last = total
                if stop.is_set():
                    break
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            failures.append(f"http scraper: {exc!r}")

    def control_scraper():
        last = 0.0
        try:
            with NetClient(address) as scraper:
                for _ in range(200):
                    snapshot = scraper.metrics()
                    samples = snapshot["p2drm_requests_total"]["samples"]
                    total = sum(float(s["value"]) for s in samples)
                    _requests_total(scraper.metrics_text(), failures)
                    if total < last:
                        failures.append(
                            f"control total went back: {last}->{total}"
                        )
                    last = total
                    if stop.is_set():
                        break
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            failures.append(f"control scraper: {exc!r}")

    # Withdraw on this thread (the deployment bank's SQLite handle is
    # thread-bound); the workload thread only drives the socket.
    batches = []
    for index in range(12):
        payer = d.add_user(f"scrape-payer-{index}", balance=50)
        batches.append(payer.coins_for(1, d.bank))

    def workload():
        try:
            with NetClient(address) as mine:
                for coins in batches:
                    mine.deposit("scrape-merch", coins)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            failures.append(f"workload: {exc!r}")
        finally:
            stop.set()

    threads = [
        threading.Thread(target=fn)
        for fn in (http_scraper, http_scraper, control_scraper,
                   control_scraper, workload)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:10]
        # Every deposit the workload drove is visible in a final scrape.
        with urllib.request.urlopen(url, timeout=30) as response:
            final = _requests_total(
                response.read().decode("utf-8"), failures
            )
        assert not failures, failures[:10]
        assert final >= 12
    finally:
        stop.set()
        server.close()
        gateway.close()


# -- abrupt peers and shutdown hygiene ---------------------------------------


class _AsyncioErrors(logging.Handler):
    """Captures ERROR records on the ``asyncio`` logger — where the
    event loop's default exception handler reports handler tasks that
    died unhandled ("Unhandled exception in client_connected_cb")."""

    def __init__(self):
        super().__init__(level=logging.ERROR)
        self.records: list[logging.LogRecord] = []

    def emit(self, record):
        self.records.append(record)

    def __enter__(self):
        logging.getLogger("asyncio").addHandler(self)
        return self

    def __exit__(self, *exc_info):
        logging.getLogger("asyncio").removeHandler(self)

    @property
    def messages(self):
        return [record.getMessage() for record in self.records]


def _rst_close(sock):
    """Abortive close: SO_LINGER zero turns close() into a RST."""
    sock.setsockopt(
        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
    )
    sock.close()


def test_peer_reset_mid_stream_is_quiet_and_survivable(stack):
    """A client that resets its connection mid-frame (exactly what the
    chaos proxy does on a `reset` fault) must cost the server nothing:
    the handler retires through its normal path (connection gauge back
    to baseline), later requests on other connections work, and no
    handler task dies unhandled into the event loop's logger."""
    d, gateway, server, client = stack
    gauge = gateway.metrics.get("p2drm_net_connections")
    baseline = gauge.value()
    with _AsyncioErrors() as errors:
        for _ in range(3):
            sock = socket.create_connection(server.address, timeout=5)
            sock.sendall(b"P2")  # a valid frame prefix: decoder stays fed
            _rst_close(sock)
        deadline = time.monotonic() + 10
        while gauge.value() != baseline and time.monotonic() < deadline:
            time.sleep(0.01)
        # The unhandled-exception report (the failure this test exists
        # to catch) lands one loop tick AFTER the handler's finally
        # moves the gauge — give it time to surface before detaching.
        time.sleep(0.3)
    assert gauge.value() == baseline
    assert client.catalog()  # the shared connection is unharmed
    assert errors.messages == []


def test_shutdown_with_open_connections_is_quiet(tmp_path):
    """Closing the server while connections are still open must retire
    the handlers gracefully (transport close -> EOF -> normal exit),
    not leave them to blanket task cancellation — which asyncio 3.11
    reports as one unhandled-exception log line per connection."""
    d = build_deployment(seed="netserver-shutdown", rsa_bits=512)
    gateway = build_gateway(d, str(tmp_path / "shards"), workers=1, shards=2)
    try:
        with _AsyncioErrors() as errors:
            server = NetServer(gateway)
            address = server.start()
            client = NetClient(address)
            idle = socket.create_connection(address, timeout=5)
            try:
                assert client.catalog() == []
                server.close()  # both connections still open
            finally:
                idle.close()
                client.close()
        assert errors.messages == []
    finally:
        gateway.close()
