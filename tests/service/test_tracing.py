"""End-to-end distributed tracing: the allowlist, tail-based keep,
span propagation through the queue and TCP transports, 2PC phase
spans, worker-death traces, and the privacy audit over a full sim run.

The privacy tests are the acceptance surface: every span a full
marketplace run emits is re-validated against the attribute allowlist
and checked against every identifier the client side observed.
"""

import json
import os
import signal
import time
import urllib.request

import pytest

from repro import codec
from repro.core.messages import DepositRequest
from repro.core.protocols.payment import withdraw_coins
from repro.core.system import build_deployment
from repro.errors import ParameterError, ServiceError
from repro.service import tracing, wire
from repro.service.gateway import build_gateway
from repro.service.ledger import ShardedLedger, intent_payload
from repro.service.netserver import NetClient, NetServer
from repro.service.sharding import ShardedSpentTokenStore, ShardSet
from repro.sim.marketplace import MarketplaceSimulator
from repro.sim.workload import WorkloadConfig


@pytest.fixture(autouse=True)
def _sink_guard():
    """Restore whatever sink was installed before the test: unit tests
    configure throwaway recorders and must not leak them into later
    tests (or strand the module-scoped traced stack without its own)."""
    before = tracing.sink()
    yield
    tracing.install(before)


def _deployment(seed="tracing-test"):
    d = build_deployment(seed=seed, rsa_bits=512)
    d.provider.publish("song-1", b"SONG-ONE" * 32, title="Song One", price=3)
    return d


def _rec(trace_id, *, name="pool.collect", duration=0.001, status="ok",
         error="", attrs=None, parent=b""):
    """A hand-built span record in the recorder's internal shape."""
    return {
        "trace": trace_id,
        "span": tracing.new_span_id(),
        "parent": parent,
        "name": name,
        "start": 0.0,
        "duration": duration,
        "status": status,
        "error": error,
        "attrs": {"n": 1} if attrs is None else attrs,
    }


# -- the attribute allowlist (the privacy contract) ---------------------------


class TestAllowlist:
    def test_unknown_span_name_rejected(self):
        with pytest.raises(ParameterError, match="not in registry"):
            tracing.validate_attrs("user.account", {})

    def test_unknown_attribute_key_rejected(self):
        with pytest.raises(ParameterError, match="not in allowlist"):
            tracing.validate_attrs("client.call", {"account": "alice"})

    def test_int_attribute_rejects_bool_and_str(self):
        with pytest.raises(ParameterError, match="must be int"):
            tracing.validate_attrs("client.call", {"n": True})
        with pytest.raises(ParameterError, match="must be int"):
            tracing.validate_attrs("client.call", {"n": "3"})

    def test_str_attribute_rejects_bytes(self):
        # bytes is the type every token/serial/account digest has —
        # it must be inexpressible on the trace surface.
        with pytest.raises(ParameterError, match="must be str"):
            tracing.validate_attrs("client.call", {"op": b"deposit"})

    def test_long_string_rejected(self):
        with pytest.raises(ParameterError, match="too long"):
            tracing.validate_attrs("client.call", {"op": "x" * 65})

    def test_unsafe_charset_rejected(self):
        with pytest.raises(ParameterError, match="unsafe characters"):
            tracing.validate_attrs("client.call", {"op": "de\nposit"})
        with pytest.raises(ParameterError, match="unsafe characters"):
            tracing.validate_attrs("client.call", {"op": "op=(sell)"})

    def test_hex_id_material_rejected(self):
        with pytest.raises(ParameterError, match="hex id material"):
            tracing.validate_attrs("client.call", {"op": os.urandom(16).hex()})
        with pytest.raises(ParameterError, match="hex id material"):
            tracing.validate_attrs(
                "client.call", {"op": "coin deadbeefdeadbeef refused"}
            )

    def test_plain_structural_attributes_pass(self):
        tracing.validate_attrs("shard.spend", {"kind": "ecash", "shard": 3})
        tracing.validate_attrs("client.call", {"op": "deposit", "n": 12})

    def test_error_field_is_bare_class_name(self):
        tracing.validate_error("client.call", "DoubleSpendError")
        tracing.validate_error("client.call", "")
        with pytest.raises(ParameterError, match="bare exception class"):
            tracing.validate_error(
                "client.call", "coin 0af3 already spent at 12:00"
            )

    def test_registry_and_docs_agree(self):
        # The real cross-check is tools/check_docs.py; this pins the
        # registry names so a rename shows up here too.
        names = {spec.name for spec in tracing.SPAN_SPECS}
        assert {"client.call", "net.request", "pool.queue", "worker.request",
                "ledger.intent.create", "ledger.commit",
                "ledger.recover"} <= names


# -- the span API -------------------------------------------------------------


class TestSpanAPI:
    def test_noop_without_sink(self):
        tracing.disable()
        with tracing.span("client.call", root=True, op="sell", n=1) as sp:
            sp.set("n", 2)
            assert tracing.current_context() is None
        assert tracing.kept_traces() == []

    def test_noop_without_parent_unless_root(self):
        rec = tracing.configure(latency_threshold=0.0)
        with tracing.span("worker.request", op="sell", worker=0):
            pass
        assert rec.all_spans() == []

    def test_root_span_nests_and_keeps(self):
        tracing.configure(latency_threshold=0.0)
        with tracing.span("client.call", root=True, boundary=True,
                          op="deposit", n=1):
            outer = tracing.current_context()
            assert outer is not None
            with tracing.span("ledger.commit", shard=2):
                inner = tracing.current_context()
                assert inner.trace_id == outer.trace_id
                assert inner.span_id != outer.span_id
        assert tracing.current_context() is None
        [trace] = tracing.kept_traces()
        assert trace["reason"] == "slow"  # threshold 0.0 keeps everything
        by_name = {s["name"]: s for s in trace["spans"]}
        assert set(by_name) == {"client.call", "ledger.commit"}
        assert by_name["client.call"]["parent"] == ""
        assert by_name["ledger.commit"]["parent"] == by_name["client.call"]["span"]

    def test_exception_marks_error_and_keeps(self):
        tracing.configure(latency_threshold=60.0)
        with pytest.raises(ValueError):
            with tracing.span("client.call", root=True, boundary=True,
                              op="sell", n=1):
                raise ValueError("boom")
        [trace] = tracing.kept_traces()
        assert trace["reason"] == "error"
        [span] = trace["spans"]
        assert span["status"] == "error"
        assert span["error"] == "ValueError"

    def test_bad_attribute_fails_loudly_at_record_time(self):
        tracing.configure(latency_threshold=0.0)
        with pytest.raises(ParameterError):
            with tracing.span("client.call", root=True, op="sell", n=1) as sp:
                sp.set("op", os.urandom(16).hex())

    def test_activate_makes_context_ambient(self):
        rec = tracing.configure(latency_threshold=0.0)
        ctx = tracing.TraceContext(b"\x01" * 16, b"\x02" * 8)
        with tracing.activate(ctx):
            assert tracing.current_context() == ctx
            with tracing.span("pool.collect", n=2):
                pass
        assert tracing.current_context() is None
        [span] = rec.all_spans()
        assert span["trace"] == ctx.trace_id
        assert span["parent"] == ctx.span_id
        with tracing.activate(None):  # explicit no-context is a no-op
            assert tracing.current_context() is None

    def test_record_span_external_timing(self):
        rec = tracing.configure(latency_threshold=0.0)
        out = tracing.record_span(
            "pool.queue", trace_id=b"\x03" * 16, parent_id=b"\x04" * 8,
            start=1.0, duration=-0.5, attrs={"worker": 1},
        )
        assert out["duration"] == 0.0  # clock skew clamps, never negative
        assert rec.all_spans() == [out]
        tracing.disable()
        assert tracing.record_span(
            "pool.queue", trace_id=b"\x03" * 16, parent_id=b"",
            start=0.0, duration=0.0,
        ) is None

    def test_public_span_projection(self):
        rec = _rec(b"\x05" * 16, duration=0.25, parent=b"\x06" * 8)
        public = tracing.public_span(rec)
        assert public["span"] == rec["span"].hex()
        assert public["parent"] == "0606060606060606"
        assert public["duration_micros"] == 250_000
        assert tracing.public_span(_rec(b"\x05" * 16))["parent"] == ""


# -- recorder keep semantics --------------------------------------------------


class TestRecorderKeep:
    def test_fast_ok_trace_stays_pending(self):
        rec = tracing.SpanRecorder(latency_threshold=0.1)
        rec.finish_boundary(_rec(b"\x11" * 16, name="client.call",
                                 duration=0.01, attrs={"op": "sell", "n": 1}))
        assert rec.keep_count() == 0
        assert rec.traces() == []
        assert len(rec.all_spans()) == 1  # still pending, not dropped

    def test_slow_boundary_keeps(self):
        rec = tracing.SpanRecorder(latency_threshold=0.1)
        rec.finish_boundary(_rec(b"\x12" * 16, name="client.call",
                                 duration=0.2, attrs={"op": "sell", "n": 1}))
        [trace] = rec.traces()
        assert trace["reason"] == "slow"

    def test_errored_child_keeps_fast_boundary(self):
        rec = tracing.SpanRecorder(latency_threshold=0.1)
        tid = b"\x13" * 16
        rec.record(_rec(tid, name="ledger.abort", status="error",
                        error="DoubleSpendError", attrs={"shard": 1}),
                   dump=False)
        rec.finish_boundary(_rec(tid, name="client.call", duration=0.001,
                                 attrs={"op": "deposit", "n": 1}))
        [trace] = rec.traces()
        assert trace["reason"] == "error"
        assert len(trace["spans"]) == 2

    def test_forced_keep(self):
        rec = tracing.SpanRecorder(latency_threshold=60.0)
        rec.finish_boundary(
            _rec(b"\x14" * 16, name="ledger.recover", duration=0.0,
                 attrs={"aborted": 0, "released": 0}),
            force=True,
        )
        [trace] = rec.traces()
        assert trace["reason"] == "forced"

    def test_late_boundary_promotes_pending_spans(self):
        rec = tracing.SpanRecorder(latency_threshold=0.1)
        tid = b"\x15" * 16
        rec.finish_boundary(_rec(tid, name="net.request", duration=0.01,
                                 attrs={"op": "sell", "frame": "request"}))
        assert rec.keep_count() == 0
        rec.finish_boundary(_rec(tid, name="client.call", duration=0.5,
                                 attrs={"op": "sell", "n": 1}))
        [trace] = rec.traces()
        assert {s["name"] for s in trace["spans"]} == {
            "net.request", "client.call",
        }

    def test_keep_ring_is_bounded_newest_survive(self):
        rec = tracing.SpanRecorder(latency_threshold=0.0, keep=2)
        for byte in (0x21, 0x22, 0x23):
            rec.finish_boundary(_rec(bytes([byte]) * 16, name="client.call",
                                     duration=0.1, attrs={"op": "sell", "n": 1}))
        assert rec.keep_count() == 2
        assert [t["trace"] for t in rec.traces()] == ["22" * 16, "23" * 16]

    def test_spans_after_keep_join_the_kept_trace(self):
        rec = tracing.SpanRecorder(latency_threshold=0.0)
        tid = b"\x16" * 16
        rec.finish_boundary(_rec(tid, name="client.call", duration=0.1,
                                 attrs={"op": "sell", "n": 1}))
        rec.ingest([_rec(tid, name="worker.request",
                         attrs={"op": "sell", "worker": 0})])
        [trace] = rec.traces()
        assert len(trace["spans"]) == 2

    def test_per_trace_span_cap_counts_drops(self):
        rec = tracing.SpanRecorder(latency_threshold=0.0,
                                   max_spans_per_trace=2)
        tid = b"\x17" * 16
        for _ in range(4):
            rec.record(_rec(tid), dump=False)
        assert rec.dropped_spans == 2
        assert len(rec.all_spans()) == 2

    def test_pending_map_is_bounded(self):
        rec = tracing.SpanRecorder(latency_threshold=60.0, max_pending=2)
        for byte in (0x31, 0x32, 0x33):
            rec.record(_rec(bytes([byte]) * 16), dump=False)
        assert rec.dropped_traces == 1
        assert len(rec.all_spans()) == 2

    def test_on_keep_hook_fires_with_entry(self):
        rec = tracing.SpanRecorder(latency_threshold=0.0)
        seen = []
        rec.on_keep(lambda tid, entry: seen.append((tid, entry["reason"])))
        rec.finish_boundary(_rec(b"\x18" * 16, name="client.call",
                                 duration=0.1, attrs={"op": "sell", "n": 1}))
        assert seen == [(b"\x18" * 16, "slow")]

    def test_collector_drains_per_trace(self):
        col = tracing.SpanCollector(max_spans=8)
        a, b = b"\x0a" * 16, b"\x0b" * 16
        col.record(_rec(a))
        col.record(_rec(b))
        col.record(_rec(a))
        assert len(col.drain(a)) == 2
        assert col.drain(a) == []
        assert len(col.drain(b)) == 1

    def test_collector_evicts_stalest_trace_wholesale(self):
        col = tracing.SpanCollector(max_spans=2)
        a, b = b"\x0c" * 16, b"\x0d" * 16
        col.record(_rec(a))
        col.record(_rec(a))
        col.record(_rec(b))
        assert col.drain(a) == []  # evicted whole, never truncated
        assert len(col.drain(b)) == 1
        assert col.dropped == 2


# -- wire propagation ---------------------------------------------------------


class TestWireMeta:
    def test_trace_context_round_trips_and_strips_clean(self):
        ctx = tracing.TraceContext(os.urandom(16), os.urandom(8))
        request = DepositRequest(account="m", coins=())
        traced = wire.encode_request(request, trace=ctx)
        assert wire.peek_trace(traced) == ctx
        assert wire.decode_request(traced) == request
        assert wire.peek_trace(wire.encode_request(request)) is None
        # The meta field is the ONLY difference tracing makes to the
        # bytes — the byte-identity guarantee for everything else.
        envelope = codec.decode(traced)
        envelope.pop("meta")
        assert codec.encode(envelope) == wire.encode_request(request)

    def test_malformed_meta_is_untraced_never_fatal(self):
        request = DepositRequest(account="m", coins=())
        envelope = codec.decode(wire.encode_request(request))
        envelope["meta"] = {"trace": b"short", "span": b"x"}
        assert wire.peek_trace(codec.encode(envelope)) is None
        envelope["meta"] = {"trace": os.urandom(16)}  # span missing
        assert wire.peek_trace(codec.encode(envelope)) is None
        assert wire.peek_trace(b"\x00garbage") is None


# -- the traced stack over TCP ------------------------------------------------


@pytest.fixture(scope="module")
def traced_stack(tmp_path_factory):
    """A 2-worker/4-shard gateway built with tracing on (threshold 0.0
    keeps every trace), behind a socket server with a metrics listener."""
    d = _deployment(seed="tracing-e2e")
    directory = tmp_path_factory.mktemp("tracing-shards")
    gateway = build_gateway(d, str(directory), workers=2, shards=4,
                            tracing=True, trace_threshold=0.0, trace_keep=256)
    rec = tracing.recorder()
    assert rec is not None
    server = NetServer(gateway, metrics_port=0)
    address = server.start()
    client = NetClient(address)
    yield d, gateway, server, client, rec
    client.close()
    server.close()
    gateway.close()
    tracing.disable()


@pytest.fixture()
def traced(traced_stack):
    """Reinstall the stack's recorder (unit tests swap the sink)."""
    tracing.install(traced_stack[4])
    return traced_stack


def test_deposit_span_tree_covers_every_hop(traced):
    """The acceptance trace: client -> frame decode -> pool queue ->
    worker -> per-shard spends -> 2PC commit, all one tree."""
    d, _gateway, _server, client, rec = traced
    payer = d.add_user("trace-payer", balance=1_000)
    coins = payer.coins_for(3, d.bank)
    receipt = client.deposit("trace-merchant", coins)
    assert receipt["credited"] == 3

    deposits = [t for t in rec.traces()
                if any(s["name"] == "ledger.commit" for s in t["spans"])]
    assert deposits, "no kept deposit trace"
    spans = deposits[-1]["spans"]
    names = {s["name"] for s in spans}
    assert {"client.call", "net.request", "net.frame.decode", "pool.queue",
            "pool.request", "pool.collect", "worker.request",
            "ledger.intent.create", "ledger.spend", "ledger.commit",
            "shard.spend"} <= names

    by_id = {s["span"]: s for s in spans}
    roots = [s for s in spans if s["parent"] == ""]
    assert len(roots) == 1 and roots[0]["name"] == "client.call"
    assert roots[0]["attrs"] == {"op": "deposit", "n": 1}
    for s in spans:  # every parent resolves inside the same trace
        if s["parent"]:
            assert s["parent"] in by_id, s

    [worker_span] = [s for s in spans if s["name"] == "worker.request"]
    phases = [s for s in spans if s["name"].startswith("ledger.")]
    assert phases and all(p["parent"] == worker_span["span"] for p in phases)
    create = next(s for s in spans if s["name"] == "ledger.intent.create")
    commit = next(s for s in spans if s["name"] == "ledger.commit")
    spends = [s for s in spans if s["name"] == "ledger.spend"]
    assert len(spends) == 3  # one per coin
    assert create["attrs"]["coins"] == 3
    assert all(create["start_micros"] <= sp["start_micros"] for sp in spends)
    assert all(sp["start_micros"] <= commit["start_micros"] for sp in spends)
    # The cross-shard part: each spend wraps its shard.spend write.
    spend_ids = {s["span"] for s in spends}
    shard_writes = [s for s in spans if s["name"] == "shard.spend"]
    assert shard_writes and all(s["parent"] in spend_ids for s in shard_writes)


def test_each_call_is_its_own_trace(traced):
    d, _gateway, _server, client, rec = traced
    before = rec.keep_count()
    for index in range(2):
        payer = d.add_user(f"trace-multi-{index}", balance=100)
        client.deposit("trace-merchant", payer.coins_for(1, d.bank))
    traces = rec.traces()
    assert rec.keep_count() >= before + 2
    ids = [t["trace"] for t in traces]
    assert len(ids) == len(set(ids))


def test_traces_control_frame_matches_recorder(traced):
    d, _gateway, _server, client, rec = traced
    payer = d.add_user("trace-ctl", balance=100)
    client.deposit("trace-merchant", payer.coins_for(1, d.bank))
    assert client.traces() == rec.traces()


def test_http_traces_surface_with_exemplars(traced):
    d, _gateway, server, client, rec = traced
    payer = d.add_user("trace-http", balance=100)
    client.deposit("trace-merchant", payer.coins_for(1, d.bank))
    host, port = server.metrics_address
    with urllib.request.urlopen(
        f"http://{host}:{port}/traces", timeout=30
    ) as response:
        assert response.headers["Content-Type"].startswith("application/json")
        document = json.loads(response.read().decode("utf-8"))
    kept_ids = {t["trace"] for t in document["traces"]}
    assert kept_ids == {t["trace"] for t in rec.traces()}
    # Exemplars join the latency histogram back to kept traces.
    assert document["exemplars"], "no exemplar series recorded"
    for series in document["exemplars"]:
        assert series["labels"].get("op")
        for bucket in series["buckets"].values():
            assert bucket["trace"] in kept_ids


def test_tracing_does_not_change_response_bytes(traced, tmp_path):
    """Byte-identity across the tracing switch: the same deposit
    through an untraced gateway answers the same receipt."""
    d, _gateway, _server, client, _rec = traced
    payer = d.add_user("trace-bytes", balance=1_000)
    coins = payer.coins_for(2, d.bank)
    plain = build_gateway(d, str(tmp_path / "plain"), workers=1, shards=2)
    try:
        assert client.deposit("bytes-merchant", coins) == plain.deposit(
            "bytes-merchant", coins
        )
    finally:
        plain.close()


# -- failure traces -----------------------------------------------------------


class TestFailureTraces:
    def test_worker_sigkill_keeps_error_trace(self, tmp_path):
        """A worker killed mid-flight: the client's trace is kept with
        reason "error" and its pool.request span carries the
        worker-death verdict (outcome=dead, error=ServiceError)."""
        d = _deployment(seed="tracing-sigkill")
        gateway = build_gateway(d, str(tmp_path / "shards"), workers=2,
                                shards=4, tracing=True, trace_threshold=60.0)
        try:
            payer = d.add_user("doomed-payer", balance=1_000)
            coins = payer.coins_for(2, d.bank)
            os.kill(gateway._processes[0].pid, signal.SIGKILL)
            time.sleep(0.2)
            request = DepositRequest(account="doom", coins=tuple(coins))
            with pytest.raises(ServiceError, match="died"):
                gateway.call_many([request], worker=0)

            rec = tracing.recorder()
            errored = [t for t in rec.traces() if t["reason"] == "error"]
            assert len(errored) == 1
            spans = errored[0]["spans"]
            assert {"client.call", "pool.request"} <= {
                s["name"] for s in spans
            }
            [pool_span] = [s for s in spans if s["name"] == "pool.request"]
            assert pool_span["attrs"]["outcome"] == "dead"
            assert pool_span["status"] == "error"
            assert pool_span["error"] == "ServiceError"
        finally:
            gateway.close()
            tracing.disable()

    def test_recovery_trace_names_presumed_abort_path(self, tmp_path):
        """A pending intent staged on the shard files (the crash
        window), then a traced restart: the recovery sweep emits a
        force-kept trace whose ledger.recover.intent children count
        the released spends — by shard, never by account."""
        d = _deployment(seed="tracing-recovery")
        directory = str(tmp_path / "shards")
        gateway = build_gateway(d, directory, workers=2, shards=4)
        account = gateway.bank_account
        user = d.add_user("recover-user", balance=1_000)
        coins = withdraw_coins(user, d.bank, 6)
        gateway.close()

        shards = ShardSet(ShardSet.paths_in_directory(directory, 4))
        try:
            ledger = ShardedLedger(shards)
            spent = ShardedSpentTokenStore(shards, "ecash")
            crashed = b"R" * 16
            pairs = sorted(((c.spent_token(), c.value) for c in coins),
                           key=lambda pair: pair[0])
            ledger.store_for(account).create_intent(
                crashed, account, 6, at=5_000, payload=intent_payload(pairs)
            )
            for token, value in pairs[:2]:
                spent.try_spend(
                    token,
                    at=5_000,
                    transcript=codec.encode(
                        {"depositor": account, "at": 5_000, "value": value,
                         "intent": crashed}
                    ),
                )
        finally:
            shards.close()

        reopened = build_gateway(d, directory, workers=2, shards=4,
                                 tracing=True, trace_threshold=60.0)
        try:
            assert reopened.recovery_summary == {"aborted": 1, "released": 2}
            rec = tracing.recorder()
            forced = [t for t in rec.traces() if t["reason"] == "forced"]
            assert forced, "recovery did not force-keep a trace"
            spans = forced[-1]["spans"]
            [sweep] = [s for s in spans if s["name"] == "ledger.recover"]
            assert sweep["attrs"] == {"aborted": 1, "released": 2}
            intents = [s for s in spans
                       if s["name"] == "ledger.recover.intent"]
            assert len(intents) == 1
            assert intents[0]["parent"] == sweep["span"]
            assert intents[0]["attrs"]["released"] == 2
        finally:
            reopened.close()
            tracing.disable()


# -- the privacy audit over a full simulation --------------------------------


class TestPrivacyAudit:
    def test_full_sim_trace_surface_carries_no_identifiers(self):
        """Run the whole marketplace over TCP with keep-everything
        tracing; walk every span the recorder holds, re-validate it
        against the allowlist, and assert no attribute contains any
        identifier the client side observed (card ids, pseudonym
        fingerprints, account names)."""
        config = WorkloadConfig(n_users=4, n_contents=5, n_events=25, seed=11)
        with MarketplaceSimulator(
            config, rsa_bits=512, service_workers=2, service_shards=4,
            service_transport="tcp", service_tracing=True,
            service_trace_threshold=0.0,
        ) as simulator:
            report = simulator.run()
            rec = tracing.recorder()
            assert rec is not None
            spans = rec.all_spans()
            identifiers = set()
            for user in simulator._users.values():
                identifiers.add(user.card.card_id.hex())
                identifiers.add(user.bank_account)
            for fingerprint, card_id in report.ground_truth.items():
                identifiers.add(fingerprint.hex())
                identifiers.add(card_id.hex())
        # Drop trivially-short names ("user-3") that could only match
        # by coincidence — every real identifier is long hex.
        identifiers = {i.lower() for i in identifiers if len(i) >= 8}
        assert identifiers and spans

        names = set()
        for rec_span in spans:
            public = tracing.public_span(rec_span)
            tracing.validate_attrs(public["name"], public["attrs"])
            tracing.validate_error(public["name"], public["error"])
            names.add(public["name"])
            values = [public["name"], public["error"]]
            values += [v for v in public["attrs"].values()
                       if isinstance(v, str)]
            haystack = " ".join(values).lower()
            for identifier in identifiers:
                assert identifier not in haystack, public
        # The run exercised the whole path, not a trivial corner.
        assert {"client.call", "net.request", "pool.queue", "pool.request",
                "pool.collect", "worker.request", "shard.spend"} <= names
