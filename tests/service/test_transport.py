"""Frame codec: strict decoding of untrusted stream bytes.

The decoder must reassemble frames from arbitrary chunkings (partial
and pipelined reads), reject garbage with typed errors before
buffering attacker-declared payloads, and turn a mid-frame stream end
into :class:`~repro.errors.TruncatedFrameError` instead of a hang.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameTooLargeError, TruncatedFrameError, WireError
from repro.service.transport import (
    FRAME_CONTROL,
    FRAME_REQUEST,
    FRAME_REQUEST_PINNED,
    FRAME_RESPONSE,
    FRAME_TYPES,
    HEADER_SIZE,
    WIRE_MAGIC,
    WIRE_VERSION,
    Frame,
    FrameDecoder,
    decode_pinned,
    encode_frame,
    encode_pinned,
)


def test_round_trip_single_frame():
    data = encode_frame(FRAME_REQUEST, 7, b"payload-bytes")
    [frame] = FrameDecoder().feed(data)
    assert frame == Frame(FRAME_REQUEST, 7, b"payload-bytes")


def test_empty_payload_frame():
    [frame] = FrameDecoder().feed(encode_frame(FRAME_RESPONSE, 0, b""))
    assert frame.payload == b""


def test_byte_by_byte_reassembly():
    data = encode_frame(FRAME_CONTROL, 123456789, b"x" * 300)
    decoder = FrameDecoder()
    frames = []
    for i in range(len(data)):
        frames += decoder.feed(data[i:i + 1])
    assert [f.payload for f in frames] == [b"x" * 300]
    assert decoder.buffered == 0


def test_pipelined_frames_in_one_feed():
    data = b"".join(
        encode_frame(FRAME_REQUEST, i, bytes([i]) * i) for i in range(5)
    )
    frames = FrameDecoder().feed(data)
    assert [f.request_id for f in frames] == [0, 1, 2, 3, 4]
    assert all(f.payload == bytes([f.request_id]) * f.request_id for f in frames)


def test_bad_magic_rejected():
    with pytest.raises(WireError):
        FrameDecoder().feed(b"GET / HTTP/1.1\r\n\r\n")


def test_bad_version_rejected():
    data = struct.pack("!2sBBQI", WIRE_MAGIC, WIRE_VERSION + 1, FRAME_REQUEST, 0, 0)
    with pytest.raises(WireError):
        FrameDecoder().feed(data)


def test_unknown_frame_type_rejected():
    data = struct.pack("!2sBBQI", WIRE_MAGIC, WIRE_VERSION, 0x7E, 0, 0)
    with pytest.raises(WireError):
        FrameDecoder().feed(data)


def test_oversized_declared_length_rejected_from_header_alone():
    """A hostile length field is refused before ANY payload arrives —
    the 16 header bytes are all the attacker gets buffered."""
    header = struct.pack(
        "!2sBBQI", WIRE_MAGIC, WIRE_VERSION, FRAME_REQUEST, 0, 1 << 31
    )
    decoder = FrameDecoder()
    with pytest.raises(FrameTooLargeError):
        decoder.feed(header)  # no payload bytes ever sent


def test_oversized_payload_refused_at_the_sender():
    with pytest.raises(FrameTooLargeError):
        encode_frame(FRAME_REQUEST, 0, b"x" * 100, max_payload=64)


def test_decoder_poisoned_after_error():
    decoder = FrameDecoder()
    with pytest.raises(WireError):
        decoder.feed(b"XXXXXXXXXXXXXXXXXX")
    with pytest.raises(WireError):
        decoder.feed(encode_frame(FRAME_REQUEST, 0, b"fine"))


def test_truncated_stream_is_typed():
    data = encode_frame(FRAME_REQUEST, 9, b"half-of-me")
    decoder = FrameDecoder()
    assert decoder.feed(data[:-3]) == []
    with pytest.raises(TruncatedFrameError):
        decoder.finish()


def test_clean_end_of_stream_is_silent():
    decoder = FrameDecoder()
    decoder.feed(encode_frame(FRAME_REQUEST, 1, b"whole"))
    decoder.finish()  # no buffered remainder: a normal goodbye


def test_encode_rejects_unknown_type_and_bad_id():
    with pytest.raises(WireError):
        encode_frame(0x77, 0, b"")
    with pytest.raises(WireError):
        encode_frame(FRAME_REQUEST, -1, b"")
    with pytest.raises(WireError):
        encode_frame(FRAME_REQUEST, 1 << 64, b"")


def test_pinned_round_trip():
    payload = encode_pinned(3, b"envelope")
    assert decode_pinned(payload) == (3, b"envelope")
    with pytest.raises(WireError):
        decode_pinned(b"\x01")  # shorter than the worker index
    with pytest.raises(WireError):
        encode_pinned(1 << 16, b"")


# -- properties --------------------------------------------------------------

_frames = st.lists(
    st.tuples(
        st.sampled_from(sorted(FRAME_TYPES)),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.binary(max_size=2048),
    ),
    min_size=1,
    max_size=6,
)


@given(frames=_frames, data=st.data())
@settings(max_examples=60, deadline=None)
def test_any_chunking_reassembles_the_pipeline(frames, data):
    """Round trip under arbitrary split/partial/pipelined reads: however
    the stream is cut, the same frames come out in order."""
    stream = b"".join(
        encode_frame(frame_type, request_id, payload)
        for frame_type, request_id, payload in frames
    )
    decoder = FrameDecoder()
    decoded = []
    position = 0
    while position < len(stream):
        step = data.draw(
            st.integers(min_value=1, max_value=len(stream) - position),
            label="chunk",
        )
        decoded += decoder.feed(stream[position:position + step])
        position += step
    decoder.finish()
    assert [(f.type, f.request_id, f.payload) for f in decoded] == frames


@given(frames=_frames, data=st.data())
@settings(max_examples=60, deadline=None)
def test_chunked_feed_matches_whole_stream_feed(frames, data):
    """Chunked feeds yield payloads identical to one whole-stream feed:
    the zero-copy fast path (views into the fed buffer) and the
    buffered slow path must be indistinguishable to the caller."""
    stream = b"".join(
        encode_frame(frame_type, request_id, payload)
        for frame_type, request_id, payload in frames
    )
    whole = FrameDecoder()
    expected = whole.feed(stream)
    whole.finish()
    # A complete stream in one feed is pure fast path: every frame is
    # a view, none was assembled in the spill buffer.
    assert whole.zero_copy_frames == len(expected)

    chunked = FrameDecoder()
    decoded = []
    position = 0
    while position < len(stream):
        step = data.draw(
            st.integers(min_value=1, max_value=len(stream) - position),
            label="chunk",
        )
        decoded += chunked.feed(stream[position:position + step])
        position += step
    chunked.finish()
    assert [(f.type, f.request_id, bytes(f.payload)) for f in decoded] == [
        (f.type, f.request_id, bytes(f.payload)) for f in expected
    ]
    assert 0 <= chunked.zero_copy_frames <= len(decoded)


def test_zero_copy_counter_tracks_fast_path_only():
    frames = [encode_frame(FRAME_REQUEST, i, bytes([i]) * 40) for i in range(3)]
    stream = b"".join(frames)
    decoder = FrameDecoder()
    assert len(decoder.feed(stream)) == 3
    assert decoder.zero_copy_frames == 3
    # Byte-by-byte everything lands in the spill buffer: no view frames.
    slow = FrameDecoder()
    count = 0
    for i in range(len(stream)):
        count += len(slow.feed(stream[i:i + 1]))
    assert count == 3
    assert slow.zero_copy_frames == 0


@given(
    garbage=st.binary(min_size=HEADER_SIZE, max_size=64).filter(
        lambda b: b[:2] != WIRE_MAGIC
    ),
    payload=st.binary(max_size=128),
)
@settings(max_examples=60, deadline=None)
def test_garbage_prefix_never_yields_a_frame(garbage, payload):
    """A stream not starting with the magic is rejected, and nothing
    after the garbage is ever (mis)parsed as a frame."""
    decoder = FrameDecoder()
    with pytest.raises(WireError):
        decoder.feed(garbage + encode_frame(FRAME_REQUEST, 5, payload))
    with pytest.raises(WireError):
        decoder.feed(b"")  # poisoned for good


@given(cut=st.integers(min_value=1, max_value=HEADER_SIZE + 64 - 1))
@settings(max_examples=40, deadline=None)
def test_every_truncation_point_is_detected(cut):
    """Cutting the stream at ANY interior byte yields the typed
    truncation error on finish — no silent acceptance."""
    stream = encode_frame(FRAME_REQUEST_PINNED, 11, encode_pinned(2, b"q" * 64))
    assert len(stream) == HEADER_SIZE + 66  # pin prefix + payload
    decoder = FrameDecoder()
    decoder.feed(stream[:cut])
    if cut < len(stream):
        with pytest.raises(TruncatedFrameError):
            decoder.finish()
