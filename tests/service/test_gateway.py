"""End-to-end gateway tests: the worker pool against shared shards.

These spawn real worker processes — this file is what the CI service
lane runs with ``-m "not slow"``; the heavyweight byte-identity sweep
is marked slow.
"""

from dataclasses import replace

import pytest

from repro import codec
from repro.core.messages import (
    NONCE_SIZE,
    PurchaseRequest,
    purchase_signing_payload,
)
from repro.core.protocols.acquisition import accept_license, build_purchase_request
from repro.core.protocols.transfer import (
    accept_redeemed_license,
    build_exchange_request,
    build_redeem_request,
)
from repro.core.system import build_deployment
from repro.errors import (
    AuthenticationError,
    DoubleRedemptionError,
    DoubleSpendError,
    ServiceError,
)
from repro.service.gateway import build_gateway


def _deployment(seed="gateway-test"):
    d = build_deployment(seed=seed, rsa_bits=512)
    d.provider.publish("song-1", b"SONG-ONE" * 32, title="Song One", price=3)
    return d


@pytest.fixture(scope="module")
def gateway_pair(tmp_path_factory):
    """One deployment plus a 2-worker/4-shard gateway, shared by the
    cheap tests (each test uses fresh users and tokens)."""
    d = _deployment()
    directory = tmp_path_factory.mktemp("gateway-shards")
    gateway = build_gateway(d, str(directory), workers=2, shards=4)
    yield d, gateway
    gateway.close()


def _same_coin_purchase(user, deployment, coins):
    """A purchase request paying with externally chosen coins."""
    certificate = user.certificate_for_transaction(deployment.issuer)
    nonce = user.rng.random_bytes(NONCE_SIZE)
    at = user.clock.now()
    payload = purchase_signing_payload(
        "song-1",
        certificate.fingerprint,
        [coin.serial for coin in coins],
        nonce,
        at,
    )
    return PurchaseRequest(
        content_id="song-1",
        certificate=certificate,
        coins=tuple(coins),
        nonce=nonce,
        at=at,
        signature=user.require_card().sign(certificate.pseudonym, payload),
    )


def test_sell_end_to_end(gateway_pair):
    d, gateway = gateway_pair
    user = d.add_user("e2e-buyer", balance=1_000)
    request = build_purchase_request(user, gateway, d.issuer, d.bank, "song-1")
    license_ = gateway.sell(request)
    accept_license(user, gateway, request, license_)
    assert user.owns_content("song-1")
    assert gateway.license_register.get(license_.license_id) is not None


def test_exchange_redeem_and_read_views(gateway_pair):
    d, gateway = gateway_pair
    sender = d.add_user("e2e-sender", balance=1_000)
    receiver = d.add_user("e2e-receiver", balance=1_000)
    request = build_purchase_request(sender, gateway, d.issuer, d.bank, "song-1")
    license_ = gateway.sell(request)
    accept_license(sender, gateway, request, license_)
    anonymous = sender.transfer_out(license_.license_id, provider=gateway)
    assert gateway.revocation_list.is_revoked(license_.license_id)
    redeem = build_redeem_request(receiver, gateway, d.issuer, anonymous)
    new_license = gateway.redeem(redeem)
    accept_redeemed_license(receiver, gateway, redeem, new_license)
    assert receiver.owns_content("song-1")
    assert gateway.spent_tokens.is_spent(anonymous.license_id)
    # Worker-written audit chains verify from the gateway side.
    assert gateway.audit_log.verify_chain() >= 3


def test_device_sync_against_gateway(gateway_pair):
    d, gateway = gateway_pair
    device = d.add_device()
    sender = d.add_user("sync-sender", balance=1_000)
    request = build_purchase_request(sender, gateway, d.issuer, d.bank, "song-1")
    license_ = gateway.sell(request)
    accept_license(sender, gateway, request, license_)
    sender.transfer_out(license_.license_id, provider=gateway)
    applied = device.sync_revocations(gateway)
    assert applied >= 1


def test_bad_signature_rejected_through_wire(gateway_pair):
    d, gateway = gateway_pair
    user = d.add_user("e2e-forger", balance=1_000)
    request = build_purchase_request(user, gateway, d.issuer, d.bank, "song-1")
    tampered = replace(request, at=request.at + 1)
    with pytest.raises(AuthenticationError):
        gateway.sell(tampered)


def test_shard_affinity_is_stable(gateway_pair):
    d, gateway = gateway_pair
    sender = d.add_user("affinity-sender", balance=1_000)
    receiver = d.add_user("affinity-receiver", balance=1_000)
    request = build_purchase_request(sender, gateway, d.issuer, d.bank, "song-1")
    license_ = gateway.sell(request)
    accept_license(sender, gateway, request, license_)
    anonymous = sender.transfer_out(license_.license_id, provider=gateway)
    first = build_redeem_request(receiver, gateway, d.issuer, anonymous)
    second = build_redeem_request(receiver, gateway, d.issuer, anonymous)
    # Same bearer token, different envelopes: identical routing.
    assert gateway.worker_for(first) == gateway.worker_for(second)
    assert 0 <= gateway.worker_for(first) < gateway.workers


def test_double_redemption_raced_on_two_workers(gateway_pair):
    d, gateway = gateway_pair
    sender = d.add_user("race-sender", balance=1_000)
    receiver = d.add_user("race-receiver", balance=1_000)
    request = build_purchase_request(sender, gateway, d.issuer, d.bank, "song-1")
    license_ = gateway.sell(request)
    accept_license(sender, gateway, request, license_)
    anonymous = sender.transfer_out(license_.license_id, provider=gateway)
    first = build_redeem_request(receiver, gateway, d.issuer, anonymous)
    second = build_redeem_request(receiver, gateway, d.issuer, anonymous)
    # Defeat affinity on purpose: the same token hits two workers.
    tickets = [gateway.submit(first, worker=0), gateway.submit(second, worker=1)]
    results = gateway.gather(tickets)
    errors = [r for r in results if isinstance(r, Exception)]
    assert len(errors) == 1, results
    assert isinstance(errors[0], DoubleRedemptionError)
    assert errors[0].evidence.token_id == anonymous.license_id
    assert gateway.spent_tokens.is_spent(anonymous.license_id)


def test_exchange_raced_on_two_workers_mints_once(gateway_pair):
    """Two differently-nonced exchange requests for one licence, forced
    onto two workers: the status CAS at the licence's home shard lets
    exactly one bearer licence out."""
    d, gateway = gateway_pair
    holder = d.add_user("xr-holder", balance=1_000)
    request = build_purchase_request(holder, gateway, d.issuer, d.bank, "song-1")
    license_ = gateway.sell(request)
    accept_license(holder, gateway, request, license_)
    first = build_exchange_request(holder, license_)
    second = build_exchange_request(holder, license_)
    tickets = [gateway.submit(first, worker=0), gateway.submit(second, worker=1)]
    results = gateway.gather(tickets)
    errors = [r for r in results if isinstance(r, Exception)]
    successes = [r for r in results if not isinstance(r, Exception)]
    assert len(successes) == 1 and len(errors) == 1, results
    assert gateway.license_register.count(kind="anonymous") >= 1
    # The loser saw the post-CAS status, not a fresh bearer licence.
    from repro.errors import RevokedLicenseError

    assert isinstance(errors[0], RevokedLicenseError)


def test_far_future_timestamp_cannot_poison_worker_clock(gateway_pair):
    """A validly signed request with an absurd future timestamp is
    rejected for freshness and must NOT drag the worker clock along —
    the next honest request still succeeds on the same worker."""
    d, gateway = gateway_pair
    attacker = d.add_user("clock-attacker", balance=1_000)
    honest = d.add_user("clock-honest", balance=1_000)
    poisoned = replace(
        build_purchase_request(attacker, gateway, d.issuer, d.bank, "song-1"),
        at=d.clock.now() + 10 * 365 * 24 * 3600,
    )
    # Re-sign so only the timestamp (not the signature) is the issue.
    certificate = poisoned.certificate
    payload = purchase_signing_payload(
        poisoned.content_id,
        certificate.fingerprint,
        [coin.serial for coin in poisoned.coins],
        poisoned.nonce,
        poisoned.at,
    )
    poisoned = replace(
        poisoned,
        signature=attacker.require_card().sign(certificate.pseudonym, payload),
    )
    target_worker = 0
    [rejection] = gateway.gather([gateway.submit(poisoned, worker=target_worker)])
    assert isinstance(rejection, AuthenticationError)
    good = build_purchase_request(honest, gateway, d.issuer, d.bank, "song-1")
    [result] = gateway.gather([gateway.submit(good, worker=target_worker)])
    assert not isinstance(result, Exception), result


def test_double_spend_raced_on_two_workers(gateway_pair):
    d, gateway = gateway_pair
    alice = d.add_user("ds-alice", balance=1_000)
    bob = d.add_user("ds-bob", balance=1_000)
    coins = alice.coins_for(3, d.bank)
    spent_before = gateway.coin_spent_tokens.count()
    first = _same_coin_purchase(alice, d, coins)
    second = _same_coin_purchase(bob, d, coins)
    tickets = [gateway.submit(first, worker=0), gateway.submit(second, worker=1)]
    results = gateway.gather(tickets)
    errors = [r for r in results if isinstance(r, Exception)]
    successes = [r for r in results if not isinstance(r, Exception)]
    assert len(successes) == 1 and len(errors) == 1, results
    assert isinstance(errors[0], DoubleSpendError)
    # Exactly one payment's coins ended up spent — no double credit,
    # and the loser's rollback released nothing of the winner's.
    assert gateway.coin_spent_tokens.count() == spent_before + len(coins)


def test_deposit_request_credits_any_account(gateway_pair):
    from repro.core.messages import DepositRequest
    from repro.errors import DoubleSpendError

    d, gateway = gateway_pair
    payer = d.add_user("dep-payer", balance=1_000)
    coins = payer.coins_for(6, d.bank)
    receipt = gateway.deposit("merchant-x", coins)
    assert receipt == {"account": "merchant-x", "credited": 6}
    # Replaying the same coins (any account) is a double spend.
    with pytest.raises(DoubleSpendError):
        gateway.call(DepositRequest(account="merchant-y", coins=tuple(coins)))


def test_offender_isolation_across_shards(gateway_pair):
    d, gateway = gateway_pair
    sender = d.add_user("iso-sender", balance=1_000)
    receiver = d.add_user("iso-receiver", balance=1_000)
    anonymous_licenses = []
    for _ in range(5):
        request = build_purchase_request(sender, gateway, d.issuer, d.bank, "song-1")
        license_ = gateway.sell(request)
        accept_license(sender, gateway, request, license_)
        anonymous_licenses.append(
            sender.transfer_out(license_.license_id, provider=gateway)
        )
    requests = [
        build_redeem_request(receiver, gateway, d.issuer, anonymous)
        for anonymous in anonymous_licenses
    ]
    # Burn one token up front; its re-presentation must be the only
    # rejection in the batch, wherever the five tokens hash to.
    gateway.redeem(
        build_redeem_request(receiver, gateway, d.issuer,
                             requests[2].anonymous_license)
    )
    results = gateway.redeem_batch(requests)
    for index, result in enumerate(results):
        if index == 2:
            assert isinstance(result, DoubleRedemptionError)
        else:
            assert not isinstance(result, Exception), result


def test_more_workers_than_shards_rejected(tmp_path):
    d = _deployment(seed="gateway-overcommit")
    with pytest.raises(ServiceError):
        build_gateway(d, str(tmp_path / "shards"), workers=4, shards=2)


def test_dead_worker_detected_and_partial_results_survive(tmp_path):
    """Kill one worker mid-flight: the gather fails fast with
    ServiceError naming the dead worker, while responses the healthy
    worker produced are re-stashed and remain gatherable."""
    import os
    import signal
    import time as time_module

    d = _deployment(seed="gateway-dead-worker")
    gateway = build_gateway(d, str(tmp_path / "shards"), workers=2)
    try:
        users = [d.add_user(f"dw{i}", balance=1_000) for i in range(2)]
        healthy = build_purchase_request(users[0], gateway, d.issuer, d.bank, "song-1")
        doomed = build_purchase_request(users[1], gateway, d.issuer, d.bank, "song-1")
        healthy_ticket = gateway.submit(healthy, worker=1)
        # Let worker 1 answer, then kill worker 0 before its request.
        [healthy_result] = gateway.gather([healthy_ticket])
        assert not isinstance(healthy_result, Exception)
        os.kill(gateway._processes[0].pid, signal.SIGKILL)
        time_module.sleep(0.2)
        doomed_ticket = gateway.submit(doomed, worker=0)
        start = time_module.monotonic()
        with pytest.raises(ServiceError, match="died"):
            gateway.gather([doomed_ticket])
        assert time_module.monotonic() - start < 30  # fast, not RESPONSE_TIMEOUT
        # The dead ticket is abandoned; the books stay bounded.
        assert doomed_ticket in gateway._abandoned
        # The healthy worker still serves its shard slot.
        follow_up = build_purchase_request(
            users[0], gateway, d.issuer, d.bank, "song-1"
        )
        [result] = gateway.gather([gateway.submit(follow_up, worker=1)])
        assert not isinstance(result, Exception)
    finally:
        gateway.close()


def test_closed_gateway_refuses_work(tmp_path):
    d = _deployment(seed="gateway-close")
    gateway = build_gateway(d, str(tmp_path / "shards"), workers=1)
    gateway.close()
    gateway.close()  # idempotent
    user = d.add_user("late-user", balance=100)
    request = build_purchase_request(user, gateway, d.issuer, d.bank, "song-1")
    with pytest.raises(ServiceError):
        gateway.sell(request)


@pytest.mark.slow
def test_multi_worker_output_byte_identical_to_in_process(tmp_path):
    """The acceptance check: the same seeded workload through a
    3-worker/4-shard gateway and through the in-process desk yields
    byte-identical licences at every stage (sell, exchange, redeem)."""
    seed = "byte-identical"
    service_side = _deployment(seed=seed)
    in_process = _deployment(seed=seed)
    in_process.provider.deterministic_issuance = True

    gateway = build_gateway(
        service_side, str(tmp_path / "shards"), workers=3, shards=4
    )
    try:
        users = [service_side.add_user(f"u{i}", balance=1_000) for i in range(4)]
        purchase_requests = [
            build_purchase_request(
                user, gateway, service_side.issuer, service_side.bank, "song-1"
            )
            for user in users
            for _ in range(2)
        ]
        # The same request objects go down both paths.
        service_licenses = gateway.sell_batch(purchase_requests)
        local_licenses = [in_process.provider.sell(r) for r in purchase_requests]
        assert [codec.encode(lic.as_dict()) for lic in service_licenses] == [
            codec.encode(lic.as_dict()) for lic in local_licenses
        ]

        owners = [user for user in users for _ in range(2)]
        receiver = users[-1]
        for owner, license_ in list(zip(owners, service_licenses))[:4]:
            exchange = build_exchange_request(owner, license_)
            anonymous_service = gateway.exchange(exchange)
            anonymous_local = in_process.provider.exchange(exchange)
            assert codec.encode(anonymous_service.as_dict()) == codec.encode(
                anonymous_local.as_dict()
            )
            redeem = build_redeem_request(
                receiver, gateway, service_side.issuer, anonymous_service
            )
            redeemed_service = gateway.redeem(redeem)
            redeemed_local = in_process.provider.redeem(redeem)
            assert codec.encode(redeemed_service.as_dict()) == codec.encode(
                redeemed_local.as_dict()
            )
    finally:
        gateway.close()
