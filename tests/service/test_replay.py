"""The idempotent-replay cache: record/lookup semantics against the
ledger's intent states, the sequencer's ``pre_commit`` seam, and the
end-to-end queue-path guarantee — a retried request whose original
landed is served the original receipt, never a false refusal.
"""

import pytest

from repro import codec
from repro.core.messages import DepositRequest
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.protocols.payment import withdraw_coins
from repro.core.system import build_deployment
from repro.errors import DoubleSpendError, ServiceError
from repro.service import wire
from repro.service.gateway import build_gateway
from repro.service.ledger import DepositSequencer, ShardedLedger, intent_payload
from repro.service.replay import (
    REPLAY_KIND,
    ReplayCache,
    ReplayConflictError,
    decode_replay_record,
    encode_replay_record,
)
from repro.service.sharding import ShardedSpentTokenStore, ShardSet

NONCE = b"N" * 16


class _Clock:
    def __init__(self):
        self._now = 0

    def now(self):
        self._now += 1
        return self._now


@pytest.fixture()
def cache_env():
    shards = ShardSet.in_memory(2)
    ledger = ShardedLedger(shards)
    cache = ReplayCache(shards, ledger, wait_budget=0.05)
    yield shards, ledger, cache
    shards.close()


# -- record / lookup against intent states -----------------------------------


def test_bare_record_round_trips(cache_env):
    _shards, _ledger, cache = cache_env
    cache.record(
        NONCE, response=b"receipt", intent_id=b"", account="", amount=0, at=1
    )
    assert cache.lookup(NONCE) == b"receipt"


def test_duplicate_record_conflicts(cache_env):
    _shards, _ledger, cache = cache_env
    cache.record(NONCE, response=b"a", intent_id=b"", account="", amount=0, at=1)
    with pytest.raises(ReplayConflictError):
        cache.record(
            NONCE, response=b"b", intent_id=b"", account="", amount=0, at=2
        )
    # The first record stays authoritative.
    assert cache.lookup(NONCE) == b"a"


def test_committed_intent_serves_cached_response(cache_env):
    _shards, ledger, cache = cache_env
    ledger.open_account("alice", at=1)
    store = ledger.store_for("alice")
    intent = b"I" * 16
    store.create_intent(
        intent, "alice", 5, at=2, payload=intent_payload([(b"t", 5)])
    )
    cache.record(
        NONCE, response=b"receipt", intent_id=intent, account="alice",
        amount=5, at=2,
    )
    store.commit_intent(intent, at=3, transcript=b"")
    assert cache.lookup(NONCE) == b"receipt"


def test_pending_intent_refuses_retryably(cache_env):
    _shards, ledger, cache = cache_env
    ledger.open_account("alice", at=1)
    intent = b"P" * 16
    ledger.store_for("alice").create_intent(
        intent, "alice", 5, at=2, payload=intent_payload([(b"t", 5)])
    )
    cache.record(
        NONCE, response=b"receipt", intent_id=intent, account="alice",
        amount=5, at=2,
    )
    with pytest.raises(ServiceError, match="mid-commit"):
        cache.lookup(NONCE)


def test_aborted_intent_is_a_released_miss(cache_env):
    """Crash-before-commit: recovery aborts the intent, the record is
    stale — lookup misses and the slot is released for re-execution."""
    _shards, ledger, cache = cache_env
    ledger.open_account("alice", at=1)
    store = ledger.store_for("alice")
    intent = b"A" * 16
    store.create_intent(
        intent, "alice", 5, at=2, payload=intent_payload([(b"t", 5)])
    )
    cache.record(
        NONCE, response=b"receipt", intent_id=intent, account="alice",
        amount=5, at=2,
    )
    store.abort_intent(intent, at=3)
    assert cache.lookup(NONCE) is None
    # Released: the retry's re-execution can record the same nonce.
    cache.record(
        NONCE, response=b"second", intent_id=b"", account="", amount=0, at=4
    )
    assert cache.lookup(NONCE) == b"second"


def test_corrupt_record_is_a_released_miss(cache_env):
    shards, _ledger, cache = cache_env
    raw = ShardedSpentTokenStore(shards, REPLAY_KIND)
    raw.try_spend(NONCE, at=1, transcript=b"\x00garbage")
    assert cache.lookup(NONCE) is None


def test_eviction_bounds_and_misses(cache_env):
    """A pruned nonce is an honest miss — the bounded-window caveat."""
    shards, _ledger, cache = cache_env
    for i in range(8):
        cache.record(
            bytes([i]) * 16, response=b"r%d" % i, intent_id=b"",
            account="", amount=0, at=i,
        )
    assert cache.store.count() <= 8
    cache.store.prune_oldest(0)
    assert cache.store.count() == 0
    assert cache.lookup(bytes([3]) * 16) is None


def test_record_codec_rejects_malformed():
    good = encode_replay_record(
        response=b"r", intent_id=b"i" * 16, account="a", amount=3
    )
    fields = decode_replay_record(good)
    assert fields["response"] == b"r" and fields["amount"] == 3
    assert decode_replay_record(b"junk") is None
    assert decode_replay_record(codec.encode({"response": b"r"})) is None
    assert decode_replay_record(codec.encode([1, 2])) is None


# -- the sequencer's pre_commit seam -----------------------------------------


class _FakeCoin:
    def __init__(self, serial: bytes, value: int):
        self.serial = serial
        self.value = value

    def spent_token(self) -> bytes:
        return self.serial


def test_pre_commit_runs_before_commit_point(cache_env):
    shards, ledger, _cache = cache_env
    spent = ShardedSpentTokenStore(shards, "ecash")
    sequencer = DepositSequencer(ledger=ledger, spent=spent, clock=_Clock())
    seen = {}

    def hook(intent_id):
        seen["state"] = ledger.intent_state("alice", intent_id)

    sequencer.deposit("alice", [_FakeCoin(b"c1" * 8, 5)], pre_commit=hook)
    # The hook observed its own intent still pending: the record is
    # durable strictly before the commit point.
    assert seen["state"] == "pending"
    assert ledger.balance("alice") == 5


def test_pre_commit_failure_aborts_and_releases(cache_env):
    shards, ledger, _cache = cache_env
    spent = ShardedSpentTokenStore(shards, "ecash")
    sequencer = DepositSequencer(ledger=ledger, spent=spent, clock=_Clock())
    coin = _FakeCoin(b"c2" * 8, 7)

    def boom(intent_id):
        raise RuntimeError("staged crash before commit")

    with pytest.raises(RuntimeError):
        sequencer.deposit("alice", [coin], pre_commit=boom)
    assert ledger.balance("alice") == 0
    # The coin was released with the abort: an honest respend works.
    assert sequencer.deposit("alice", [coin]) == 7


# -- end to end over the queue path ------------------------------------------


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    d = build_deployment(seed="replay-test", rsa_bits=512)
    d.provider.publish("song-1", b"SONG-ONE" * 32, title="Song One", price=3)
    directory = tmp_path_factory.mktemp("replay-shards")
    gateway = build_gateway(d, str(directory), workers=2, shards=4)
    yield d, gateway
    gateway.close()


def test_retried_deposit_serves_original_receipt(stack):
    d, gateway = stack
    user = d.add_user("replay-depositor", balance=1_000)
    coins = withdraw_coins(user, d.bank, 26)
    account = gateway.bank_account
    before = gateway.balance(account)
    request = DepositRequest(account=account, coins=tuple(coins))
    nonce = b"D" * 16

    first = gateway.gather([gateway.submit(request, nonce=nonce)])[0]
    assert first == {"account": account, "credited": 26}
    # The retry: same request, same nonce.  Without the cache this is
    # a textbook false DoubleSpendError.
    second = gateway.gather([gateway.submit(request, nonce=nonce)])[0]
    assert second == first
    assert gateway.balance(account) - before == 26  # credited exactly once


def test_retried_sell_serves_original_license(stack):
    """Non-2PC ops replay too: without the bare record, the provider's
    one-shot request-nonce filter turns a duplicate delivery into a
    terminal AuthenticationError."""
    d, gateway = stack
    user = d.add_user("replay-buyer", balance=1_000)
    request = build_purchase_request(user, gateway, d.issuer, d.bank, "song-1")
    nonce = b"S" * 16

    first = gateway.gather([gateway.submit(request, nonce=nonce)])[0]
    second = gateway.gather([gateway.submit(request, nonce=nonce)])[0]
    assert not isinstance(first, BaseException)
    assert wire.encode_response(first) == wire.encode_response(second)


def test_evicted_nonce_earns_truthful_double_spend(stack):
    d, gateway = stack
    user = d.add_user("replay-evicted", balance=1_000)
    coins = withdraw_coins(user, d.bank, 26)
    request = DepositRequest(account=gateway.bank_account, coins=tuple(coins))
    nonce = b"E" * 16

    first = gateway.gather([gateway.submit(request, nonce=nonce)])[0]
    assert first["credited"] == 26
    gateway.replay.store.prune_oldest(0)  # the bounded window moved on
    second = gateway.gather([gateway.submit(request, nonce=nonce)])[0]
    # Truthful: the coins ARE spent, and the window that knew whose
    # receipt this was is gone.  Standard bounded-idempotency behavior.
    assert isinstance(second, DoubleSpendError)
