"""Shared fastexp tables: build once in the gateway, attach or inherit
in every worker, unlink exactly once.

What is pinned here:

- spawn-started workers ATTACH the gateway's shared-memory segment
  (they do not rebuild), and still produce byte-identical licences to
  the in-process deterministic-issuance reference;
- fork-started workers take the copy-on-write route (``mode="cow"``);
- the segment's lifetime is the gateway's: ``close()`` unlinks it, and
  a SIGKILL'd worker must NOT tear it out from under its siblings
  (workers share the gateway's resource tracker, which reclaims names
  only once the whole process tree is gone).
"""

import multiprocessing
import os
import signal
import time
from dataclasses import replace
from multiprocessing import resource_tracker, shared_memory

import pytest

from repro import codec
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.system import build_deployment
from repro.service.gateway import ServiceGateway
from repro.service.sharding import ShardSet
from repro.service.workers import ServiceConfig


def _deployment(seed="shared-tables"):
    d = build_deployment(seed=seed, rsa_bits=512)
    d.provider.publish("song-1", b"SONG-ONE" * 32, title="Song One", price=3)
    return d


def _gateway(d, directory, *, workers=2, start_method=None, **config_overrides):
    paths = ShardSet.paths_in_directory(str(directory), 4)
    config = ServiceConfig.from_deployment(d, paths)
    if config_overrides:
        config = replace(config, **config_overrides)
    return ServiceGateway(
        config, workers=workers, start_method=start_method, clock=d.clock
    )


def _probe_segment(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without letting THIS process's resource tracker
    adopt (and later unlink) it — the gateway under test owns it."""
    segment = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    return segment


def test_spawn_workers_attach_and_match_reference(tmp_path):
    """The spawn path: no COW inheritance possible, so every worker
    must report ``mode="attach"`` — and the lazily-materialized shared
    tables must change nothing about the bytes coming back."""
    seed = "shm-spawn"
    service_side = _deployment(seed=seed)
    reference = _deployment(seed=seed)
    reference.provider.deterministic_issuance = True

    gateway = _gateway(
        service_side, tmp_path / "spawn", workers=2, start_method="spawn"
    )
    try:
        assert gateway._fastexp_segment is not None
        reports = gateway.pool.wait_warmup(timeout=120.0)
        assert len(reports) == gateway.workers
        assert {mode for mode, _seconds in reports.values()} == {"attach"}
        users = [
            service_side.add_user(f"spawn-{i}", balance=1_000) for i in range(2)
        ]
        requests = [
            build_purchase_request(
                user, gateway, service_side.issuer, service_side.bank, "song-1"
            )
            for user in users
        ]
        service_licenses = gateway.sell_batch(requests)
        local_licenses = [reference.provider.sell(r) for r in requests]
        assert [codec.encode(lic.as_dict()) for lic in service_licenses] == [
            codec.encode(lic.as_dict()) for lic in local_licenses
        ]
    finally:
        gateway.close()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method not available",
)
def test_fork_workers_inherit_tables_copy_on_write(tmp_path):
    """On the fork path the gateway's freshly built registry is already
    in the child: workers must report ``mode="cow"`` (zero warmup
    exponentiations), not rebuild or attach."""
    d = _deployment(seed="shm-fork")
    gateway = _gateway(d, tmp_path / "fork", workers=2, start_method="fork")
    try:
        reports = gateway.pool.wait_warmup(timeout=120.0)
        assert len(reports) == gateway.workers
        assert {mode for mode, _seconds in reports.values()} == {"cow"}
    finally:
        gateway.close()


def test_segment_unlinked_on_gateway_close(tmp_path):
    d = _deployment(seed="shm-close")
    gateway = _gateway(d, tmp_path / "close", workers=1)
    assert gateway._fastexp_segment is not None
    name = gateway._fastexp_segment.name
    # Attachable while the gateway lives...
    probe = _probe_segment(name)
    probe.close()
    gateway.close()
    # ...and gone once it is closed: the gateway owns the unlink.
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    gateway.close()  # idempotent: no double-unlink error


def test_sigkilled_worker_does_not_unlink_segment(tmp_path):
    """A worker killed with SIGKILL exits without cleanup handlers —
    and nothing it did at attach time may cause the segment to be
    unlinked while siblings still use it.  (Workers inherit the
    gateway's resource tracker, which reclaims names only when the
    whole tree exits; this test pins the surviving-siblings behavior
    whatever the mechanism.)"""
    d = _deployment(seed="shm-kill")
    # spawn: workers actually attach (fork's COW route never maps the
    # segment, so killing a forked worker would prove nothing).
    gateway = _gateway(
        d, tmp_path / "kill", workers=2, start_method="spawn"
    )
    try:
        reports = gateway.pool.wait_warmup(timeout=120.0)
        assert {mode for mode, _ in reports.values()} == {"attach"}
        name = gateway._fastexp_segment.name
        victim = gateway._processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        assert not victim.is_alive()
        # Give any (wrong) tracker-side cleanup a moment to happen.
        time.sleep(0.5)
        probe = _probe_segment(name)
        probe.close()
    finally:
        gateway.close()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
