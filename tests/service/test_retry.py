"""The retry stack: error classification, backoff policy, and the
reconnecting client surviving a deterministic hostile network —
including the acceptance case for the whole layer: a deposit retried
across a server kill at the post-commit point returns the **original
receipt**, not a false ``DoubleSpendError``.
"""

import random
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import DepositRequest
from repro.core.protocols.payment import withdraw_coins
from repro.core.system import build_deployment
from repro.errors import (
    DoubleSpendError,
    FrameTooLargeError,
    OverloadedError,
    PaymentError,
    ServiceError,
    TruncatedFrameError,
)
from repro.service.faults import ChaosListener, FaultPlan, FaultSpec
from repro.service.gateway import build_gateway
from repro.service.netserver import NetClient, NetServer
from repro.service.retry import ReconnectingNetClient, RetryPolicy, retry_reason

PAYMENT = 26  # decomposes to [20, 5, 1]


# -- classification ----------------------------------------------------------


def test_retry_reason_classification():
    assert retry_reason(OverloadedError("shed")) == "OverloadedError"
    assert retry_reason(TruncatedFrameError("cut")) == "TruncatedFrameError"
    # Other wire errors are protocol violations: terminal.
    assert retry_reason(FrameTooLargeError("huge")) is None
    # Operational service trouble is retryable, labeled by class.
    assert retry_reason(ServiceError("worker died")) == "ServiceError"
    # Truthful verdicts are answers, not failures.
    assert retry_reason(DoubleSpendError(b"serial")) is None
    assert retry_reason(PaymentError("no account")) is None
    assert retry_reason(ValueError("nonsense")) is None


# -- policy ------------------------------------------------------------------


def test_policy_rejects_nonsense():
    with pytest.raises(ServiceError):
        RetryPolicy(deadline_s=0)
    with pytest.raises(ServiceError):
        RetryPolicy(attempt_timeout_s=-1)
    with pytest.raises(ServiceError):
        RetryPolicy(max_attempts=0)


def test_backoff_is_capped_jittered_exponential():
    policy = RetryPolicy(
        base_delay_s=0.01, max_delay_s=0.08, rng=random.Random(7)
    )
    for attempt in range(1, 12):
        cap = min(0.08, 0.01 * 2 ** (attempt - 1))
        for _ in range(20):
            assert 0.0 <= policy.backoff(attempt) <= cap


def test_backoff_is_deterministic_under_injected_rng():
    a = RetryPolicy(rng=random.Random(3))
    b = RetryPolicy(rng=random.Random(3))
    assert [a.backoff(i) for i in range(1, 8)] == [
        b.backoff(i) for i in range(1, 8)
    ]


def test_backoff_honors_retry_after_floor():
    policy = RetryPolicy(
        base_delay_s=0.001, max_delay_s=0.002, rng=random.Random(1)
    )
    error = OverloadedError("shed", retry_after_ms=150)
    assert policy.backoff(1, error) >= 0.15


# -- the reconnecting client over a hostile network --------------------------


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    d = build_deployment(seed="retry-test", rsa_bits=512)
    d.provider.publish("song-1", b"SONG-ONE" * 32, title="Song One", price=3)
    directory = tmp_path_factory.mktemp("retry-shards")
    gateway = build_gateway(d, str(directory), workers=2, shards=4)
    server = NetServer(gateway)
    address = server.start()
    yield d, gateway, address
    server.close()
    gateway.close()


def _policy(seed=1, **overrides):
    defaults = dict(
        deadline_s=20.0,
        attempt_timeout_s=0.5,
        max_attempts=20,
        rng=random.Random(seed),
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def test_clean_network_is_a_plain_client(stack):
    d, gateway, address = stack
    with ChaosListener(address, FaultPlan(FaultSpec(), seed=0)) as proxy:
        client = ReconnectingNetClient(proxy.address, policy=_policy())
        try:
            user = d.add_user("retry-clean-user", balance=1_000)
            coins = withdraw_coins(user, d.bank, PAYMENT)
            receipt = client.deposit(gateway.bank_account, coins)
            assert receipt["credited"] == PAYMENT
            assert client.local_metrics.get("p2drm_reconnects_total").value() == 0
        finally:
            client.close()


def test_deposits_survive_a_flaky_network_exactly_once(stack):
    """The tentpole invariant, end to end: heavy deterministic faults,
    every deposit lands exactly once, nothing lost, nothing doubled."""
    d, gateway, address = stack
    plan = FaultPlan(
        FaultSpec(
            reset_rate=0.05,
            truncate_rate=0.03,
            drop_rate=0.05,
            duplicate_rate=0.05,
            delay_rate=0.1,
        ),
        seed=7,
    )
    account = gateway.bank_account
    before = gateway.balance(account)
    with ChaosListener(address, plan) as proxy:
        client = ReconnectingNetClient(
            proxy.address, policy=_policy(), timeout=5.0
        )
        try:
            user = d.add_user("retry-flaky-user", balance=1_000)
            for _ in range(12):
                coins = withdraw_coins(user, d.bank, PAYMENT)
                receipt = client.deposit(account, coins)
                assert receipt == {"account": account, "credited": PAYMENT}
        finally:
            snapshot = {
                "reconnects": client.local_metrics.get(
                    "p2drm_reconnects_total"
                ).value(),
            }
            client.close()
    # Zero lost, zero double-applied: the durable balance moved by
    # exactly the sum of the receipts the client holds.
    assert gateway.balance(account) - before == 12 * PAYMENT
    assert snapshot["reconnects"] >= 0  # counter exists and is sane


def test_reconnect_replays_outstanding_requests(stack):
    """A reset with requests in flight: the client re-dials and replays
    the same envelopes, and every slot still gets a real answer."""
    d, gateway, address = stack
    plan = FaultPlan(FaultSpec(reset_rate=0.15), seed=11)
    account = gateway.bank_account
    before = gateway.balance(account)
    with ChaosListener(address, plan) as proxy:
        client = ReconnectingNetClient(
            proxy.address, policy=_policy(seed=2), timeout=5.0
        )
        try:
            user = d.add_user("retry-replay-user", balance=1_000)
            batches = []
            for _ in range(4):
                coins = withdraw_coins(user, d.bank, PAYMENT)
                batches.append(
                    client.submit(
                        DepositRequest(account=account, coins=tuple(coins))
                    )
                )
            results = client.gather(batches)
            for result in results:
                assert result == {"account": account, "credited": PAYMENT}, result
        finally:
            client.close()
    assert gateway.balance(account) - before == 4 * PAYMENT


def test_control_calls_retry_on_fresh_tickets(stack):
    _d, gateway, address = stack
    plan = FaultPlan(FaultSpec(reset_rate=0.1, drop_rate=0.05), seed=5)
    with ChaosListener(address, plan) as proxy:
        client = ReconnectingNetClient(
            proxy.address,
            policy=_policy(seed=3, attempt_timeout_s=0.15),
            timeout=5.0,
        )
        try:
            for _ in range(6):
                assert client.balance(gateway.bank_account) == gateway.balance(
                    gateway.bank_account
                )
        finally:
            client.close()


# -- the acceptance case: retry across a server kill -------------------------


def test_deposit_retried_across_server_kill_returns_original_receipt(tmp_path):
    d = build_deployment(seed="retry-kill-test", rsa_bits=512)
    directory = str(tmp_path / "shards")
    user = d.add_user("kill-user", balance=1_000)
    coins = withdraw_coins(user, d.bank, PAYMENT)
    nonce = b"K" * 16

    gateway = build_gateway(d, directory, workers=2, shards=4)
    server = NetServer(gateway)
    client = ReconnectingNetClient(
        server.start(), policy=_policy(), nonces=lambda: nonce
    )
    account = gateway.bank_account
    try:
        first = client.deposit(account, coins)
        assert first == {"account": account, "credited": PAYMENT}
    finally:
        client.close()
        server.close()
        gateway.close()  # the kill: the deposit is past its commit point

    # Restart over the same shard files (startup recovery runs), then
    # retry the same request with the same idempotency nonce — the
    # client never learned whether its receipt was real.
    gateway = build_gateway(d, directory, workers=2, shards=4)
    server = NetServer(gateway)
    client = ReconnectingNetClient(
        server.start(), policy=_policy(), nonces=lambda: nonce
    )
    try:
        retried = client.deposit(account, coins)
        # NOT DoubleSpendError: the replay record survived the kill
        # (it was durable before the commit point) and the restarted
        # server serves the original receipt.
        assert retried == first
        assert gateway.balance(account) == PAYMENT  # credited exactly once
        assert gateway.metrics.get("p2drm_replay_hits_total").value() >= 1
    finally:
        client.close()
        server.close()
        gateway.close()


# -- satellite: mid-gather disconnect resolves every correlation -------------


class _AbruptServer:
    """Accepts one connection, swallows requests for a moment (long
    enough for the client to park several), then slams it shut."""

    def __init__(self, hold_s=0.3):
        self._hold_s = hold_s
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.bind(("127.0.0.1", 0))
        self._listen.listen(1)
        self.address = self._listen.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        conn, _addr = self._listen.accept()
        deadline = time.monotonic() + self._hold_s
        try:
            conn.settimeout(0.05)
            while time.monotonic() < deadline:
                try:
                    conn.recv(65536)
                except socket.timeout:
                    pass
        except OSError:
            pass
        finally:
            conn.close()
            self._listen.close()


def test_base_client_mid_gather_disconnect_is_typed_and_sticky():
    server = _AbruptServer()
    client = NetClient(server.address, timeout=5.0)
    try:
        tickets = [client.submit_encoded(b"envelope-%d" % i) for i in range(3)]
        # Every parked correlation resolves to a typed error — no hang,
        # no leak, no bare OSError.
        with pytest.raises(ServiceError):
            client.gather(tickets)
        # And the brokenness is sticky *and instant*: later waiters
        # fail typed immediately instead of waiting out a timeout.
        start = time.monotonic()
        with pytest.raises(ServiceError):
            client.gather([tickets[-1]])
        assert time.monotonic() - start < 1.0
    finally:
        client.close()


# -- property: a hostile network never produces a wrong answer ---------------


@pytest.mark.slow
@given(
    reset=st.floats(0.0, 0.12),
    truncate=st.floats(0.0, 0.08),
    drop=st.floats(0.0, 0.12),
    duplicate=st.floats(0.0, 0.12),
    delay=st.floats(0.0, 0.2),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=10, deadline=None)
def test_random_fault_schedules_never_yield_wrong_answers(
    stack, reset, truncate, drop, duplicate, delay, seed
):
    """Under ANY fault schedule the client returns either the correct
    receipt or a typed retryable/budget error — never a false
    ``DoubleSpendError``, never a fabricated receipt."""
    d, gateway, address = stack
    plan = FaultPlan(
        FaultSpec(
            reset_rate=reset,
            truncate_rate=truncate,
            drop_rate=drop,
            duplicate_rate=duplicate,
            delay_rate=delay,
        ),
        seed=seed,
    )
    account = gateway.bank_account
    user = d.add_user(f"retry-prop-user-{seed}-{id(plan)}", balance=1_000)
    coins = withdraw_coins(user, d.bank, PAYMENT)
    before = gateway.balance(account)
    with ChaosListener(address, plan) as proxy:
        client = ReconnectingNetClient(
            proxy.address,
            policy=_policy(seed=seed, deadline_s=15.0),
            timeout=5.0,
        )
        try:
            try:
                receipt = client.deposit(account, coins)
            except ServiceError:
                # Ambiguous failure after an exhausted budget: allowed.
                # The deposit may or may not have landed — but it can
                # never have landed more than once (checked below).
                receipt = None
            if receipt is not None:
                assert receipt == {"account": account, "credited": PAYMENT}
        finally:
            client.close()
    # Zero double-applied, receipt or not: the balance moved by at
    # most one payment (give late in-flight work a moment to settle).
    for _ in range(100):
        delta = gateway.balance(account) - before
        if delta in (0, PAYMENT):
            break
        time.sleep(0.05)
    assert delta in (0, PAYMENT), delta
    if receipt is not None:
        assert delta == PAYMENT
