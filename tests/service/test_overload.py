"""Overload control end to end: flood a deliberately tiny service and
prove shedding is loud, typed, side-effect-free and exactly-once.

The stack under test is one worker behind an inflight ceiling of one —
every pipelined burst *must* shed — and the witness for "no side
effects" is e-cash: a deposit's coin is spent exactly once, so if a
shed request had touched a store, its retry would be a
``DoubleSpendError`` instead of a success.  The same flood runs over
the in-process queue transport (shed raised synchronously at submit)
and over TCP (shed crossing the socket as a typed error envelope).
"""

import urllib.request

import pytest

from repro.core.messages import DepositRequest
from repro.core.system import build_deployment
from repro.errors import OverloadedError, ServiceError
from repro.service import wire
from repro.service.gateway import build_gateway
from repro.service.metrics import SERVICE_METRIC_SPECS
from repro.service.netserver import NetClient, NetServer

FLOOD = 12


@pytest.fixture(scope="module")
def tiny_stack(tmp_path_factory):
    """One worker, pool ceiling of one, server ceiling of one: the
    smallest service that can still answer — and must shed a burst."""
    d = build_deployment(seed="overload-test", rsa_bits=512)
    directory = tmp_path_factory.mktemp("overload-shards")
    gateway = build_gateway(
        d, str(directory), workers=1, shards=1, max_inflight=1
    )
    server = NetServer(gateway, max_server_inflight=1, metrics_port=0)
    address = server.start()
    yield d, gateway, server, address
    server.close()
    gateway.close()


def _deposit_requests(d, tag: str, count: int) -> list[DepositRequest]:
    payer = d.add_user(f"flood-{tag}", balance=1_000)
    return [
        DepositRequest(
            account=f"sink-{tag}", coins=tuple(payer.coins_for(1, d.bank))
        )
        for _ in range(count)
    ]


def test_overloaded_error_round_trips_the_wire():
    error = OverloadedError("busy", retry_after_ms=250)
    decoded = wire.decode_response(wire.encode_response(error))
    assert isinstance(decoded, OverloadedError)
    assert isinstance(decoded, ServiceError)  # callers catch the base too
    assert decoded.retry_after_ms == 250
    assert "busy" in str(decoded)


def test_pool_and_server_reject_bad_ceilings(tiny_stack, tmp_path):
    d, gateway, _server, _address = tiny_stack
    with pytest.raises(ServiceError):
        build_gateway(d, str(tmp_path), workers=1, max_inflight=0)
    with pytest.raises(ServiceError):
        NetServer(gateway, max_server_inflight=0)


def test_queue_flood_sheds_typed_and_applies_exactly_once(tiny_stack):
    d, gateway, _server, _address = tiny_stack
    requests = _deposit_requests(d, "queue", FLOOD)
    spent_before = gateway.coin_spent_tokens.count()
    shed_before = gateway.metrics.get("p2drm_shed_total").value(
        op="deposit", reason="pool"
    )
    tickets, shed = [], []
    for request in requests:
        try:
            tickets.append(gateway.submit(request))
        except OverloadedError as exc:
            assert exc.retry_after_ms >= 0
            shed.append(request)
    # One-deep ceiling, microsecond submit gaps, millisecond desks:
    # the burst cannot fit.
    assert shed, "a 12-deep burst against a 1-deep ceiling must shed"
    for receipt in gateway.gather(tickets):
        assert receipt["credited"] == 1
    # Shed requests left no trace: the retry succeeds (a shed with
    # side effects would come back DoubleSpendError here).
    for request in shed:
        for _ in range(200):
            try:
                ticket = gateway.submit(request)
                break
            except OverloadedError:
                import time

                time.sleep(0.01)
        else:
            pytest.fail("shed request never admitted")
        [receipt] = gateway.gather([ticket])
        assert receipt["credited"] == 1
    assert gateway.coin_spent_tokens.count() == spent_before + FLOOD
    assert (
        gateway.metrics.get("p2drm_shed_total").value(op="deposit", reason="pool")
        == shed_before + len(shed)
    )
    # The answered deposits fed the latency histogram.
    assert gateway.metrics.get("p2drm_request_latency_seconds").count(
        op="deposit"
    ) >= FLOOD


def test_tcp_flood_sheds_typed_and_applies_exactly_once(tiny_stack):
    d, gateway, _server, address = tiny_stack
    requests = _deposit_requests(d, "tcp", FLOOD)
    spent_before = gateway.coin_spent_tokens.count()
    with NetClient(address) as client:
        tickets = [client.submit(request) for request in requests]
        results = client.gather(tickets)
        shed = [
            request
            for request, result in zip(requests, results)
            if isinstance(result, OverloadedError)
        ]
        for result in results:
            if isinstance(result, OverloadedError):
                # The typed envelope carried the retry hint intact.
                assert result.retry_after_ms >= 0
            else:
                assert not isinstance(result, Exception)
                assert result["credited"] == 1
        assert shed, "a pipelined burst against a 1-deep server must shed"
        # Retry every shed request over the same socket until admitted;
        # exactly-once means each retry eventually credits — never a
        # DoubleSpendError from a half-applied shed.
        import time

        for request in shed:
            for _ in range(200):
                [result] = client.gather([client.submit(request)])
                if not isinstance(result, OverloadedError):
                    break
                time.sleep(0.01)
            assert not isinstance(result, Exception)
            assert result["credited"] == 1
    assert gateway.coin_spent_tokens.count() == spent_before + FLOOD
    # Both ceilings are one deep; whichever shed first, the total on
    # the shed counter accounts for every refused admission.
    shed_counter = gateway.metrics.get("p2drm_shed_total")
    total_shed = (
        shed_counter.value(op="deposit", reason="pool")
        + shed_counter.value(op="deposit", reason="worker")
        + shed_counter.value(op="deposit", reason="server")
    )
    assert total_shed >= len(shed)


def test_metrics_endpoint_serves_the_whole_declared_surface(tiny_stack):
    _d, _gateway, server, _address = tiny_stack
    host, port = server.metrics_address
    page = (
        urllib.request.urlopen(f"http://{host}:{port}/metrics", timeout=30)
        .read()
        .decode("utf-8")
    )
    for spec in SERVICE_METRIC_SPECS:
        assert f"# TYPE {spec.name} {spec.kind}" in page
    with pytest.raises(urllib.error.HTTPError):
        urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=30)


def test_control_channel_metrics_match_the_scrape(tiny_stack):
    _d, _gateway, server, address = tiny_stack
    with NetClient(address) as client:
        snapshot = client.metrics()
        text = client.metrics_text()
    assert sorted(snapshot) == sorted(spec.name for spec in SERVICE_METRIC_SPECS)
    for spec in SERVICE_METRIC_SPECS:
        assert snapshot[spec.name]["kind"] == spec.kind
        assert f"# TYPE {spec.name} {spec.kind}" in text
