"""The sharded ledger, the 2PC deposit sequencer, and the BankSurface.

Unit layers run on in-memory shards; the end-to-end classes spin up a
real worker pool (this file rides the CI service lane).
"""

import pytest

from repro import codec
from repro.clock import SimClock
from repro.core.messages import Coin
from repro.core.protocols.payment import withdraw_coins
from repro.core.system import build_deployment
from repro.errors import DoubleSpendError, PaymentError, ServiceError
from repro.service.gateway import build_gateway
from repro.service.ledger import (
    DepositSequencer,
    ShardedLedger,
    decode_intent_payload,
    intent_payload,
    recover_intents,
)
from repro.service.netserver import NetClient, NetServer
from repro.service.sharding import ShardedSpentTokenStore, ShardSet
from repro.service.workers import ShardedDepositDesk
from repro.storage.ledger import (
    INTENT_ABORTED,
    INTENT_COMMITTED,
    INTENT_PENDING,
)


def coin(serial: bytes, value: int = 1) -> Coin:
    """A structurally valid coin (the sequencer never verifies
    signatures — that is the desk's job before it ever calls in)."""
    return Coin(serial=serial, value=value, signature=7)


@pytest.fixture()
def shards():
    return ShardSet.in_memory(4)


@pytest.fixture()
def ledger(shards):
    return ShardedLedger(shards)


@pytest.fixture()
def spent(shards):
    return ShardedSpentTokenStore(shards, "ecash")


@pytest.fixture()
def sequencer(ledger, spent):
    return DepositSequencer(
        ledger=ledger, spent=spent, clock=SimClock(1_000), wait_budget=0.25
    )


class TestShardedLedger:
    def test_account_routes_to_home_shard(self, shards, ledger):
        ledger.open_account("alice", at=1)
        index = shards.index_for(b"alice")
        assert ledger.stores[index].has_account("alice")
        assert ledger.store_for("alice") is ledger.stores[index]

    def test_balance_unknown_account_refused(self, ledger):
        with pytest.raises(PaymentError, match="no account"):
            ledger.balance("nobody")

    def test_accounts_and_totals_merge_shards(self, ledger):
        for name, amount in (("a1", 5), ("b2", 7), ("c3", 11)):
            ledger.open_account(name, at=1, initial_balance=amount)
        assert ledger.accounts() == ["a1", "b2", "c3"]
        assert ledger.total_balance() == 23

    def test_intent_payload_round_trip(self):
        pairs = [(b"t1", 5), (b"t2", 20)]
        assert decode_intent_payload(intent_payload(pairs)) == pairs


class TestDepositSequencer:
    def test_multi_coin_deposit_is_atomic_and_attributable(
        self, sequencer, ledger, spent
    ):
        coins = [coin(b"s1", 5), coin(b"s2", 20), coin(b"s3", 1)]
        assert sequencer.deposit("merchant", coins) == 26
        assert ledger.balance("merchant") == 26
        assert ledger.intent_counts()[INTENT_COMMITTED] == 1
        # Every spend names the committed intent.
        [record] = ledger.intents(INTENT_COMMITTED)
        for c in coins:
            fields = codec.decode(spent.record_for(c.spent_token()).transcript)
            assert fields["intent"] == record.intent_id
            assert fields["depositor"] == "merchant"

    def test_empty_deposit_is_zero(self, sequencer, ledger):
        assert sequencer.deposit("merchant", []) == 0
        assert ledger.balance("merchant") == 0

    def test_replay_is_double_spend_and_costs_nothing(self, sequencer, ledger):
        coins = [coin(b"s1", 5), coin(b"s2", 20)]
        sequencer.deposit("merchant", coins)
        with pytest.raises(DoubleSpendError):
            sequencer.deposit("merchant", coins)
        assert ledger.balance("merchant") == 25
        counts = ledger.intent_counts()
        assert counts[INTENT_COMMITTED] == 1
        assert counts[INTENT_ABORTED] == 1  # the replay's own intent
        assert counts[INTENT_PENDING] == 0

    def test_partial_overlap_releases_fresh_spends(
        self, sequencer, ledger, spent
    ):
        sequencer.deposit("merchant", [coin(b"s1", 5)])
        fresh = coin(b"s9", 20)
        with pytest.raises(DoubleSpendError):
            sequencer.deposit("merchant", [fresh, coin(b"s1", 5)])
        # The refused payment's fresh coin is respendable immediately.
        assert not spent.is_spent(fresh.spent_token())
        assert sequencer.deposit("merchant", [fresh]) == 20
        assert ledger.balance("merchant") == 25

    def test_intra_batch_duplicate_refused_before_any_state(
        self, sequencer, ledger, spent
    ):
        with pytest.raises(DoubleSpendError):
            sequencer.deposit("merchant", [coin(b"dup", 5), coin(b"dup", 5)])
        assert ledger.intent_counts() == {
            INTENT_PENDING: 0,
            INTENT_COMMITTED: 0,
            INTENT_ABORTED: 0,
        }
        assert not spent.is_spent(coin(b"dup", 5).spent_token())

    def test_coin_under_foreign_aborted_intent_self_heals(
        self, sequencer, ledger, spent
    ):
        # Stage the documented leak: an aborted payment whose coin
        # release failed mid-compensation.
        c = coin(b"s1", 5)
        ledger.ensure_account("other", at=1)
        foreign = b"F" * 16
        ledger.store_for("other").create_intent(
            foreign, "other", 5, at=1,
            payload=intent_payload([(c.spent_token(), 5)]),
        )
        spent.try_spend(
            c.spent_token(),
            at=1,
            transcript=codec.encode(
                {"depositor": "other", "at": 1, "value": 5, "intent": foreign}
            ),
        )
        ledger.store_for("other").abort_intent(foreign, at=2)
        # An honest payment finds the stale spend, releases it on the
        # aborted owner's behalf, and succeeds.
        assert sequencer.deposit("merchant", [c]) == 5
        assert ledger.balance("merchant") == 5

    def test_coin_under_foreign_pending_intent_waits_it_out(
        self, ledger, spent
    ):
        c = coin(b"s1", 5)
        ledger.ensure_account("other", at=1)
        foreign = b"F" * 16
        ledger.store_for("other").create_intent(
            foreign, "other", 5, at=1,
            payload=intent_payload([(c.spent_token(), 5)]),
        )
        spent.try_spend(
            c.spent_token(),
            at=1,
            transcript=codec.encode(
                {"depositor": "other", "at": 1, "value": 5, "intent": foreign}
            ),
        )
        # The owner resolves while the waiter polls: after two polls
        # it aborts and releases, and the waiter inherits the coin.
        # (Resolution happens inline from this thread — in-memory
        # SQLite handles are thread-pinned — which exercises exactly
        # the same wait-loop path a concurrent owner would.)
        polls = {"n": 0}

        class ResolvingSpent:
            def __getattr__(self, name):
                return getattr(spent, name)

            def try_spend(self, token, *, at, transcript=b""):
                polls["n"] += 1
                if polls["n"] == 3:
                    spent.unspend(c.spent_token())
                    ledger.store_for("other").abort_intent(foreign, at=2)
                return spent.try_spend(token, at=at, transcript=transcript)

        sequencer = DepositSequencer(
            ledger=ledger,
            spent=ResolvingSpent(),
            clock=SimClock(1_000),
            wait_budget=2.0,
        )
        assert sequencer.deposit("merchant", [c]) == 5
        assert polls["n"] >= 3  # it actually waited through the race
        assert ledger.balance("merchant") == 5

    def test_owner_stuck_past_budget_is_retryable_not_misuse(
        self, sequencer, ledger, spent
    ):
        c = coin(b"s1", 5)
        ledger.ensure_account("other", at=1)
        foreign = b"F" * 16
        ledger.store_for("other").create_intent(
            foreign, "other", 5, at=1,
            payload=intent_payload([(c.spent_token(), 5)]),
        )
        spent.try_spend(
            c.spent_token(),
            at=1,
            transcript=codec.encode(
                {"depositor": "other", "at": 1, "value": 5, "intent": foreign}
            ),
        )
        # 0.25s budget, never resolves: an honest payer racing a stuck
        # peer gets infrastructure trouble, NOT a misuse verdict.
        with pytest.raises(ServiceError, match="did not resolve") as excinfo:
            sequencer.deposit("merchant", [c])
        assert not isinstance(excinfo.value, DoubleSpendError)
        # The refused payment left nothing pending of its own.
        assert ledger.intent_counts()[INTENT_PENDING] == 1  # the stuck owner
        # Once recovery aborts the stuck owner, the retry goes through.
        recover_intents(ledger, spent, at=2)
        assert sequencer.deposit("merchant", [c]) == 5

    def test_commit_denied_refuses_instead_of_phantom_credit(
        self, ledger, spent
    ):
        """An operator repair (or a recovery run breaking the pool-
        stopped contract) aborts the intent between spend and commit:
        the deposit must surface a retryable failure, never report the
        amount as credited."""
        intent_id = b"A" * 16

        class AbortingSpent:
            def __getattr__(self, name):
                return getattr(spent, name)

            def try_spend(self, token, *, at, transcript=b""):
                result = spent.try_spend(token, at=at, transcript=transcript)
                ledger.store_for("merchant").abort_intent(intent_id, at=at)
                return result

        sequencer = DepositSequencer(
            ledger=ledger,
            spent=AbortingSpent(),
            clock=SimClock(1_000),
            intent_ids=lambda: intent_id,
        )
        c = coin(b"s1", 5)
        with pytest.raises(ServiceError, match="before its commit point"):
            sequencer.deposit("merchant", [c])
        assert ledger.balance("merchant") == 0
        # The payment's own spends were released on the way out.
        assert not spent.is_spent(c.spent_token())

    def test_self_heal_release_is_cas_on_observed_record(self, ledger, spent):
        """Two payments both observe a spend owned by an aborted intent;
        the slower one's release must not delete the faster one's fresh
        (already committed) re-spend."""
        c = coin(b"s1", 5)
        stale_transcript = codec.encode(
            {"depositor": "other", "at": 1, "value": 5, "intent": b"F" * 16}
        )
        ledger.ensure_account("other", at=1)
        ledger.store_for("other").create_intent(
            b"F" * 16, "other", 5, at=1,
            payload=intent_payload([(c.spent_token(), 5)]),
        )
        spent.try_spend(c.spent_token(), at=1, transcript=stale_transcript)
        ledger.store_for("other").abort_intent(b"F" * 16, at=2)
        # The fast payment self-heals and commits.
        fast = DepositSequencer(ledger=ledger, spent=spent, clock=SimClock(1_000))
        assert fast.deposit("merchant", [c]) == 5
        # The slow payment acts on its STALE read of the spend record:
        # the conditional release must refuse (record changed), leaving
        # the winner's spend — and its credit — intact.
        assert spent.unspend_if(c.spent_token(), stale_transcript) is False
        assert spent.is_spent(c.spent_token())
        assert ledger.balance("merchant") == 5

    def test_committed_owner_is_truthful_double_spend(
        self, sequencer, ledger
    ):
        c = coin(b"s1", 5)
        sequencer.deposit("first", [c])
        with pytest.raises(DoubleSpendError):
            sequencer.deposit("second", [c])
        assert ledger.balance("first") == 5
        # The loser's account was ensured but never credited.
        assert ledger.balance("second") == 0

    def test_deterministic_intent_ids_injectable(self, ledger, spent):
        ids = iter([b"A" * 16, b"B" * 16])
        sequencer = DepositSequencer(
            ledger=ledger,
            spent=spent,
            clock=SimClock(1_000),
            intent_ids=lambda: next(ids),
        )
        sequencer.deposit("merchant", [coin(b"s1", 5)])
        assert ledger.find_intent(b"A" * 16) is not None


class TestRecovery:
    def test_pending_intent_released_and_aborted(self, ledger, spent):
        """The crash window: spends landed, commit never did."""
        c1, c2 = coin(b"s1", 5), coin(b"s2", 20)
        ledger.ensure_account("merchant", at=1)
        crashed = b"C" * 16
        pairs = [(c.spent_token(), c.value) for c in (c1, c2)]
        ledger.store_for("merchant").create_intent(
            crashed, "merchant", 25, at=1, payload=intent_payload(pairs)
        )
        for c in (c1, c2):
            spent.try_spend(
                c.spent_token(),
                at=1,
                transcript=codec.encode(
                    {"depositor": "merchant", "at": 1, "value": c.value,
                     "intent": crashed}
                ),
            )
        summary = recover_intents(ledger, spent, at=2)
        assert summary == {"aborted": 1, "released": 2}
        assert ledger.balance("merchant") == 0  # never credited
        assert ledger.intent_counts()[INTENT_PENDING] == 0
        # The payer's retry goes through cleanly.
        sequencer = DepositSequencer(
            ledger=ledger, spent=spent, clock=SimClock(1_000)
        )
        assert sequencer.deposit("merchant", [c1, c2]) == 25

    def test_recovery_leaves_foreign_spends_alone(self, ledger, spent):
        c = coin(b"s1", 5)
        # The coin is genuinely owned by a committed deposit...
        sequencer = DepositSequencer(
            ledger=ledger, spent=spent, clock=SimClock(1_000)
        )
        sequencer.deposit("winner", [c])
        # ...but a crashed intent also CLAIMS it in its payload (it
        # never got to spend it).  Recovery must not release the
        # winner's spend.
        ledger.ensure_account("crashed", at=1)
        pending = b"C" * 16
        ledger.store_for("crashed").create_intent(
            pending, "crashed", 5, at=1,
            payload=intent_payload([(c.spent_token(), 5)]),
        )
        summary = recover_intents(ledger, spent, at=2)
        assert summary == {"aborted": 1, "released": 0}
        assert spent.is_spent(c.spent_token())
        assert ledger.balance("winner") == 5


class TestDeskSurface:
    def test_balance_is_the_only_read(self, shards, ledger, spent):
        desk = ShardedDepositDesk(
            public_keys={}, spent=spent, ledger=ledger, clock=SimClock(1_000)
        )
        desk.open_account("merchant", initial_balance=40)
        assert desk.balance("merchant") == 40
        # The deprecated credited() alias is gone; unknown accounts are
        # a typed refusal, not the old accumulator's silent 0.
        assert not hasattr(desk, "credited")
        with pytest.raises(PaymentError, match="no account"):
            desk.balance("nobody")


# -- end to end over a real pool ---------------------------------------------


def _deployment(seed="ledger-e2e"):
    d = build_deployment(seed=seed, rsa_bits=512)
    d.provider.publish("song-1", b"SONG-ONE" * 32, title="Song One", price=3)
    return d


@pytest.fixture(scope="module")
def bank_gateway(tmp_path_factory):
    d = _deployment()
    directory = tmp_path_factory.mktemp("ledger-shards")
    gateway = build_gateway(d, str(directory), workers=2, shards=4)
    yield d, gateway
    gateway.close()


class TestBankSurfaceEndToEnd:
    def test_withdraw_deposit_balance_statement_in_process(self, bank_gateway):
        d, gateway = bank_gateway
        user = d.add_user("bank-user", balance=1_000)
        gateway.open_account(user.bank_account, initial_balance=500)
        coins = withdraw_coins(user, gateway, 26)
        assert sum(c.value for c in coins) == 26
        for c in coins:
            gateway.verify_coin(c)  # raises InvalidSignature on mismatch
        assert gateway.balance(user.bank_account) == 474
        before = gateway.balance(gateway.bank_account)
        receipt = gateway.deposit(gateway.bank_account, coins)
        assert receipt == {"account": gateway.bank_account, "credited": 26}
        assert gateway.balance(gateway.bank_account) == before + 26
        entries = gateway.statement(user.bank_account)
        assert [e.kind for e in entries[:1]] == ["open"]
        assert sum(e.amount for e in entries) == 474

    def test_key_surface_matches_in_process_bank(self, bank_gateway):
        d, gateway = bank_gateway
        assert gateway.denominations == sorted(
            d.bank.public_keys(), reverse=True
        )
        for denom in gateway.denominations:
            ours = gateway.public_key(denom)
            theirs = d.bank.public_key(denom)
            assert (ours.n, ours.e) == (theirs.n, theirs.e)
        assert gateway.decompose(26) == d.bank.decompose(26)
        with pytest.raises(PaymentError):
            gateway.public_key(999)

    def test_bank_surface_over_tcp_matches_queue(self, bank_gateway):
        d, gateway = bank_gateway
        user = d.add_user("tcp-bank-user", balance=1_000)
        gateway.open_account(user.bank_account, initial_balance=300)
        with NetServer(gateway, allow_withdraw=True) as server:
            with NetClient(server.address) as client:
                assert client.bank_account == gateway.bank_account
                assert client.denominations == gateway.denominations
                for denom in client.denominations:
                    ours = client.public_key(denom)
                    theirs = gateway.public_key(denom)
                    assert (ours.n, ours.e) == (theirs.n, theirs.e)
                coins = withdraw_coins(user, client, 26)
                for c in coins:
                    client.verify_coin(c)
                assert client.balance(user.bank_account) == 274
                assert client.balance(user.bank_account) == gateway.balance(
                    user.bank_account
                )
                receipt = client.deposit(client.bank_account, coins)
                assert receipt["credited"] == 26
                queue_side = gateway.statement(user.bank_account)
                tcp_side = client.statement(user.bank_account)
                assert tcp_side == queue_side
                assert client.statement(user.bank_account, limit=2) == (
                    gateway.statement(user.bank_account, limit=2)
                )
                with pytest.raises(PaymentError, match="no account"):
                    client.balance("nobody")

    def test_tcp_surface_is_deposit_only_by_default(self, bank_gateway):
        """Without the explicit opt-in, a network client must not be
        able to debit a named account — the mint stays off the open
        socket (the queue/in-process surface is unaffected)."""
        d, gateway = bank_gateway
        user = d.add_user("deposit-only-user", balance=1_000)
        gateway.open_account(user.bank_account, initial_balance=100)
        with NetServer(gateway) as server:
            with NetClient(server.address) as client:
                with pytest.raises(ServiceError, match="deposit-only"):
                    withdraw_coins(user, client, 26)
                # Nothing was debited: the request never reached a desk.
                assert gateway.balance(user.bank_account) == 100
                # Deposits and the read surface still work as before.
                assert client.balance(user.bank_account) == 100

    def test_ledger_metrics_refresh(self, bank_gateway):
        d, gateway = bank_gateway
        counts = gateway.refresh_ledger_metrics()
        gauge = gateway.metrics.get("p2drm_ledger_intents")
        for state in ("pending", "committed", "aborted"):
            assert gauge.value(state=state) == counts.get(state, 0)
        counter = gateway.metrics.get("p2drm_ledger_2pc_total")
        assert counter.value(phase="prepare") == sum(counts.values())


class TestCrashWindow:
    def test_gateway_restart_recovers_partial_deposit(self, tmp_path):
        """Kill-between-spend-and-credit, staged durably: spends and a
        pending intent are on the shard files, the credit is not.  A
        fresh gateway over the same directory must reconcile — zero
        lost coins, zero double credits — and the retry must succeed.
        """
        d = _deployment(seed="crash-window")
        directory = str(tmp_path / "shards")
        gateway = build_gateway(d, directory, workers=2, shards=4)
        user = d.add_user("crash-user", balance=1_000)
        coins = withdraw_coins(user, d.bank, 26)
        account = gateway.bank_account
        before = gateway.balance(account)
        gateway.close()

        # Stage the mid-deposit crash state directly on the shard files.
        shards = ShardSet(ShardSet.paths_in_directory(directory, 4))
        try:
            ledger = ShardedLedger(shards)
            spent = ShardedSpentTokenStore(shards, "ecash")
            crashed = b"K" * 16
            pairs = sorted(
                ((c.spent_token(), c.value) for c in coins),
                key=lambda pair: pair[0],
            )
            ledger.store_for(account).create_intent(
                crashed, account, 26, at=5_000, payload=intent_payload(pairs)
            )
            for token, value in pairs[:2]:  # crash after two of the spends
                spent.try_spend(
                    token,
                    at=5_000,
                    transcript=codec.encode(
                        {"depositor": account, "at": 5_000, "value": value,
                         "intent": crashed}
                    ),
                )
        finally:
            shards.close()

        # Restart: recovery runs before any worker starts.
        reopened = build_gateway(d, directory, workers=2, shards=4)
        try:
            assert reopened.recovery_summary == {"aborted": 1, "released": 2}
            assert reopened.balance(account) == before  # nothing credited
            receipt = reopened.deposit(account, coins)  # the client retry
            assert receipt["credited"] == 26
            assert reopened.balance(account) == before + 26
            counts = reopened.refresh_ledger_metrics()
            assert counts["pending"] == 0
        finally:
            reopened.close()
