"""The sharded store views: same APIs, same invariants, N files."""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.rsa import generate_rsa_key
from repro.errors import ParameterError
from repro.service.sharding import (
    ShardSet,
    ShardedAuditLog,
    ShardedLicenseStore,
    ShardedRevocationList,
    ShardedSpentTokenStore,
    shard_index,
)
from repro.storage import licenses as license_store
from repro.storage.merkle import verify_non_inclusion


def _tokens(count, *, prefix=b"tok"):
    return [prefix + i.to_bytes(4, "big") for i in range(count)]


class TestShardIndex:
    def test_stable_and_in_range(self):
        for token in _tokens(50):
            index = shard_index(token, 8)
            assert 0 <= index < 8
            assert shard_index(token, 8) == index  # deterministic

    def test_spreads_tokens(self):
        hit = {shard_index(token, 8) for token in _tokens(200)}
        assert len(hit) == 8  # 200 hashed tokens cover all 8 shards

    def test_rejects_zero_shards(self):
        with pytest.raises(ParameterError):
            shard_index(b"x", 0)


class TestShardSet:
    def test_in_memory_routing(self):
        with ShardSet.in_memory(4) as shards:
            assert len(shards) == 4
            token = b"some-token"
            assert shards.database_for(token) is shards.databases[
                shards.index_for(token)
            ]

    def test_file_backed_shares_state_between_open_sets(self, tmp_path):
        first = ShardSet.in_directory(str(tmp_path), 3)
        store = ShardedSpentTokenStore(first, "anon-license")
        assert store.try_spend(b"shared-token", at=5, transcript=b"t") is None
        # A second ShardSet over the same directory (another process,
        # morally) sees the committed spend.
        second = ShardSet(first.paths)
        view = ShardedSpentTokenStore(second, "anon-license")
        assert view.is_spent(b"shared-token")
        record = view.record_for(b"shared-token")
        assert record.transcript == b"t"
        first.close()
        second.close()

    def test_close_is_idempotent(self, tmp_path):
        shards = ShardSet.in_directory(str(tmp_path), 2)
        shards.close()
        shards.close()
        assert all(db.closed for db in shards.databases)


class TestShardedSpentTokenStore:
    def test_exactly_once_across_shards(self):
        with ShardSet.in_memory(4) as shards:
            store = ShardedSpentTokenStore(shards, "anon-license")
            tokens = _tokens(40)
            for token in tokens:
                assert store.try_spend(token, at=1, transcript=b"first") is None
            assert store.count() == 40
            for token in tokens:
                previous = store.try_spend(token, at=2, transcript=b"second")
                assert previous is not None
                assert previous.transcript == b"first"
            assert store.count() == 40

    def test_spent_between_merges_shards(self):
        with ShardSet.in_memory(3) as shards:
            store = ShardedSpentTokenStore(shards, "ecash")
            for at, token in enumerate(_tokens(12)):
                store.try_spend(token, at=at)
            window = store.spent_between(3, 9)
            assert [record.spent_at for record in window] == sorted(
                record.spent_at for record in window
            )
            assert len(window) == 6

    def test_unspend_releases_exactly_that_token(self):
        with ShardSet.in_memory(4) as shards:
            store = ShardedSpentTokenStore(shards, "ecash")
            a, b = b"coin-a", b"coin-b"
            store.try_spend(a, at=1)
            store.try_spend(b, at=1)
            assert store.unspend(a) is True
            assert not store.is_spent(a)
            assert store.is_spent(b)
            assert store.unspend(a) is False  # already released

    def test_unspend_if_is_cas_on_the_observed_transcript(self):
        with ShardSet.in_memory(4) as shards:
            store = ShardedSpentTokenStore(shards, "ecash")
            token = b"coin-a"
            store.try_spend(token, at=1, transcript=b"stale-owner")
            # Releaser A observed the stale record and wins the CAS.
            assert store.unspend_if(token, b"stale-owner") is True
            # The coin is immediately respent by a fresh payment.
            assert store.try_spend(token, at=2, transcript=b"fresh") is None
            # Releaser B acted on the SAME stale read: its delete must
            # not touch the fresh record.
            assert store.unspend_if(token, b"stale-owner") is False
            record = store.record_for(token)
            assert record is not None and record.transcript == b"fresh"


class TestShardedRevocationList:
    def test_revocation_routing_and_subset(self):
        with ShardSet.in_memory(4) as shards:
            lrl = ShardedRevocationList(shards)
            ids = _tokens(20, prefix=b"lic")
            for at, license_id in enumerate(ids):
                lrl.revoke(license_id, at=at, reason="test")
            assert lrl.count() == 20
            assert all(lrl.is_revoked(license_id) for license_id in ids)
            other = _tokens(5, prefix=b"unrevoked")
            subset = lrl.revoked_subset(ids[:7] + other)
            assert subset == set(ids[:7])

    def test_version_is_monotone_and_idempotent(self):
        with ShardSet.in_memory(3) as shards:
            lrl = ShardedRevocationList(shards)
            ids = _tokens(10, prefix=b"v")
            observed = []
            for license_id in ids:
                lrl.revoke(license_id, at=1, reason="r")
                observed.append(lrl.current_version())
            # The global version is the total count: +1 per revocation.
            assert observed == list(range(1, 11))
            # Re-revocation bumps nothing.
            lrl.revoke(ids[0], at=2, reason="r")
            assert lrl.current_version() == 10

    def test_cursor_delta_and_signed_snapshot(self):
        key = generate_rsa_key(512, rng=DeterministicRandomSource(b"lrl-shard"))
        with ShardSet.in_memory(4) as shards:
            lrl = ShardedRevocationList(shards)
            ids = _tokens(12, prefix=b"snap")
            for position, license_id in enumerate(ids):
                lrl.revoke(license_id, at=position * 200_000, reason="r")
            entries, snapshot, cursor = lrl.sync_since(0, key)
            assert {entry.license_id for entry in entries} == set(ids)
            # Merged delta order is deterministic: (revoked_at, id).
            assert [entry.license_id for entry in entries] == [
                entry.license_id
                for entry in sorted(
                    entries, key=lambda e: (e.revoked_at, e.license_id)
                )
            ]
            # Per-shard versions total the global count.
            assert len(cursor) == 4 and sum(cursor) == 12
            snapshot.verify(key.public_key)
            assert snapshot.count == 12
            assert snapshot.merkle_root == lrl.merkle_tree().root
            # Non-inclusion proofs work against the merged tree.
            outsider = b"not-revoked-....."[:16]
            proof = lrl.merkle_tree().prove_non_inclusion(outsider)
            assert verify_non_inclusion(
                snapshot.merkle_root, snapshot.count, outsider, proof
            )
            # Deltas are exact: re-syncing from the cursor is empty...
            delta, cursor2 = lrl.delta_since(cursor)
            assert delta == [] and cursor2 == cursor
            # ...and after three more revocations, exactly those three
            # — no watermark redelivery.
            more = _tokens(3, prefix=b"more")
            for license_id in more:
                lrl.revoke(license_id, at=5_000_000, reason="r")
            delta, cursor3 = lrl.delta_since(cursor)
            assert {entry.license_id for entry in delta} == set(more)
            assert len(delta) == 3
            assert sum(cursor3) == 15
            # A legacy int watermark cannot be mapped onto per-shard
            # versions: it degrades to a full resync.
            assert len(lrl.entries_since(8)) == 15

    def test_cursor_sync_survives_straggler_reordering(self):
        """A newcomer that sorts *before* already-synced positions
        (same timestamp, smaller id, different shard) must still reach
        a device that syncs deltas — per-shard version cursors make the
        delta exact, so merge order never decides delivery."""
        from repro.storage.revocation import DeviceRevocationView

        key = generate_rsa_key(512, rng=DeterministicRandomSource(b"straggler"))
        with ShardSet.in_memory(4) as shards:
            lrl = ShardedRevocationList(shards)
            lrl.revoke(b"\xffzzzz-late-sorting", at=100, reason="r")
            device = DeviceRevocationView(key.public_key)
            entries, snapshot, cursor = lrl.sync_since(device.cursor, key)
            device.apply_sync(entries, snapshot, cursor)
            assert device.version == 1
            # Same timestamp, lexicographically smaller id: would merge
            # *before* what the device already synced in the old
            # timestamp-ordered scheme.
            lrl.revoke(b"\x00aaaa-early-sorting", at=100, reason="r")
            entries, snapshot, cursor = lrl.sync_since(device.cursor, key)
            # Exactly the newcomer — nothing redelivered.
            assert [entry.license_id for entry in entries] == [
                b"\x00aaaa-early-sorting"
            ]
            device.apply_sync(entries, snapshot, cursor)
            assert device.check(b"\x00aaaa-early-sorting")
            assert device.check(b"\xffzzzz-late-sorting")

    def test_cursor_sync_survives_full_freshness_skew(self):
        """Worst-case stamp skew: the synced watermark is stamped a
        freshness window in the FUTURE, the newcomer a window in the
        PAST (both legal request stamps).  Version cursors do not
        consult timestamps at all, so the newcomer arrives exactly
        once."""
        from repro.core.actors.provider import REQUEST_FRESHNESS_WINDOW
        from repro.storage.revocation import DeviceRevocationView

        key = generate_rsa_key(512, rng=DeterministicRandomSource(b"skew"))
        now = 10 * REQUEST_FRESHNESS_WINDOW
        with ShardSet.in_memory(4) as shards:
            lrl = ShardedRevocationList(shards)
            lrl.revoke(b"\xff-future-stamped", at=now + REQUEST_FRESHNESS_WINDOW,
                       reason="r")
            device = DeviceRevocationView(key.public_key)
            entries, snapshot, cursor = lrl.sync_since(device.cursor, key)
            device.apply_sync(entries, snapshot, cursor)
            lrl.revoke(b"\x00-past-stamped", at=now - REQUEST_FRESHNESS_WINDOW + 10,
                       reason="r")
            entries, snapshot, cursor = lrl.sync_since(device.cursor, key)
            assert len(entries) == 1
            device.apply_sync(entries, snapshot, cursor)
            assert device.check(b"\x00-past-stamped")
            assert device.check(b"\xff-future-stamped")

    def test_bloom_filter_covers_merged_ids(self):
        with ShardSet.in_memory(2) as shards:
            lrl = ShardedRevocationList(shards)
            ids = _tokens(30, prefix=b"bloom")
            for license_id in ids:
                lrl.revoke(license_id, at=1, reason="r")
            bloom = lrl.bloom_filter()
            assert all(license_id in bloom for license_id in ids)


class TestShardedLicenseStore:
    def _insert(self, store, license_id, holder=b"holder-1", kind=None):
        store.insert(
            license_id,
            kind=kind or license_store.KIND_PERSONAL,
            content_id="song-1",
            holder=holder,
            rights_text="play",
            issued_at=7,
            blob=b"blob",
        )

    def test_insert_get_status_across_shards(self):
        with ShardSet.in_memory(4) as shards:
            store = ShardedLicenseStore(shards)
            ids = _tokens(15, prefix=b"reg")
            for license_id in ids:
                self._insert(store, license_id)
            assert store.count() == 15
            record = store.get(ids[3])
            assert record.content_id == "song-1"
            store.set_status(ids[3], license_store.STATUS_REVOKED)
            assert store.get(ids[3]).status == license_store.STATUS_REVOKED
            assert store.count(status=license_store.STATUS_ACTIVE) == 14

    def test_holder_views_merge(self):
        with ShardSet.in_memory(3) as shards:
            store = ShardedLicenseStore(shards)
            for index, license_id in enumerate(_tokens(12, prefix=b"hold")):
                self._insert(store, license_id, holder=b"h-%d" % (index % 3))
            assert store.distinct_holders() == 3
            assert len(store.by_holder(b"h-0")) == 4
            assert len(store.by_content("song-1")) == 12


class TestShardedAuditLog:
    def test_preferred_shard_chains_and_merged_reads(self):
        with ShardSet.in_memory(3) as shards:
            worker_logs = [
                ShardedAuditLog(shards, preferred_shard=i) for i in range(3)
            ]
            at = 0
            for round_ in range(4):
                for index, log in enumerate(worker_logs):
                    log.append(
                        at=at,
                        actor=f"worker-{index}",
                        event="license_issued",
                        payload={"round": round_},
                    )
                    at += 1
            view = ShardedAuditLog(shards)
            assert view.count() == 12
            assert view.verify_chain() == 12
            entries = view.entries()
            assert [entry.at for entry in entries] == list(range(12))
            assert len(view.entries(event="license_issued")) == 12
