"""Wire-format round trips: every request/response survives the codec
byte-for-byte, including the exceptions the desks raise."""

import pytest

from repro import codec
from repro.core.messages import Coin, DepositRequest, MisuseEvidence
from repro.core.protocols.acquisition import build_purchase_request
from repro.core.protocols.transfer import (
    build_exchange_request,
    build_redeem_request,
    exchange_for_anonymous,
)
from repro.errors import (
    AuthenticationError,
    CodecError,
    DoubleRedemptionError,
    DoubleSpendError,
    PaymentError,
    ReproError,
    RightsDenied,
)
from repro.service import wire


@pytest.fixture(scope="module")
def messages(deployment):
    """One real instance of every request/response message."""
    d = deployment
    alice = d.add_user("wire-alice", balance=1_000)
    bob = d.add_user("wire-bob", balance=1_000)
    purchase = build_purchase_request(alice, d.provider, d.issuer, d.bank, "song-1")
    license_ = d.provider.sell(purchase)
    alice.add_license(license_)

    exchange = build_exchange_request(alice, license_, restrict_to=("play",))
    anonymous = d.provider.exchange(exchange)
    redeem = build_redeem_request(bob, d.provider, d.issuer, anonymous)
    deposit = DepositRequest(
        account="wire-merchant",
        coins=tuple(alice.coins_for(3, d.bank)),
    )
    return {
        "purchase": purchase,
        "exchange": exchange,
        "redeem": redeem,
        "deposit": deposit,
        "license": d.provider.redeem(redeem),
        "anonymous": exchange_for_anonymous(
            alice, d.provider, _second_license(alice, d)
        ),
    }


def _second_license(alice, d):
    request = build_purchase_request(alice, d.provider, d.issuer, d.bank, "song-1")
    license_ = d.provider.sell(request)
    alice.add_license(license_)
    return license_.license_id


class TestRequestRoundTrips:
    @pytest.mark.parametrize("kind", ["purchase", "exchange", "redeem", "deposit"])
    def test_encode_decode_byte_identical(self, messages, kind):
        request = messages[kind]
        encoded = wire.encode_request(request)
        decoded = wire.decode_request(encoded)
        assert decoded == request
        assert wire.encode_request(decoded) == encoded

    def test_request_kind_routing(self, messages):
        assert wire.request_kind(messages["purchase"]) == wire.KIND_SELL
        assert wire.request_kind(messages["redeem"]) == wire.KIND_REDEEM
        assert wire.request_kind(messages["exchange"]) == wire.KIND_EXCHANGE
        assert wire.request_kind(messages["deposit"]) == wire.KIND_DEPOSIT

    def test_unknown_object_rejected(self):
        with pytest.raises(CodecError):
            wire.encode_request(object())

    def test_peek_routing_token_matches_typed_request(self, messages):
        """The routing peek must yield byte-equal tokens to the ones
        the typed requests carry — shard affinity through the network
        gateway and through the in-process gateway is one formula."""
        expected = {
            "purchase": messages["purchase"].certificate.fingerprint,
            "exchange": messages["exchange"].license_id,
            "redeem": messages["redeem"].anonymous_license.license_id,
            "deposit": messages["deposit"].coins[0].spent_token(),
        }
        for kind, token in expected.items():
            encoded = wire.encode_request(messages[kind])
            assert wire.peek_routing_token(encoded) == token, kind

    def test_peek_rejects_malformed_shapes(self, messages):
        with pytest.raises(CodecError):
            wire.peek_routing_token(codec.encode({"what": "nope"}))
        with pytest.raises(CodecError):
            wire.peek_routing_token(
                codec.encode(
                    {"what": "service-request", "kind": "sell", "body": {}}
                )
            )

    def test_malformed_bodies_decode_to_codec_error(self):
        hollow = codec.encode(
            {"what": "service-request", "kind": "redeem", "body": {"nonce": b"x"}}
        )
        with pytest.raises(CodecError):
            wire.decode_request(hollow)
        with pytest.raises(CodecError):
            wire.decode_response(
                codec.encode({"what": "service-response", "kind": "deposit-receipt"})
            )
        # A mistyped error body decodes to CodecError, not KeyError.
        with pytest.raises(CodecError):
            wire.decode_error({"type": "DoubleSpendError"})

    def test_garbage_envelope_rejected(self, messages):
        with pytest.raises(CodecError):
            wire.decode_request(codec.encode({"what": "something-else"}))
        # A *response* envelope is not a request envelope.
        with pytest.raises(CodecError):
            wire.decode_request(wire.encode_response(messages["license"]))


class TestResponseRoundTrips:
    def test_personal_license(self, messages):
        license_ = messages["license"]
        encoded = wire.encode_response(license_)
        decoded = wire.decode_response(encoded)
        assert decoded == license_
        assert wire.encode_response(decoded) == encoded

    def test_anonymous_license(self, deployment, messages):
        anonymous = messages["anonymous"]
        decoded = wire.decode_response(wire.encode_response(anonymous))
        assert decoded == anonymous
        decoded.verify(deployment.provider.license_key)

    def test_deposit_receipt(self):
        receipt = {"account": "merchant", "credited": 42}
        assert wire.decode_response(wire.encode_response(receipt)) == receipt

    def test_plain_errors(self):
        for error in (
            AuthenticationError("bad signature"),
            PaymentError("short payment"),
            RightsDenied("print", "not granted"),
        ):
            decoded = wire.decode_response(wire.encode_response(error))
            assert type(decoded) is type(error)
            assert str(decoded) == str(error)

    def test_double_spend_keeps_coin_id(self):
        decoded = wire.decode_response(
            wire.encode_response(DoubleSpendError(b"\xaa" * 16))
        )
        assert isinstance(decoded, DoubleSpendError)
        assert decoded.coin_id == b"\xaa" * 16

    def test_double_redemption_keeps_evidence(self):
        evidence = MisuseEvidence(
            kind="double-redemption",
            token_id=b"\x01" * 16,
            content_id="song-1",
            first_transcript=b"first",
            second_transcript=b"second",
        )
        error = DoubleRedemptionError(b"\x01" * 16)
        error.evidence = evidence
        decoded = wire.decode_response(wire.encode_response(error))
        assert isinstance(decoded, DoubleRedemptionError)
        assert decoded.token_id == b"\x01" * 16
        assert decoded.evidence == evidence

    def test_unknown_error_type_degrades_to_base(self):
        blob = codec.encode(
            {
                "what": "service-response",
                "kind": "error",
                "body": {"type": "FutureError", "message": "from v9"},
            }
        )
        decoded = wire.decode_response(blob)
        assert isinstance(decoded, ReproError)
        assert "FutureError" in str(decoded)

    def test_coin_round_trip_inside_deposit(self, messages):
        deposit = messages["deposit"]
        decoded = wire.decode_request(wire.encode_request(deposit))
        assert all(isinstance(coin, Coin) for coin in decoded.coins)
        assert decoded.coins == deposit.coins
