"""The metrics layer in isolation: bucket math, quantile estimates,
exposition text, codec snapshots.

The round-trip test carries its own minimal Prometheus text parser —
enough of format 0.0.4 (``# TYPE`` headers, label escaping, histogram
``_bucket``/``_sum``/``_count`` series) to prove the renderer emits
what a scraper would actually ingest, without depending on a
prometheus client library the container does not have.
"""

import re

import pytest

from repro import codec
from repro.errors import ParameterError
from repro.service.metrics import (
    SERVICE_METRIC_SPECS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_service_registry,
    ensure_service_metrics,
)


# -- a minimal exposition parser ---------------------------------------------

_LABEL_ITEM = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return re.sub(
        r"\\(.)", lambda m: {"n": "\n"}.get(m.group(1), m.group(1)), value
    )


def parse_exposition(text: str):
    """``(types, samples)``: metric kinds by name, and sample values
    keyed by ``(name, sorted label items)``."""
    types: dict[str, str] = {}
    samples: dict[tuple, float] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labels_part, value = rest.rsplit("} ", 1)
            labels = tuple(
                sorted(
                    (key, _unescape(raw))
                    for key, raw in _LABEL_ITEM.findall(labels_part)
                )
            )
        else:
            name, value = line.rsplit(" ", 1)
            labels = ()
        key = (name, labels)
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = float(value)
    return types, samples


# -- counters and gauges -----------------------------------------------------


def test_counter_counts_and_refuses_decrements():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help", ("op",))
    counter.inc(op="sell")
    counter.inc(2, op="sell")
    counter.inc(op="redeem")
    assert counter.value(op="sell") == 3
    assert counter.value(op="redeem") == 1
    assert counter.value(op="never") == 0
    with pytest.raises(ParameterError):
        counter.inc(-1, op="sell")
    with pytest.raises(ParameterError):
        counter.inc(op="sell", bogus="label")


def test_gauge_moves_both_ways_and_forgets_label_sets():
    registry = MetricsRegistry()
    gauge = registry.gauge("g", "help", ("conn",))
    gauge.set(5, conn="c1")
    gauge.inc(conn="c1")
    gauge.dec(2, conn="c1")
    assert gauge.value(conn="c1") == 4
    gauge.remove(conn="c1")
    assert ("g", (("conn", "c1"),)) not in dict(
        parse_exposition(registry.render_text())[1]
    )


# -- histogram math ----------------------------------------------------------


def test_histogram_bucket_bounds_are_inclusive():
    registry = MetricsRegistry()
    hist = registry.histogram("h", "help", buckets=(0.01, 0.1, 1.0))
    hist.observe(0.01)  # exactly on a bound: le semantics, this bucket
    hist.observe(0.011)  # just past: next bucket
    _, samples = parse_exposition(registry.render_text())
    assert samples[("h_bucket", (("le", "0.01"),))] == 1
    assert samples[("h_bucket", (("le", "0.1"),))] == 2  # cumulative
    assert samples[("h_bucket", (("le", "1"),))] == 2
    assert samples[("h_bucket", (("le", "+Inf"),))] == 2
    assert samples[("h_count", ())] == 2
    assert samples[("h_sum", ())] == pytest.approx(0.021)


def test_histogram_quantile_interpolates_within_owning_bucket():
    registry = MetricsRegistry()
    hist = registry.histogram("h", "help", buckets=(1.0, 2.0, 4.0))
    for _ in range(10):
        hist.observe(0.5)  # bucket [0, 1]
    for _ in range(10):
        hist.observe(1.5)  # bucket (1, 2]
    # rank 10 of 20 lands exactly at the top of the first bucket.
    assert hist.quantile(0.5) == pytest.approx(1.0)
    # rank 15: halfway through the (1, 2] bucket's 10 observations.
    assert hist.quantile(0.75) == pytest.approx(1.5)
    # rank 19.98 of 20: 0.998 of the way through the second bucket.
    assert hist.quantile(0.999) == pytest.approx(1.998)


def test_histogram_quantile_edges():
    registry = MetricsRegistry()
    hist = registry.histogram("h", "help", buckets=(1.0, 2.0))
    assert hist.quantile(0.5) is None  # no observations yet
    hist.observe(50.0)  # +Inf bucket
    # The estimate cannot see past the last finite bound: clamp.
    assert hist.quantile(0.5) == pytest.approx(2.0)
    with pytest.raises(ParameterError):
        hist.quantile(0.0)
    with pytest.raises(ParameterError):
        hist.quantile(1.0)
    with pytest.raises(ParameterError):
        registry.histogram("h2", "help", buckets=(2.0, 1.0))


# -- the registry ------------------------------------------------------------


def test_registry_is_idempotent_but_loud_on_disagreement():
    registry = MetricsRegistry()
    first = registry.counter("x_total", "help", ("op",))
    assert registry.counter("x_total", "help", ("op",)) is first
    with pytest.raises(ParameterError):
        registry.gauge("x_total", "help", ("op",))  # kind mismatch
    with pytest.raises(ParameterError):
        registry.counter("x_total", "help", ("other",))  # label mismatch
    with pytest.raises(ParameterError):
        registry.get("nonexistent")
    with pytest.raises(ParameterError):
        registry.counter("bad name!", "help")


def test_service_registry_covers_every_spec_twice_over():
    registry = build_service_registry()
    assert sorted(registry.names()) == sorted(
        spec.name for spec in SERVICE_METRIC_SPECS
    )
    # A second ensure pass is a no-op, not a conflict.
    ensure_service_metrics(registry)
    assert len(registry.names()) == len(SERVICE_METRIC_SPECS)
    kinds = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}
    for spec in SERVICE_METRIC_SPECS:
        metric = registry.get(spec.name)
        assert kinds[type(metric)] == spec.kind
        assert metric.label_names == spec.labels


def test_exposition_round_trips_through_a_parser():
    registry = build_service_registry()
    registry.get("p2drm_requests_total").inc(op="sell", outcome="ok")
    registry.get("p2drm_requests_total").inc(3, op="redeem", outcome="shed")
    registry.get("p2drm_queue_depth").set(7, worker="0")
    registry.get("p2drm_request_latency_seconds").observe(0.03, op="sell")
    types, samples = parse_exposition(registry.render_text())
    # Every declared metric carries a TYPE header even before samples.
    for spec in SERVICE_METRIC_SPECS:
        assert types[spec.name] == spec.kind
    assert samples[
        ("p2drm_requests_total", (("op", "sell"), ("outcome", "ok")))
    ] == 1
    assert samples[
        ("p2drm_requests_total", (("op", "redeem"), ("outcome", "shed")))
    ] == 3
    assert samples[("p2drm_queue_depth", (("worker", "0"),))] == 7
    # Histogram series: +Inf cumulative equals the count.
    inf = samples[
        ("p2drm_request_latency_seconds_bucket", (("le", "+Inf"), ("op", "sell")))
    ]
    assert inf == samples[
        ("p2drm_request_latency_seconds_count", (("op", "sell"),))
    ] == 1
    assert samples[
        ("p2drm_request_latency_seconds_sum", (("op", "sell"),))
    ] == pytest.approx(0.03)


def test_exposition_escapes_hostile_label_values():
    registry = MetricsRegistry()
    gauge = registry.gauge("g", "help", ("who",))
    hostile = 'a"b\\c\nd'
    gauge.set(1, who=hostile)
    _, samples = parse_exposition(registry.render_text())
    assert samples[("g", (("who", hostile),))] == 1


def test_snapshot_survives_the_canonical_codec():
    registry = build_service_registry()
    registry.get("p2drm_requests_total").inc(op="sell", outcome="ok")
    registry.get("p2drm_request_latency_seconds").observe(0.2, op="sell")
    snapshot = registry.snapshot()
    assert codec.decode(codec.encode(snapshot)) == snapshot
    hist = snapshot["p2drm_request_latency_seconds"]["samples"][0]
    assert hist["count"] == "1"
    assert hist["buckets"][-1] == ["+Inf", "1"]
    # Values are strings throughout (the codec has no float type).
    sell = snapshot["p2drm_requests_total"]["samples"][0]
    assert sell["value"] == "1"
