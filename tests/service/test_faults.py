"""The fault-injection layer: deterministic schedules, the faulting
TCP proxy (clean pass-through byte-identity, and each fault action
producing a *typed* client-side failure), and the queue-path
:class:`ChaosTransport` semantics.
"""

import threading

import pytest

from repro.core.protocols.payment import withdraw_coins
from repro.core.system import build_deployment
from repro.errors import ServiceError
from repro.service.faults import (
    ChaosListener,
    ChaosTransport,
    FaultPlan,
    FaultSpec,
)
from repro.service.gateway import build_gateway
from repro.service.netserver import NetClient, NetServer
from repro.service.transport import Transport, encode_frame


# -- spec and schedule -------------------------------------------------------


def test_spec_rejects_rates_over_one():
    with pytest.raises(ServiceError):
        FaultSpec(reset_rate=0.6, truncate_rate=0.6)
    with pytest.raises(ServiceError):
        FaultSpec(drop_rate=-0.1)
    with pytest.raises(ServiceError):
        FaultSpec(delay_rate=1.5)


def test_schedule_is_deterministic_per_seed_and_direction():
    spec = FaultSpec(
        reset_rate=0.2, truncate_rate=0.2, drop_rate=0.2, duplicate_rate=0.2
    )
    plan = FaultPlan(spec, seed=42)
    draws = lambda serial, direction: [  # noqa: E731
        plan.schedule(serial, direction).next_action() for _ in range(64)
    ]
    assert draws(0, "c2s") == draws(0, "c2s")
    assert draws(0, "c2s") != draws(0, "s2c")
    assert draws(0, "c2s") != draws(1, "c2s")
    assert set(draws(0, "c2s")) <= {
        "reset", "truncate", "drop", "duplicate", "deliver"
    }


def test_zero_rates_always_deliver():
    schedule = FaultPlan(FaultSpec(), seed=1).schedule(0, "c2s")
    assert all(schedule.next_action() == "deliver" for _ in range(100))
    assert schedule.next_delay() == 0.0


def test_truncate_point_is_strictly_inside_the_frame():
    schedule = FaultPlan(FaultSpec(truncate_rate=1.0), seed=3).schedule(0, "c2s")
    frame = encode_frame(1, 7, b"x" * 100)
    for _ in range(50):
        point = schedule.truncate_point(frame)
        assert 0 <= point < len(frame)


# -- the TCP proxy -----------------------------------------------------------


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    d = build_deployment(seed="faults-test", rsa_bits=512)
    d.provider.publish("song-1", b"SONG-ONE" * 32, title="Song One", price=3)
    directory = tmp_path_factory.mktemp("faults-shards")
    gateway = build_gateway(d, str(directory), workers=2, shards=2)
    server = NetServer(gateway)
    address = server.start()
    yield d, gateway, address
    server.close()
    gateway.close()


def test_clean_proxy_is_byte_transparent(stack):
    """At zero fault rates the proxy re-frames every byte faithfully:
    the full client surface behaves exactly as if dialed directly."""
    d, gateway, address = stack
    with ChaosListener(address, FaultPlan(FaultSpec(), seed=0)) as proxy:
        direct = NetClient(address)
        proxied = NetClient(proxy.address)
        try:
            assert proxied.catalog() == direct.catalog()
            assert proxied.balance(gateway.bank_account) == direct.balance(
                gateway.bank_account
            )
            user = d.add_user("proxy-clean-user", balance=1_000)
            coins = withdraw_coins(user, d.bank, 26)
            receipt = proxied.deposit(gateway.bank_account, coins)
            assert receipt["credited"] == 26
        finally:
            direct.close()
            proxied.close()
        assert proxy.connections_accepted == 1


def test_reset_surfaces_as_typed_error(stack):
    _d, gateway, address = stack
    plan = FaultPlan(FaultSpec(reset_rate=1.0), seed=0)
    with ChaosListener(address, plan) as proxy:
        client = NetClient(proxy.address, timeout=5.0)
        try:
            with pytest.raises(ServiceError):
                client.balance(gateway.bank_account)
            # The base client stays honestly poisoned: instant typed
            # failure, no hang, until someone reconnects.
            with pytest.raises(ServiceError):
                client.balance(gateway.bank_account)
        finally:
            client.close()


def test_truncate_surfaces_as_typed_error(stack):
    _d, gateway, address = stack
    plan = FaultPlan(FaultSpec(truncate_rate=1.0), seed=1)
    with ChaosListener(address, plan) as proxy:
        client = NetClient(proxy.address, timeout=5.0)
        try:
            with pytest.raises(ServiceError):
                client.balance(gateway.bank_account)
        finally:
            client.close()


def test_duplicate_frames_are_absorbed(stack):
    """Duplicated *request* frames hit the replay cache (same nonce
    envelope bytes); duplicated response frames are de-correlated by
    ticket.  Either way the caller sees exactly one answer."""
    _d, gateway, address = stack
    plan = FaultPlan(FaultSpec(duplicate_rate=1.0), seed=2)
    with ChaosListener(address, plan) as proxy:
        client = NetClient(proxy.address, timeout=5.0)
        try:
            before = client.balance(gateway.bank_account)
            assert client.balance(gateway.bank_account) == before
        finally:
            client.close()


# -- the queue-path chaos wrapper --------------------------------------------


class _FakeTransport(Transport):
    """Records every submit; answers ``ok:<ticket>`` on gather."""

    def __init__(self):
        self.submits = []
        self.gathered = []
        self.closed = False
        self._next = 0

    def submit(self, request, *, worker=None, nonce=None):
        ticket = self._next
        self._next += 1
        self.submits.append((ticket, request, worker, nonce))
        return ticket

    def gather(self, tickets):
        self.gathered.append(list(tickets))
        return [f"ok:{ticket}" for ticket in tickets]

    def close(self):
        self.closed = True


def test_chaos_transport_lost_request_never_reaches_inner():
    inner = _FakeTransport()
    chaos = ChaosTransport(
        inner, FaultPlan(FaultSpec(), seed=0), lost_request_rate=1.0
    )
    with pytest.raises(ServiceError, match="request lost"):
        chaos.submit("req")
    assert inner.submits == []


def test_chaos_transport_lost_response_side_effect_stands():
    inner = _FakeTransport()
    chaos = ChaosTransport(
        inner, FaultPlan(FaultSpec(), seed=0), lost_response_rate=1.0
    )
    with pytest.raises(ServiceError, match="response lost"):
        chaos.submit("req", nonce=b"n" * 16)
    # The inner submit happened — the side effect stands, exactly the
    # ambiguity the idempotency nonce exists to make retry-safe.
    assert [s[1] for s in inner.submits] == ["req"]
    assert inner.submits[0][3] == b"n" * 16
    # The orphaned ticket is drained (and discarded) by the next gather.
    assert chaos.gather([]) == []
    assert inner.gathered[-1] == [0]


def test_chaos_transport_duplicate_submits_twice():
    inner = _FakeTransport()
    chaos = ChaosTransport(
        inner, FaultPlan(FaultSpec(), seed=0), duplicate_rate=1.0
    )
    ticket = chaos.submit("req", worker=1)
    assert [s[1] for s in inner.submits] == ["req", "req"]
    assert chaos.gather([ticket]) == [f"ok:{ticket}"]
    chaos.close()
    assert inner.closed


def test_chaos_transport_is_deterministic():
    def run():
        inner = _FakeTransport()
        chaos = ChaosTransport(
            inner,
            FaultPlan(FaultSpec(), seed=9),
            lost_request_rate=0.3,
            lost_response_rate=0.3,
            duplicate_rate=0.3,
        )
        outcomes = []
        for i in range(40):
            try:
                chaos.submit(f"r{i}")
                outcomes.append("ok")
            except ServiceError as exc:
                outcomes.append(str(exc))
        return outcomes

    assert run() == run()


def test_proxy_close_tears_down_live_connections(stack):
    _d, _gateway, address = stack
    proxy = ChaosListener(address, FaultPlan(FaultSpec(), seed=0))
    client = NetClient(proxy.address, timeout=5.0)
    try:
        proxy.close()
        failed = threading.Event()

        def poke():
            try:
                client.catalog()
            except ServiceError:
                failed.set()

        thread = threading.Thread(target=poke, daemon=True)
        thread.start()
        thread.join(timeout=10)
        assert failed.is_set()
    finally:
        client.close()
