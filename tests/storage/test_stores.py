"""Licence register, accounts, contents, audit log, usage store."""

import pytest

from repro.errors import StorageError, StoreIntegrityError, UnknownContentError
from repro.storage.accounts import AccountStore
from repro.storage.audit import AuditLog
from repro.storage.contents import ContentStore
from repro.storage.engine import Database
from repro.storage.licenses import (
    KIND_ANONYMOUS,
    KIND_PERSONAL,
    STATUS_EXCHANGED,
    LicenseStore,
)
from repro.storage.usage import UsageStore


@pytest.fixture()
def db():
    return Database()


class TestLicenseStore:
    def insert_one(self, store, license_id=b"L" * 16, holder=b"H1"):
        store.insert(
            license_id,
            kind=KIND_PERSONAL,
            content_id="song",
            holder=holder,
            rights_text="play",
            issued_at=10,
            blob=b"blob",
        )

    def test_insert_get(self, db):
        store = LicenseStore(db)
        self.insert_one(store)
        record = store.get(b"L" * 16)
        assert record.kind == KIND_PERSONAL
        assert record.status == "active"
        assert record.holder == b"H1"

    def test_duplicate_rejected(self, db):
        store = LicenseStore(db)
        self.insert_one(store)
        with pytest.raises(StorageError):
            self.insert_one(store)

    def test_unknown_kind_rejected(self, db):
        store = LicenseStore(db)
        with pytest.raises(StorageError):
            store.insert(
                b"X" * 16,
                kind="bogus",
                content_id="c",
                holder=None,
                rights_text="play",
                issued_at=1,
                blob=b"",
            )

    def test_status_transition(self, db):
        store = LicenseStore(db)
        self.insert_one(store)
        store.set_status(b"L" * 16, STATUS_EXCHANGED)
        assert store.get(b"L" * 16).status == STATUS_EXCHANGED
        with pytest.raises(StorageError):
            store.set_status(b"L" * 16, "bogus")
        with pytest.raises(StorageError):
            store.set_status(b"M" * 16, STATUS_EXCHANGED)

    def test_queries(self, db):
        store = LicenseStore(db)
        self.insert_one(store, b"A" * 16, holder=b"H1")
        self.insert_one(store, b"B" * 16, holder=b"H1")
        store.insert(
            b"C" * 16,
            kind=KIND_ANONYMOUS,
            content_id="song",
            holder=None,
            rights_text="play",
            issued_at=20,
            blob=b"",
        )
        assert len(store.by_holder(b"H1")) == 2
        assert len(store.by_content("song")) == 3
        assert store.count(kind=KIND_PERSONAL) == 2
        assert store.count(kind=KIND_ANONYMOUS) == 1
        assert store.distinct_holders() == 1
        assert len(store.issued_between(0, 15)) == 2


class TestAccountStore:
    def test_enrol_and_lookups(self, db):
        store = AccountStore(db)
        store.enrol("alice", card_id=b"c1", identity_tag=b"t1", enrolled_at=1)
        assert store.get("alice").card_id == b"c1"
        assert store.by_identity_tag(b"t1").user_id == "alice"
        assert store.by_card(b"c1").user_id == "alice"
        assert store.by_identity_tag(b"none") is None
        assert store.count() == 1

    def test_duplicate_enrolment_rejected(self, db):
        store = AccountStore(db)
        store.enrol("alice", card_id=b"c1", identity_tag=b"t1", enrolled_at=1)
        with pytest.raises(StorageError):
            store.enrol("alice", card_id=b"c2", identity_tag=b"t2", enrolled_at=2)

    def test_blocking(self, db):
        store = AccountStore(db)
        store.enrol("alice", card_id=b"c1", identity_tag=b"t1", enrolled_at=1)
        store.set_status("alice", "blocked")
        assert store.get("alice").status == "blocked"
        with pytest.raises(StorageError):
            store.set_status("alice", "vip")
        with pytest.raises(StorageError):
            store.set_status("ghost", "blocked")


class TestContentStore:
    def test_add_and_read(self, db):
        store = ContentStore(db)
        store.add(
            "c1", title="T", price_cents=5, added_at=1, package=b"PKG",
            content_key=b"K" * 16,
        )
        assert store.exists("c1")
        assert store.entry("c1").package_size == 3
        assert store.package("c1") == b"PKG"
        assert store.content_key("c1") == b"K" * 16
        assert store.price("c1") == 5
        assert store.count() == 1
        assert [e.content_id for e in store.catalog()] == ["c1"]

    def test_unknown_content(self, db):
        store = ContentStore(db)
        with pytest.raises(UnknownContentError):
            store.package("missing")
        with pytest.raises(UnknownContentError):
            store.content_key("missing")
        with pytest.raises(UnknownContentError):
            store.entry("missing")

    def test_duplicate_rejected(self, db):
        store = ContentStore(db)
        store.add("c1", title="T", price_cents=1, added_at=1, package=b"P", content_key=b"K")
        with pytest.raises(StorageError):
            store.add("c1", title="T2", price_cents=2, added_at=2, package=b"P", content_key=b"K")

    def test_negative_price_rejected(self, db):
        with pytest.raises(StorageError):
            ContentStore(db).add(
                "c1", title="T", price_cents=-1, added_at=1, package=b"P", content_key=b"K"
            )


class TestAuditLog:
    def test_append_and_read(self, db):
        log = AuditLog(db)
        log.append(at=1, actor="cp", event="e1", payload={"x": 1})
        log.append(at=2, actor="cp", event="e2", payload={"y": b"b"})
        assert log.count() == 2
        assert [e.event for e in log.entries()] == ["e1", "e2"]
        assert [e.event for e in log.entries(event="e2")] == ["e2"]
        assert log.entries()[1].payload == {"y": b"b"}

    def test_chain_verifies(self, db):
        log = AuditLog(db)
        for i in range(10):
            log.append(at=i, actor="a", event="e", payload={"i": i})
        assert log.verify_chain() == 10

    def test_tampered_payload_detected(self, db):
        log = AuditLog(db)
        log.append(at=1, actor="a", event="e", payload={"i": 1})
        log.append(at=2, actor="a", event="e", payload={"i": 2})
        db.execute("UPDATE audit_log SET at = 99 WHERE seq = 1")
        with pytest.raises(StoreIntegrityError):
            log.verify_chain()

    def test_deleted_entry_detected(self, db):
        log = AuditLog(db)
        for i in range(3):
            log.append(at=i, actor="a", event="e", payload={"i": i})
        db.execute("DELETE FROM audit_log WHERE seq = 2")
        with pytest.raises(StoreIntegrityError):
            log.verify_chain()

    def test_empty_chain_ok(self, db):
        assert AuditLog(db).verify_chain() == 0


class TestUsageStore:
    def test_record_and_load(self, db):
        store = UsageStore(db)
        assert store.record_use(b"L", "play") == 1
        assert store.record_use(b"L", "play") == 2
        assert store.record_use(b"L", "copy") == 1
        assert store.uses(b"L", "play") == 2
        state = store.load_state()
        assert state.uses(b"L", "play") == 2
        assert store.total_events() == 3

    def test_save_state_is_max_merge(self, db):
        from repro.rel.evaluator import UsageState

        store = UsageStore(db)
        store.record_use(b"L", "play")
        store.record_use(b"L", "play")
        stale = UsageState()
        stale.record(b"L", "play")          # only 1 — stale
        stale.record(b"M", "play")          # new licence
        store.save_state(stale)
        assert store.uses(b"L", "play") == 2  # not clobbered down
        assert store.uses(b"M", "play") == 1
