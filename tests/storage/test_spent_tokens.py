"""Spent-token store: the exactly-once invariant."""

import pytest

from repro.storage.engine import Database
from repro.storage.spent_tokens import SpentTokenStore


@pytest.fixture()
def store():
    return SpentTokenStore(Database(), "anon-license")


class TestExactlyOnce:
    def test_first_spend_succeeds(self, store):
        assert store.try_spend(b"tok", at=100, transcript=b"first") is None
        assert store.is_spent(b"tok")

    def test_second_spend_returns_original(self, store):
        store.try_spend(b"tok", at=100, transcript=b"first")
        record = store.try_spend(b"tok", at=200, transcript=b"second")
        assert record is not None
        assert record.spent_at == 100
        assert record.transcript == b"first"

    def test_second_spend_does_not_overwrite(self, store):
        store.try_spend(b"tok", at=100, transcript=b"first")
        store.try_spend(b"tok", at=200, transcript=b"second")
        assert store.record_for(b"tok").transcript == b"first"

    def test_unspent_token(self, store):
        assert not store.is_spent(b"other")
        assert store.record_for(b"other") is None

    def test_count(self, store):
        for i in range(5):
            store.try_spend(f"t{i}".encode(), at=i)
        assert store.count() == 5
        store.try_spend(b"t0", at=99)
        assert store.count() == 5


class TestKindNamespacing:
    def test_kinds_are_independent(self):
        db = Database()
        coins = SpentTokenStore(db, "coins")
        licenses = SpentTokenStore(db, "licenses")
        coins.try_spend(b"id", at=1)
        assert not licenses.is_spent(b"id")
        assert licenses.try_spend(b"id", at=2) is None
        assert coins.count() == 1 and licenses.count() == 1

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            SpentTokenStore(Database(), "")


class TestTimeWindow:
    def test_spent_between(self, store):
        for i, moment in enumerate((10, 20, 30, 40)):
            store.try_spend(f"t{i}".encode(), at=moment)
        window = store.spent_between(15, 35)
        assert [r.spent_at for r in window] == [20, 30]

    def test_window_is_half_open(self, store):
        store.try_spend(b"a", at=10)
        store.try_spend(b"b", at=20)
        assert [r.spent_at for r in store.spent_between(10, 20)] == [10]


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "spent.db")
        first = SpentTokenStore(Database(path), "k")
        first.try_spend(b"tok", at=5, transcript=b"tr")
        second = SpentTokenStore(Database(path), "k")
        assert second.is_spent(b"tok")
        assert second.record_for(b"tok").transcript == b"tr"
