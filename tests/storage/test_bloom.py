"""Bloom filter: no false negatives, bounded false positives, wire form."""

import pytest

from repro.errors import ParameterError
from repro.storage.bloom import BloomFilter


class TestMembership:
    def test_no_false_negatives(self):
        items = [f"item-{i}".encode() for i in range(500)]
        filt = BloomFilter.build(items, fp_rate=0.01)
        assert all(item in filt for item in items)

    def test_false_positive_rate_near_target(self):
        items = [f"member-{i}".encode() for i in range(2000)]
        filt = BloomFilter.build(items, fp_rate=0.01)
        probes = [f"absent-{i}".encode() for i in range(20000)]
        false_positives = sum(1 for p in probes if p in filt)
        rate = false_positives / len(probes)
        assert rate < 0.03  # target 0.01 with slack

    def test_empty_filter_rejects_everything(self):
        filt = BloomFilter(capacity=100)
        assert b"anything" not in filt
        assert filt.expected_fp_rate() == 0.0

    def test_fill_ratio_grows(self):
        filt = BloomFilter(capacity=100)
        empty_ratio = filt.fill_ratio()
        for i in range(100):
            filt.add(str(i).encode())
        assert filt.fill_ratio() > empty_ratio

    def test_expected_fp_rate_at_capacity(self):
        filt = BloomFilter(capacity=1000, fp_rate=0.01)
        for i in range(1000):
            filt.add(str(i).encode())
        assert 0.001 < filt.expected_fp_rate() < 0.05


class TestParameters:
    def test_invalid_capacity(self):
        with pytest.raises(ParameterError):
            BloomFilter(capacity=0)

    def test_invalid_fp_rate(self):
        with pytest.raises(ParameterError):
            BloomFilter(capacity=10, fp_rate=0.0)
        with pytest.raises(ParameterError):
            BloomFilter(capacity=10, fp_rate=1.0)

    def test_sizing_monotone_in_capacity(self):
        small = BloomFilter(capacity=100, fp_rate=0.01)
        large = BloomFilter(capacity=10000, fp_rate=0.01)
        assert large.num_bits > small.num_bits

    def test_sizing_monotone_in_fp_rate(self):
        loose = BloomFilter(capacity=1000, fp_rate=0.1)
        tight = BloomFilter(capacity=1000, fp_rate=0.001)
        assert tight.num_bits > loose.num_bits


class TestSerialization:
    def test_roundtrip_preserves_membership(self):
        items = [f"x{i}".encode() for i in range(100)]
        filt = BloomFilter.build(items, fp_rate=0.02)
        restored = BloomFilter.from_bytes(filt.to_bytes())
        assert all(item in restored for item in items)
        assert restored.count == filt.count
        assert restored.num_bits == filt.num_bits

    def test_truncated_blob_rejected(self):
        from repro.errors import StorageError

        filt = BloomFilter.build([b"a"], fp_rate=0.01)
        with pytest.raises(StorageError):
            BloomFilter.from_bytes(filt.to_bytes()[:10])
        with pytest.raises(StorageError):
            BloomFilter.from_bytes(filt.to_bytes()[:-1])
