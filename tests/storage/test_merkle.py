"""Merkle trees: roots, inclusion and non-inclusion proofs, forgeries."""

import pytest

from repro.errors import StoreIntegrityError
from repro.storage.merkle import (
    InclusionProof,
    MerkleTree,
    verify_inclusion,
    verify_non_inclusion,
)


def leaves(n):
    return [f"leaf-{i:04d}".encode() for i in range(n)]


class TestConstruction:
    def test_root_deterministic_and_order_independent(self):
        a = MerkleTree([b"c", b"a", b"b"])
        b = MerkleTree([b"a", b"b", b"c"])
        assert a.root == b.root

    def test_distinct_sets_distinct_roots(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_duplicate_leaves_rejected(self):
        with pytest.raises(StoreIntegrityError):
            MerkleTree([b"a", b"a"])

    def test_empty_tree_has_root(self):
        assert len(MerkleTree([]).root) == 32

    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        proof = tree.prove_inclusion(b"only")
        assert verify_inclusion(tree.root, b"only", proof)

    def test_second_preimage_domain_separation(self):
        """Leaf hashing and node hashing are domain-separated, so a
        2-leaf tree's root cannot be reproduced as a leaf."""
        tree = MerkleTree([b"a", b"b"])
        attacker_tree = MerkleTree([tree.root])
        assert attacker_tree.root != tree.root


class TestInclusion:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 9, 100])
    def test_all_leaves_provable(self, n):
        tree = MerkleTree(leaves(n))
        for leaf in leaves(n):
            proof = tree.prove_inclusion(leaf)
            assert verify_inclusion(tree.root, leaf, proof)

    def test_wrong_value_fails(self):
        tree = MerkleTree(leaves(10))
        proof = tree.prove_inclusion(b"leaf-0003")
        assert not verify_inclusion(tree.root, b"leaf-0004", proof)

    def test_wrong_root_fails(self):
        tree = MerkleTree(leaves(10))
        other = MerkleTree(leaves(11))
        proof = tree.prove_inclusion(b"leaf-0003")
        assert not verify_inclusion(other.root, b"leaf-0003", proof)

    def test_absent_value_unprovable(self):
        tree = MerkleTree(leaves(10))
        with pytest.raises(StoreIntegrityError):
            tree.prove_inclusion(b"not-a-leaf")

    def test_tampered_path_fails(self):
        tree = MerkleTree(leaves(16))
        proof = tree.prove_inclusion(b"leaf-0005")
        bad_path = (b"\x00" * 32,) + proof.path[1:]
        tampered = InclusionProof(
            leaf_index=proof.leaf_index,
            total_leaves=proof.total_leaves,
            path=bad_path,
        )
        assert not verify_inclusion(tree.root, b"leaf-0005", tampered)

    def test_wrong_index_fails(self):
        tree = MerkleTree(leaves(16))
        proof = tree.prove_inclusion(b"leaf-0005")
        moved = InclusionProof(
            leaf_index=proof.leaf_index + 1,
            total_leaves=proof.total_leaves,
            path=proof.path,
        )
        assert not verify_inclusion(tree.root, b"leaf-0005", moved)

    def test_proof_dict_roundtrip(self):
        tree = MerkleTree(leaves(9))
        proof = tree.prove_inclusion(b"leaf-0004")
        assert InclusionProof.from_dict(proof.as_dict()) == proof


class TestNonInclusion:
    def test_middle_gap(self):
        tree = MerkleTree([b"a", b"c", b"e"])
        proof = tree.prove_non_inclusion(b"b")
        assert verify_non_inclusion(tree.root, len(tree), b"b", proof)

    def test_before_first(self):
        tree = MerkleTree([b"b", b"c"])
        proof = tree.prove_non_inclusion(b"a")
        assert verify_non_inclusion(tree.root, len(tree), b"a", proof)

    def test_after_last(self):
        tree = MerkleTree([b"a", b"b"])
        proof = tree.prove_non_inclusion(b"z")
        assert verify_non_inclusion(tree.root, len(tree), b"z", proof)

    def test_empty_tree(self):
        tree = MerkleTree([])
        proof = tree.prove_non_inclusion(b"x")
        assert verify_non_inclusion(tree.root, 0, b"x", proof)

    def test_present_value_unprovable(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(StoreIntegrityError):
            tree.prove_non_inclusion(b"a")

    def test_proof_for_wrong_value_fails(self):
        tree = MerkleTree([b"a", b"c", b"e"])
        proof = tree.prove_non_inclusion(b"b")
        # The same adjacency does not prove absence of "d".
        assert not verify_non_inclusion(tree.root, len(tree), b"d", proof)

    def test_non_adjacent_bracket_rejected(self):
        """Leaves that are not adjacent cannot prove a gap — otherwise
        one could 'prove' absence of a value that sits between them."""
        tree = MerkleTree([b"a", b"c", b"e"])
        wide = tree.prove_non_inclusion(b"b")
        forged = type(wide)(
            left_leaf=wide.left_leaf,
            left_proof=wide.left_proof,
            right_leaf=b"e",
            right_proof=tree.prove_inclusion(b"e"),
        )
        assert not verify_non_inclusion(tree.root, len(tree), b"b", forged)

    @pytest.mark.parametrize("n", [1, 2, 5, 16, 33])
    def test_systematic_gaps(self, n):
        tree = MerkleTree(leaves(n))
        for probe in (b"leaf-0000a", b"leaf-", b"zzz", b"\x00"):
            proof = tree.prove_non_inclusion(probe)
            assert verify_non_inclusion(tree.root, len(tree), probe, proof)
