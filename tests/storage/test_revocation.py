"""Revocation list: versioning, snapshots, verified device sync."""

import pytest

from repro.errors import InvalidSignature, StoreIntegrityError
from repro.storage.engine import Database
from repro.storage.revocation import (
    DeviceRevocationView,
    RevocationList,
    SignedSnapshot,
)


@pytest.fixture()
def lrl():
    return RevocationList(Database())


class TestVersioning:
    def test_versions_increase(self, lrl):
        assert lrl.current_version() == 0
        assert lrl.revoke(b"a", at=1, reason="r") == 1
        assert lrl.revoke(b"b", at=2, reason="r") == 2

    def test_idempotent_revocation(self, lrl):
        lrl.revoke(b"a", at=1, reason="r")
        version = lrl.revoke(b"b", at=2, reason="r")
        assert lrl.revoke(b"a", at=3, reason="again") == version
        assert lrl.count() == 2

    def test_is_revoked(self, lrl):
        lrl.revoke(b"a", at=1, reason="r")
        assert lrl.is_revoked(b"a")
        assert not lrl.is_revoked(b"b")

    def test_entries_since(self, lrl):
        for i in range(5):
            lrl.revoke(f"lic-{i}".encode(), at=i, reason="r")
        delta = lrl.entries_since(3)
        assert [e.version for e in delta] == [4, 5]
        assert lrl.entries_since(5) == []


class TestSnapshots:
    def test_snapshot_verifies(self, lrl, rsa512):
        lrl.revoke(b"a", at=1, reason="r")
        snapshot = lrl.snapshot(rsa512)
        snapshot.verify(rsa512.public_key)
        assert snapshot.version == 1 and snapshot.count == 1

    def test_snapshot_wrong_key_rejected(self, lrl, rsa512, rsa768):
        snapshot = lrl.snapshot(rsa512)
        with pytest.raises(InvalidSignature):
            snapshot.verify(rsa768.public_key)

    def test_tampered_snapshot_rejected(self, lrl, rsa512):
        lrl.revoke(b"a", at=1, reason="r")
        snapshot = lrl.snapshot(rsa512)
        forged = SignedSnapshot(
            version=snapshot.version,
            merkle_root=snapshot.merkle_root,
            count=snapshot.count + 1,
            signature=snapshot.signature,
        )
        with pytest.raises(InvalidSignature):
            forged.verify(rsa512.public_key)

    def test_snapshot_dict_roundtrip(self, lrl, rsa512):
        snapshot = lrl.snapshot(rsa512)
        assert SignedSnapshot.from_dict(snapshot.as_dict()) == snapshot


class TestDeviceSync:
    def test_full_then_delta_sync(self, lrl, rsa512):
        view = DeviceRevocationView(rsa512.public_key)
        lrl.revoke(b"a", at=1, reason="r")
        lrl.revoke(b"b", at=2, reason="r")
        assert view.apply_sync(lrl.entries_since(0), lrl.snapshot(rsa512)) == 2
        assert view.version == 2
        lrl.revoke(b"c", at=3, reason="r")
        assert view.apply_sync(lrl.entries_since(view.version), lrl.snapshot(rsa512)) == 1
        assert view.check(b"c")

    def test_check_semantics(self, lrl, rsa512):
        view = DeviceRevocationView(rsa512.public_key)
        lrl.revoke(b"revoked", at=1, reason="r")
        view.apply_sync(lrl.entries_since(0), lrl.snapshot(rsa512))
        assert view.check(b"revoked")
        assert not view.check(b"clean")
        assert view.check_exact_only(b"revoked")
        assert not view.check_exact_only(b"clean")

    def test_lossy_channel_detected(self, lrl, rsa512):
        """A distribution channel that drops entries cannot fool the
        device: the Merkle root will not match the signed snapshot."""
        view = DeviceRevocationView(rsa512.public_key)
        lrl.revoke(b"a", at=1, reason="r")
        lrl.revoke(b"b", at=2, reason="r")
        entries = lrl.entries_since(0)[:1]  # drop one entry
        with pytest.raises(StoreIntegrityError):
            view.apply_sync(entries, lrl.snapshot(rsa512))

    def test_forged_entries_detected(self, lrl, rsa512):
        """A channel that injects an extra revocation is also caught."""
        from repro.storage.revocation import RevocationEntry

        view = DeviceRevocationView(rsa512.public_key)
        lrl.revoke(b"a", at=1, reason="r")
        entries = lrl.entries_since(0) + [
            RevocationEntry(license_id=b"evil", version=2, revoked_at=2, reason="x")
        ]
        with pytest.raises(StoreIntegrityError):
            view.apply_sync(entries, lrl.snapshot(rsa512))

    def test_empty_list_sync(self, lrl, rsa512):
        view = DeviceRevocationView(rsa512.public_key)
        assert view.apply_sync([], lrl.snapshot(rsa512)) == 0
        assert not view.check(b"anything")


class TestRevokedSubset:
    def test_one_pass_screen(self, lrl):
        for index in range(12):
            lrl.revoke(bytes([index]) * 4, at=index, reason="r")
        queried = [bytes([i]) * 4 for i in range(0, 24, 2)]
        revoked = lrl.revoked_subset(queried)
        assert revoked == {bytes([i]) * 4 for i in range(0, 12, 2)}

    def test_empty_query(self, lrl):
        assert lrl.revoked_subset([]) == set()

    def test_duplicates_collapse(self, lrl):
        lrl.revoke(b"dup!", at=1, reason="r")
        assert lrl.revoked_subset([b"dup!", b"dup!", b"none"]) == {b"dup!"}

    def test_large_query_chunks(self, lrl):
        """More ids than one SQL chunk (500) still screens correctly."""
        lrl.revoke(b"needle", at=1, reason="r")
        ids = [f"id-{i:05d}".encode() for i in range(1200)] + [b"needle"]
        assert lrl.revoked_subset(ids) == {b"needle"}
