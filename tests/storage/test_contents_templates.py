"""Content-store rights templates and migration behaviour."""

import pytest

from repro.errors import RightsParseError, UnknownContentError
from repro.storage.contents import DEFAULT_RIGHTS_TEMPLATE, ContentStore
from repro.storage.engine import Database


class TestTemplates:
    def test_default_template_applied(self):
        store = ContentStore(Database())
        store.add("c1", title="T", price_cents=1, added_at=1, package=b"P", content_key=b"K")
        assert store.rights_template("c1") == DEFAULT_RIGHTS_TEMPLATE

    def test_custom_template_stored(self):
        store = ContentStore(Database())
        store.add(
            "c1", title="T", price_cents=1, added_at=1, package=b"P",
            content_key=b"K", rights_template="play[count<=3]",
        )
        assert store.rights_template("c1") == "play[count<=3]"

    def test_invalid_template_rejected_before_insert(self):
        store = ContentStore(Database())
        with pytest.raises(RightsParseError):
            store.add(
                "c1", title="T", price_cents=1, added_at=1, package=b"P",
                content_key=b"K", rights_template="levitate",
            )
        assert not store.exists("c1")

    def test_unknown_content_template(self):
        store = ContentStore(Database())
        with pytest.raises(UnknownContentError):
            store.rights_template("ghost")

    def test_migration_idempotent_across_reopen(self, tmp_path):
        path = str(tmp_path / "contents.db")
        first = ContentStore(Database(path))
        first.add(
            "c1", title="T", price_cents=1, added_at=1, package=b"P",
            content_key=b"K", rights_template="play",
        )
        # Reopening applies no duplicate migrations and sees the data.
        second = ContentStore(Database(path))
        assert second.rights_template("c1") == "play"

    def test_v1_rows_get_default_template(self, tmp_path):
        """Rows inserted before the template column existed read back
        the default (the ALTER TABLE default covers legacy rows)."""
        path = str(tmp_path / "legacy.db")
        db = Database(path)
        # Simulate a v1-era database: apply only the first migration.
        from repro.storage.contents import _MIGRATION

        db.migrate("contents_v1", _MIGRATION)
        db.execute(
            "INSERT INTO contents(content_id, title, price_cents, added_at, package)"
            " VALUES ('legacy', 'L', 1, 1, X'00')"
        )
        db.execute(
            "INSERT INTO content_keys(content_id, content_key) VALUES ('legacy', X'00')"
        )
        # Now the store opens and runs the v2 migration.
        store = ContentStore(db)
        assert store.rights_template("legacy") == DEFAULT_RIGHTS_TEMPLATE
