"""LedgerStore: durable accounts, the journal, and the intent rows."""

import pytest

from repro.errors import PaymentError, StoreIntegrityError
from repro.storage.engine import Database
from repro.storage.ledger import (
    INTENT_ABORTED,
    INTENT_COMMITTED,
    INTENT_PENDING,
    LedgerEntry,
    LedgerStore,
)


@pytest.fixture()
def store():
    return LedgerStore(Database())


class TestAccounts:
    def test_open_and_balance(self, store):
        store.open_account("alice", at=100, initial_balance=50)
        assert store.balance("alice") == 50
        assert store.has_account("alice")

    def test_duplicate_open_refused(self, store):
        store.open_account("alice", at=100)
        with pytest.raises(PaymentError, match="exists"):
            store.open_account("alice", at=200)

    def test_negative_initial_balance_refused(self, store):
        with pytest.raises(PaymentError):
            store.open_account("alice", at=100, initial_balance=-1)

    def test_unknown_account_balance_is_none(self, store):
        assert store.balance("nobody") is None
        assert not store.has_account("nobody")

    def test_ensure_account_idempotent(self, store):
        assert store.ensure_account("alice", at=100)
        assert not store.ensure_account("alice", at=200)
        assert store.balance("alice") == 0

    def test_ensure_does_not_reset_existing(self, store):
        store.open_account("alice", at=100, initial_balance=30)
        store.ensure_account("alice", at=200)
        assert store.balance("alice") == 30

    def test_accounts_sorted(self, store):
        for name in ("carol", "alice", "bob"):
            store.open_account(name, at=100)
        assert store.accounts() == ["alice", "bob", "carol"]


class TestJournal:
    def test_credit_debit_and_sum(self, store):
        store.open_account("alice", at=100)
        assert store.credit("alice", 20, at=110) == 20
        assert store.debit("alice", 5, at=120) == 15
        assert store.balance("alice") == 15
        assert store.entry_sum("alice") == 15

    def test_overdraft_refused_atomically(self, store):
        store.open_account("alice", at=100, initial_balance=3)
        with pytest.raises(PaymentError, match="insufficient funds"):
            store.debit("alice", 4, at=110)
        assert store.balance("alice") == 3
        assert store.entry_sum("alice") == 3

    def test_credit_unknown_account_refused(self, store):
        with pytest.raises(PaymentError, match="no account"):
            store.credit("nobody", 1, at=100)

    def test_statement_oldest_first_limit_keeps_newest(self, store):
        store.open_account("alice", at=100)
        for i in range(5):
            store.credit("alice", i + 1, at=200 + i)
        full = store.statement("alice")
        assert [e.amount for e in full] == [1, 2, 3, 4, 5]
        tail = store.statement("alice", limit=2)
        assert [e.amount for e in tail] == [4, 5]

    def test_initial_balance_journaled_as_open(self, store):
        store.open_account("alice", at=100, initial_balance=7)
        [entry] = store.statement("alice")
        assert entry.kind == "open"
        assert entry.amount == 7

    def test_entry_dict_round_trip(self, store):
        store.open_account("alice", at=100)
        store.credit(
            "alice", 9, at=110, transcript=b"evidence", intent_id=b"i" * 16
        )
        [entry] = store.statement("alice")
        assert LedgerEntry.from_dict(entry.as_dict()) == entry

    def test_restart_survival(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        first = LedgerStore(Database(path))
        first.open_account("alice", at=100, initial_balance=11)
        first.credit("alice", 4, at=110)
        first.database.close()
        reopened = LedgerStore(Database(path))
        assert reopened.balance("alice") == 15
        assert [e.amount for e in reopened.statement("alice")] == [11, 4]


class TestIntents:
    def test_create_is_idempotent_by_id(self, store):
        store.open_account("alice", at=100)
        first = store.create_intent(b"i" * 16, "alice", 10, at=100, payload=b"p")
        again = store.create_intent(b"i" * 16, "alice", 99, at=200, payload=b"q")
        assert again == first
        assert again.amount == 10
        assert store.intent_state(b"i" * 16) == INTENT_PENDING

    def test_commit_credits_and_flips_in_one_step(self, store):
        store.open_account("alice", at=100)
        store.create_intent(b"i" * 16, "alice", 10, at=100, payload=b"p")
        assert store.commit_intent(b"i" * 16, at=110, transcript=b"t")
        assert store.intent_state(b"i" * 16) == INTENT_COMMITTED
        assert store.balance("alice") == 10
        [entry] = store.entries_for_intent(b"i" * 16)
        assert entry.amount == 10
        assert entry.kind == "deposit"

    def test_commit_loses_to_terminal_state(self, store):
        store.open_account("alice", at=100)
        store.create_intent(b"i" * 16, "alice", 10, at=100, payload=b"p")
        assert store.commit_intent(b"i" * 16, at=110)
        # The twin attempt must NOT double-credit.
        assert not store.commit_intent(b"i" * 16, at=120)
        assert store.balance("alice") == 10
        assert len(store.entries_for_intent(b"i" * 16)) == 1

    def test_abort_then_commit_refused(self, store):
        store.open_account("alice", at=100)
        store.create_intent(b"i" * 16, "alice", 10, at=100, payload=b"p")
        assert store.abort_intent(b"i" * 16, at=110)
        assert not store.commit_intent(b"i" * 16, at=120)
        assert store.balance("alice") == 0
        assert store.intent_state(b"i" * 16) == INTENT_ABORTED

    def test_abort_is_idempotent(self, store):
        store.open_account("alice", at=100)
        store.create_intent(b"i" * 16, "alice", 10, at=100, payload=b"p")
        assert store.abort_intent(b"i" * 16, at=110)
        assert not store.abort_intent(b"i" * 16, at=120)

    def test_commit_unknown_intent_is_integrity_error(self, store):
        with pytest.raises(StoreIntegrityError):
            store.commit_intent(b"?" * 16, at=100)

    def test_intent_counts(self, store):
        store.open_account("alice", at=100)
        store.create_intent(b"a" * 16, "alice", 1, at=100, payload=b"")
        store.create_intent(b"b" * 16, "alice", 2, at=100, payload=b"")
        store.create_intent(b"c" * 16, "alice", 3, at=100, payload=b"")
        store.commit_intent(b"a" * 16, at=110)
        store.abort_intent(b"b" * 16, at=110)
        assert store.intent_counts() == {
            INTENT_PENDING: 1,
            INTENT_COMMITTED: 1,
            INTENT_ABORTED: 1,
        }

    def test_intents_filter_by_state(self, store):
        store.open_account("alice", at=100)
        store.create_intent(b"a" * 16, "alice", 1, at=100, payload=b"")
        store.create_intent(b"b" * 16, "alice", 2, at=101, payload=b"")
        store.commit_intent(b"a" * 16, at=110)
        [pending] = store.intents(INTENT_PENDING)
        assert pending.intent_id == b"b" * 16
        assert len(store.intents()) == 2
