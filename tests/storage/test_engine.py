"""Database engine: migrations, transactions, query helpers."""

import pytest

from repro.errors import MigrationError, StorageError
from repro.storage.engine import Database


@pytest.fixture()
def db():
    return Database()


class TestMigrations:
    def test_migration_applies_once(self, db):
        ddl = ["CREATE TABLE t (x INTEGER)"]
        assert db.migrate("m1", ddl) is True
        assert db.migrate("m1", ddl) is False
        assert "m1" in db.applied_migrations()

    def test_bad_migration_rolls_back(self, db):
        with pytest.raises(MigrationError):
            db.migrate("bad", ["CREATE TABLE t (x INTEGER)", "NOT SQL AT ALL"])
        # Nothing recorded, first statement rolled back.
        assert "bad" not in db.applied_migrations()
        assert db.migrate("good", ["CREATE TABLE t (x INTEGER)"]) is True

    def test_migration_order_preserved(self, db):
        db.migrate("a", ["CREATE TABLE ta (x)"])
        db.migrate("b", ["CREATE TABLE tb (x)"])
        assert db.applied_migrations() == ["a", "b"]


class TestTransactions:
    def test_commit_on_success(self, db):
        db.migrate("t", ["CREATE TABLE t (x INTEGER)"])
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
        assert db.query_value("SELECT COUNT(*) FROM t") == 1

    def test_rollback_on_error(self, db):
        db.migrate("t", ["CREATE TABLE t (x INTEGER)"])
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (1)")
                raise RuntimeError("boom")
        assert db.query_value("SELECT COUNT(*) FROM t") == 0

    def test_nested_transactions_join(self, db):
        db.migrate("t", ["CREATE TABLE t (x INTEGER)"])
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (1)")
                with db.transaction():
                    db.execute("INSERT INTO t VALUES (2)")
                raise RuntimeError("outer fails after inner")
        # Inner joined outer; everything rolled back together.
        assert db.query_value("SELECT COUNT(*) FROM t") == 0


class TestQueries:
    def test_query_helpers(self, db):
        db.migrate("t", ["CREATE TABLE t (x INTEGER, y TEXT)"])
        db.executemany("INSERT INTO t VALUES (?, ?)", [(1, "a"), (2, "b")])
        assert db.query_one("SELECT y FROM t WHERE x = ?", (2,)) == ("b",)
        assert db.query_one("SELECT y FROM t WHERE x = ?", (9,)) is None
        assert len(db.query_all("SELECT * FROM t")) == 2
        assert db.query_value("SELECT MAX(x) FROM t") == 2
        assert db.query_value("SELECT x FROM t WHERE x = 99", default=-1) == -1

    def test_sql_errors_wrapped(self, db):
        with pytest.raises(StorageError):
            db.execute("SELECT * FROM missing_table")
        with pytest.raises(StorageError):
            db.query_all("NOT SQL")


class TestLifecycle:
    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "test.db")
        with Database(path) as db:
            db.migrate("t", ["CREATE TABLE t (x INTEGER)"])
            db.execute("INSERT INTO t VALUES (42)")
        reopened = Database(path)
        assert reopened.query_value("SELECT x FROM t") == 42
        reopened.close()

    def test_file_persistence_of_migrations(self, tmp_path):
        path = str(tmp_path / "persist.db")
        first = Database(path)
        first.migrate("m", ["CREATE TABLE t (x INTEGER)"])
        first.close()
        second = Database(path)
        assert second.migrate("m", ["CREATE TABLE t (x INTEGER)"]) is False
        second.close()

    def test_bad_path_raises(self):
        with pytest.raises(StorageError):
            Database("/nonexistent-dir-xyz/db.sqlite")

    def test_close_is_idempotent_and_observable(self, tmp_path):
        db = Database(str(tmp_path / "close.db"))
        assert db.closed is False
        db.close()
        assert db.closed is True
        db.close()  # second close is a no-op, not an error
        with pytest.raises(StorageError):
            db.execute("SELECT 1")

    def test_cross_thread_use_when_opted_in(self, tmp_path):
        import threading

        db = Database(str(tmp_path / "threads.db"), check_same_thread=False)
        db.migrate("t", ["CREATE TABLE t (x INTEGER)"])
        errors = []

        def insert():
            try:
                db.execute("INSERT INTO t VALUES (7)")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        worker = threading.Thread(target=insert)
        worker.start()
        worker.join()
        assert not errors
        assert db.query_value("SELECT COUNT(*) FROM t") == 1
        db.close()


class TestCrossProcessWrites:
    def test_immediate_transaction_serializes_two_connections(self, tmp_path):
        """Two connections to one file: immediate read-then-write scopes
        must serialize instead of failing on lock upgrade (the
        spent-token pattern under the worker pool)."""
        path = str(tmp_path / "shared.db")
        first = Database(path)
        first.migrate("t", ["CREATE TABLE t (k TEXT PRIMARY KEY)"])
        second = Database(path)
        for db, key in ((first, "a"), (second, "b"), (first, "c")):
            with db.transaction(immediate=True):
                row = db.query_one("SELECT 1 FROM t WHERE k = ?", (key,))
                assert row is None
                db.execute("INSERT INTO t VALUES (?)", (key,))
        assert second.query_value("SELECT COUNT(*) FROM t") == 3
        first.close()
        second.close()

    def test_migrate_rechecks_under_the_lock(self, tmp_path):
        """A second connection migrating the same name sees the winner's
        record instead of colliding on the insert."""
        path = str(tmp_path / "migrate.db")
        first = Database(path)
        second = Database(path)
        assert first.migrate("m", ["CREATE TABLE t (x INTEGER)"]) is True
        assert second.migrate("m", ["CREATE TABLE t (x INTEGER)"]) is False
        first.close()
        second.close()
