"""Property-based tests for the canonical codec (hypothesis), and for
the service wire format built on top of it."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro import codec
from repro.core.messages import DepositRequest, MisuseEvidence
from repro.service import wire

# Heavy hypothesis sweeps: the fast CI lane deselects these with
# ``-m "not slow"``; the full lane runs them.
pytestmark = pytest.mark.slow

# Codec value space: recursive None/bool/int/bytes/str/list/dict.
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**200), max_value=2**200)
    | st.binary(max_size=64)
    | st.text(max_size=32)
)
values = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)


class TestCodecProperties:
    @given(values)
    @settings(max_examples=300)
    def test_roundtrip(self, value):
        decoded = codec.decode(codec.encode(value))
        assert decoded == _normalize(value)

    @given(values)
    @settings(max_examples=200)
    def test_encoding_is_fixed_point(self, value):
        """decode∘encode then encode again reproduces the same bytes —
        canonical form is a fixed point."""
        encoded = codec.encode(value)
        assert codec.encode(codec.decode(encoded)) == encoded

    @given(values, values)
    @settings(max_examples=200)
    def test_injective_on_distinct_values(self, left, right):
        if _normalize(left) != _normalize(right):
            assert codec.encode(left) != codec.encode(right)
        else:
            assert codec.encode(left) == codec.encode(right)

    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_decoder_total_on_garbage(self, blob):
        """Arbitrary bytes either decode to a value whose re-encoding is
        exactly the input, or raise CodecError — never crash, never
        accept non-canonical input."""
        try:
            value = codec.decode(blob)
        except codec.CodecError:
            return
        assert codec.encode(value) == blob

    @given(st.lists(values, max_size=4))
    @settings(max_examples=100)
    def test_stream_roundtrip(self, items):
        stream = b"".join(codec.encode(item) for item in items)
        assert list(codec.iter_decode(stream)) == [_normalize(i) for i in items]


@pytest.fixture(scope="module")
def wire_messages(deployment):
    """Real protocol messages to mutate: one of each request family."""
    from repro.core.protocols.acquisition import build_purchase_request
    from repro.core.protocols.transfer import (
        build_exchange_request,
        build_redeem_request,
    )

    d = deployment
    alice = d.add_user("props-alice", balance=10_000)
    bob = d.add_user("props-bob", balance=10_000)
    purchase = build_purchase_request(alice, d.provider, d.issuer, d.bank, "song-1")
    license_ = d.provider.sell(purchase)
    alice.add_license(license_)
    exchange = build_exchange_request(alice, license_)
    anonymous = d.provider.exchange(exchange)
    redeem = build_redeem_request(bob, d.provider, d.issuer, anonymous)
    return {"purchase": purchase, "exchange": exchange, "redeem": redeem}


def _wire_roundtrip(request):
    encoded = wire.encode_request(request)
    decoded = wire.decode_request(encoded)
    assert decoded == request
    assert wire.encode_request(decoded) == encoded


_nonces = st.binary(min_size=16, max_size=16)
_timestamps = st.integers(min_value=0, max_value=2**48)
_serials = st.binary(min_size=1, max_size=32)


class TestWireRequestProperties:
    """Every request survives encode→decode byte-for-byte, whatever
    the client put in the free fields (the signatures go stale under
    mutation, but the wire layer never interprets them)."""

    @given(nonce=_nonces, at=_timestamps)
    @settings(max_examples=30, deadline=None)
    def test_purchase_roundtrip(self, wire_messages, nonce, at):
        _wire_roundtrip(replace(wire_messages["purchase"], nonce=nonce, at=at))

    @given(
        nonce=_nonces,
        at=_timestamps,
        serial=_serials,
        value=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_purchase_coin_fields_roundtrip(
        self, wire_messages, nonce, at, serial, value
    ):
        base = wire_messages["purchase"]
        coins = tuple(
            replace(coin, serial=serial + bytes([i]), value=value)
            for i, coin in enumerate(base.coins)
        )
        _wire_roundtrip(replace(base, nonce=nonce, at=at, coins=coins))

    @given(
        nonce=_nonces,
        at=_timestamps,
        restrict=st.none() | st.lists(st.sampled_from(
            ["play", "display", "print", "transfer"]), max_size=3).map(tuple),
    )
    @settings(max_examples=30, deadline=None)
    def test_exchange_roundtrip(self, wire_messages, nonce, at, restrict):
        _wire_roundtrip(
            replace(
                wire_messages["exchange"], nonce=nonce, at=at, restrict_to=restrict
            )
        )

    @given(nonce=_nonces, at=_timestamps)
    @settings(max_examples=30, deadline=None)
    def test_redeem_roundtrip(self, wire_messages, nonce, at):
        _wire_roundtrip(replace(wire_messages["redeem"], nonce=nonce, at=at))

    @given(
        account=st.text(max_size=24),
        serials=st.lists(_serials, max_size=4, unique=True),
        value=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_deposit_roundtrip(self, wire_messages, account, serials, value):
        template = wire_messages["purchase"].coins[0]
        request = DepositRequest(
            account=account,
            coins=tuple(
                replace(template, serial=serial, value=value) for serial in serials
            ),
        )
        _wire_roundtrip(request)


class TestWireResponseProperties:
    @given(
        kind=st.sampled_from(["double-redemption", "double-spend"]),
        token=st.binary(min_size=1, max_size=32),
        content=st.text(max_size=16),
        first=st.binary(max_size=64),
        second=st.binary(max_size=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_misuse_evidence_survives_error_envelope(
        self, kind, token, content, first, second
    ):
        from repro.errors import DoubleRedemptionError

        evidence = MisuseEvidence(
            kind=kind,
            token_id=token,
            content_id=content,
            first_transcript=first,
            second_transcript=second,
        )
        error = DoubleRedemptionError(token)
        error.evidence = evidence
        decoded = wire.decode_response(wire.encode_response(error))
        assert isinstance(decoded, DoubleRedemptionError)
        assert decoded.token_id == token
        assert decoded.evidence == evidence

    @given(account=st.text(max_size=24), credited=st.integers(0, 2**40))
    @settings(max_examples=40, deadline=None)
    def test_receipt_roundtrip(self, account, credited):
        receipt = {"account": account, "credited": credited}
        encoded = wire.encode_response(receipt)
        assert wire.decode_response(encoded) == receipt
        assert wire.encode_response(wire.decode_response(encoded)) == encoded


def _normalize(value):
    """What the codec canonically preserves (tuples→lists)."""
    if isinstance(value, tuple):
        return [_normalize(v) for v in value]
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    return value
