"""Property-based tests for the canonical codec (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import codec

# Heavy hypothesis sweeps: the fast CI lane deselects these with
# ``-m "not slow"``; the full lane runs them.
pytestmark = pytest.mark.slow

# Codec value space: recursive None/bool/int/bytes/str/list/dict.
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**200), max_value=2**200)
    | st.binary(max_size=64)
    | st.text(max_size=32)
)
values = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)


class TestCodecProperties:
    @given(values)
    @settings(max_examples=300)
    def test_roundtrip(self, value):
        decoded = codec.decode(codec.encode(value))
        assert decoded == _normalize(value)

    @given(values)
    @settings(max_examples=200)
    def test_encoding_is_fixed_point(self, value):
        """decode∘encode then encode again reproduces the same bytes —
        canonical form is a fixed point."""
        encoded = codec.encode(value)
        assert codec.encode(codec.decode(encoded)) == encoded

    @given(values, values)
    @settings(max_examples=200)
    def test_injective_on_distinct_values(self, left, right):
        if _normalize(left) != _normalize(right):
            assert codec.encode(left) != codec.encode(right)
        else:
            assert codec.encode(left) == codec.encode(right)

    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_decoder_total_on_garbage(self, blob):
        """Arbitrary bytes either decode to a value whose re-encoding is
        exactly the input, or raise CodecError — never crash, never
        accept non-canonical input."""
        try:
            value = codec.decode(blob)
        except codec.CodecError:
            return
        assert codec.encode(value) == blob

    @given(st.lists(values, max_size=4))
    @settings(max_examples=100)
    def test_stream_roundtrip(self, items):
        stream = b"".join(codec.encode(item) for item in items)
        assert list(codec.iter_decode(stream)) == [_normalize(i) for i in items]


def _normalize(value):
    """What the codec canonically preserves (tuples→lists)."""
    if isinstance(value, tuple):
        return [_normalize(v) for v in value]
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    return value
