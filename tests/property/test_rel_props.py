"""Property-based tests for the rights expression language."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rel.evaluator import EvaluationContext, RightsEvaluator
from repro.rel.model import (
    ACTIONS,
    CountConstraint,
    DeviceConstraint,
    IntervalConstraint,
    Permission,
    RegionConstraint,
    Rights,
)
from repro.rel.parser import parse_rights
from repro.rel.serializer import rights_from_bytes, rights_to_bytes, rights_to_text

# Heavy hypothesis sweeps: the fast CI lane deselects these with
# ``-m "not slow"``; the full lane runs them.
pytestmark = pytest.mark.slow

_device_ids = st.text(alphabet="0123456789abcdef", min_size=2, max_size=8)
_regions = st.text(alphabet="abcdefghij", min_size=2, max_size=4)

_count = st.integers(min_value=1, max_value=1000).map(
    lambda n: CountConstraint(max_uses=n)
)
_interval = st.tuples(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**9),
).map(
    lambda pair: IntervalConstraint(
        not_before=min(pair), not_after=max(pair)
    )
)
_device = st.frozensets(_device_ids, min_size=1, max_size=4).map(
    lambda ids: DeviceConstraint(device_ids=ids)
)
_region = st.frozensets(_regions, min_size=1, max_size=3).map(
    lambda codes: RegionConstraint(regions=codes)
)


@st.composite
def rights_values(draw):
    actions = draw(
        st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=4, unique=True)
    )
    permissions = []
    for action in actions:
        constraint_pool = draw(
            st.lists(
                st.sampled_from(["count", "interval", "device", "region"]),
                max_size=3,
                unique=True,
            )
        )
        constraints = []
        for kind in constraint_pool:
            if kind == "count":
                constraints.append(draw(_count))
            elif kind == "interval":
                constraints.append(draw(_interval))
            elif kind == "device":
                constraints.append(draw(_device))
            else:
                constraints.append(draw(_region))
        permissions.append(Permission(action=action, constraints=tuple(constraints)))
    return Rights(permissions=tuple(permissions))


class TestSerializationProperties:
    @given(rights_values())
    @settings(max_examples=200)
    def test_bytes_roundtrip(self, rights):
        assert rights_from_bytes(rights_to_bytes(rights)) == rights

    @given(rights_values())
    @settings(max_examples=200)
    def test_text_roundtrip(self, rights):
        assert parse_rights(rights_to_text(rights)) == rights

    @given(rights_values(), rights_values())
    @settings(max_examples=100)
    def test_bytes_injective(self, left, right):
        assert (rights_to_bytes(left) == rights_to_bytes(right)) == (left == right)


class TestAlgebraProperties:
    @given(rights_values())
    @settings(max_examples=100)
    def test_subset_reflexive(self, rights):
        assert rights.is_subset_of(rights)

    @given(rights_values())
    @settings(max_examples=100)
    def test_restriction_is_subset(self, rights):
        actions = [p.action for p in rights.permissions]
        restricted = rights.restricted_to(actions[:1])
        assert restricted.is_subset_of(rights)

    @given(rights_values())
    @settings(max_examples=100)
    def test_without_action_is_subset(self, rights):
        if len(rights.permissions) < 2:
            return
        reduced = rights.without_action(rights.permissions[0].action)
        assert reduced.is_subset_of(rights)


class TestEvaluatorProperties:
    @given(
        rights_values(),
        st.integers(min_value=0, max_value=2 * 10**9),
        _device_ids,
        _regions,
        st.sampled_from(ACTIONS),
    )
    @settings(max_examples=200)
    def test_decisions_deterministic_and_consistent(
        self, rights, now, device_id, region, action
    ):
        """Same state, same context → same decision; and a granted
        action always corresponds to a permission in the expression."""
        from repro.errors import RightsDenied

        context = EvaluationContext(now=now, device_id=device_id, region=region)
        evaluator = RightsEvaluator()
        outcomes = []
        for _ in range(2):
            try:
                permission = evaluator.authorize(rights, b"L" * 16, action, context)
                outcomes.append(("granted", permission.action))
            except RightsDenied as denial:
                outcomes.append(("denied", denial.action))
        assert outcomes[0] == outcomes[1]
        if outcomes[0][0] == "granted":
            assert rights.permission_for(action) is not None

    @given(rights_values(), st.sampled_from(ACTIONS), st.integers(1, 5))
    @settings(max_examples=100)
    def test_count_monotone(self, rights, action, uses):
        """Recording uses never *increases* remaining allowance."""
        evaluator = RightsEvaluator()
        previous = evaluator.remaining_uses(rights, b"L" * 16, action)
        for _ in range(uses):
            evaluator.record_use(b"L" * 16, action)
            current = evaluator.remaining_uses(rights, b"L" * 16, action)
            if previous is not None:
                assert current is not None and current <= previous
            previous = current
