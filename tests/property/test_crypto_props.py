"""Property-based tests over the crypto substrate.

Keys are generated once at module scope (hypothesis then varies
messages, payloads and contexts), keeping runtime sane while still
exercising the algebra on hundreds of inputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.backend import gmpy2_available as _gmpy2_available
from repro.crypto.blind_rsa import (
    BlindingClient,
    BlindSigner,
    verify_blind_signature,
)
from repro.crypto.elgamal import generate_elgamal_key
from repro.crypto.groups import named_group
from repro.crypto.modes import EtmCipher, ctr_transform, decrypt_cbc, encrypt_cbc
from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.rsa import generate_rsa_key
from repro.crypto.schnorr import generate_schnorr_key
from repro.errors import DecryptionError

_GROUP = named_group("test-512")
_RSA = generate_rsa_key(512, rng=DeterministicRandomSource(b"prop-rsa"))
_RSA_OAEP = generate_rsa_key(768, rng=DeterministicRandomSource(b"prop-rsa-768"))
_SCHNORR = generate_schnorr_key(_GROUP, rng=DeterministicRandomSource(b"prop-schnorr"))
_ELGAMAL = generate_elgamal_key(_GROUP, rng=DeterministicRandomSource(b"prop-eg"))


def _rng(seed: bytes) -> DeterministicRandomSource:
    return DeterministicRandomSource(b"prop:" + seed)


class TestRsaProperties:
    @given(st.binary(max_size=128))
    @settings(max_examples=50)
    def test_pkcs1_roundtrip(self, message):
        _RSA.public_key.verify_pkcs1(message, _RSA.sign_pkcs1(message))

    @given(st.binary(max_size=128), st.binary(max_size=16))
    @settings(max_examples=50)
    def test_pkcs1_rejects_other_message(self, message, suffix):
        from repro.errors import InvalidSignature

        signature = _RSA.sign_pkcs1(message)
        other = message + b"|" + suffix
        if other == message:
            return
        with pytest.raises(InvalidSignature):
            _RSA.public_key.verify_pkcs1(other, signature)

    # OAEP capacity at 768 bits is 96 - 2·32 - 2 = 30 bytes.
    @given(st.binary(max_size=30), st.binary(max_size=8))
    @settings(max_examples=30)
    def test_oaep_roundtrip(self, plaintext, seed):
        ciphertext = _RSA_OAEP.public_key.encrypt_oaep(plaintext, rng=_rng(seed))
        assert _RSA_OAEP.decrypt_oaep(ciphertext) == plaintext

    @given(st.binary(min_size=31, max_size=64), st.binary(max_size=8))
    @settings(max_examples=20)
    def test_oaep_overlong_always_rejected(self, plaintext, seed):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            _RSA_OAEP.public_key.encrypt_oaep(plaintext, rng=_rng(seed))


class TestBlindRsaProperties:
    @given(st.binary(max_size=64), st.binary(max_size=8))
    @settings(max_examples=40)
    def test_blind_roundtrip(self, message, seed):
        signer = BlindSigner(_RSA)
        client = BlindingClient(_RSA.public_key, rng=_rng(seed))
        blinded, state = client.blind(message)
        signature = client.unblind(signer.sign_blinded(blinded), state)
        verify_blind_signature(message, signature, _RSA.public_key)

    @given(st.binary(max_size=64), st.binary(min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_unblinded_signature_deterministic(self, message, seed):
        """Whatever blinding factor was used, the unblinded signature is
        the unique FDH signature of the message."""
        signer = BlindSigner(_RSA)
        first = BlindingClient(_RSA.public_key, rng=_rng(seed))
        second = BlindingClient(_RSA.public_key, rng=_rng(seed + b"x"))
        results = []
        for client in (first, second):
            blinded, state = client.blind(message)
            results.append(client.unblind(signer.sign_blinded(blinded), state))
        assert results[0] == results[1]


class TestSchnorrProperties:
    @given(st.binary(max_size=128), st.binary(max_size=8))
    @settings(max_examples=50)
    def test_sign_verify(self, message, seed):
        signature = _SCHNORR.sign(message, rng=_rng(seed))
        _SCHNORR.public_key.verify(message, signature)

    @given(st.binary(max_size=64), st.binary(max_size=64), st.binary(max_size=8))
    @settings(max_examples=50)
    def test_signature_not_transferable(self, message, other, seed):
        from repro.errors import InvalidSignature

        if message == other:
            return
        signature = _SCHNORR.sign(message, rng=_rng(seed))
        with pytest.raises(InvalidSignature):
            _SCHNORR.public_key.verify(other, signature)


class TestKemProperties:
    @given(st.binary(max_size=64), st.binary(max_size=16), st.binary(max_size=8))
    @settings(max_examples=50)
    def test_wrap_unwrap(self, payload, context, seed):
        wrapped = _ELGAMAL.public_key.kem_wrap(payload, context=context, rng=_rng(seed))
        assert _ELGAMAL.kem_unwrap(wrapped, context=context) == payload

    @given(
        st.binary(min_size=1, max_size=64),
        st.binary(max_size=8),
        st.binary(min_size=1, max_size=8),
        st.binary(max_size=8),
    )
    @settings(max_examples=50)
    def test_context_separation(self, payload, context, delta, seed):
        wrapped = _ELGAMAL.public_key.kem_wrap(payload, context=context, rng=_rng(seed))
        other_context = context + delta
        with pytest.raises(DecryptionError):
            _ELGAMAL.kem_unwrap(wrapped, context=other_context)


class TestModeProperties:
    @given(st.binary(max_size=500), st.binary(min_size=16, max_size=16), st.binary(max_size=8))
    @settings(max_examples=50)
    def test_cbc_roundtrip(self, data, key, seed):
        assert decrypt_cbc(key, encrypt_cbc(key, data, rng=_rng(seed))) == data

    @given(st.binary(max_size=500), st.binary(min_size=16, max_size=16), st.binary(min_size=12, max_size=12))
    @settings(max_examples=50)
    def test_ctr_involution(self, data, key, nonce):
        assert ctr_transform(key, nonce, ctr_transform(key, nonce, data)) == data

    @given(
        st.binary(max_size=300),
        st.binary(min_size=16, max_size=16),
        st.binary(max_size=32),
        st.binary(max_size=8),
    )
    @settings(max_examples=50)
    def test_etm_roundtrip(self, data, key, aad, seed):
        cipher = EtmCipher(key)
        assert cipher.decrypt(cipher.encrypt(data, aad=aad, rng=_rng(seed)), aad=aad) == data

    @given(
        st.binary(max_size=100),
        st.binary(min_size=16, max_size=16),
        st.integers(min_value=0),
        st.binary(max_size=8),
    )
    @settings(max_examples=50)
    def test_etm_bitflip_always_detected(self, data, key, position, seed):
        cipher = EtmCipher(key)
        blob = bytearray(cipher.encrypt(data, rng=_rng(seed)))
        blob[position % len(blob)] ^= 0x01
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(blob))


class TestBackendProperties:
    """Parity of the arithmetic backends over random operands.

    The pure-backend properties always run; the gmpy2 class below
    re-runs the same algebra against GMP where the package exists
    (the ``backend-gmpy2`` CI lane), pinning the two implementations
    to bit-identical behavior including error semantics.
    """

    @given(
        value=st.integers(min_value=0, max_value=2**256),
        modulus=st.integers(min_value=2, max_value=2**256),
    )
    @settings(max_examples=80)
    def test_batch_invert_matches_pow(self, value, modulus):
        from repro.crypto import backend

        values = [value % modulus, (value * 3 + 1) % modulus, (value + 7) % modulus]
        try:
            expected = [pow(v, -1, modulus) for v in values]
        except ValueError:
            with pytest.raises(ValueError):
                backend.batch_invert(values, modulus)
            return
        assert backend.batch_invert(values, modulus) == expected


@pytest.mark.skipif(not _gmpy2_available(), reason="gmpy2 not installed")
class TestGmpy2ParityProperties:
    """powmod / invert / jacobi parity between pure and gmpy2."""

    @given(
        base=st.integers(min_value=0, max_value=2**512),
        exponent=st.integers(min_value=-8, max_value=2**512),
        modulus=st.integers(min_value=2, max_value=2**512),
    )
    @settings(max_examples=120)
    def test_powmod_parity(self, base, exponent, modulus):
        from repro.crypto import backend

        pure = backend.PureBackend()
        fast = backend._instantiate("gmpy2")
        try:
            expected = pure.powmod(base, exponent, modulus)
        except ValueError:
            with pytest.raises(ValueError):
                fast.powmod(base, exponent, modulus)
            return
        assert fast.powmod(base, exponent, modulus) == expected

    @given(
        value=st.integers(min_value=0, max_value=2**512),
        modulus=st.integers(min_value=1, max_value=2**512),
    )
    @settings(max_examples=120)
    def test_invert_parity(self, value, modulus):
        from repro.crypto import backend

        pure = backend.PureBackend()
        fast = backend._instantiate("gmpy2")
        try:
            expected = pure.invert(value, modulus)
        except ValueError:
            with pytest.raises(ValueError):
                fast.invert(value, modulus)
            return
        assert fast.invert(value, modulus) == expected

    @given(
        a=st.integers(min_value=-(2**512), max_value=2**512),
        n=st.integers(min_value=1, max_value=2**512).map(lambda v: v | 1),
    )
    @settings(max_examples=120)
    def test_jacobi_parity(self, a, n):
        from repro.crypto import backend

        pure = backend.PureBackend()
        fast = backend._instantiate("gmpy2")
        assert fast.jacobi(a, n) == pure.jacobi(a, n)
