"""Property-based tests over the storage structures."""

from hypothesis import given, settings, strategies as st

from repro.storage.bloom import BloomFilter
from repro.storage.engine import Database
from repro.storage.merkle import (
    MerkleTree,
    verify_inclusion,
    verify_non_inclusion,
)
from repro.storage.spent_tokens import SpentTokenStore

_tokens = st.binary(min_size=1, max_size=24)


class TestSpentTokenProperties:
    @given(st.lists(st.tuples(_tokens, st.integers(0, 10**6)), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_exactly_once_under_any_interleaving(self, events):
        """For any sequence of spend attempts, each token succeeds
        exactly once — on its first appearance — and every replay
        returns the original record."""
        store = SpentTokenStore(Database(), "prop")
        first_seen: dict[bytes, int] = {}
        for token, at in events:
            result = store.try_spend(token, at=at, transcript=at.to_bytes(4, "big"))
            if token not in first_seen:
                assert result is None
                first_seen[token] = at
            else:
                assert result is not None
                assert result.spent_at == first_seen[token]
        assert store.count() == len(first_seen)


class TestMerkleProperties:
    @given(st.sets(_tokens, min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_every_leaf_has_valid_proof(self, leaves):
        tree = MerkleTree(sorted(leaves))
        for leaf in leaves:
            assert verify_inclusion(tree.root, leaf, tree.prove_inclusion(leaf))

    @given(st.sets(_tokens, min_size=1, max_size=60), _tokens)
    @settings(max_examples=100, deadline=None)
    def test_absence_provable_exactly_when_absent(self, leaves, probe):
        tree = MerkleTree(sorted(leaves))
        if probe in leaves:
            proof = tree.prove_inclusion(probe)
            assert verify_inclusion(tree.root, probe, proof)
        else:
            proof = tree.prove_non_inclusion(probe)
            assert verify_non_inclusion(tree.root, len(tree), probe, proof)

    @given(st.sets(_tokens, min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_root_commits_to_set(self, leaves):
        """Removing any single leaf changes the root."""
        leaf_list = sorted(leaves)
        full = MerkleTree(leaf_list).root
        for index in range(len(leaf_list)):
            reduced = MerkleTree(leaf_list[:index] + leaf_list[index + 1 :]).root
            assert reduced != full


class TestBloomProperties:
    @given(st.sets(_tokens, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_never_false_negative(self, items):
        filt = BloomFilter.build(sorted(items), fp_rate=0.01)
        assert all(item in filt for item in items)

    @given(st.sets(_tokens, min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_serialization_preserves_semantics(self, items):
        filt = BloomFilter.build(sorted(items), fp_rate=0.02)
        restored = BloomFilter.from_bytes(filt.to_bytes())
        probes = [b"probe:" + item for item in items] + sorted(items)
        for probe in probes:
            assert (probe in filt) == (probe in restored)
