"""Adversarial integration tests: every attack the paper's design must
stop, attempted for real against the full system."""

import pytest

from repro import codec
from repro.core.licenses import AnonymousLicense, PersonalLicense
from repro.core.protocols.revocation import report_misuse
from repro.errors import (
    AuthenticationError,
    ComplianceError,
    DoubleRedemptionError,
    DoubleSpendError,
    InvalidSignature,
    RevokedLicenseError,
)
from repro.rel.parser import parse_rights


class TestLicenseForgery:
    def test_self_minted_license_rejected_by_device(self, fresh_deployment):
        """Mallory builds a licence for content she never bought and
        signs it with her own key."""
        from repro.crypto.rsa import generate_rsa_key
        from repro.core.licenses import sign_personal_license, kem_context

        d = fresh_deployment("forge1")
        mallory = d.add_user("mallory", balance=100)
        device = d.add_device()
        card = mallory.require_card()
        pseudonym = card.new_pseudonym()
        mallory_key = generate_rsa_key(512, rng=mallory.rng)
        license_id = mallory.rng.random_bytes(16)
        forged = sign_personal_license(
            mallory_key,
            license_id=license_id,
            content_id="song-1",
            rights=parse_rights("play; copy; export"),
            pseudonym=pseudonym,
            wrapped_key=pseudonym.kem_key.kem_wrap(
                b"\x00" * 16, context=kem_context(license_id, "song-1"), rng=mallory.rng
            ),
            issued_at=d.clock.now(),
        )
        package = d.provider.download("song-1")
        with pytest.raises(InvalidSignature):
            device.render(forged, package, card)

    def test_rights_upgrade_rejected(self, fresh_deployment):
        """Flipping 'play' to 'play; export' in a real licence kills the
        provider signature."""
        d = fresh_deployment("forge2")
        alice = d.add_user("alice", balance=100)
        device = d.add_device()
        license_ = d.buy("alice", "song-1")
        upgraded = PersonalLicense(
            license_id=license_.license_id,
            content_id=license_.content_id,
            rights=parse_rights("play; display; copy; export; transfer[count<=1]"),
            pseudonym=license_.pseudonym,
            wrapped_key=license_.wrapped_key,
            issued_at=license_.issued_at,
            signature=license_.signature,
        )
        with pytest.raises(InvalidSignature):
            device.render(upgraded, d.provider.download("song-1"), alice.require_card())

    def test_wrapped_key_transplant_rejected(self, fresh_deployment):
        """Taking the wrapped key from a cheap song's licence and
        grafting it into an expensive song's licence fails twice over:
        signature and KEM context."""
        d = fresh_deployment("forge3")
        d.provider.publish("pricey", b"EXPENSIVE", title="P", price=3)
        alice = d.add_user("alice", balance=100)
        license_cheap = d.buy("alice", "song-1")
        graft = PersonalLicense(
            license_id=license_cheap.license_id,
            content_id="pricey",
            rights=license_cheap.rights,
            pseudonym=license_cheap.pseudonym,
            wrapped_key=license_cheap.wrapped_key,
            issued_at=license_cheap.issued_at,
            signature=license_cheap.signature,
        )
        device = d.add_device()
        with pytest.raises(InvalidSignature):
            device.render(graft, d.provider.download("pricey"), alice.require_card())


class TestBearerAbuse:
    def test_copied_anonymous_license_single_redemption(self, fresh_deployment):
        """Copying the bearer bytes does not copy the right: exactly one
        of two racing redeemers wins."""
        d = fresh_deployment("bearer1")
        seller = d.add_user("seller", balance=100)
        honest = d.add_user("honest", balance=100)
        pirate = d.add_user("pirate", balance=100)
        license_ = d.buy("seller", "song-1")
        anonymous = seller.transfer_out(license_.license_id, provider=d.provider)
        copied = AnonymousLicense.from_dict(
            codec.decode(codec.encode(anonymous.as_dict()))
        )
        honest.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        with pytest.raises(DoubleRedemptionError):
            pirate.redeem(copied, provider=d.provider, issuer=d.issuer)

    def test_double_redemption_deanonymizes_cheater(self, fresh_deployment):
        d = fresh_deployment("bearer2")
        cheat = d.add_user("cheat", balance=100)
        mule = d.add_user("mule", balance=100)
        license_ = d.buy("cheat", "song-1")
        anonymous = cheat.transfer_out(license_.license_id, provider=d.provider)
        mule.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        with pytest.raises(DoubleRedemptionError) as err:
            cheat.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        result = report_misuse(d.provider, d.issuer, err.value.evidence)
        assert result.offender_user_id == "cheat"
        # The cheater's card is blocked from further certification.
        with pytest.raises(AuthenticationError):
            cheat.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        # The innocent first redeemer is untouched.
        assert d.issuer.accounts.get("mule").status == "active"

    def test_exchanged_license_cannot_be_replayed(self, fresh_deployment):
        """After exchanging, the seller replays the old licence on a
        synced device — refused via the LRL."""
        d = fresh_deployment("bearer3")
        seller = d.add_user("seller", balance=100)
        device = d.add_device()
        license_ = d.buy("seller", "song-1")
        kept_copy = PersonalLicense.from_dict(license_.as_dict())
        seller.transfer_out(license_.license_id, provider=d.provider)
        device.sync_revocations(d.provider)
        with pytest.raises(RevokedLicenseError):
            device.render(kept_copy, d.provider.download("song-1"), seller.require_card())


class TestPaymentAbuse:
    def test_coin_reuse_across_purchases_rejected(self, fresh_deployment):
        from repro.core.messages import PurchaseRequest, purchase_signing_payload

        d = fresh_deployment("pay1")
        alice = d.add_user("alice", balance=100)
        coins = alice.coins_for(3, d.bank)
        for attempt in range(2):
            certificate = alice.certificate_for_transaction(d.issuer)
            nonce = alice.rng.random_bytes(16)
            at = d.clock.now()
            payload = purchase_signing_payload(
                "song-1", certificate.fingerprint, [c.serial for c in coins], nonce, at
            )
            request = PurchaseRequest(
                content_id="song-1",
                certificate=certificate,
                coins=tuple(coins),
                nonce=nonce,
                at=at,
                signature=alice.require_card().sign(certificate.pseudonym, payload),
            )
            if attempt == 0:
                d.provider.sell(request)
            else:
                with pytest.raises(DoubleSpendError):
                    d.provider.sell(request)

    def test_coin_theft_by_request_tamper_fails(self, fresh_deployment):
        """An eavesdropper who lifts the coins out of Alice's request
        and splices them into their own request cannot spend them: the
        signature binds the coin serials to Alice's pseudonym."""
        from repro.core.messages import PurchaseRequest, purchase_signing_payload

        d = fresh_deployment("pay2")
        alice = d.add_user("alice", balance=100)
        thief = d.add_user("thief", balance=0)
        coins = alice.coins_for(3, d.bank)
        thief.certificate_for_transaction(d.issuer)
        nonce = thief.rng.random_bytes(16)
        at = d.clock.now()
        # Thief cannot produce a signature binding Alice's coins under
        # Alice's pseudonym; signing under their own cert is the best
        # they can do with stolen coin bytes... which works — coins are
        # bearer! What must NOT work is splicing coins into a request
        # signed by someone who never saw them:
        alice_cert = alice.certificate_for_transaction(d.issuer)
        payload_without_coins = purchase_signing_payload(
            "song-1", alice_cert.fingerprint, [], nonce, at
        )
        forged = PurchaseRequest(
            content_id="song-1",
            certificate=alice_cert,
            coins=tuple(coins),
            nonce=nonce,
            at=at,
            signature=alice.require_card().sign(alice_cert.pseudonym, payload_without_coins),
        )
        with pytest.raises(AuthenticationError):
            d.provider.sell(forged)


class TestComplianceBoundary:
    def test_rogue_device_never_obtains_content_key(self, fresh_deployment):
        from repro.core.actors.device import NonCompliantDevice

        d = fresh_deployment("rogue")
        alice = d.add_user("alice", balance=100)
        license_ = d.buy("alice", "song-1")
        rogue = NonCompliantDevice(clock=d.clock)
        with pytest.raises(ComplianceError):
            rogue.render(license_, d.provider.download("song-1"), alice.require_card())

    def test_expired_device_certificate_refused(self, fresh_deployment):
        from repro.core.actors.device import CompliantDevice

        d = fresh_deployment("expired")
        d.add_user("alice", balance=100)
        d.buy("alice", "song-1")
        now = d.clock.now()
        stale_cert = d.authority.certify_device(
            "dead00", model="old", capabilities=("play",),
            not_before=now - 2000, not_after=now - 1000,
        )
        device = CompliantDevice(
            stale_cert, clock=d.clock, provider_license_key=d.provider.license_key
        )
        device.sync_revocations(d.provider)
        # The card checks validity of the certificate signature; expiry
        # enforcement happens at verify(now=...) — exercise it directly:
        from repro.errors import ComplianceError as CE

        with pytest.raises(CE):
            stale_cert.verify(d.authority.public_key, now=now)
