"""The paper's privacy claims, asserted against the real system state.

Each test reads the *providers' own records* — exactly what an
honest-but-curious operator has — and checks what can and cannot be
inferred.  These are the executable versions of the claims in the
paper's security discussion.
"""

import pytest

from repro import codec
from repro.analysis import TimingAttacker, build_transaction_graph
from repro.baseline.tracking import ProfileBuilder


class TestPurchaseAnonymity:
    def test_provider_records_contain_no_identity(self, fresh_deployment):
        """Claim: the CP learns which content was bought, never by whom.
        Byte-search the provider's entire database for identity
        material."""
        d = fresh_deployment("priv1")
        alice = d.add_user("alice-unique-name", balance=100)
        d.buy("alice-unique-name", "song-1")
        card_id = alice.require_card().card_id

        register = d.provider.license_register
        for record in register.by_content("song-1"):
            assert record.blob.find(b"alice-unique-name") == -1
            assert record.blob.find(card_id) == -1
        for event in d.provider.audit_log.entries():
            flattened = codec.encode(event.payload)
            assert flattened.find(b"alice-unique-name") == -1
            assert flattened.find(card_id) == -1

    def test_two_purchases_unlinkable_in_register(self, fresh_deployment):
        """Claim: purchases by one user are mutually unlinkable.  The
        provider's register shows two distinct holders with disjoint
        records."""
        d = fresh_deployment("priv2")
        d.add_user("u", balance=100)
        a = d.buy("u", "song-1")
        b = d.buy("u", "song-1")
        assert a.holder_fingerprint != b.holder_fingerprint
        register = d.provider.license_register
        assert register.distinct_holders() == 2

    def test_payment_unlinkable_to_account(self, fresh_deployment):
        """Claim: the payment channel does not identify the buyer.  The
        coin serials the provider deposited never appear in the bank's
        withdrawal-side view (the bank only ever saw blinded values)."""
        d = fresh_deployment("priv3")
        alice = d.add_user("alice", balance=100)
        d.buy("alice", "song-1")
        # The bank's knowledge of the withdrawal is the account debit;
        # there is literally no serial stored at withdrawal time, which
        # the Bank API makes structural (withdraw_blind takes an int).
        assert d.bank.balance(alice.bank_account) < 100


class TestConsumptionPrivacy:
    def test_provider_sees_no_usage_events(self, fresh_deployment):
        """Claim: usage is invisible to the CP.  Plays update only the
        device store; the provider's audit log has no play events."""
        d = fresh_deployment("priv4")
        alice = d.add_user("alice", balance=100)
        device = d.add_device()
        d.buy("alice", "song-1")
        before = d.provider.audit_log.count()
        for _ in range(5):
            alice.play("song-1", device, provider=d.provider)
        assert d.provider.audit_log.count() == before
        assert device.usage_events() == 5


class TestTransferUnlinkability:
    def test_anonymous_license_names_nobody(self, fresh_deployment):
        d = fresh_deployment("priv5")
        d.add_user("a", balance=100)
        license_ = d.buy("a", "song-1")
        anonymous = d.users["a"].transfer_out(license_.license_id, provider=d.provider)
        wire = codec.encode(anonymous.as_dict())
        assert wire.find(b"a-card") == -1
        assert wire.find(license_.holder_fingerprint) == -1
        assert set(anonymous.as_dict()) == {"id", "content", "rights", "at", "sig"}

    def test_user_level_linkage_requires_timing(self, fresh_deployment):
        """Claim: the provider alone cannot map a transfer to *users* —
        its graph links one-time pseudonyms only."""
        d = fresh_deployment("priv6")
        d.add_user("a", balance=100)
        d.add_user("b", balance=100)
        license_ = d.buy("a", "song-1")
        d.transfer("a", "b", license_.license_id)
        graph = build_transaction_graph(d.provider)
        # The provider gets the pseudonym pair for the token…
        assert graph.stats()["transfer_pairs"] == 1
        # …but those pseudonyms appear exactly once each and carry no
        # identity; without issuer collusion the users stay hidden.
        assert graph.stats()["users"] == 0


class TestCollusionBoundary:
    def test_timing_attack_quantifies_residual_leak(self, fresh_deployment):
        """The paper concedes traffic analysis; pin the residual: with
        at-transaction certification, issuer+provider collusion links
        perfectly — the defence (pre-fetch) is what restores anonymity
        (measured in E7)."""
        d = fresh_deployment("priv7")
        alice = d.add_user("alice", balance=100)
        d.buy("alice", "song-1")
        truth = {
            lic.holder_fingerprint: alice.card.card_id
            for lic in alice.licenses.values()
        }
        outcome = TimingAttacker(window_seconds=60).attack_deployment(
            d.issuer, d.provider, truth
        )
        assert outcome.success_rate == 1.0  # the concession, measured

    def test_profiles_shatter_under_p2drm(self, fresh_deployment):
        d = fresh_deployment("priv8")
        d.add_user("heavy-user", balance=1000)
        for _ in range(5):
            d.buy("heavy-user", "song-1")
        report = ProfileBuilder(d.provider).build()
        assert report.max_profile_size == 1
        assert report.profile_count == 5


class TestEnforcementDespiteAnonymity:
    def test_anonymous_yet_enforced(self, fresh_deployment):
        """The paper's central tension, resolved: the buyer is anonymous
        AND the content stays protected (no licence, no playback)."""
        from repro.errors import ProtocolError

        d = fresh_deployment("priv9")
        d.add_user("alice", balance=100)
        freeloader = d.add_user("freeloader", balance=100)
        device = d.add_device()
        d.buy("alice", "song-1")
        # Freeloader downloads the package — free and legal…
        package = d.provider.download("song-1")
        assert package.size > 0
        # …but owns no licence, so the device has nothing to render.
        with pytest.raises(ProtocolError):
            freeloader.play("song-1", device, provider=d.provider)
