"""Full-system happy paths: the paper's lifecycle, uninterrupted."""

import pytest

from repro.core.protocols import Transcript, transfer_license


@pytest.fixture(scope="module")
def world(deployment):
    deployment.provider.publish(
        "album-2", b"ALBUM-TWO" * 128, title="Album Two", price=7
    )
    alice = deployment.add_user("e2e-alice", balance=500)
    bob = deployment.add_user("e2e-bob", balance=500)
    carol = deployment.add_user("e2e-carol", balance=500)
    device = deployment.add_device()
    return deployment, alice, bob, carol, device


class TestLifecycle:
    def test_buy_play_transfer_play(self, world):
        d, alice, bob, _, device = world
        license_ = alice.buy(
            "song-1", provider=d.provider, issuer=d.issuer, bank=d.bank
        )
        payload = alice.play("song-1", device, provider=d.provider)
        assert payload == b"SONG-ONE-PAYLOAD" * 64

        transfer_license(
            alice, bob, d.provider, d.issuer, license_.license_id
        )
        device.sync_revocations(d.provider)
        assert bob.play("song-1", device, provider=d.provider) == payload
        assert not alice.owns_content("song-1")

    def test_transfer_chain(self, world):
        """A → B → C: rights survive a chain of transfers; every hop
        revokes the previous licence."""
        d, alice, bob, carol, device = world
        license_a = alice.buy(
            "album-2", provider=d.provider, issuer=d.issuer, bank=d.bank
        )
        license_b = transfer_license(
            alice, bob, d.provider, d.issuer, license_a.license_id
        )
        license_c = transfer_license(
            bob, carol, d.provider, d.issuer, license_b.license_id
        )
        device.sync_revocations(d.provider)
        assert carol.play("album-2", device, provider=d.provider)
        assert d.provider.revocation_list.is_revoked(license_a.license_id)
        assert d.provider.revocation_list.is_revoked(license_b.license_id)
        assert not d.provider.revocation_list.is_revoked(license_c.license_id)

    def test_multiple_contents_multiple_devices(self, world):
        d, alice, *_ = world
        device_eu = d.add_device(region="eu")
        device_us = d.add_device(region="us")
        alice.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        alice.buy("album-2", provider=d.provider, issuer=d.issuer, bank=d.bank)
        assert alice.play("song-1", device_eu, provider=d.provider)
        assert alice.play("album-2", device_us, provider=d.provider)

    def test_money_conservation(self, fresh_deployment):
        """Credits never appear or vanish: user debit == provider credit
        across an arbitrary session."""
        d = fresh_deployment("money")
        alice = d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=50)
        d.buy("alice", "song-1")
        d.buy("bob", "song-1")
        license_ = d.buy("alice", "song-1")
        d.transfer("alice", "bob", license_.license_id)
        user_balances = (
            d.bank.balance(alice.bank_account)
            + d.bank.balance(bob.bank_account)
            + alice.wallet_value()
            + bob.wallet_value()
        )
        provider_balance = d.bank.balance("content-provider-account")
        assert user_balances + provider_balance == 150

    def test_audit_chains_valid_after_everything(self, world):
        d, *_ = world
        assert d.provider.audit_log.verify_chain() > 0
        assert d.issuer.audit_log.verify_chain() > 0

    def test_full_transcripted_run(self, fresh_deployment):
        d = fresh_deployment("transcripted")
        alice = d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=100)
        transcript = Transcript()
        license_ = alice.buy(
            "song-1", provider=d.provider, issuer=d.issuer, bank=d.bank,
            transcript=transcript,
        )
        assert transcript.total_bytes > 0
        transfer = Transcript()
        transfer_license(
            alice, bob, d.provider, d.issuer, license_.license_id,
            transcript=transfer,
        )
        assert transfer.protocol == "transfer"
        assert transfer.message_count == 5
