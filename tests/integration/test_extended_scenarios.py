"""Extended scenarios: multi-provider markets, production-size groups,
baseline device sync, freshness boundaries, wallet behaviour."""

import pytest

from repro.core.actors.provider import REQUEST_FRESHNESS_WINDOW, ContentProvider
from repro.errors import AuthenticationError, RevokedLicenseError


class TestMultiProviderMarket:
    def test_one_credential_system_many_stores(self, fresh_deployment):
        """Pseudonym certificates are issuer-scoped, not store-scoped:
        the same card shops at two independent providers; neither can
        link the two purchases, and each keeps its own records."""
        d = fresh_deployment("multi1")
        second = ContentProvider(
            rng=d.rng.fork("second-provider"),
            clock=d.clock,
            issuer_certificate_key=d.issuer.certificate_key,
            bank=d.bank,
            license_key_bits=512,
            name="second-store",
        )
        second.publish("other-album", b"OTHER" * 64, title="Other", price=2)
        alice = d.add_user("alice", balance=100)
        first_license = alice.buy(
            "song-1", provider=d.provider, issuer=d.issuer, bank=d.bank
        )
        second_license = alice.buy(
            "other-album", provider=second, issuer=d.issuer, bank=d.bank
        )
        assert first_license.holder_fingerprint != second_license.holder_fingerprint
        assert d.provider.license_register.get(second_license.license_id) is None
        assert second.license_register.get(first_license.license_id) is None

    def test_license_from_one_store_invalid_at_other(self, fresh_deployment):
        """A licence signed by store A fails verification against store
        B's key — devices pin the provider key."""
        from repro.errors import InvalidSignature

        d = fresh_deployment("multi2")
        second = ContentProvider(
            rng=d.rng.fork("second-provider-2"),
            clock=d.clock,
            issuer_certificate_key=d.issuer.certificate_key,
            bank=d.bank,
            license_key_bits=512,
            name="second-store-2",
        )
        d.add_user("alice", balance=100)
        license_ = d.buy("alice", "song-1")
        with pytest.raises(InvalidSignature):
            license_.verify(second.license_key)


@pytest.mark.slow
class TestProductionGroup:
    def test_full_flow_on_modp1536(self):
        """One end-to-end purchase+transfer on the production-size
        group (1536-bit MODP) — the fast test group is not load-bearing
        for correctness."""
        from repro.core.system import build_deployment

        d = build_deployment(seed="modp-e2e", rsa_bits=512, group_name="modp-1536")
        d.provider.publish("song-1", b"BIGGROUP" * 32, title="S", price=1)
        d.add_user("alice", balance=10)
        bob = d.add_user("bob", balance=10)
        license_ = d.buy("alice", "song-1")
        d.transfer("alice", "bob", license_.license_id)
        device = d.add_device()
        device.sync_revocations(d.provider)
        assert bob.play("song-1", device, provider=d.provider)


class TestFreshnessBoundaries:
    def _request(self, d, user, at):
        from repro.core.messages import PurchaseRequest, purchase_signing_payload

        certificate = user.certificate_for_transaction(d.issuer)
        coins = user.coins_for(3, d.bank)
        nonce = user.rng.random_bytes(16)
        payload = purchase_signing_payload(
            "song-1", certificate.fingerprint, [c.serial for c in coins], nonce, at
        )
        return PurchaseRequest(
            content_id="song-1",
            certificate=certificate,
            coins=tuple(coins),
            nonce=nonce,
            at=at,
            signature=user.require_card().sign(certificate.pseudonym, payload),
        )

    def test_request_at_window_edge_accepted(self, fresh_deployment):
        d = fresh_deployment("fresh1")
        user = d.add_user("u", balance=100)
        request = self._request(d, user, d.clock.now() - REQUEST_FRESHNESS_WINDOW)
        d.provider.sell(request)  # exactly at the boundary: accepted

    def test_future_timestamp_rejected(self, fresh_deployment):
        d = fresh_deployment("fresh2")
        user = d.add_user("u", balance=100)
        request = self._request(
            d, user, d.clock.now() + REQUEST_FRESHNESS_WINDOW + 1
        )
        with pytest.raises(AuthenticationError, match="freshness"):
            d.provider.sell(request)


class TestWalletBehaviour:
    def test_partial_wallet_triggers_one_withdrawal(self, fresh_deployment):
        """Holding a 20 but needing 20+5+1: the agent withdraws the
        full decomposition fresh rather than mixing (simple policy,
        pinned by test)."""
        from repro.core.protocols.payment import withdraw_coins

        d = fresh_deployment("wallet-partial")
        user = d.add_user("u", balance=100)
        withdraw_coins(user, d.bank, 20)
        assert user.wallet_value() == 20
        coins = user.coins_for(26, d.bank)
        assert sum(c.value for c in coins) == 26
        # The lone 20 stays in the wallet; a fresh 26 was withdrawn.
        assert user.wallet_value() == 20
        assert d.bank.balance(user.bank_account) == 100 - 20 - 26

    def test_overpayment_never_happens(self, fresh_deployment):
        d = fresh_deployment("wallet-exact")
        user = d.add_user("u", balance=100)
        for amount in (1, 3, 7, 26, 41):
            coins = user.coins_for(amount, d.bank)
            assert sum(c.value for c in coins) == amount


class TestBaselineDeviceSync:
    def test_baseline_transfer_revocation_reaches_devices(self, fresh_deployment):
        """The baseline shares the LRL machinery: after an identified
        transfer, the sender's old licence dies on synced devices."""
        from repro.baseline.identity_drm import (
            BaselineProvider,
            BaselineUser,
            baseline_purchase,
            baseline_transfer,
        )
        from repro.core.actors.device import CompliantDevice
        from repro.core.identity import SmartCard
        from repro.core.licenses import PersonalLicense

        d = fresh_deployment("bl-sync")
        provider = BaselineProvider(
            rng=d.rng.fork("bl-sync-provider"),
            clock=d.clock,
            bank=d.bank,
            license_key_bits=512,
            name="bl-sync-provider",
        )
        provider.publish("song-1", b"X" * 64, title="S", price=1)
        users = {}
        for name in ("alice", "bob"):
            card = SmartCard(
                f"bls-{name}".encode().ljust(16, b"_"),
                d.group,
                rng=d.rng.fork(f"bls-{name}"),
                authority_key=d.authority.public_key,
            )
            user = BaselineUser(name, card)
            provider.register_user(user)
            d.bank.open_account(user.bank_account, initial_balance=10)
            users[name] = user
        license_ = baseline_purchase(users["alice"], provider, "song-1", clock=d.clock)
        kept = PersonalLicense.from_dict(license_.as_dict())
        baseline_transfer(
            users["alice"], users["bob"], provider, license_.license_id, clock=d.clock
        )
        now = d.clock.now()
        certificate = d.authority.certify_device(
            "b15c0de5", model="bl-player", capabilities=("play",),
            not_before=now, not_after=now + 10**9,
        )
        device = CompliantDevice(
            certificate, clock=d.clock, provider_license_key=provider.license_key
        )
        device.sync_revocations(provider)
        with pytest.raises(RevokedLicenseError):
            device.render(kept, provider.download("song-1"), users["alice"].card)
        # Bob's new licence plays.
        new_license = next(iter(users["bob"].licenses.values()))
        assert device.render(new_license, provider.download("song-1"), users["bob"].card)
