"""Top-level utilities: clocks and the operation counter."""

import pytest

from repro import instrument
from repro.clock import SimClock, SystemClock


class TestSimClock:
    def test_starts_in_paper_era(self):
        clock = SimClock()
        assert 1_000_000_000 < clock.now() < 1_200_000_000  # 2001–2008

    def test_advance(self):
        clock = SimClock(1000)
        assert clock.advance(60) == 1060
        assert clock.now() == 1060

    def test_no_time_travel(self):
        clock = SimClock(1000)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.set(999)

    def test_set_forward(self):
        clock = SimClock(1000)
        clock.set(5000)
        assert clock.now() == 5000


class TestSystemClock:
    def test_roughly_now(self):
        import time

        assert abs(SystemClock().now() - time.time()) < 5


class TestOpCounter:
    def test_tick_outside_scope_is_noop(self):
        instrument.tick("orphan")  # must not raise or leak anywhere
        with instrument.measure() as ops:
            pass
        assert ops.counts == {}

    def test_tick_inside_scope(self):
        with instrument.measure() as ops:
            instrument.tick("op.a")
            instrument.tick("op.a", 2)
            instrument.tick("op.b")
        assert ops.counts == {"op.a": 3, "op.b": 1}
        assert ops.total("op.") == 4
        assert ops.total("op.a") == 3

    def test_nested_scopes_see_everything(self):
        with instrument.measure() as outer:
            instrument.tick("before")
            with instrument.measure() as inner:
                instrument.tick("during")
            instrument.tick("after")
        assert inner.counts == {"during": 1}
        assert outer.counts == {"before": 1, "during": 1, "after": 1}

    def test_scope_cleanup_on_exception(self):
        with pytest.raises(RuntimeError):
            with instrument.measure():
                raise RuntimeError("boom")
        # A later scope is unaffected.
        with instrument.measure() as ops:
            instrument.tick("clean")
        assert ops.counts == {"clean": 1}

    def test_as_dict_sorted(self):
        with instrument.measure() as ops:
            instrument.tick("z")
            instrument.tick("a")
        assert list(ops.as_dict()) == ["a", "z"]


class TestDurableDeployment:
    def test_actor_databases_are_separate_files(self, tmp_path):
        from repro.core.system import build_deployment

        base = str(tmp_path / "deploy.db")
        d = build_deployment(seed="durable", rsa_bits=512, db_path=base)
        d.provider.publish("song-1", b"X" * 64, title="S", price=1)
        d.add_user("alice", balance=10)
        d.buy("alice", "song-1")
        # Distinct files exist and hold distinct table contents.
        assert (tmp_path / "deploy.db.issuer").exists()
        assert (tmp_path / "deploy.db.provider").exists()
        assert (tmp_path / "deploy.db.bank").exists()
        # The two audit logs are separate views (no cross-pollution).
        issuer_events = {e.event for e in d.issuer.audit_log.entries()}
        provider_events = {e.event for e in d.provider.audit_log.entries()}
        assert "user_enrolled" in issuer_events
        assert "user_enrolled" not in provider_events
        assert "license_issued" in provider_events
        assert "license_issued" not in issuer_events

    def test_provider_state_survives_reopen(self, tmp_path):
        """The provider's stores are durable: a fresh store object over
        the same file sees the licences, revocations and audit chain."""
        from repro.core.system import build_deployment
        from repro.storage.engine import Database
        from repro.storage.licenses import LicenseStore
        from repro.storage.audit import AuditLog
        from repro.storage.revocation import RevocationList

        base = str(tmp_path / "persist.db")
        d = build_deployment(seed="persist", rsa_bits=512, db_path=base)
        d.provider.publish("song-1", b"X" * 64, title="S", price=1)
        d.add_user("alice", balance=10)
        d.add_user("bob", balance=10)
        license_ = d.buy("alice", "song-1")
        d.transfer("alice", "bob", license_.license_id)

        reopened = Database(base + ".provider")
        assert LicenseStore(reopened).get(license_.license_id) is not None
        assert RevocationList(reopened).is_revoked(license_.license_id)
        assert AuditLog(reopened).verify_chain() > 0
