"""Transaction graphs over provider records."""


from repro.analysis.linkability import TransactionGraph, build_transaction_graph


class TestGraphAssembly:
    def test_issue_creates_nodes(self):
        graph = TransactionGraph()
        graph.add_issue(b"L1" * 8, "song", b"PSEUD-1", at=10)
        stats = graph.stats()
        assert stats["pseudonyms"] == 1
        assert stats["nodes"] == 3  # licence, content, pseudonym

    def test_transfer_links_pseudonyms(self):
        graph = TransactionGraph()
        graph.add_issue(b"L1" * 8, "song", b"PSEUD-A", at=10)
        graph.add_exchange(b"L1" * 8, b"TOK" + b"0" * 13, at=20)
        graph.add_redemption(b"TOK" + b"0" * 13, b"L2" * 8, at=30)
        graph.add_issue(b"L2" * 8, "song", b"PSEUD-B", at=30)
        pairs = graph.transfer_pairs()
        assert len(pairs) == 1
        clusters = graph.linked_pseudonym_clusters()
        assert max(len(c) for c in clusters) == 2

    def test_shared_content_does_not_cluster(self):
        """Two buyers of the same song must NOT be structurally linked —
        content nodes are excluded from the component analysis."""
        graph = TransactionGraph()
        graph.add_issue(b"L1" * 8, "hit-song", b"PSEUD-A", at=10)
        graph.add_issue(b"L2" * 8, "hit-song", b"PSEUD-B", at=11)
        clusters = graph.linked_pseudonym_clusters()
        assert all(len(c) == 1 for c in clusters)
        assert len(clusters) == 2

    def test_identity_holders_typed_as_users(self):
        graph = TransactionGraph()
        graph.add_issue(b"L1" * 8, "song", "alice", at=10)
        stats = graph.stats()
        assert stats["users"] == 1
        assert stats["pseudonyms"] == 0

    def test_anonymous_issue_has_no_holder_edge(self):
        graph = TransactionGraph()
        graph.add_issue(b"T1" * 8, "song", None, at=10)
        assert graph.stats()["pseudonyms"] == 0


class TestFromDeployment:
    def test_p2drm_graph_shape(self, fresh_deployment):
        d = fresh_deployment("graph-p2drm")
        d.add_user("alice", balance=100)
        d.add_user("bob", balance=100)
        license_ = d.buy("alice", "song-1")
        d.buy("bob", "song-1")
        d.transfer("alice", "bob", license_.license_id)
        graph = build_transaction_graph(d.provider)
        stats = graph.stats()
        # 3 purchases+redemption pseudonyms: alice, bob, bob-redeem.
        assert stats["pseudonyms"] == 3
        assert stats["users"] == 0
        assert stats["transfer_pairs"] == 1
        # The transfer links exactly two pseudonyms; the other stays alone.
        assert stats["largest_cluster"] == 2

    def test_fresh_pseudonyms_mean_one_license_per_cluster(self, fresh_deployment):
        d = fresh_deployment("graph-fresh")
        d.add_user("u", balance=100)
        for _ in range(3):
            d.buy("u", "song-1")
        graph = build_transaction_graph(d.provider)
        # Same human, three purchases — provider sees three unrelated
        # singleton pseudonym clusters.
        clusters = graph.linked_pseudonym_clusters()
        assert len(clusters) == 3
        assert all(len(c) == 1 for c in clusters)

    def test_reused_pseudonym_clusters_purchases(self, fresh_deployment):
        d = fresh_deployment("graph-reuse")
        d.add_user("u", balance=100, fresh_pseudonym_per_transaction=False)
        for _ in range(3):
            d.buy("u", "song-1")
        graph = build_transaction_graph(d.provider)
        clusters = graph.linked_pseudonym_clusters()
        assert len(clusters) == 1  # one pseudonym node carries all three
        (cluster,) = clusters
        assert len(cluster) == 1
        pseudonym_node = next(iter(cluster))
        licence_neighbors = [
            n for n in graph.graph.neighbors(pseudonym_node)
            if graph.graph.nodes[n]["kind"] == "license"
        ]
        assert len(licence_neighbors) == 3
