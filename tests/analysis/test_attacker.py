"""Timing attacker: event extraction and the join logic."""

import pytest

from repro.analysis.attacker import (
    AttackOutcome,
    CertificationEvent,
    TimingAttacker,
    TransactionEvent,
)


def cert(card, at):
    return CertificationEvent(card_id=card, at=at)


def tx(pseudonym, at, kind="purchase"):
    return TransactionEvent(pseudonym=pseudonym, at=at, kind=kind)


class TestJoinLogic:
    def test_single_candidate_is_guessed(self):
        attacker = TimingAttacker(window_seconds=100)
        outcome = attacker.attack(
            [cert(b"cardA", 50)],
            [tx(b"p1", 100)],
            {b"p1": b"cardA"},
        )
        assert outcome.success_rate == 1.0
        assert outcome.uniqueness_rate == 1.0
        assert outcome.mean_anonymity_set == 1.0

    def test_out_of_window_cert_missed(self):
        attacker = TimingAttacker(window_seconds=10)
        outcome = attacker.attack(
            [cert(b"cardA", 50)],
            [tx(b"p1", 100)],
            {b"p1": b"cardA"},
        )
        assert outcome.success_rate == 0.0
        assert outcome.candidate_sets == [[]]

    def test_most_recent_guess_rule(self):
        attacker = TimingAttacker(window_seconds=100)
        outcome = attacker.attack(
            [cert(b"old", 10), cert(b"new", 90)],
            [tx(b"p1", 100)],
            {b"p1": b"new"},
        )
        assert outcome.guesses == [b"new"]
        assert outcome.success_rate == 1.0
        assert outcome.mean_anonymity_set == 2.0

    def test_wrong_most_recent_fails(self):
        attacker = TimingAttacker(window_seconds=100)
        outcome = attacker.attack(
            [cert(b"true", 10), cert(b"decoy", 90)],
            [tx(b"p1", 100)],
            {b"p1": b"true"},
        )
        assert outcome.success_rate == 0.0
        assert outcome.mean_anonymity_set == 2.0

    def test_unknown_pseudonyms_skipped(self):
        attacker = TimingAttacker(window_seconds=100)
        outcome = attacker.attack(
            [cert(b"cardA", 50)],
            [tx(b"mystery", 100)],
            {},
        )
        assert outcome.truths == []

    def test_window_validation(self):
        with pytest.raises(ValueError):
            TimingAttacker(window_seconds=0)


class TestEventExtraction:
    def test_deployment_extraction(self, fresh_deployment):
        d = fresh_deployment("extract")
        d.add_user("alice", balance=100)
        d.add_user("bob", balance=100)
        license_ = d.buy("alice", "song-1")
        d.clock.advance(100)
        d.transfer("alice", "bob", license_.license_id)
        certifications = TimingAttacker.certification_events(d.issuer)
        transactions = TimingAttacker.transaction_events(d.provider)
        # alice purchase cert + bob redemption cert
        assert len(certifications) == 2
        kinds = sorted(t.kind for t in transactions)
        assert kinds == ["purchase", "redemption"]

    def test_attack_deployment_end_to_end(self, fresh_deployment):
        d = fresh_deployment("attack-e2e")
        alice = d.add_user("alice", balance=100)
        d.buy("alice", "song-1")
        ground_truth = {
            license_.holder_fingerprint: alice.card.card_id
            for license_ in alice.licenses.values()
        }
        outcome = TimingAttacker(window_seconds=3600).attack_deployment(
            d.issuer, d.provider, ground_truth
        )
        # Certification happens at purchase time: trivially linkable.
        assert outcome.success_rate == 1.0

    def test_summary_shape(self):
        outcome = AttackOutcome(
            candidate_sets=[[b"a"], [b"a", b"b"]],
            guesses=[b"a", None],
            truths=[b"a", b"b"],
        )
        summary = outcome.summary()
        assert summary["transactions"] == 2
        assert summary["success_rate"] == 0.5
        assert summary["mean_anonymity_set"] == 1.5
