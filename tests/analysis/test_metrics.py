"""Anonymity metrics: entropy, effective set size, linkage rates."""

import math

import pytest

from repro.analysis.metrics import (
    anonymity_set_entropy,
    effective_anonymity_size,
    linkage_success_rate,
    mean_anonymity_set_size,
    uniqueness_rate,
)


class TestEntropy:
    def test_uniform_distribution(self):
        distribution = {f"u{i}": 1.0 for i in range(8)}
        assert anonymity_set_entropy(distribution) == pytest.approx(3.0)
        assert effective_anonymity_size(distribution) == pytest.approx(8.0)

    def test_single_candidate_zero_entropy(self):
        assert anonymity_set_entropy({"u": 5.0}) == 0.0
        assert effective_anonymity_size({"u": 5.0}) == 1.0

    def test_empty_distribution(self):
        assert anonymity_set_entropy({}) == 0.0

    def test_zero_mass_entries_ignored(self):
        distribution = {"a": 1.0, "b": 1.0, "dead": 0.0}
        assert anonymity_set_entropy(distribution) == pytest.approx(1.0)

    def test_skew_reduces_effective_size(self):
        uniform = {f"u{i}": 1.0 for i in range(4)}
        skewed = {"u0": 100.0, "u1": 1.0, "u2": 1.0, "u3": 1.0}
        assert effective_anonymity_size(skewed) < effective_anonymity_size(uniform)

    def test_unnormalized_invariance(self):
        a = {"x": 1.0, "y": 3.0}
        b = {"x": 10.0, "y": 30.0}
        assert anonymity_set_entropy(a) == pytest.approx(anonymity_set_entropy(b))

    def test_known_binary_entropy(self):
        distribution = {"x": 0.25, "y": 0.75}
        expected = -(0.25 * math.log2(0.25) + 0.75 * math.log2(0.75))
        assert anonymity_set_entropy(distribution) == pytest.approx(expected)


class TestLinkageRate:
    def test_perfect_and_zero(self):
        assert linkage_success_rate(["a", "b"], ["a", "b"]) == 1.0
        assert linkage_success_rate(["x", "y"], ["a", "b"]) == 0.0

    def test_abstentions_count_as_failures(self):
        assert linkage_success_rate([None, "a"], ["a", "a"]) == 0.5

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            linkage_success_rate(["a"], ["a", "b"])

    def test_empty(self):
        assert linkage_success_rate([], []) == 0.0


class TestSetStatistics:
    def test_mean_size(self):
        assert mean_anonymity_set_size([["a"], ["a", "b", "c"]]) == 2.0
        assert mean_anonymity_set_size([]) == 0.0

    def test_uniqueness_rate(self):
        assert uniqueness_rate([["a"], ["a", "b"], ["c"]]) == pytest.approx(2 / 3)
        assert uniqueness_rate([]) == 0.0
