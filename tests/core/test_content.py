"""Content packaging: confidentiality, header binding, determinism."""

import pytest

from repro.core.content import (
    CONTENT_KEY_SIZE,
    ContentPackage,
    pack_content,
    unpack_content,
)
from repro.errors import DecryptionError


class TestPackUnpack:
    def test_roundtrip(self, rng):
        payload = b"MEDIA" * 1000
        package, key = pack_content("c1", payload, title="T", rng=rng)
        assert unpack_content(package, key) == payload
        assert len(key) == CONTENT_KEY_SIZE

    def test_wrong_key_rejected(self, rng):
        package, _ = pack_content("c1", b"media", rng=rng)
        with pytest.raises(DecryptionError):
            unpack_content(package, rng.random_bytes(CONTENT_KEY_SIZE))

    def test_bad_key_size_rejected(self, rng):
        package, _ = pack_content("c1", b"media", rng=rng)
        with pytest.raises(DecryptionError):
            unpack_content(package, b"short")

    def test_fresh_key_per_packaging(self, rng):
        _, key_a = pack_content("c1", b"m", rng=rng)
        _, key_b = pack_content("c1", b"m", rng=rng)
        assert key_a != key_b

    def test_empty_payload(self, rng):
        package, key = pack_content("c1", b"", rng=rng)
        assert unpack_content(package, key) == b""


class TestHeaderBinding:
    def test_repackaging_under_other_id_rejected(self, rng):
        """Moving ciphertext into a container with a different content
        id breaks the AAD binding — catalog-swap attacks fail."""
        package, key = pack_content("real-id", b"media", title="T", rng=rng)
        forged = ContentPackage(
            content_id="other-id",
            title=package.title,
            media_type=package.media_type,
            ciphertext=package.ciphertext,
        )
        with pytest.raises(DecryptionError):
            unpack_content(forged, key)

    def test_title_is_bound_too(self, rng):
        package, key = pack_content("c1", b"media", title="Real", rng=rng)
        forged = ContentPackage(
            content_id=package.content_id,
            title="Forged",
            media_type=package.media_type,
            ciphertext=package.ciphertext,
        )
        with pytest.raises(DecryptionError):
            unpack_content(forged, key)

    def test_ciphertext_tamper_rejected(self, rng):
        package, key = pack_content("c1", b"media-payload", rng=rng)
        body = bytearray(package.ciphertext)
        body[20] ^= 1
        forged = ContentPackage(
            content_id=package.content_id,
            title=package.title,
            media_type=package.media_type,
            ciphertext=bytes(body),
        )
        with pytest.raises(DecryptionError):
            unpack_content(forged, key)


class TestSerialization:
    def test_bytes_roundtrip(self, rng):
        package, key = pack_content("c1", b"payload", title="T", media_type="audio/mp3", rng=rng)
        restored = ContentPackage.from_bytes(package.to_bytes())
        assert restored == package
        assert unpack_content(restored, key) == b"payload"

    def test_identical_package_for_everyone(self, rng):
        """The same package bytes serve every buyer — the download step
        cannot distinguish users."""
        package, _ = pack_content("c1", b"payload", rng=rng)
        assert package.to_bytes() == package.to_bytes()

    def test_size_property(self, rng):
        package, _ = pack_content("c1", b"x" * 100, rng=rng)
        assert package.size == len(package.ciphertext)
