"""Batch validation paths: provider.sell_batch, bank.deposit_batch,
issuer.issue_blind_certificates."""

import dataclasses

import pytest

from repro import instrument
from repro.core.messages import Coin
from repro.core.protocols import withdraw_coins
from repro.core.protocols.acquisition import accept_license, build_purchase_request
from repro.crypto.schnorr import SchnorrSignature
from repro.errors import (
    AuthenticationError,
    DoubleSpendError,
    InvalidSignature,
    PaymentError,
    UnknownContentError,
)


@pytest.fixture()
def batch_deployment(fresh_deployment):
    return fresh_deployment(seed="batch-actors")


def _requests(deployment, count, *, content_id="song-1", user=None):
    user = user or deployment.add_user(f"batch-buyer-{count}", balance=1000)
    return user, [
        build_purchase_request(
            user, deployment.provider, deployment.issuer, deployment.bank, content_id
        )
        for _ in range(count)
    ]


class TestSellBatch:
    def test_all_valid_requests_yield_licenses(self, batch_deployment):
        d = batch_deployment
        user, requests = _requests(d, 5)
        results = d.provider.sell_batch(requests)
        assert len(results) == 5
        for request, license_ in zip(requests, results):
            assert not isinstance(license_, Exception)
            accept_license(user, d.provider, request, license_)
        assert len(user.licenses) == 5

    def test_batch_cheaper_than_sequential_in_group_ops(self, fresh_deployment):
        d_batch = fresh_deployment(seed="batch-cost-a")
        d_seq = fresh_deployment(seed="batch-cost-b")
        _, requests = _requests(d_batch, 6)
        _, sequential = _requests(d_seq, 6)
        with instrument.measure() as batched:
            d_batch.provider.sell_batch(requests)
        with instrument.measure() as one_by_one:
            for request in sequential:
                d_seq.provider.sell(request)
        assert batched.get("modexp") < one_by_one.get("modexp")
        assert batched.get("schnorr.batch_verify") == 1

    def test_one_forged_signature_rejects_only_that_request(self, batch_deployment):
        d = batch_deployment
        user, requests = _requests(d, 4)
        bad = requests[2]
        requests[2] = dataclasses.replace(
            bad,
            signature=SchnorrSignature(
                challenge=bad.signature.challenge,
                response=(bad.signature.response + 1) % d.group.q,
                commitment=bad.signature.commitment,
            ),
        )
        results = d.provider.sell_batch(requests)
        assert isinstance(results[2], AuthenticationError)
        for index in (0, 1, 3):
            assert not isinstance(results[index], Exception)

    def test_unknown_content_rejected_per_request(self, batch_deployment):
        d = batch_deployment
        user, requests = _requests(d, 2)
        ghost = build_purchase_request(user, d.provider, d.issuer, d.bank, "song-1")
        ghost = dataclasses.replace(ghost, content_id="no-such-song")
        results = d.provider.sell_batch(requests + [ghost])
        assert isinstance(results[2], (UnknownContentError, AuthenticationError))
        assert not isinstance(results[0], Exception)
        assert not isinstance(results[1], Exception)

    def test_replayed_request_in_batch_rejected_once(self, batch_deployment):
        d = batch_deployment
        user, requests = _requests(d, 1)
        results = d.provider.sell_batch([requests[0], requests[0]])
        outcomes = [isinstance(result, Exception) for result in results]
        assert outcomes == [False, True]
        assert isinstance(results[1], AuthenticationError)

    def test_double_spent_coin_across_batch(self, batch_deployment):
        d = batch_deployment
        user, requests = _requests(d, 1)
        first = requests[0]
        second = build_purchase_request(user, d.provider, d.issuer, d.bank, "song-1")
        second = dataclasses.replace(second, coins=first.coins)
        # The coin swap invalidates the signature over the coin serials,
        # so re-sign the second request under its own pseudonym.
        signature = user.card.sign(
            second.certificate.pseudonym, second.signing_payload()
        )
        second = dataclasses.replace(second, signature=signature)
        results = d.provider.sell_batch([first, second])
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], DoubleSpendError)

    def test_empty_batch(self, batch_deployment):
        assert batch_deployment.provider.sell_batch([]) == []


class TestBankBatch:
    def test_deposit_batch_credits_once_per_coin(self, batch_deployment):
        d = batch_deployment
        user = d.add_user("depositor", balance=100)
        coins = withdraw_coins(user, d.bank, 26)  # 20 + 5 + 1
        before = d.bank.balance("content-provider-account")
        with instrument.measure() as ops:
            d.bank.deposit_batch("content-provider-account", coins)
        assert d.bank.balance("content-provider-account") == before + 26
        # one screening op per denomination key at most
        assert ops.get("rsa.public_op") <= len({coin.value for coin in coins})
        for coin in coins:
            assert d.bank.is_spent(coin)

    def test_duplicate_serial_within_batch_rejected(self, batch_deployment):
        d = batch_deployment
        user = d.add_user("doubler", balance=100)
        (coin,) = withdraw_coins(user, d.bank, 1)
        before = d.bank.balance("content-provider-account")
        with pytest.raises(DoubleSpendError):
            d.bank.deposit_batch("content-provider-account", [coin, coin])
        # rejected before any balance change
        assert d.bank.balance("content-provider-account") == before
        assert not d.bank.is_spent(coin)

    def test_already_spent_coin_rejected(self, batch_deployment):
        d = batch_deployment
        user = d.add_user("spender", balance=100)
        coins = withdraw_coins(user, d.bank, 2)
        d.bank.deposit("content-provider-account", coins[0])
        with pytest.raises(DoubleSpendError):
            d.bank.deposit_batch("content-provider-account", coins)
        assert not d.bank.is_spent(coins[1])

    def test_forged_coin_rejected(self, batch_deployment):
        d = batch_deployment
        user = d.add_user("forger", balance=100)
        coins = withdraw_coins(user, d.bank, 2)
        fake = Coin(
            serial=coins[0].serial,
            value=coins[0].value,
            signature=bytes(len(coins[0].signature)),
        )
        with pytest.raises(InvalidSignature):
            d.bank.deposit_batch("content-provider-account", [coins[1], fake])

    def test_unknown_account_rejected(self, batch_deployment):
        with pytest.raises(PaymentError):
            batch_deployment.bank.deposit_batch("nobody", [])

    def test_verify_coins_spans_denominations(self, batch_deployment):
        d = batch_deployment
        user = d.add_user("mixed", balance=100)
        coins = withdraw_coins(user, d.bank, 26)
        assert len({coin.value for coin in coins}) > 1
        d.bank.verify_coins(coins)


class TestIssuerBatch:
    def test_batch_blind_certification(self, batch_deployment, rng):
        d = batch_deployment
        user = d.add_user("heavy-user", balance=10)
        card = user.card
        blinded = [rng.randint_range(1, d.issuer.certificate_key.n) for _ in range(3)]
        before = len(d.issuer.audit_log.entries(event="pseudonym_certified"))
        signatures = d.issuer.issue_blind_certificates(card.card_id, blinded)
        assert len(signatures) == 3
        after = len(d.issuer.audit_log.entries(event="pseudonym_certified"))
        assert after - before == 3  # one audit record per credential
        for blind, signature in zip(blinded, signatures):
            assert d.issuer.certificate_key.public_op(signature) == blind

    def test_unknown_card_rejected(self, batch_deployment):
        with pytest.raises(AuthenticationError):
            batch_deployment.issuer.issue_blind_certificates(b"\x00" * 16, [1, 2])

    def test_blocked_card_rejected(self, batch_deployment, rng):
        from repro.storage.accounts import STATUS_BLOCKED

        d = batch_deployment
        user = d.add_user("blocked-user", balance=10)
        d.issuer.accounts.set_status(user.user_id, STATUS_BLOCKED)
        with pytest.raises(AuthenticationError):
            d.issuer.issue_blind_certificates(user.card.card_id, [123])
