"""Content provider: sale/exchange/redeem handlers and their refusals."""

import pytest

from repro.core.messages import (
    ExchangeRequest,
    PurchaseRequest,
    RedeemRequest,
    exchange_signing_payload,
    purchase_signing_payload,
    redeem_signing_payload,
)
from repro.errors import (
    AuthenticationError,
    DoubleRedemptionError,
    DoubleSpendError,
    PaymentError,
    ProtocolError,
    RevokedLicenseError,
    StorageError,
    UnknownContentError,
)


@pytest.fixture(scope="module")
def users(deployment):
    return {
        name: deployment.add_user(name, balance=1000)
        for name in ("buyer", "seller", "receiver", "mallory")
    }


def make_purchase_request(deployment, user, content_id="song-1", *, coins=None, at=None, nonce=None):
    """Assemble a raw purchase request (so tests can tamper with it)."""
    certificate = user.certificate_for_transaction(deployment.issuer)
    if coins is None:
        coins = user.coins_for(deployment.provider.price(content_id), deployment.bank)
    nonce = nonce or user.rng.random_bytes(16)
    at = at if at is not None else deployment.clock.now()
    payload = purchase_signing_payload(
        content_id, certificate.fingerprint, [c.serial for c in coins], nonce, at
    )
    signature = user.require_card().sign(certificate.pseudonym, payload)
    return PurchaseRequest(
        content_id=content_id,
        certificate=certificate,
        coins=tuple(coins),
        nonce=nonce,
        at=at,
        signature=signature,
    )


class TestSell:
    def test_happy_path(self, deployment, users):
        request = make_purchase_request(deployment, users["buyer"])
        license_ = deployment.provider.sell(request)
        license_.verify(deployment.provider.license_key)
        assert license_.content_id == "song-1"
        assert license_.holder_fingerprint == request.certificate.fingerprint

    def test_unknown_content_rejected(self, deployment, users):
        request = make_purchase_request(deployment, users["buyer"])
        forged = PurchaseRequest(
            content_id="ghost-content",
            certificate=request.certificate,
            coins=request.coins,
            nonce=request.nonce,
            at=request.at,
            signature=request.signature,
        )
        with pytest.raises(UnknownContentError):
            deployment.provider.sell(forged)

    def test_replayed_request_rejected(self, deployment, users):
        request = make_purchase_request(deployment, users["buyer"])
        deployment.provider.sell(request)
        with pytest.raises((AuthenticationError, DoubleSpendError)):
            deployment.provider.sell(request)

    def test_underpayment_rejected(self, deployment, users):
        user = users["buyer"]
        coins = user.coins_for(1, deployment.bank)  # price is 3
        request = make_purchase_request(deployment, user, coins=coins)
        with pytest.raises(PaymentError):
            deployment.provider.sell(request)

    def test_spent_coin_rejected_without_side_effects(self, deployment, users):
        from repro.errors import PaymentError as PE

        user = users["buyer"]
        coins = user.coins_for(3, deployment.bank)
        # Deposit one coin out-of-band first (simulates a copied coin).
        try:
            deployment.bank.open_account("merchant-x")
        except PE:
            pass
        deployment.bank.deposit("merchant-x", coins[0])
        request = make_purchase_request(deployment, user, coins=coins)
        with pytest.raises(DoubleSpendError):
            deployment.provider.sell(request)
        # The other coins were not swallowed by the failed sale.
        assert not deployment.bank.is_spent(coins[1])

    def test_stale_timestamp_rejected(self, deployment, users):
        request = make_purchase_request(
            deployment, users["buyer"], at=deployment.clock.now() - 100_000
        )
        with pytest.raises(AuthenticationError, match="freshness"):
            deployment.provider.sell(request)

    def test_tampered_signature_rejected(self, deployment, users):
        request = make_purchase_request(deployment, users["buyer"])
        forged = PurchaseRequest(
            content_id=request.content_id,
            certificate=request.certificate,
            coins=request.coins,
            nonce=b"\x00" * 16,  # signature no longer covers this nonce
            at=request.at,
            signature=request.signature,
        )
        with pytest.raises(AuthenticationError):
            deployment.provider.sell(forged)

    def test_uncertified_pseudonym_rejected(self, deployment, users):
        """A self-made certificate (no issuer signature) is refused."""
        from repro.core.certificates import PseudonymCertificate

        user = users["mallory"]
        card = user.require_card()
        pseudonym = card.new_pseudonym()
        escrow = card.make_escrow(pseudonym, deployment.issuer.escrow_key)
        fake = PseudonymCertificate(
            pseudonym=pseudonym, escrow=escrow, signature=b"\x01" * 64
        )
        coins = user.coins_for(3, deployment.bank)
        nonce = user.rng.random_bytes(16)
        at = deployment.clock.now()
        payload = purchase_signing_payload(
            "song-1", fake.fingerprint, [c.serial for c in coins], nonce, at
        )
        request = PurchaseRequest(
            content_id="song-1",
            certificate=fake,
            coins=tuple(coins),
            nonce=nonce,
            at=at,
            signature=card.sign(pseudonym, payload),
        )
        with pytest.raises(AuthenticationError, match="certificate"):
            deployment.provider.sell(request)


class TestExchange:
    def _buy(self, deployment, user):
        return deployment.provider.sell(make_purchase_request(deployment, user))

    def _exchange_request(self, deployment, user, license_, *, nonce=None, at=None):
        nonce = nonce or user.rng.random_bytes(16)
        at = at if at is not None else deployment.clock.now()
        payload = exchange_signing_payload(license_.license_id, nonce, at)
        signature = user.require_card().sign(license_.pseudonym, payload)
        return ExchangeRequest(
            license_id=license_.license_id, nonce=nonce, at=at, signature=signature
        )

    def test_happy_path_revokes_and_issues(self, deployment, users):
        user = users["seller"]
        license_ = self._buy(deployment, user)
        user.add_license(license_)
        request = self._exchange_request(deployment, user, license_)
        anonymous = deployment.provider.exchange(request)
        anonymous.verify(deployment.provider.license_key)
        assert anonymous.content_id == license_.content_id
        assert deployment.provider.revocation_list.is_revoked(license_.license_id)

    def test_unknown_license_rejected(self, deployment, users):
        user = users["seller"]
        request = ExchangeRequest(
            license_id=b"\x99" * 16,
            nonce=user.rng.random_bytes(16),
            at=deployment.clock.now(),
            signature=user.require_card().sign(
                user.certificate_for_transaction(deployment.issuer).pseudonym, b"x"
            ),
        )
        with pytest.raises(ProtocolError, match="unknown licence"):
            deployment.provider.exchange(request)

    def test_non_holder_cannot_exchange(self, deployment, users):
        """Mallory cannot exchange Bob's licence: she cannot produce the
        holder-pseudonym signature."""
        seller, mallory = users["seller"], users["mallory"]
        license_ = self._buy(deployment, seller)
        nonce = mallory.rng.random_bytes(16)
        at = deployment.clock.now()
        payload = exchange_signing_payload(license_.license_id, nonce, at)
        mallory_cert = mallory.certificate_for_transaction(deployment.issuer)
        forged = ExchangeRequest(
            license_id=license_.license_id,
            nonce=nonce,
            at=at,
            signature=mallory.require_card().sign(mallory_cert.pseudonym, payload),
        )
        with pytest.raises(AuthenticationError):
            deployment.provider.exchange(forged)

    def test_failed_issuance_hands_the_licence_back(self, deployment, users):
        """A post-CAS failure (busy shard, say) must not burn the
        holder's licence: the status compensates back to ACTIVE and a
        retried exchange succeeds."""
        from repro.storage import licenses as license_store

        user = users["seller"]
        license_ = self._buy(deployment, user)
        user.add_license(license_)
        request = self._exchange_request(deployment, user, license_)
        original_insert = deployment.provider._licenses.insert

        def failing_insert(*args, **kwargs):
            raise StorageError("shard busy")

        deployment.provider._licenses.insert = failing_insert
        try:
            with pytest.raises(StorageError):
                deployment.provider.exchange(request)
        finally:
            deployment.provider._licenses.insert = original_insert
        record = deployment.provider.license_register.get(license_.license_id)
        assert record.status == license_store.STATUS_ACTIVE
        retry = self._exchange_request(deployment, user, license_)
        anonymous = deployment.provider.exchange(retry)
        anonymous.verify(deployment.provider.license_key)

    def test_double_exchange_rejected(self, deployment, users):
        user = users["seller"]
        license_ = self._buy(deployment, user)
        deployment.provider.exchange(self._exchange_request(deployment, user, license_))
        with pytest.raises(RevokedLicenseError):
            deployment.provider.exchange(
                self._exchange_request(deployment, user, license_)
            )

    def test_non_transferable_rights_rejected(self, deployment, users, monkeypatch):
        from repro.rel.parser import parse_rights

        user = users["seller"]
        monkeypatch.setattr(
            type(deployment.provider),
            "_default_rights",
            lambda self, content_id: parse_rights("play"),
        )
        license_ = self._buy(deployment, user)
        monkeypatch.undo()
        with pytest.raises(ProtocolError, match="transfer"):
            deployment.provider.exchange(
                self._exchange_request(deployment, user, license_)
            )


class TestRedeem:
    def _anonymous(self, deployment, user):
        license_ = deployment.provider.sell(make_purchase_request(deployment, user))
        user.add_license(license_)
        return user.transfer_out(license_.license_id, provider=deployment.provider)

    def _redeem_request(self, deployment, user, anonymous):
        certificate = user.certificate_for_transaction(deployment.issuer)
        nonce = user.rng.random_bytes(16)
        at = deployment.clock.now()
        payload = redeem_signing_payload(
            anonymous.license_id, certificate.fingerprint, nonce, at
        )
        return RedeemRequest(
            anonymous_license=anonymous,
            certificate=certificate,
            nonce=nonce,
            at=at,
            signature=user.require_card().sign(certificate.pseudonym, payload),
        )

    def test_happy_path(self, deployment, users):
        anonymous = self._anonymous(deployment, users["seller"])
        request = self._redeem_request(deployment, users["receiver"], anonymous)
        license_ = deployment.provider.redeem(request)
        license_.verify(deployment.provider.license_key)
        assert license_.content_id == anonymous.content_id
        assert license_.rights == anonymous.rights

    def test_double_redemption_detected_with_evidence(self, deployment, users):
        anonymous = self._anonymous(deployment, users["seller"])
        deployment.provider.redeem(
            self._redeem_request(deployment, users["receiver"], anonymous)
        )
        with pytest.raises(DoubleRedemptionError) as err:
            deployment.provider.redeem(
                self._redeem_request(deployment, users["mallory"], anonymous)
            )
        evidence = err.value.evidence
        assert evidence.token_id == anonymous.license_id
        assert evidence.first_transcript != evidence.second_transcript

    def test_forged_anonymous_license_rejected(self, deployment, users):
        from repro.core.licenses import AnonymousLicense
        from repro.rel.parser import parse_rights

        forged = AnonymousLicense(
            license_id=b"\x42" * 16,
            content_id="song-1",
            rights=parse_rights("play; copy; export"),
            issued_at=deployment.clock.now(),
            signature=b"\x01" * 64,
        )
        with pytest.raises(AuthenticationError):
            deployment.provider.redeem(
                self._redeem_request(deployment, users["receiver"], forged)
            )

    def test_redeemed_license_wraps_key_for_new_pseudonym(self, deployment, users):
        anonymous = self._anonymous(deployment, users["seller"])
        request = self._redeem_request(deployment, users["receiver"], anonymous)
        license_ = deployment.provider.redeem(request)
        key = users["receiver"].require_card().unwrap_content_key(
            license_.pseudonym,
            license_.wrapped_key,
            context=license_.kem_context(),
            device_certificate=deployment.authority.certify_device(
                "ab12", model="m", capabilities=("play",),
                not_before=0, not_after=10**12,
            ),
        )
        assert len(key) == 16


class TestCatalog:
    def test_publish_and_browse(self, fresh_deployment):
        d = fresh_deployment("catalog")
        d.provider.publish("song-2", b"PAYLOAD2", title="Two", price=5)
        entries = {e.content_id: e for e in d.provider.catalog()}
        assert set(entries) == {"song-1", "song-2"}
        assert entries["song-2"].price_cents == 5

    def test_download_is_unauthenticated(self, deployment):
        package = deployment.provider.download("song-1")
        assert package.content_id == "song-1"

    def test_audit_chain_stays_valid(self, deployment):
        assert deployment.provider.audit_log.verify_chain() >= 0
