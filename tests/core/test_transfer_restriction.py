"""Rights restriction on transfer: narrowing is allowed, widening is not."""

import pytest

from repro.errors import ProtocolError, RightsDenied


class TestRestrictedTransfer:
    def test_play_only_gift(self, fresh_deployment):
        """Alice holds play+display+transfer; she gifts a play-only
        copy.  Bob can play but cannot transfer onward."""
        d = fresh_deployment("restrict1")
        alice = d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=100)
        license_ = d.buy("alice", "song-1")
        anonymous = alice.transfer_out(
            license_.license_id, provider=d.provider, restrict_to=("play",)
        )
        assert [p.action for p in anonymous.rights.permissions] == ["play"]
        license_b = bob.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        assert not license_b.rights.transferable
        # Bob plays fine…
        device = d.add_device()
        device.sync_revocations(d.provider)
        bob.play("song-1", device, provider=d.provider)
        # …but cannot pass it on.
        with pytest.raises(ProtocolError, match="transfer"):
            bob.transfer_out(license_b.license_id, provider=d.provider)

    def test_restricted_action_denied_on_device(self, fresh_deployment):
        d = fresh_deployment("restrict2")
        alice = d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=100)
        license_ = d.buy("alice", "song-1")
        anonymous = alice.transfer_out(
            license_.license_id, provider=d.provider, restrict_to=("play",)
        )
        license_b = bob.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        device = d.add_device()
        device.sync_revocations(d.provider)
        package = d.provider.download("song-1")
        with pytest.raises(RightsDenied):
            device.render(license_b, package, bob.require_card(), action="display")

    def test_widening_rejected(self, fresh_deployment):
        """Asking for an action the licence never granted fails."""
        d = fresh_deployment("restrict3")
        alice = d.add_user("alice", balance=100)
        license_ = d.buy("alice", "song-1")
        # Default rights: play; display; transfer[count<=1] — no 'copy'.
        with pytest.raises(Exception):
            alice.transfer_out(
                license_.license_id, provider=d.provider, restrict_to=("play", "copy")
            )
        # The failed attempt must not have consumed the licence.
        assert not d.provider.revocation_list.is_revoked(license_.license_id)

    def test_empty_restriction_rejected(self, fresh_deployment):
        d = fresh_deployment("restrict4")
        alice = d.add_user("alice", balance=100)
        license_ = d.buy("alice", "song-1")
        with pytest.raises(Exception):
            alice.transfer_out(
                license_.license_id, provider=d.provider, restrict_to=()
            )

    def test_restriction_covered_by_signature(self, fresh_deployment):
        """A man-in-the-middle cannot strip the restriction: it is part
        of the signed payload."""
        from repro.core.messages import ExchangeRequest, exchange_signing_payload
        from repro.errors import AuthenticationError

        d = fresh_deployment("restrict5")
        alice = d.add_user("alice", balance=100)
        license_ = d.buy("alice", "song-1")
        nonce = alice.rng.random_bytes(16)
        at = d.clock.now()
        payload = exchange_signing_payload(license_.license_id, nonce, at, ("play",))
        signature = alice.require_card().sign(license_.pseudonym, payload)
        stripped = ExchangeRequest(
            license_id=license_.license_id,
            nonce=nonce,
            at=at,
            signature=signature,
            restrict_to=None,  # restriction removed in flight
        )
        with pytest.raises(AuthenticationError):
            d.provider.exchange(stripped)

    def test_unrestricted_transfer_unchanged(self, fresh_deployment):
        """The default path (no restriction) carries rights unchanged."""
        d = fresh_deployment("restrict6")
        alice = d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=100)
        license_ = d.buy("alice", "song-1")
        anonymous = alice.transfer_out(license_.license_id, provider=d.provider)
        assert anonymous.rights == license_.rights
        license_b = bob.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        assert license_b.rights == license_.rights
