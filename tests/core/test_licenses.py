"""Licence structures: signing, verification, structural privacy claims."""

import pytest

from repro.core.identity import SmartCard
from repro.core.licenses import (
    LICENSE_ID_SIZE,
    AnonymousLicense,
    PersonalLicense,
    kem_context,
    sign_anonymous_license,
    sign_personal_license,
)
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import InvalidSignature
from repro.rel.parser import parse_rights


@pytest.fixture()
def card(test_group):
    return SmartCard(b"lic-test-card-01", test_group, rng=DeterministicRandomSource(b"c"))


@pytest.fixture()
def personal(card, rsa512, rng):
    pseudonym = card.new_pseudonym()
    license_id = rng.random_bytes(LICENSE_ID_SIZE)
    wrapped = pseudonym.kem_key.kem_wrap(
        b"K" * 16, context=kem_context(license_id, "song-1"), rng=rng
    )
    return sign_personal_license(
        rsa512,
        license_id=license_id,
        content_id="song-1",
        rights=parse_rights("play; transfer[count<=1]"),
        pseudonym=pseudonym,
        wrapped_key=wrapped,
        issued_at=1000,
    )


@pytest.fixture()
def anonymous(rsa512, rng):
    return sign_anonymous_license(
        rsa512,
        license_id=rng.random_bytes(LICENSE_ID_SIZE),
        content_id="song-1",
        rights=parse_rights("play; transfer[count<=1]"),
        issued_at=2000,
    )


class TestPersonalLicense:
    def test_verifies(self, personal, rsa512):
        personal.verify(rsa512.public_key)

    def test_wrong_key_rejected(self, personal, rsa768):
        with pytest.raises(InvalidSignature):
            personal.verify(rsa768.public_key)

    def test_tampered_rights_rejected(self, personal, rsa512):
        forged = PersonalLicense(
            license_id=personal.license_id,
            content_id=personal.content_id,
            rights=parse_rights("play; copy; transfer[count<=1]"),  # self-upgrade
            pseudonym=personal.pseudonym,
            wrapped_key=personal.wrapped_key,
            issued_at=personal.issued_at,
            signature=personal.signature,
        )
        with pytest.raises(InvalidSignature):
            forged.verify(rsa512.public_key)

    def test_tampered_content_rejected(self, personal, rsa512):
        forged = PersonalLicense(
            license_id=personal.license_id,
            content_id="different-song",
            rights=personal.rights,
            pseudonym=personal.pseudonym,
            wrapped_key=personal.wrapped_key,
            issued_at=personal.issued_at,
            signature=personal.signature,
        )
        with pytest.raises(InvalidSignature):
            forged.verify(rsa512.public_key)

    def test_dict_roundtrip(self, personal, rsa512):
        restored = PersonalLicense.from_dict(personal.as_dict())
        restored.verify(rsa512.public_key)
        assert restored == personal

    def test_kem_context_binds_license_and_content(self, personal):
        assert personal.kem_context() == kem_context(
            personal.license_id, personal.content_id
        )

    def test_holder_is_pseudonym_fingerprint(self, personal):
        assert personal.holder_fingerprint == personal.pseudonym.fingerprint

    def test_bad_license_id_size_rejected(self, personal):
        with pytest.raises(InvalidSignature):
            PersonalLicense(
                license_id=b"short",
                content_id=personal.content_id,
                rights=personal.rights,
                pseudonym=personal.pseudonym,
                wrapped_key=personal.wrapped_key,
                issued_at=personal.issued_at,
                signature=personal.signature,
            )


class TestAnonymousLicense:
    def test_verifies(self, anonymous, rsa512):
        anonymous.verify(rsa512.public_key)

    def test_tamper_rejected(self, anonymous, rsa512):
        forged = AnonymousLicense(
            license_id=anonymous.license_id,
            content_id=anonymous.content_id,
            rights=parse_rights("play; copy"),
            issued_at=anonymous.issued_at,
            signature=anonymous.signature,
        )
        with pytest.raises(InvalidSignature):
            forged.verify(rsa512.public_key)

    def test_dict_roundtrip(self, anonymous, rsa512):
        restored = AnonymousLicense.from_dict(anonymous.as_dict())
        restored.verify(rsa512.public_key)
        assert restored == anonymous

    def test_carries_no_holder(self, anonymous):
        """The paper's structural claim: no user key, no pseudonym, no
        wrapped content key — only content, rights, token id."""
        data = anonymous.as_dict()
        assert set(data) == {"id", "content", "rights", "at", "sig"}

    def test_smaller_than_personal(self, personal, anonymous):
        assert anonymous.wire_size() < personal.wire_size()


class TestKemContext:
    def test_distinct_per_license(self, rng):
        a = kem_context(rng.random_bytes(16), "c1")
        b = kem_context(rng.random_bytes(16), "c1")
        assert a != b

    def test_distinct_per_content(self, rng):
        license_id = rng.random_bytes(16)
        assert kem_context(license_id, "c1") != kem_context(license_id, "c2")
