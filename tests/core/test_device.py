"""Compliant devices: enforcement at render time."""

import pytest

from repro.core.actors.device import NonCompliantDevice
from repro.errors import (
    ComplianceError,
    InvalidSignature,
    RevokedLicenseError,
    RightsDenied,
)


@pytest.fixture(scope="module")
def setup(deployment):
    user = deployment.add_user("device-user", balance=1000)
    device = deployment.add_device()
    license_ = user.buy(
        "song-1", provider=deployment.provider, issuer=deployment.issuer, bank=deployment.bank
    )
    package = deployment.provider.download("song-1")
    return user, device, license_, package


class TestRender:
    def test_renders_content(self, deployment, setup):
        user, device, license_, package = setup
        payload = device.render(license_, package, user.require_card())
        assert payload == b"SONG-ONE-PAYLOAD" * 64

    def test_usage_recorded(self, deployment, setup):
        user, device, license_, package = setup
        before = device.usage_events()
        device.render(license_, package, user.require_card())
        assert device.usage_events() == before + 1

    def test_forged_license_rejected(self, deployment, setup):
        from repro.core.licenses import PersonalLicense
        from repro.rel.parser import parse_rights

        user, device, license_, package = setup
        forged = PersonalLicense(
            license_id=license_.license_id,
            content_id=license_.content_id,
            rights=parse_rights("play; copy; export; burn"),
            pseudonym=license_.pseudonym,
            wrapped_key=license_.wrapped_key,
            issued_at=license_.issued_at,
            signature=license_.signature,
        )
        with pytest.raises(InvalidSignature):
            device.render(forged, package, user.require_card())

    def test_license_package_mismatch_rejected(self, deployment, setup):
        user, device, license_, _ = setup
        deployment.provider.publish("song-x", b"OTHER", title="X", price=1)
        other_package = deployment.provider.download("song-x")
        with pytest.raises(RightsDenied):
            device.render(license_, other_package, user.require_card())

    def test_ungranted_action_rejected(self, deployment, setup):
        user, device, license_, package = setup
        with pytest.raises(RightsDenied):
            device.render(license_, package, user.require_card(), action="burn")

    def test_foreign_card_cannot_unwrap(self, deployment, setup):
        _, device, license_, package = setup
        stranger = deployment.add_user("device-stranger", balance=10)
        from repro.errors import AuthenticationError

        with pytest.raises(AuthenticationError):
            device.render(license_, package, stranger.require_card())


class TestRevocationEnforcement:
    def test_revoked_license_refused_after_sync(self, fresh_deployment):
        d = fresh_deployment("dev-revoke")
        user = d.add_user("u", balance=100)
        device = d.add_device()
        license_ = user.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        package = d.provider.download("song-1")
        device.render(license_, package, user.require_card())
        user.transfer_out(license_.license_id, provider=d.provider)
        assert device.sync_revocations(d.provider) == 1
        with pytest.raises(RevokedLicenseError):
            device.render(license_, package, user.require_card())

    def test_stale_device_would_play(self, fresh_deployment):
        """Documents the paper's distribution caveat: a device that has
        not synced still honours a since-revoked licence."""
        d = fresh_deployment("dev-stale")
        user = d.add_user("u", balance=100)
        device = d.add_device()
        license_ = user.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        package = d.provider.download("song-1")
        user.transfer_out(license_.license_id, provider=d.provider)
        # no sync_revocations call
        payload = device.render(license_, package, user.require_card())
        assert payload  # stale view: plays

    def test_bloom_and_exact_paths_agree(self, fresh_deployment):
        d = fresh_deployment("dev-bloom")
        user = d.add_user("u", balance=100)
        device = d.add_device()
        license_ = user.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        package = d.provider.download("song-1")
        user.transfer_out(license_.license_id, provider=d.provider)
        device.sync_revocations(d.provider)
        with pytest.raises(RevokedLicenseError):
            device.render(license_, package, user.require_card(), use_bloom=True)
        with pytest.raises(RevokedLicenseError):
            device.render(license_, package, user.require_card(), use_bloom=False)


class TestCompliance:
    def test_non_compliant_device_gets_nothing(self, deployment, setup):
        """A hacked player that skips every check still cannot decrypt:
        the card refuses to unwrap for it."""
        user, _, license_, package = setup
        rogue = NonCompliantDevice(clock=deployment.clock)
        with pytest.raises(ComplianceError):
            rogue.render(license_, package, user.require_card())

    def test_count_constraint_enforced_across_renders(self, fresh_deployment, monkeypatch):
        from repro.rel.parser import parse_rights

        d = fresh_deployment("dev-count")
        monkeypatch.setattr(
            type(d.provider),
            "_default_rights",
            lambda self, content_id: parse_rights("play[count<=2]"),
        )
        user = d.add_user("u", balance=100)
        device = d.add_device()
        license_ = user.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        package = d.provider.download("song-1")
        device.render(license_, package, user.require_card())
        device.render(license_, package, user.require_card())
        assert device.remaining_uses(license_, "play") == 0
        with pytest.raises(RightsDenied):
            device.render(license_, package, user.require_card())

    def test_usage_survives_device_restart(self, fresh_deployment, monkeypatch, tmp_path):
        """Counters persist: a 'reboot' (new device object, same db and
        certificate) still refuses the third play."""
        from repro.core.actors.device import CompliantDevice
        from repro.rel.parser import parse_rights
        from repro.storage.engine import Database

        d = fresh_deployment("dev-restart")
        monkeypatch.setattr(
            type(d.provider),
            "_default_rights",
            lambda self, content_id: parse_rights("play[count<=2]"),
        )
        user = d.add_user("u", balance=100)
        db_path = str(tmp_path / "device.db")
        device = d.add_device(db=Database(db_path))
        license_ = user.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        package = d.provider.download("song-1")
        device.render(license_, package, user.require_card())
        device.render(license_, package, user.require_card())

        rebooted = CompliantDevice(
            device.certificate,
            clock=d.clock,
            provider_license_key=d.provider.license_key,
            db=Database(db_path),
        )
        rebooted.sync_revocations(d.provider)
        with pytest.raises(RightsDenied):
            rebooted.render(license_, package, user.require_card())
