"""Wire messages: round-trips, signing payload stability, evidence."""

import pytest

from repro import codec
from repro.core.messages import (
    Coin,
    ExchangeRequest,
    MisuseEvidence,
    PurchaseRequest,
    RedeemRequest,
    coin_payload,
    exchange_signing_payload,
    parse_redemption_transcript,
    purchase_signing_payload,
    redeem_signing_payload,
    redemption_transcript,
)


@pytest.fixture(scope="module")
def artifacts(deployment):
    """One of each message, built through the real protocols."""
    user = deployment.add_user("msg-user", balance=100)
    receiver = deployment.add_user("msg-receiver", balance=100)
    license_ = user.buy(
        "song-1", provider=deployment.provider, issuer=deployment.issuer,
        bank=deployment.bank,
    )
    anonymous = user.transfer_out(license_.license_id, provider=deployment.provider)
    certificate = receiver.certificate_for_transaction(deployment.issuer)
    coin = receiver.coins_for(1, deployment.bank)[0]
    return deployment, user, receiver, license_, anonymous, certificate, coin


class TestCoin:
    def test_roundtrip(self, artifacts):
        *_, coin = artifacts
        assert Coin.from_dict(coin.as_dict()) == coin

    def test_payload_depends_on_both_fields(self):
        assert coin_payload(b"s1", 1) != coin_payload(b"s1", 5)
        assert coin_payload(b"s1", 1) != coin_payload(b"s2", 1)

    def test_wire_size_positive(self, artifacts):
        *_, coin = artifacts
        assert coin.wire_size() > 100


class TestRequests:
    def test_purchase_request_roundtrip(self, artifacts):
        d, user, receiver, license_, anonymous, certificate, coin = artifacts
        nonce = user.rng.random_bytes(16)
        at = d.clock.now()
        payload = purchase_signing_payload(
            "song-1", certificate.fingerprint, [coin.serial], nonce, at
        )
        request = PurchaseRequest(
            content_id="song-1",
            certificate=certificate,
            coins=(coin,),
            nonce=nonce,
            at=at,
            signature=receiver.require_card().sign(certificate.pseudonym, payload),
        )
        restored = PurchaseRequest.from_dict(
            codec.decode(codec.encode(request.as_dict()))
        )
        assert restored.signing_payload() == request.signing_payload()
        assert restored.wire_size() == request.wire_size()

    def test_exchange_request_roundtrip_with_restriction(self, artifacts):
        d, user, *_ = artifacts
        from repro.crypto.schnorr import SchnorrSignature

        request = ExchangeRequest(
            license_id=b"L" * 16,
            nonce=b"N" * 16,
            at=100,
            signature=SchnorrSignature(challenge=1, response=2),
            restrict_to=("play", "display"),
        )
        restored = ExchangeRequest.from_dict(request.as_dict())
        assert restored == request
        assert restored.signing_payload() == request.signing_payload()

    def test_exchange_payload_distinguishes_restriction(self):
        base = exchange_signing_payload(b"L" * 16, b"N" * 16, 1)
        restricted = exchange_signing_payload(b"L" * 16, b"N" * 16, 1, ("play",))
        unrestricted_explicit = exchange_signing_payload(b"L" * 16, b"N" * 16, 1, None)
        assert base == unrestricted_explicit
        assert base != restricted

    def test_redeem_request_roundtrip(self, artifacts):
        d, user, receiver, license_, anonymous, certificate, coin = artifacts
        nonce = receiver.rng.random_bytes(16)
        at = d.clock.now()
        payload = redeem_signing_payload(
            anonymous.license_id, certificate.fingerprint, nonce, at
        )
        request = RedeemRequest(
            anonymous_license=anonymous,
            certificate=certificate,
            nonce=nonce,
            at=at,
            signature=receiver.require_card().sign(certificate.pseudonym, payload),
        )
        restored = RedeemRequest.from_dict(
            codec.decode(codec.encode(request.as_dict()))
        )
        assert restored.signing_payload() == request.signing_payload()

    def test_signing_payloads_disjoint_across_kinds(self, artifacts):
        """A signature for one request kind can never verify as another:
        payloads carry distinct 'what' tags."""
        purchase = purchase_signing_payload("c", b"F" * 32, [], b"N" * 16, 1)
        exchange = exchange_signing_payload(b"L" * 16, b"N" * 16, 1)
        redeem = redeem_signing_payload(b"L" * 16, b"F" * 32, b"N" * 16, 1)
        tags = set()
        for payload in (purchase, exchange, redeem):
            tags.add(codec.decode(payload)["what"])
        assert len(tags) == 3


class TestTranscriptsAndEvidence:
    def test_redemption_transcript_roundtrip(self, artifacts):
        d, user, receiver, license_, anonymous, certificate, coin = artifacts
        signature = receiver.require_card().sign(certificate.pseudonym, b"payload")
        blob = redemption_transcript(certificate, signature, b"N" * 16, 42)
        parsed = parse_redemption_transcript(blob)
        assert parsed["cert"].fingerprint == certificate.fingerprint
        assert parsed["sig"] == signature
        assert parsed["nonce"] == b"N" * 16
        assert parsed["at"] == 42

    def test_misuse_evidence_roundtrip(self):
        evidence = MisuseEvidence(
            kind="double-redemption",
            token_id=b"T" * 16,
            content_id="song-1",
            first_transcript=b"first",
            second_transcript=b"second",
        )
        restored = MisuseEvidence.from_dict(
            codec.decode(codec.encode(evidence.as_dict()))
        )
        assert restored == evidence
        assert restored.wire_size() > 0
