"""Bank: blind withdrawal, deposits, double-spend detection, ledger."""

import pytest

from repro.clock import SimClock
from repro.core.actors.bank import Bank
from repro.core.messages import Coin
from repro.core.protocols.payment import withdraw_coins
from repro.core.actors.user import UserAgent
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import DoubleSpendError, InvalidSignature, PaymentError


@pytest.fixture(scope="module")
def bank():
    bank = Bank(
        rng=DeterministicRandomSource(b"bank-tests"),
        clock=SimClock(),
        denominations=(1, 5, 20),
        key_bits=512,
    )
    bank.open_account("merchant")
    return bank


@pytest.fixture()
def user(bank, rng):
    import uuid

    user = UserAgent(f"u-{uuid.uuid4().hex[:8]}", rng=rng, clock=SimClock())
    bank.open_account(user.bank_account, initial_balance=100)
    return user


class TestAccounts:
    def test_open_and_balance(self, bank):
        bank.open_account("acct-x", initial_balance=7)
        assert bank.balance("acct-x") == 7

    def test_duplicate_account_rejected(self, bank):
        bank.open_account("acct-dup")
        with pytest.raises(PaymentError):
            bank.open_account("acct-dup")

    def test_unknown_account_rejected(self, bank):
        with pytest.raises(PaymentError):
            bank.balance("ghost")

    def test_transfer(self, bank):
        bank.open_account("from-acct", initial_balance=10)
        bank.open_account("to-acct")
        bank.transfer("from-acct", "to-acct", 4)
        assert bank.balance("from-acct") == 6
        assert bank.balance("to-acct") == 4

    def test_transfer_insufficient(self, bank):
        bank.open_account("poor-acct", initial_balance=1)
        with pytest.raises(PaymentError):
            bank.transfer("poor-acct", "merchant", 5)

    def test_transfer_validation(self, bank):
        with pytest.raises(PaymentError):
            bank.transfer("merchant", "merchant", 0)
        with pytest.raises(PaymentError):
            bank.transfer("merchant", "ghost", 1)


class TestWithdrawal:
    def test_withdraw_debits_and_mints(self, bank, user):
        coins = withdraw_coins(user, bank, 26)
        assert sorted(c.value for c in coins) == [1, 5, 20]
        assert bank.balance(user.bank_account) == 74
        for coin in coins:
            bank.verify_coin(coin)

    def test_decompose(self, bank):
        assert bank.decompose(26) == [20, 5, 1]
        assert bank.decompose(3) == [1, 1, 1]
        with pytest.raises(PaymentError):
            bank.decompose(0)

    def test_insufficient_funds(self, bank, user):
        with pytest.raises(PaymentError):
            withdraw_coins(user, bank, 1000)

    def test_unsupported_denomination(self, bank):
        with pytest.raises(PaymentError):
            bank.withdraw_blind("merchant", 7, 12345)
        with pytest.raises(PaymentError):
            bank.public_key(7)


class TestDeposits:
    def test_deposit_credits(self, bank, user):
        (coin,) = withdraw_coins(user, bank, 1)
        before = bank.balance("merchant")
        bank.deposit("merchant", coin)
        assert bank.balance("merchant") == before + 1

    def test_double_spend_detected(self, bank, user):
        (coin,) = withdraw_coins(user, bank, 1)
        bank.deposit("merchant", coin)
        assert bank.is_spent(coin)
        with pytest.raises(DoubleSpendError) as err:
            bank.deposit("merchant", coin)
        assert err.value.coin_id == coin.serial

    def test_batch_detects_spend_landing_after_prescreen(self, bank, user):
        """The is_spent pre-screen runs outside the write transaction;
        a coin spent in the gap (another process on a shared file) must
        still be refused by the in-transaction try_spend check — and the
        refusal must roll back the whole batch, crediting nothing."""
        coins = withdraw_coins(user, bank, 6)  # a 5 and a 1
        before = bank.balance("merchant")
        screened = bank._spent.is_spent
        staged = {"done": False}

        def racing_is_spent(token):
            # Models the cross-process race: the screen sees every coin
            # unspent, but a rival's spend lands before our BEGIN.
            if not staged["done"]:
                staged["done"] = True
                bank._spent.try_spend(
                    coins[-1].spent_token(), at=0, transcript=b"rival-process"
                )
            return False

        bank._spent.is_spent = racing_is_spent
        try:
            with pytest.raises(DoubleSpendError) as err:
                bank.deposit_batch("merchant", coins)
        finally:
            bank._spent.is_spent = screened
        assert err.value.coin_id == coins[-1].serial
        assert bank.balance("merchant") == before  # nothing credited
        # The batch's other coin was rolled back too: respendable.
        assert not bank.is_spent(coins[0])
        # The rival's spend record survives as the double-spend evidence.
        assert bank.is_spent(coins[-1])

    def test_forged_coin_rejected(self, bank, rng):
        forged = Coin(serial=rng.random_bytes(16), value=1, signature=b"\x01" * 64)
        with pytest.raises(InvalidSignature):
            bank.deposit("merchant", forged)

    def test_denomination_swap_rejected(self, bank, user):
        """A 1-credit coin cannot be deposited as a 20 — the value is
        pinned by which key signed it."""
        (coin,) = withdraw_coins(user, bank, 1)
        upgraded = Coin(serial=coin.serial, value=20, signature=coin.signature)
        with pytest.raises(InvalidSignature):
            bank.deposit("merchant", upgraded)

    def test_same_serial_different_denomination_is_distinct(self, bank, user, rng):
        """Spent-store keys include the denomination, so two honest
        coins that happen to share a serial across denominations don't
        collide.  (Withdraw both, deposit both.)"""
        from repro.crypto.blind_rsa import BlindingClient
        from repro.core.messages import coin_payload

        serial = rng.random_bytes(16)
        coins = []
        for denomination in (1, 5):
            client = BlindingClient(bank.public_key(denomination), rng=rng)
            blinded, state = client.blind(coin_payload(serial, denomination))
            signature = client.unblind(
                bank.withdraw_blind(user.bank_account, denomination, blinded), state
            )
            coins.append(Coin(serial=serial, value=denomination, signature=signature))
        for coin in coins:
            bank.deposit("merchant", coin)  # both land


class TestUnlinkability:
    def test_bank_never_sees_serial_at_withdrawal(self, bank, user):
        """Structural check: the withdrawal API receives only a blinded
        integer; the serial appears first at deposit time."""
        import inspect

        signature = inspect.signature(bank.withdraw_blind)
        assert list(signature.parameters) == ["account_id", "denomination", "blinded"]

    def test_parameters(self):
        with pytest.raises(PaymentError):
            Bank(
                rng=DeterministicRandomSource(b"x"),
                clock=SimClock(),
                denominations=(),
                key_bits=512,
            )
