"""Certificates: authority roles, device compliance, blind pseudonym certs."""

import pytest

from repro.core.certificates import (
    AuthorityCertificate,
    CertificateAuthority,
    DeviceCertificate,
    PseudonymCertificate,
    pseudonym_certificate_payload,
)
from repro.core.identity import SmartCard
from repro.crypto.blind_rsa import BlindingClient, BlindSigner
from repro.crypto.elgamal import generate_elgamal_key
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ComplianceError, EscrowError, InvalidSignature


@pytest.fixture()
def authority(rsa512):
    return CertificateAuthority(rsa512)


class TestAuthorityCertificates:
    def test_role_certificate_verifies(self, authority, rsa768):
        cert = authority.certify_role(
            "content-provider", "acme", rsa768.public_key, not_before=0, not_after=100
        )
        cert.verify(authority.public_key)
        cert.verify(authority.public_key, now=50)

    def test_expiry_enforced(self, authority, rsa768):
        cert = authority.certify_role(
            "content-provider", "acme", rsa768.public_key, not_before=10, not_after=20
        )
        with pytest.raises(ComplianceError):
            cert.verify(authority.public_key, now=21)
        with pytest.raises(ComplianceError):
            cert.verify(authority.public_key, now=9)

    def test_wrong_authority_rejected(self, authority, rsa768):
        cert = authority.certify_role(
            "bank", "acme-bank", rsa768.public_key, not_before=0, not_after=100
        )
        with pytest.raises(InvalidSignature):
            cert.verify(rsa768.public_key)

    def test_dict_roundtrip(self, authority, rsa768):
        cert = authority.certify_role(
            "card-issuer", "idt", rsa768.public_key, not_before=0, not_after=9
        )
        assert AuthorityCertificate.from_dict(cert.as_dict()) == cert


class TestDeviceCertificates:
    def test_verifies(self, authority):
        cert = authority.certify_device(
            "ab12", model="m", capabilities=("play",), not_before=0, not_after=100
        )
        cert.verify(authority.public_key)

    def test_tamper_rejected(self, authority):
        cert = authority.certify_device(
            "ab12", model="m", capabilities=("play",), not_before=0, not_after=100
        )
        forged = DeviceCertificate(
            device_id="ff99",  # claim a different device
            model=cert.model,
            capabilities=cert.capabilities,
            not_before=cert.not_before,
            not_after=cert.not_after,
            signature=cert.signature,
        )
        with pytest.raises(ComplianceError):
            forged.verify(authority.public_key)

    def test_expiry(self, authority):
        cert = authority.certify_device(
            "ab12", model="m", capabilities=("play",), not_before=10, not_after=20
        )
        with pytest.raises(ComplianceError):
            cert.verify(authority.public_key, now=25)

    def test_dict_roundtrip(self, authority):
        cert = authority.certify_device(
            "ab12", model="m", capabilities=("play", "copy"), not_before=0, not_after=9
        )
        assert DeviceCertificate.from_dict(cert.as_dict()) == cert


@pytest.fixture()
def pseudonym_cert_parts(test_group, rsa768, rng):
    """Build a pseudonym certificate the way the registration protocol does."""
    card = SmartCard(b"card-000000000001", test_group, rng=DeterministicRandomSource(b"c"))
    ttp_key = generate_elgamal_key(test_group, rng=rng)
    issuer_signer = BlindSigner(rsa768)
    pseudonym = card.new_pseudonym()
    escrow = card.make_escrow(pseudonym, ttp_key.public_key)
    payload = pseudonym_certificate_payload(pseudonym, escrow)
    client = BlindingClient(rsa768.public_key, rng=rng)
    blinded, state = client.blind(payload)
    signature = client.unblind(issuer_signer.sign_blinded(blinded), state)
    certificate = PseudonymCertificate(
        pseudonym=pseudonym, escrow=escrow, signature=signature
    )
    return card, ttp_key, issuer_signer, certificate


class TestPseudonymCertificates:
    def test_verifies(self, pseudonym_cert_parts, rsa768):
        *_, certificate = pseudonym_cert_parts
        certificate.verify(rsa768.public_key)

    def test_wrong_issuer_key_rejected(self, pseudonym_cert_parts, rsa512):
        *_, certificate = pseudonym_cert_parts
        with pytest.raises(InvalidSignature):
            certificate.verify(rsa512.public_key)

    def test_swapped_pseudonym_rejected(self, pseudonym_cert_parts, test_group, rsa768):
        card, ttp_key, _, certificate = pseudonym_cert_parts
        other_pseudonym = card.new_pseudonym()
        forged = PseudonymCertificate(
            pseudonym=other_pseudonym,
            escrow=certificate.escrow,
            signature=certificate.signature,
        )
        with pytest.raises(InvalidSignature):
            forged.verify(rsa768.public_key)

    def test_swapped_escrow_rejected(self, pseudonym_cert_parts, test_group, rsa768, rng):
        card, ttp_key, _, certificate = pseudonym_cert_parts
        other_pseudonym = card.new_pseudonym()
        other_escrow = card.make_escrow(other_pseudonym, ttp_key.public_key)
        forged = PseudonymCertificate(
            pseudonym=certificate.pseudonym,
            escrow=other_escrow,
            signature=certificate.signature,
        )
        # Either the signature or the binding check must catch it.
        with pytest.raises((InvalidSignature, EscrowError)):
            forged.verify(rsa768.public_key)

    def test_dict_roundtrip(self, pseudonym_cert_parts, rsa768):
        *_, certificate = pseudonym_cert_parts
        restored = PseudonymCertificate.from_dict(certificate.as_dict())
        restored.verify(rsa768.public_key)
        assert restored.fingerprint == certificate.fingerprint

    def test_wire_size_reported(self, pseudonym_cert_parts):
        *_, certificate = pseudonym_cert_parts
        assert certificate.wire_size() > 100

    def test_contains_no_identity(self, pseudonym_cert_parts):
        """The certificate dict carries no user or card identifier —
        checkable field by field."""
        *_, certificate = pseudonym_cert_parts
        data = certificate.as_dict()
        assert set(data) == {"pseudonym", "escrow", "sig"}
        assert set(data["pseudonym"]) == {"group", "y"}
        assert set(data["escrow"]) == {"group", "ct", "proof"}


class TestBatchCertificateVerification:
    def _certificates(self, test_group, rsa768, rng, count):
        card = SmartCard(
            b"card-batch-000001", test_group, rng=DeterministicRandomSource(b"bc")
        )
        ttp_key = generate_elgamal_key(test_group, rng=rng)
        signer = BlindSigner(rsa768)
        client = BlindingClient(rsa768.public_key, rng=rng)
        certificates = []
        for _ in range(count):
            pseudonym = card.new_pseudonym()
            escrow = card.make_escrow(pseudonym, ttp_key.public_key)
            payload = pseudonym_certificate_payload(pseudonym, escrow)
            blinded, state = client.blind(payload)
            signature = client.unblind(signer.sign_blinded(blinded), state)
            certificates.append(
                PseudonymCertificate(
                    pseudonym=pseudonym, escrow=escrow, signature=signature
                )
            )
        return certificates

    def test_valid_batch_amortizes(self, test_group, rsa768, rng):
        from repro import instrument
        from repro.core.certificates import batch_verify_certificates

        certificates = self._certificates(test_group, rsa768, rng, 5)
        with instrument.measure() as individual:
            for certificate in certificates:
                certificate.verify(rsa768.public_key)
        with instrument.measure() as batched:
            batch_verify_certificates(certificates, rsa768.public_key, rng=rng)
        assert batched.get("modexp") < individual.get("modexp")
        assert batched.get("rsa.public_op") == 1
        assert batched.get("schnorr.batch_knowledge") == 1

    def test_forged_signature_rejected(self, test_group, rsa768, rng):
        from repro.core.certificates import batch_verify_certificates
        from repro.errors import InvalidSignature as Invalid

        certificates = self._certificates(test_group, rsa768, rng, 3)
        certificates[1] = PseudonymCertificate(
            pseudonym=certificates[1].pseudonym,
            escrow=certificates[1].escrow,
            signature=bytes(len(certificates[1].signature)),
        )
        with pytest.raises(Invalid):
            batch_verify_certificates(certificates, rsa768.public_key, rng=rng)

    def test_transplanted_escrow_rejected(self, test_group, rsa768, rng):
        """An escrow lifted onto a different pseudonym's certificate must
        fail the aggregated binding check the way it fails the single one."""
        from repro.core.certificates import batch_verify_certificates

        certificates = self._certificates(test_group, rsa768, rng, 3)
        forged = PseudonymCertificate(
            pseudonym=certificates[0].pseudonym,
            escrow=certificates[1].escrow,
            signature=certificates[0].signature,
        )
        with pytest.raises((InvalidSignature, EscrowError)):
            batch_verify_certificates(
                [forged, certificates[2]], rsa768.public_key, rng=rng
            )

    def test_empty_batch(self, rsa768, rng):
        from repro.core.certificates import batch_verify_certificates

        batch_verify_certificates([], rsa768.public_key, rng=rng)
