"""Deployment construction and the user-agent surface."""

import pytest

from repro.core.system import build_deployment
from repro.errors import PaymentError, ProtocolError


class TestBuildDeployment:
    def test_deterministic_for_seed(self):
        a = build_deployment(seed="same-seed", rsa_bits=512)
        b = build_deployment(seed="same-seed", rsa_bits=512)
        assert a.provider.license_key == b.provider.license_key
        assert a.issuer.certificate_key == b.issuer.certificate_key

    def test_distinct_seeds_distinct_keys(self):
        a = build_deployment(seed="seed-a", rsa_bits=512)
        b = build_deployment(seed="seed-b", rsa_bits=512)
        assert a.provider.license_key != b.provider.license_key

    def test_duplicate_user_rejected(self, fresh_deployment):
        d = fresh_deployment("dup-user")
        d.add_user("alice")
        with pytest.raises(ValueError):
            d.add_user("alice")

    def test_devices_synced_at_creation(self, fresh_deployment):
        d = fresh_deployment("dev-sync")
        user = d.add_user("u", balance=100)
        license_ = d.buy("u", "song-1")
        user.transfer_out(license_.license_id, provider=d.provider)
        device = d.add_device()  # created after the revocation
        assert device.revocation_version == d.provider.revocation_list.current_version()


class TestUserAgentSurface:
    def test_unenrolled_user_cannot_act(self, rng):
        from repro.core.actors.user import UserAgent

        user = UserAgent("loner", rng=rng)
        with pytest.raises(ProtocolError):
            user.require_card()

    def test_wallet_management(self, fresh_deployment):
        d = fresh_deployment("wallet")
        user = d.add_user("u", balance=50)
        coins = user.coins_for(26, d.bank)
        assert sum(c.value for c in coins) == 26
        assert d.bank.balance(user.bank_account) == 24
        # Exact coins removed from the wallet, leftovers stay.
        assert user.wallet_value() == 0

    def test_wallet_reuses_existing_coins(self, fresh_deployment):
        d = fresh_deployment("wallet2")
        user = d.add_user("u", balance=50)
        from repro.core.protocols.payment import withdraw_coins

        withdraw_coins(user, d.bank, 26)
        assert user.wallet_value() == 26
        coins = user.coins_for(26, d.bank)
        assert sum(c.value for c in coins) == 26
        assert d.bank.balance(user.bank_account) == 24  # no second withdrawal

    def test_license_bookkeeping(self, fresh_deployment):
        d = fresh_deployment("books")
        user = d.add_user("u", balance=100)
        license_ = d.buy("u", "song-1")
        assert user.owns_content("song-1")
        assert user.license_for_content("song-1") == license_
        with pytest.raises(ProtocolError):
            user.license_for_content("ghost")
        user.remove_license(license_.license_id)
        assert not user.owns_content("song-1")
        with pytest.raises(ProtocolError):
            user.remove_license(license_.license_id)

    def test_transfer_shorthand(self, fresh_deployment):
        d = fresh_deployment("shorthand")
        d.add_user("a", balance=100)
        d.add_user("b", balance=100)
        license_ = d.buy("a", "song-1")
        new_license = d.transfer("a", "b", license_.license_id)
        assert not d.users["a"].owns_content("song-1")
        assert d.users["b"].owns_content("song-1")
        assert new_license.content_id == "song-1"

    def test_insufficient_funds_fail_purchase(self, fresh_deployment):
        d = fresh_deployment("broke")
        d.add_user("poor", balance=0)
        with pytest.raises(PaymentError):
            d.buy("poor", "song-1")

    def test_pseudonym_policy_fresh(self, fresh_deployment):
        d = fresh_deployment("fresh-policy")
        d.add_user("u", balance=100)
        first = d.buy("u", "song-1")
        second = d.buy("u", "song-1")
        assert first.holder_fingerprint != second.holder_fingerprint

    def test_pseudonym_policy_reuse(self, fresh_deployment):
        d = fresh_deployment("reuse-policy")
        d.add_user("u", balance=100, fresh_pseudonym_per_transaction=False)
        first = d.buy("u", "song-1")
        second = d.buy("u", "song-1")
        assert first.holder_fingerprint == second.holder_fingerprint
