"""Batched redemption: provider.redeem_batch edge cases.

The queue semantics under test: every aggregate check (licence
signature screening, certificate screening, escrow-binding batch,
Schnorr envelope batch, the one-pass revocation screen) must accept
exactly what the per-item path accepts, and one bad request must never
poison the batch — the offender is isolated with the same exception the
single path would have raised.
"""

import dataclasses

import pytest

from repro import instrument
from repro.core.protocols.acquisition import accept_license, build_purchase_request
from repro.core.protocols.transfer import (
    accept_redeemed_license,
    build_redeem_request,
    exchange_for_anonymous,
)
from repro.crypto.schnorr import SchnorrSignature
from repro.errors import (
    AuthenticationError,
    DoubleRedemptionError,
    RevokedLicenseError,
)


@pytest.fixture()
def batch_deployment(fresh_deployment):
    return fresh_deployment(seed="redeem-batch")


def _redeem_queue(deployment, count, *, sender=None, receiver=None):
    """``count`` valid redeem requests (purchase → exchange → request)."""
    d = deployment
    sender = sender or d.add_user(f"rb-sender-{count}", balance=1000)
    receiver = receiver or d.add_user(f"rb-receiver-{count}", balance=1000)
    purchases = [
        build_purchase_request(sender, d.provider, d.issuer, d.bank, "song-1")
        for _ in range(count)
    ]
    requests = []
    for purchase, license_ in zip(purchases, d.provider.sell_batch(purchases)):
        assert not isinstance(license_, Exception), license_
        accept_license(sender, d.provider, purchase, license_)
        anonymous = exchange_for_anonymous(sender, d.provider, license_.license_id)
        requests.append(build_redeem_request(receiver, d.provider, d.issuer, anonymous))
    return receiver, requests


class TestRedeemBatch:
    def test_all_valid_requests_yield_licenses(self, batch_deployment):
        d = batch_deployment
        receiver, requests = _redeem_queue(d, 5)
        results = d.provider.redeem_batch(requests)
        assert len(results) == 5
        for request, license_ in zip(requests, results):
            assert not isinstance(license_, Exception), license_
            accept_redeemed_license(receiver, d.provider, request, license_)
        assert len(receiver.licenses) == 5

    def test_batch_cheaper_than_sequential_in_group_ops(self, fresh_deployment):
        d_batch = fresh_deployment(seed="rb-cost-a")
        d_seq = fresh_deployment(seed="rb-cost-b")
        _, requests = _redeem_queue(d_batch, 6)
        _, sequential = _redeem_queue(d_seq, 6)
        with instrument.measure() as batched:
            d_batch.provider.redeem_batch(requests)
        with instrument.measure() as one_by_one:
            for request in sequential:
                d_seq.provider.redeem(request)
        assert batched.get("modexp") < one_by_one.get("modexp")
        assert batched.get("schnorr.batch_verify") == 1
        assert batched.get("schnorr.batch_knowledge") == 1
        assert batched.get("rsa.batch_verify") >= 1

    def test_empty_batch(self, batch_deployment):
        assert batch_deployment.provider.redeem_batch([]) == []

    # -- replay -------------------------------------------------------------

    def test_replayed_nonce_rejected_once(self, batch_deployment):
        """The same RedeemRequest twice in one queue: the replay filter
        admits the first and rejects the second."""
        d = batch_deployment
        _, requests = _redeem_queue(d, 1)
        results = d.provider.redeem_batch([requests[0], requests[0]])
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], AuthenticationError)
        assert "nonce" in str(results[1])

    def test_rejected_request_does_not_burn_its_nonce(self, batch_deployment):
        """A request rejected for a tampered licence signature must be
        resubmittable verbatim once fixed — the batch path spends the
        nonce only after the licence/certificate checks pass, matching
        the single-item ordering."""
        d = batch_deployment
        _, requests = _redeem_queue(d, 2)
        good = requests[0]
        forged_license = dataclasses.replace(
            good.anonymous_license,
            signature=bytes(len(good.anonymous_license.signature)),
        )
        bad = dataclasses.replace(good, anonymous_license=forged_license)
        results = d.provider.redeem_batch([bad, requests[1]])
        assert isinstance(results[0], AuthenticationError)
        (retry,) = d.provider.redeem_batch([good])
        assert not isinstance(retry, Exception), retry

    def test_nonce_replayed_across_calls_rejected(self, batch_deployment):
        d = batch_deployment
        _, requests = _redeem_queue(d, 1)
        (first,) = d.provider.redeem_batch(requests)
        assert not isinstance(first, Exception)
        (second,) = d.provider.redeem_batch(requests)
        assert isinstance(second, AuthenticationError)

    # -- revocation ---------------------------------------------------------

    def test_revoked_license_inside_batch_isolated(self, batch_deployment):
        d = batch_deployment
        _, requests = _redeem_queue(d, 4)
        revoked_id = requests[2].anonymous_license.license_id
        d.provider.revocation_list.revoke(
            revoked_id, at=d.clock.now(), reason="ttp-order"
        )
        results = d.provider.redeem_batch(requests)
        assert isinstance(results[2], RevokedLicenseError)
        for index in (0, 1, 3):
            assert not isinstance(results[index], Exception), results[index]

    def test_single_redeem_rejects_revoked_license(self, batch_deployment):
        d = batch_deployment
        _, requests = _redeem_queue(d, 1)
        d.provider.revocation_list.revoke(
            requests[0].anonymous_license.license_id,
            at=d.clock.now(),
            reason="ttp-order",
        )
        with pytest.raises(RevokedLicenseError):
            d.provider.redeem(requests[0])

    # -- double redemption --------------------------------------------------

    def test_double_redeemed_token_inside_batch_isolated(self, batch_deployment):
        """The same bearer token presented twice in one queue: the first
        presentation wins, the second yields evidence, the rest of the
        batch is untouched."""
        d = batch_deployment
        receiver, requests = _redeem_queue(d, 3)
        duplicate = build_redeem_request(
            receiver, d.provider, d.issuer, requests[1].anonymous_license
        )
        results = d.provider.redeem_batch(requests + [duplicate])
        for index in range(3):
            assert not isinstance(results[index], Exception), results[index]
        assert isinstance(results[3], DoubleRedemptionError)
        evidence = results[3].evidence
        assert evidence.kind == "double-redemption"
        assert evidence.token_id == requests[1].anonymous_license.license_id

    def test_already_spent_token_in_batch_isolated(self, batch_deployment):
        d = batch_deployment
        receiver, requests = _redeem_queue(d, 2)
        first_pass = d.provider.redeem_batch([requests[0]])
        assert not isinstance(first_pass[0], Exception)
        replay = build_redeem_request(
            receiver, d.provider, d.issuer, requests[0].anonymous_license
        )
        results = d.provider.redeem_batch([replay, requests[1]])
        assert isinstance(results[0], DoubleRedemptionError)
        assert results[0].evidence is not None
        assert not isinstance(results[1], Exception)

    def test_double_redemption_evidence_opens_escrow(self, batch_deployment):
        """The evidence a batch rejection carries satisfies the TTP."""
        from repro.core.protocols.revocation import report_misuse

        d = batch_deployment
        receiver, requests = _redeem_queue(d, 1)
        d.provider.redeem_batch(requests)
        replay = build_redeem_request(
            receiver, d.provider, d.issuer, requests[0].anonymous_license
        )
        (rejected,) = d.provider.redeem_batch([replay])
        assert isinstance(rejected, DoubleRedemptionError)
        result = report_misuse(d.provider, d.issuer, rejected.evidence)
        assert result.offender_user_id == receiver.user_id

    # -- signature families -------------------------------------------------

    def test_forged_envelope_signature_isolated(self, batch_deployment):
        d = batch_deployment
        _, requests = _redeem_queue(d, 4)
        bad = requests[1]
        requests[1] = dataclasses.replace(
            bad,
            signature=SchnorrSignature(
                challenge=bad.signature.challenge,
                response=(bad.signature.response + 1) % d.group.q,
                commitment=bad.signature.commitment,
            ),
        )
        results = d.provider.redeem_batch(requests)
        assert isinstance(results[1], AuthenticationError)
        for index in (0, 2, 3):
            assert not isinstance(results[index], Exception), results[index]

    def test_commitment_less_legacy_signature_still_accepted(self, batch_deployment):
        """A request signed without the carried commitment R cannot join
        the aggregated check — batch_verify falls back to scalar
        verification for it, and it succeeds alongside batchable ones."""
        d = batch_deployment
        _, requests = _redeem_queue(d, 3)
        legacy = requests[1]
        requests[1] = dataclasses.replace(
            legacy,
            signature=SchnorrSignature(
                challenge=legacy.signature.challenge,
                response=legacy.signature.response,
                commitment=None,
            ),
        )
        results = d.provider.redeem_batch(requests)
        for result in results:
            assert not isinstance(result, Exception), result

    def test_tampered_anonymous_license_isolated(self, batch_deployment):
        d = batch_deployment
        _, requests = _redeem_queue(d, 3)
        victim = requests[0]
        forged_license = dataclasses.replace(
            victim.anonymous_license,
            signature=bytes(len(victim.anonymous_license.signature)),
        )
        requests[0] = dataclasses.replace(victim, anonymous_license=forged_license)
        results = d.provider.redeem_batch(requests)
        assert isinstance(results[0], AuthenticationError)
        assert not isinstance(results[1], Exception)
        assert not isinstance(results[2], Exception)

    def test_forged_certificate_isolated(self, batch_deployment):
        d = batch_deployment
        _, requests = _redeem_queue(d, 3)
        victim = requests[2]
        forged_cert = dataclasses.replace(
            victim.certificate,
            signature=bytes(len(victim.certificate.signature)),
        )
        bad = dataclasses.replace(victim, certificate=forged_cert)
        # Re-sign under the original pseudonym so only the certificate
        # is at fault (the envelope signature stays valid).
        requests[2] = bad
        results = d.provider.redeem_batch(requests)
        assert isinstance(results[2], AuthenticationError)
        assert not isinstance(results[0], Exception)
        assert not isinstance(results[1], Exception)

    # -- threaded screening -------------------------------------------------

    def test_threaded_screening_byte_identical_to_serial(self, fresh_deployment):
        """The per-item screening arms on a thread pool must produce
        the exact bytes (licences AND rejections) the serial loop
        produces.  The queue carries one forged licence signature
        (stage-1 arm) and one forged Schnorr envelope (stage-4 arm), so
        both fallback loops actually run."""
        from concurrent.futures import ThreadPoolExecutor

        from repro import codec

        outputs = []
        for threads in (0, 2):
            d = fresh_deployment(seed="rb-screen-threads")
            receiver, requests = _redeem_queue(d, 4)
            forged_license = dataclasses.replace(
                requests[1].anonymous_license,
                signature=bytes(len(requests[1].anonymous_license.signature)),
            )
            requests[1] = dataclasses.replace(
                requests[1], anonymous_license=forged_license
            )
            requests[2] = dataclasses.replace(
                requests[2],
                signature=SchnorrSignature(
                    challenge=requests[2].signature.challenge,
                    response=(requests[2].signature.response + 1) % d.group.q,
                    commitment=requests[2].signature.commitment,
                ),
            )
            pool = ThreadPoolExecutor(max_workers=threads) if threads else None
            d.provider.screening_executor = pool
            try:
                results = d.provider.redeem_batch(requests)
            finally:
                if pool is not None:
                    pool.shutdown(wait=True)
            outputs.append(
                [
                    (type(result).__name__, str(result))
                    if isinstance(result, Exception)
                    else codec.encode(result.as_dict())
                    for result in results
                ]
            )
        serial, threaded = outputs
        assert serial == threaded
        assert serial[1][0] == "AuthenticationError"
        assert serial[2][0] == "AuthenticationError"
        assert isinstance(serial[0], bytes) and isinstance(serial[3], bytes)
