"""Per-content rights templates: rentals, regional sales, device binding."""

import pytest

from repro.errors import RightsDenied, RightsParseError


class TestTemplatePlumbing:
    def test_default_template(self, fresh_deployment):
        d = fresh_deployment("tmpl1")
        license_ = d.add_user("u", balance=100) and d.buy("u", "song-1")
        assert license_.rights.transferable
        assert license_.rights.permission_for("play").max_count() is None

    def test_bad_template_rejected_at_publish(self, fresh_deployment):
        d = fresh_deployment("tmpl2")
        with pytest.raises(RightsParseError):
            d.provider.publish("bad", b"X", title="B", price=1, rights_template="fly")

    def test_template_recorded_per_content(self, fresh_deployment):
        d = fresh_deployment("tmpl3")
        d.provider.publish(
            "rental", b"X" * 32, title="R", price=1,
            rights_template="play[count<=2]",
        )
        assert d.provider._contents.rights_template("rental") == "play[count<=2]"
        assert "transfer" in d.provider._contents.rights_template("song-1")


class TestRentalScenario:
    def test_play_count_rental(self, fresh_deployment):
        d = fresh_deployment("rental1")
        d.provider.publish(
            "rental-movie", b"MOVIE" * 64, title="Rental", price=2,
            rights_template="play[count<=2]",
        )
        user = d.add_user("u", balance=100)
        license_ = d.buy("u", "rental-movie")
        assert not license_.rights.transferable
        device = d.add_device()
        package = d.provider.download("rental-movie")
        device.render(license_, package, user.require_card())
        device.render(license_, package, user.require_card())
        with pytest.raises(RightsDenied, match="exhausted"):
            device.render(license_, package, user.require_card())

    def test_expiring_rental(self, fresh_deployment):
        d = fresh_deployment("rental2")
        expiry = d.clock.now() + 3600
        d.provider.publish(
            "day-pass", b"PASS" * 32, title="Pass", price=1,
            rights_template=f"play[before={expiry}]",
        )
        user = d.add_user("u", balance=100)
        license_ = d.buy("u", "day-pass")
        device = d.add_device()
        package = d.provider.download("day-pass")
        device.render(license_, package, user.require_card())
        d.clock.advance(3601)
        with pytest.raises(RightsDenied, match="expired"):
            device.render(license_, package, user.require_card())

    def test_rental_cannot_be_transferred(self, fresh_deployment):
        from repro.errors import ProtocolError

        d = fresh_deployment("rental3")
        d.provider.publish(
            "no-transfer", b"X" * 32, title="NT", price=1,
            rights_template="play",
        )
        user = d.add_user("u", balance=100)
        license_ = d.buy("u", "no-transfer")
        with pytest.raises(ProtocolError, match="transfer"):
            user.transfer_out(license_.license_id, provider=d.provider)


class TestRegionalScenario:
    def test_region_locked_content(self, fresh_deployment):
        d = fresh_deployment("region1")
        d.provider.publish(
            "eu-only", b"X" * 32, title="EU", price=1,
            rights_template="play[region=eu]",
        )
        user = d.add_user("u", balance=100)
        license_ = d.buy("u", "eu-only")
        eu_device = d.add_device(region="eu")
        us_device = d.add_device(region="us")
        package = d.provider.download("eu-only")
        eu_device.render(license_, package, user.require_card())
        with pytest.raises(RightsDenied, match="region"):
            us_device.render(license_, package, user.require_card())

    def test_rights_survive_transfer_with_template(self, fresh_deployment):
        """Template constraints ride along through exchange+redeem."""
        d = fresh_deployment("region2")
        d.provider.publish(
            "eu-transferable", b"X" * 32, title="EU-T", price=1,
            rights_template="play[region=eu]; transfer[count<=1]",
        )
        d.add_user("a", balance=100)
        b = d.add_user("b", balance=100)
        license_ = d.buy("a", "eu-transferable")
        new_license = d.transfer("a", "b", license_.license_id)
        us_device = d.add_device(region="us")
        package = d.provider.download("eu-transferable")
        with pytest.raises(RightsDenied, match="region"):
            us_device.render(new_license, package, b.require_card())
