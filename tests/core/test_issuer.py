"""Smart card issuer: enrolment, blind certification, escrow opening."""

import pytest

from repro.core.messages import MisuseEvidence
from repro.errors import AuthenticationError, EscrowError


class TestEnrolment:
    def test_enrol_creates_card_and_account(self, fresh_deployment):
        d = fresh_deployment("enrol")
        user = d.add_user("alice")
        card = user.require_card()
        account = d.issuer.accounts.by_card(card.card_id)
        assert account is not None
        assert account.user_id == "alice"
        assert account.identity_tag == card.identity_tag_bytes

    def test_double_enrolment_rejected(self, fresh_deployment):
        d = fresh_deployment("enrol2")
        d.add_user("alice")
        with pytest.raises(Exception):
            d.issuer.enrol("alice")

    def test_enrolment_audited(self, fresh_deployment):
        d = fresh_deployment("enrol3")
        d.add_user("alice")
        events = d.issuer.audit_log.entries(event="user_enrolled")
        assert len(events) == 1


class TestBlindCertification:
    def test_unknown_card_rejected(self, fresh_deployment):
        d = fresh_deployment("cert1")
        with pytest.raises(AuthenticationError, match="unknown card"):
            d.issuer.issue_blind_certificate(b"ghost-card", 12345)

    def test_blocked_card_rejected(self, fresh_deployment):
        d = fresh_deployment("cert2")
        user = d.add_user("alice")
        d.issuer.accounts.set_status("alice", "blocked")
        with pytest.raises(AuthenticationError, match="blocked"):
            user.prepare_certificate(d.issuer)

    def test_certification_logs_card_not_pseudonym(self, fresh_deployment):
        """The issuer's own audit record proves what it can and cannot
        see: the card id is there, the pseudonym is not."""
        d = fresh_deployment("cert3")
        user = d.add_user("alice")
        certificate = user.prepare_certificate(d.issuer)
        (event,) = d.issuer.audit_log.entries(event="pseudonym_certified")
        assert bytes(event.payload["card"]) == user.require_card().card_id
        flattened = repr(event.payload)
        assert certificate.fingerprint.hex() not in flattened
        assert str(certificate.pseudonym.y) not in flattened

    def test_certificate_verifies_under_issuer_key(self, fresh_deployment):
        d = fresh_deployment("cert4")
        user = d.add_user("alice")
        certificate = user.prepare_certificate(d.issuer)
        certificate.verify(d.issuer.certificate_key)


class TestEscrowOpening:
    def _double_redemption_evidence(self, d):
        d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=100)
        cheat = d.add_user("cheat", balance=100)
        license_ = cheat.buy(
            "song-1", provider=d.provider, issuer=d.issuer, bank=d.bank
        )
        anonymous = cheat.transfer_out(license_.license_id, provider=d.provider)
        bob.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        from repro.errors import DoubleRedemptionError

        with pytest.raises(DoubleRedemptionError) as err:
            cheat.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        return err.value.evidence

    def test_opening_identifies_second_redeemer(self, fresh_deployment):
        d = fresh_deployment("open1")
        evidence = self._double_redemption_evidence(d)
        result = d.issuer.open_misuse_evidence(evidence)
        assert result.offender_user_id == "cheat"
        assert result.blocked

    def test_offender_account_blocked(self, fresh_deployment):
        d = fresh_deployment("open2")
        evidence = self._double_redemption_evidence(d)
        d.issuer.open_misuse_evidence(evidence)
        assert d.issuer.accounts.get("cheat").status == "blocked"

    def test_opening_is_audited(self, fresh_deployment):
        d = fresh_deployment("open3")
        evidence = self._double_redemption_evidence(d)
        d.issuer.open_misuse_evidence(evidence)
        events = d.issuer.audit_log.entries(event="escrow_opened")
        assert len(events) == 1
        assert bytes(events[0].payload["token"]) == evidence.token_id

    def test_identical_transcripts_rejected(self, fresh_deployment):
        d = fresh_deployment("open4")
        evidence = self._double_redemption_evidence(d)
        forged = MisuseEvidence(
            kind=evidence.kind,
            token_id=evidence.token_id,
            content_id=evidence.content_id,
            first_transcript=evidence.first_transcript,
            second_transcript=evidence.first_transcript,
        )
        with pytest.raises(EscrowError, match="identical"):
            d.issuer.open_misuse_evidence(forged)

    def test_tampered_transcript_rejected(self, fresh_deployment):
        """A provider cannot get a user de-anonymized with made-up
        evidence: the transcript signatures must verify for the token."""
        d = fresh_deployment("open5")
        evidence = self._double_redemption_evidence(d)
        forged = MisuseEvidence(
            kind=evidence.kind,
            token_id=b"\x13" * 16,  # different token than was signed
            content_id=evidence.content_id,
            first_transcript=evidence.first_transcript,
            second_transcript=evidence.second_transcript,
        )
        with pytest.raises(EscrowError):
            d.issuer.open_misuse_evidence(forged)

    def test_opening_publicly_auditable(self, fresh_deployment):
        from repro.core.escrow import verify_opening
        from repro.core.messages import parse_redemption_transcript

        d = fresh_deployment("open6")
        evidence = self._double_redemption_evidence(d)
        result = d.issuer.open_misuse_evidence(evidence)
        offender_cert = parse_redemption_transcript(evidence.second_transcript)["cert"]
        verify_opening(offender_cert.escrow, result.opening, d.issuer.escrow_key)

    def test_honest_user_never_opened(self, fresh_deployment):
        """No misuse → no escrow_opened events, structural guarantee of
        the audit requirement."""
        d = fresh_deployment("open7")
        alice = d.add_user("alice", balance=100)
        alice.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        assert d.issuer.audit_log.entries(event="escrow_opened") == []
