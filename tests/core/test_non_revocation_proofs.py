"""Offline non-revocation proofs: snapshot + Merkle non-inclusion."""

import pytest

from repro.errors import RevokedLicenseError
from repro.storage.merkle import verify_non_inclusion


class TestProveNotRevoked:
    def test_valid_license_gets_verifiable_proof(self, fresh_deployment):
        d = fresh_deployment("nrp1")
        alice = d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=100)
        license_a = d.buy("alice", "song-1")
        license_b = d.buy("bob", "song-1")
        # Create some revocations so the tree is non-trivial.
        anonymous = alice.transfer_out(license_a.license_id, provider=d.provider)
        bob.redeem(anonymous, provider=d.provider, issuer=d.issuer)

        snapshot, proof = d.provider.prove_not_revoked(license_b.license_id)
        # An offline verifier checks: signature, then the proof.
        snapshot.verify(d.provider.license_key)
        assert verify_non_inclusion(
            snapshot.merkle_root, snapshot.count, license_b.license_id, proof
        )

    def test_revoked_license_refused(self, fresh_deployment):
        d = fresh_deployment("nrp2")
        alice = d.add_user("alice", balance=100)
        license_ = d.buy("alice", "song-1")
        alice.transfer_out(license_.license_id, provider=d.provider)
        with pytest.raises(RevokedLicenseError):
            d.provider.prove_not_revoked(license_.license_id)

    def test_proof_does_not_transfer_to_other_license(self, fresh_deployment):
        d = fresh_deployment("nrp3")
        alice = d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=100)
        license_a = d.buy("alice", "song-1")
        license_b = d.buy("bob", "song-1")
        anonymous = alice.transfer_out(license_a.license_id, provider=d.provider)
        bob.redeem(anonymous, provider=d.provider, issuer=d.issuer)

        snapshot, proof = d.provider.prove_not_revoked(license_b.license_id)
        # Using bob's proof to claim *alice's revoked* licence is clean fails.
        assert not verify_non_inclusion(
            snapshot.merkle_root, snapshot.count, license_a.license_id, proof
        )

    def test_empty_lrl_proof(self, fresh_deployment):
        d = fresh_deployment("nrp4")
        d.add_user("alice", balance=100)
        license_ = d.buy("alice", "song-1")
        snapshot, proof = d.provider.prove_not_revoked(license_.license_id)
        snapshot.verify(d.provider.license_key)
        assert snapshot.count == 0
        assert verify_non_inclusion(
            snapshot.merkle_root, snapshot.count, license_.license_id, proof
        )

    def test_stale_proof_detectable_by_version(self, fresh_deployment):
        """A proof is a statement about one snapshot; after a later
        revocation, the version/root change and the verifier can demand
        a fresher snapshot."""
        d = fresh_deployment("nrp5")
        alice = d.add_user("alice", balance=100)
        bob = d.add_user("bob", balance=100)
        license_ = d.buy("alice", "song-1")
        old_snapshot, old_proof = d.provider.prove_not_revoked(license_.license_id)
        anonymous = alice.transfer_out(license_.license_id, provider=d.provider)
        bob.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        assert d.provider.revocation_list.current_version() > old_snapshot.version
        # The old proof still verifies against the OLD root (it is a
        # true statement about the past) but not against the new one.
        assert verify_non_inclusion(
            old_snapshot.merkle_root, old_snapshot.count, license_.license_id, old_proof
        )
        current = d.provider.revocation_list
        from repro.storage.merkle import MerkleTree

        new_root = MerkleTree(current.all_ids()).root
        assert not verify_non_inclusion(
            new_root, current.count(), license_.license_id, old_proof
        )
