"""Protocol wrappers: end-to-end flows, transcripts, message privacy."""

import pytest

from repro import codec, instrument
from repro.core.protocols import (
    Transcript,
    certify_pseudonym,
    purchase_content,
    render_content,
    report_misuse,
    transfer_license,
    withdraw_coins,
)
from repro.errors import DoubleRedemptionError


@pytest.fixture(scope="module")
def cast(deployment):
    alice = deployment.add_user("proto-alice", balance=1000)
    bob = deployment.add_user("proto-bob", balance=1000)
    device = deployment.add_device()
    return alice, bob, device


class TestTranscripts:
    def test_purchase_transcript(self, deployment, cast):
        alice, _, _ = cast
        transcript = Transcript()
        purchase_content(
            alice, deployment.provider, deployment.issuer, deployment.bank,
            "song-1", transcript=transcript,
        )
        assert transcript.protocol == "purchase"
        assert "purchase-request" in transcript.steps()
        assert "license" in transcript.steps()
        assert transcript.total_bytes > 500

    def test_certification_transcript(self, deployment, cast):
        alice, _, _ = cast
        transcript = Transcript()
        certify_pseudonym(alice, deployment.issuer, transcript=transcript)
        assert transcript.steps() == ["blind-request", "blind-signature"]

    def test_withdrawal_transcript(self, deployment, cast):
        alice, _, _ = cast
        transcript = Transcript()
        withdraw_coins(alice, deployment.bank, 26, transcript=transcript)
        # 26 = 20 + 5 + 1 → three request/response pairs.
        assert transcript.message_count == 6

    def test_transfer_transcript_includes_handover(self, deployment, cast):
        alice, bob, _ = cast
        license_ = alice.buy(
            "song-1", provider=deployment.provider, issuer=deployment.issuer,
            bank=deployment.bank,
        )
        transcript = Transcript()
        transfer_license(
            alice, bob, deployment.provider, deployment.issuer,
            license_.license_id, transcript=transcript,
        )
        steps = transcript.steps()
        assert steps.index("exchange-request") < steps.index("handover")
        assert steps.index("handover") < steps.index("redeem-request")

    def test_access_transcript_has_single_offdevice_message(self, deployment, cast):
        alice, _, device = cast
        if not alice.owns_content("song-1"):
            alice.buy(
                "song-1", provider=deployment.provider, issuer=deployment.issuer,
                bank=deployment.bank,
            )
        transcript = Transcript()
        render_content(
            alice, device, deployment.provider, "song-1", transcript=transcript
        )
        assert transcript.steps() == ["package-download"]

    def test_byte_accounting(self, deployment, cast):
        alice, _, _ = cast
        transcript = Transcript()
        transcript.add("step", "a", "b", b"12345")
        transcript.add("step2", "b", "a", {"k": 1})
        assert transcript.total_bytes == 5 + len(codec.encode({"k": 1}))
        assert transcript.bytes_sent_by("a") == 5


class TestOpCounting:
    def test_purchase_costs_counted(self, deployment, cast):
        alice, _, _ = cast
        with instrument.measure() as ops:
            purchase_content(
                alice, deployment.provider, deployment.issuer, deployment.bank, "song-1"
            )
        counts = ops.as_dict()
        assert counts.get("rsa.private_op", 0) >= 2   # blind cert + licence sig
        assert counts.get("modexp", 0) >= 6           # schnorr + kem + escrow

    def test_nested_scopes_both_count(self, deployment, cast):
        alice, _, _ = cast
        with instrument.measure() as outer:
            with instrument.measure() as inner:
                certify_pseudonym(alice, deployment.issuer)
        assert inner.counts == outer.counts
        assert inner.total("rsa") > 0

    def test_no_scope_no_cost(self, deployment, cast):
        """Ticks outside a measure() scope are dropped, not accumulated."""
        alice, _, _ = cast
        certify_pseudonym(alice, deployment.issuer)
        with instrument.measure() as ops:
            pass
        assert ops.counts == {}


class TestMessagePrivacy:
    def test_purchase_request_carries_no_identity(self, deployment, cast):
        """Field-by-field: nothing in the purchase request names the
        user, the card, or the bank account."""
        from repro.core.messages import PurchaseRequest, purchase_signing_payload

        alice, _, _ = cast
        certificate = alice.certificate_for_transaction(deployment.issuer)
        coins = alice.coins_for(3, deployment.bank)
        nonce = alice.rng.random_bytes(16)
        at = deployment.clock.now()
        payload = purchase_signing_payload(
            "song-1", certificate.fingerprint, [c.serial for c in coins], nonce, at
        )
        request = PurchaseRequest(
            content_id="song-1",
            certificate=certificate,
            coins=tuple(coins),
            nonce=nonce,
            at=at,
            signature=alice.require_card().sign(certificate.pseudonym, payload),
        )
        wire = codec.encode(request.as_dict())
        assert b"proto-alice" not in wire
        assert alice.require_card().card_id not in wire
        assert alice.bank_account.encode() not in wire

    def test_report_misuse_roundtrip(self, fresh_deployment):
        d = fresh_deployment("proto-misuse")
        cheat = d.add_user("cheat", balance=100)
        bob = d.add_user("bob", balance=100)
        license_ = cheat.buy("song-1", provider=d.provider, issuer=d.issuer, bank=d.bank)
        anonymous = cheat.transfer_out(license_.license_id, provider=d.provider)
        bob.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        with pytest.raises(DoubleRedemptionError) as err:
            cheat.redeem(anonymous, provider=d.provider, issuer=d.issuer)
        transcript = Transcript()
        result = report_misuse(
            d.provider, d.issuer, err.value.evidence, transcript=transcript
        )
        assert result.offender_user_id == "cheat"
        assert transcript.steps() == ["evidence", "revocation-result"]
