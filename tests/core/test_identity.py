"""Smart cards and pseudonyms."""

import pytest

from repro.core.identity import Pseudonym, SmartCard, identity_tag_for_card
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import AuthenticationError, ComplianceError


@pytest.fixture()
def card(test_group):
    return SmartCard(
        b"card-id-16bytes!",
        test_group,
        rng=DeterministicRandomSource(b"card"),
    )


class TestIdentityTag:
    def test_deterministic_per_card(self, test_group):
        a = identity_tag_for_card(test_group, b"card-1")
        b = identity_tag_for_card(test_group, b"card-1")
        assert a == b

    def test_distinct_cards_distinct_tags(self, test_group):
        assert identity_tag_for_card(test_group, b"card-1") != identity_tag_for_card(
            test_group, b"card-2"
        )

    def test_tag_is_group_member(self, test_group, card):
        assert test_group.contains(card.identity_tag)

    def test_tag_bytes_fixed_width(self, test_group, card):
        assert len(card.identity_tag_bytes) == (test_group.p.bit_length() + 7) // 8


class TestPseudonyms:
    def test_new_pseudonym_held(self, card):
        pseudonym = card.new_pseudonym()
        assert card.holds(pseudonym)
        assert card.pseudonym_count() == 1

    def test_pseudonyms_are_distinct(self, card):
        a = card.new_pseudonym()
        b = card.new_pseudonym()
        assert a.fingerprint != b.fingerprint

    def test_foreign_pseudonym_not_held(self, test_group, card):
        other = SmartCard(
            b"other-card-00000", test_group, rng=DeterministicRandomSource(b"o")
        )
        foreign = other.new_pseudonym()
        assert not card.holds(foreign)
        with pytest.raises(AuthenticationError):
            card.sign(foreign, b"message")

    def test_pseudonym_dict_roundtrip(self, card):
        pseudonym = card.new_pseudonym()
        assert Pseudonym.from_dict(pseudonym.as_dict()) == pseudonym

    def test_signing_key_and_kem_key_share_element(self, card):
        pseudonym = card.new_pseudonym()
        assert pseudonym.signing_key.y == pseudonym.kem_key.y


class TestCardOperations:
    def test_sign_verifies_under_pseudonym(self, card):
        pseudonym = card.new_pseudonym()
        signature = card.sign(pseudonym, b"message")
        pseudonym.signing_key.verify(b"message", signature)

    def test_kem_roundtrip_through_card(self, card, rng):
        pseudonym = card.new_pseudonym()
        wrapped = pseudonym.kem_key.kem_wrap(b"content-key-0123", context=b"c", rng=rng)
        key = card.unwrap_content_key(pseudonym, wrapped, context=b"c")
        assert key == b"content-key-0123"

    def test_escrow_created_and_bound(self, test_group, card, rng):
        from repro.crypto.elgamal import generate_elgamal_key

        ttp = generate_elgamal_key(test_group, rng=rng)
        pseudonym = card.new_pseudonym()
        escrow = card.make_escrow(pseudonym, ttp.public_key)
        escrow.verify_binding(pseudonym.fingerprint)
        assert ttp.decrypt_element(escrow.ciphertext) == card.identity_tag


class TestComplianceGate:
    def test_card_refuses_without_device_certificate(self, test_group, rng, rsa512):
        card = SmartCard(
            b"gated-card-00000",
            test_group,
            rng=DeterministicRandomSource(b"g"),
            authority_key=rsa512.public_key,
        )
        pseudonym = card.new_pseudonym()
        wrapped = pseudonym.kem_key.kem_wrap(b"key", context=b"c", rng=rng)
        with pytest.raises(ComplianceError):
            card.unwrap_content_key(pseudonym, wrapped, context=b"c")

    def test_card_refuses_bogus_certificate(self, test_group, rng, rsa512, rsa768):
        from repro.core.certificates import CertificateAuthority

        card = SmartCard(
            b"gated-card-00001",
            test_group,
            rng=DeterministicRandomSource(b"g2"),
            authority_key=rsa512.public_key,
        )
        rogue_authority = CertificateAuthority(rsa768)  # not the trusted root
        certificate = rogue_authority.certify_device(
            "ab12", model="evil", capabilities=("play",), not_before=0, not_after=10**10
        )
        pseudonym = card.new_pseudonym()
        wrapped = pseudonym.kem_key.kem_wrap(b"key", context=b"c", rng=rng)
        with pytest.raises(ComplianceError):
            card.unwrap_content_key(
                pseudonym, wrapped, context=b"c", device_certificate=certificate
            )

    def test_card_accepts_valid_certificate(self, test_group, rng, rsa512):
        from repro.core.certificates import CertificateAuthority

        authority = CertificateAuthority(rsa512)
        card = SmartCard(
            b"gated-card-00002",
            test_group,
            rng=DeterministicRandomSource(b"g3"),
            authority_key=rsa512.public_key,
        )
        certificate = authority.certify_device(
            "ab12", model="ok", capabilities=("play",), not_before=0, not_after=10**10
        )
        pseudonym = card.new_pseudonym()
        wrapped = pseudonym.kem_key.kem_wrap(b"key!", context=b"c", rng=rng)
        assert (
            card.unwrap_content_key(
                pseudonym, wrapped, context=b"c", device_certificate=certificate
            )
            == b"key!"
        )
