"""Identity escrow: binding, verifiable opening, framing resistance."""

import pytest

from repro.core.escrow import (
    EscrowOpening,
    IdentityEscrow,
    create_escrow,
    open_escrow,
    verify_opening,
)
from repro.crypto.elgamal import generate_elgamal_key
from repro.errors import EscrowError


@pytest.fixture()
def ttp(test_group, rng):
    return generate_elgamal_key(test_group, rng=rng)


@pytest.fixture()
def tag(test_group):
    return test_group.encode_element(b"card-tag")


class TestCreation:
    def test_escrow_decrypts_to_tag(self, ttp, tag, rng):
        escrow = create_escrow(
            tag_element=tag, ttp_key=ttp.public_key, binding=b"pseud-fp", rng=rng
        )
        assert ttp.decrypt_element(escrow.ciphertext) == tag

    def test_binding_verifies(self, ttp, tag, rng):
        escrow = create_escrow(
            tag_element=tag, ttp_key=ttp.public_key, binding=b"pseud-fp", rng=rng
        )
        escrow.verify_binding(b"pseud-fp")

    def test_wrong_binding_rejected(self, ttp, tag, rng):
        """An escrow lifted from one certificate cannot be attached to
        another pseudonym — the transplant the proof exists to stop."""
        escrow = create_escrow(
            tag_element=tag, ttp_key=ttp.public_key, binding=b"pseud-A", rng=rng
        )
        with pytest.raises(EscrowError):
            escrow.verify_binding(b"pseud-B")

    def test_dict_roundtrip(self, ttp, tag, rng):
        escrow = create_escrow(
            tag_element=tag, ttp_key=ttp.public_key, binding=b"fp", rng=rng
        )
        restored = IdentityEscrow.from_dict(escrow.as_dict())
        assert restored == escrow
        restored.verify_binding(b"fp")


class TestOpening:
    def test_open_recovers_tag_with_proof(self, test_group, ttp, tag, rng):
        escrow = create_escrow(
            tag_element=tag, ttp_key=ttp.public_key, binding=b"fp", rng=rng
        )
        opening = open_escrow(escrow, ttp, rng=rng)
        assert opening.tag_element == tag
        verify_opening(escrow, opening, ttp.public_key)

    def test_framing_rejected(self, test_group, ttp, tag, rng):
        """A malicious TTP announcing a *different* tag (framing an
        innocent user) cannot produce a valid opening proof."""
        escrow = create_escrow(
            tag_element=tag, ttp_key=ttp.public_key, binding=b"fp", rng=rng
        )
        opening = open_escrow(escrow, ttp, rng=rng)
        innocent_tag = test_group.encode_element(b"innocent-card")
        forged = EscrowOpening(
            group=opening.group, tag_element=innocent_tag, proof=opening.proof
        )
        with pytest.raises(EscrowError):
            verify_opening(escrow, forged, ttp.public_key)

    def test_wrong_ttp_key_cannot_open_verifiably(self, test_group, tag, rng):
        real_ttp = generate_elgamal_key(test_group, rng=rng)
        fake_ttp = generate_elgamal_key(test_group, rng=rng)
        escrow = create_escrow(
            tag_element=tag, ttp_key=real_ttp.public_key, binding=b"fp", rng=rng
        )
        opening = open_escrow(escrow, fake_ttp, rng=rng)  # wrong key, wrong tag
        with pytest.raises(EscrowError):
            verify_opening(escrow, opening, real_ttp.public_key)

    def test_group_mismatch_rejected(self, test_group, ttp, tag, rng):
        from repro.crypto.groups import named_group

        escrow = create_escrow(
            tag_element=tag, ttp_key=ttp.public_key, binding=b"fp", rng=rng
        )
        other_group_key = generate_elgamal_key(named_group("modp-1536"), rng=rng)
        with pytest.raises(EscrowError):
            open_escrow(escrow, other_group_key, rng=rng)

    def test_opening_dict_roundtrip(self, ttp, tag, rng):
        escrow = create_escrow(
            tag_element=tag, ttp_key=ttp.public_key, binding=b"fp", rng=rng
        )
        opening = open_escrow(escrow, ttp, rng=rng)
        assert EscrowOpening.from_dict(opening.as_dict()) == opening


class TestUnlinkability:
    def test_two_escrows_of_same_tag_look_unrelated(self, ttp, tag, rng):
        """The same card's escrows across two certificates share no
        visible structure (semantic security of ElGamal)."""
        a = create_escrow(tag_element=tag, ttp_key=ttp.public_key, binding=b"A", rng=rng)
        b = create_escrow(tag_element=tag, ttp_key=ttp.public_key, binding=b"B", rng=rng)
        assert a.ciphertext.c1 != b.ciphertext.c1
        assert a.ciphertext.c2 != b.ciphertext.c2
        # Yet both open to the same tag.
        assert ttp.decrypt_element(a.ciphertext) == ttp.decrypt_element(b.ciphertext)
