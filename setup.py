"""Legacy setup shim.

The reproduction environment has no ``wheel`` package, so PEP 517
editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` takes the ``setup.py develop`` path instead.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
