"""The content provider's licence register.

Every licence the CP ever issues is recorded here with its lifecycle
status.  Crucially for the privacy analysis, the register holds exactly
what an honest-but-curious CP would hold: for personalized licences a
*pseudonym fingerprint* (not an identity), for anonymous licences no
holder at all.  The baseline identity-bound DRM stores a real account
id in the same column — experiments E8/E10 diff what the two variants
can infer from this very table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError
from .engine import Database

STATUS_ACTIVE = "active"
STATUS_EXCHANGED = "exchanged"  # personalized licence traded for anonymous
STATUS_REDEEMED = "redeemed"    # anonymous licence turned into personalized
STATUS_REVOKED = "revoked"

_VALID_STATUS = {STATUS_ACTIVE, STATUS_EXCHANGED, STATUS_REDEEMED, STATUS_REVOKED}

KIND_PERSONAL = "personal"
KIND_ANONYMOUS = "anonymous"
KIND_IDENTITY = "identity"  # baseline DRM

_MIGRATION = [
    """
    CREATE TABLE licenses (
        license_id  BLOB    PRIMARY KEY,
        kind        TEXT    NOT NULL,
        content_id  TEXT    NOT NULL,
        holder      BLOB,
        rights_text TEXT    NOT NULL,
        issued_at   INTEGER NOT NULL,
        status      TEXT    NOT NULL,
        blob        BLOB    NOT NULL
    )
    """,
    "CREATE INDEX idx_licenses_content ON licenses(content_id)",
    "CREATE INDEX idx_licenses_holder ON licenses(holder)",
    "CREATE INDEX idx_licenses_issued ON licenses(issued_at)",
]


@dataclass(frozen=True)
class LicenseRecord:
    license_id: bytes
    kind: str
    content_id: str
    holder: bytes | None
    rights_text: str
    issued_at: int
    status: str
    blob: bytes


class LicenseStore:
    """Issued-licence register with lifecycle transitions."""

    def __init__(self, db: Database):
        self._db = db
        db.migrate("licenses_v1", _MIGRATION)

    def insert(
        self,
        license_id: bytes,
        *,
        kind: str,
        content_id: str,
        holder: bytes | None,
        rights_text: str,
        issued_at: int,
        blob: bytes,
    ) -> None:
        if kind not in (KIND_PERSONAL, KIND_ANONYMOUS, KIND_IDENTITY):
            raise StorageError(f"unknown licence kind {kind!r}")
        # Immediate: the duplicate check and the insert must serialize
        # against other worker processes writing the same shard file —
        # a deferred scope would hit SQLITE_BUSY_SNAPSHOT on upgrade.
        with self._db.transaction(immediate=True):
            if self.get(license_id) is not None:
                raise StorageError(
                    f"licence {license_id.hex()[:16]} already registered"
                )
            self._db.execute(
                "INSERT INTO licenses(license_id, kind, content_id, holder,"
                " rights_text, issued_at, status, blob)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    license_id,
                    kind,
                    content_id,
                    holder,
                    rights_text,
                    issued_at,
                    STATUS_ACTIVE,
                    blob,
                ),
            )

    def get(self, license_id: bytes) -> LicenseRecord | None:
        row = self._db.query_one(
            "SELECT license_id, kind, content_id, holder, rights_text,"
            " issued_at, status, blob FROM licenses WHERE license_id = ?",
            (license_id,),
        )
        return self._to_record(row) if row else None

    def set_status(self, license_id: bytes, status: str) -> None:
        if status not in _VALID_STATUS:
            raise StorageError(f"unknown status {status!r}")
        cursor = self._db.execute(
            "UPDATE licenses SET status = ? WHERE license_id = ?",
            (status, license_id),
        )
        if cursor.rowcount != 1:
            raise StorageError(f"licence {license_id.hex()[:16]} not found")

    def transition(
        self, license_id: bytes, *, from_status: str, to_status: str
    ) -> bool:
        """Atomic compare-and-swap on the lifecycle status.

        Returns whether the transition happened.  One UPDATE statement,
        so two processes racing the same transition on the licence's
        home shard serialize at the row — exactly one sees ``True``.
        This is the exactly-once gate for ``exchange`` (a licence may
        leave ACTIVE once), the counterpart of the spent-token store's
        gate on redemption.
        """
        if to_status not in _VALID_STATUS:
            raise StorageError(f"unknown status {to_status!r}")
        cursor = self._db.execute(
            "UPDATE licenses SET status = ? WHERE license_id = ? AND status = ?",
            (to_status, license_id, from_status),
        )
        return cursor.rowcount == 1

    def by_holder(self, holder: bytes) -> list[LicenseRecord]:
        rows = self._db.query_all(
            "SELECT license_id, kind, content_id, holder, rights_text,"
            " issued_at, status, blob FROM licenses WHERE holder = ?"
            " ORDER BY issued_at",
            (holder,),
        )
        return [self._to_record(r) for r in rows]

    def by_content(self, content_id: str) -> list[LicenseRecord]:
        rows = self._db.query_all(
            "SELECT license_id, kind, content_id, holder, rights_text,"
            " issued_at, status, blob FROM licenses WHERE content_id = ?"
            " ORDER BY issued_at",
            (content_id,),
        )
        return [self._to_record(r) for r in rows]

    def issued_between(self, start: int, end: int) -> list[LicenseRecord]:
        rows = self._db.query_all(
            "SELECT license_id, kind, content_id, holder, rights_text,"
            " issued_at, status, blob FROM licenses"
            " WHERE issued_at >= ? AND issued_at < ? ORDER BY issued_at",
            (start, end),
        )
        return [self._to_record(r) for r in rows]

    def count(self, *, kind: str | None = None, status: str | None = None) -> int:
        sql = "SELECT COUNT(*) FROM licenses WHERE 1=1"
        params: list = []
        if kind is not None:
            sql += " AND kind = ?"
            params.append(kind)
        if status is not None:
            sql += " AND status = ?"
            params.append(status)
        return self._db.query_value(sql, tuple(params), default=0)

    def distinct_holders(self) -> int:
        """How many distinct holder values the register links licences to
        — the CP's linkage surface (E10 reports this for both variants)."""
        return self._db.query_value(
            "SELECT COUNT(DISTINCT holder) FROM licenses WHERE holder IS NOT NULL",
            default=0,
        )

    @staticmethod
    def _to_record(row: tuple) -> LicenseRecord:
        return LicenseRecord(
            license_id=row[0],
            kind=row[1],
            content_id=row[2],
            holder=row[3],
            rights_text=row[4],
            issued_at=row[5],
            status=row[6],
            blob=row[7],
        )
