"""Versioned licence revocation list (LRL) with signed snapshots.

The paper requires that when user A exchanges a personalized licence
for an anonymous one, A's old licence lands on a revocation list
"distributed to compliant devices" — otherwise A keeps both.  The
paper does not say *how* it is distributed; this module supplies the
mechanism:

- every revocation bumps a monotonically increasing **version**;
- :meth:`RevocationList.snapshot` emits a :class:`SignedSnapshot` —
  one provider signature over ``(version, merkle_root, count)``;
- devices pull :meth:`entries_since` their last version (delta sync),
  rebuild the Merkle root locally and check it against the signed
  snapshot, so a tampering distribution channel is caught;
- a Bloom filter built from the list makes the per-play check cheap
  (see :mod:`repro.storage.bloom`, experiment E5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import codec
from ..crypto.rsa import RsaPrivateKey, RsaPublicKey
from .bloom import BloomFilter
from .engine import Database
from .merkle import MerkleTree

_MIGRATION = [
    """
    CREATE TABLE revoked_licenses (
        license_id BLOB    PRIMARY KEY,
        version    INTEGER NOT NULL,
        revoked_at INTEGER NOT NULL,
        reason     TEXT    NOT NULL
    )
    """,
    "CREATE INDEX idx_revoked_version ON revoked_licenses(version)",
]


@dataclass(frozen=True)
class RevocationEntry:
    license_id: bytes
    version: int
    revoked_at: int
    reason: str


@dataclass(frozen=True)
class SignedSnapshot:
    """Provider-signed summary of the LRL at one version."""

    version: int
    merkle_root: bytes
    count: int
    signature: bytes

    def signed_payload(self) -> bytes:
        return _snapshot_payload(self.version, self.merkle_root, self.count)

    def verify(self, public_key: RsaPublicKey) -> None:
        """Raises :class:`~repro.errors.InvalidSignature` on mismatch."""
        public_key.verify_pkcs1(self.signed_payload(), self.signature)

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "root": self.merkle_root,
            "count": self.count,
            "sig": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SignedSnapshot":
        return cls(
            version=int(data["version"]),
            merkle_root=bytes(data["root"]),
            count=int(data["count"]),
            signature=bytes(data["sig"]),
        )


def _snapshot_payload(version: int, root: bytes, count: int) -> bytes:
    return codec.encode({"what": "lrl-snapshot", "version": version, "root": root, "count": count})


class RevocationList:
    """The provider's authoritative LRL."""

    def __init__(self, db: Database):
        self._db = db
        db.migrate("revocation_v1", _MIGRATION)

    def revoke(self, license_id: bytes, *, at: int, reason: str) -> int:
        """Add ``license_id``; returns the new list version.

        Idempotent: re-revoking returns the existing version without a
        bump.  Immediate, so concurrent writers from different worker
        processes serialize on the version read.
        """
        with self._db.transaction(immediate=True):
            row = self._db.query_one(
                "SELECT version FROM revoked_licenses WHERE license_id = ?",
                (license_id,),
            )
            if row is not None:
                return self.current_version()
            version = self.current_version() + 1
            self._db.execute(
                "INSERT INTO revoked_licenses(license_id, version, revoked_at, reason)"
                " VALUES (?, ?, ?, ?)",
                (license_id, version, at, reason),
            )
            return version

    def is_revoked(self, license_id: bytes) -> bool:
        row = self._db.query_one(
            "SELECT 1 FROM revoked_licenses WHERE license_id = ?", (license_id,)
        )
        return row is not None

    def revoked_subset(self, license_ids) -> set[bytes]:
        """Which of ``license_ids`` are revoked — one list pass.

        The batch-redemption desk screens a whole queue with one query
        (chunked to stay under SQLite's parameter limit) instead of one
        ``is_revoked`` round-trip per request.
        """
        ids = list(dict.fromkeys(license_ids))
        revoked: set[bytes] = set()
        chunk_size = 500
        for start in range(0, len(ids), chunk_size):
            chunk = ids[start : start + chunk_size]
            placeholders = ", ".join("?" * len(chunk))
            rows = self._db.query_all(
                "SELECT license_id FROM revoked_licenses"
                f" WHERE license_id IN ({placeholders})",
                tuple(chunk),
            )
            revoked.update(row[0] for row in rows)
        return revoked

    def current_version(self) -> int:
        return self._db.query_value(
            "SELECT COALESCE(MAX(version), 0) FROM revoked_licenses", default=0
        )

    def count(self) -> int:
        return self._db.query_value(
            "SELECT COUNT(*) FROM revoked_licenses", default=0
        )

    def all_ids(self) -> list[bytes]:
        rows = self._db.query_all(
            "SELECT license_id FROM revoked_licenses ORDER BY license_id"
        )
        return [row[0] for row in rows]

    def entries_since(self, version: int) -> list[RevocationEntry]:
        """Delta for device sync: entries with version > ``version``.

        Exact, not conservative: versions are assigned contiguously
        under an immediate transaction, so ``version > v`` is precisely
        the set a device that synced through ``v`` has not seen.  One
        indexed range scan (``idx_revoked_version``).
        """
        rows = self._db.query_all(
            "SELECT license_id, version, revoked_at, reason FROM revoked_licenses"
            " WHERE version > ? ORDER BY version",
            (version,),
        )
        return [
            RevocationEntry(
                license_id=r[0], version=r[1], revoked_at=r[2], reason=r[3]
            )
            for r in rows
        ]

    def ids_through(self, version: int) -> list[bytes]:
        """Licence ids of the version-prefix ``<= version`` (unsorted).

        The sharded LRL builds its cursor-bounded snapshots from this:
        bounding by the *cursor's* version (instead of scanning
        everything) keeps a snapshot consistent with the delta it rode
        in with even while workers keep revoking concurrently.
        """
        rows = self._db.query_all(
            "SELECT license_id FROM revoked_licenses WHERE version <= ?",
            (version,),
        )
        return [row[0] for row in rows]

    # -- snapshot / distribution ------------------------------------------

    def merkle_tree(self) -> MerkleTree:
        return MerkleTree(self.all_ids())

    def snapshot(self, signing_key: RsaPrivateKey) -> SignedSnapshot:
        """Signed summary of the current list state."""
        version = self.current_version()
        tree = self.merkle_tree()
        count = len(tree)
        payload = _snapshot_payload(version, tree.root, count)
        return SignedSnapshot(
            version=version,
            merkle_root=tree.root,
            count=count,
            signature=signing_key.sign_pkcs1(payload),
        )

    def bloom_filter(self, fp_rate: float = 0.01) -> BloomFilter:
        """Filter over the current revoked set (shipped with snapshots)."""
        return BloomFilter.build(self.all_ids(), fp_rate=fp_rate)


class DeviceRevocationView:
    """A compliant device's local, verified copy of the LRL.

    Holds the exact set (for correctness), the Bloom filter (for the
    fast path) and the last verified snapshot version.  ``check`` is
    the call on the play path.
    """

    def __init__(self, provider_public_key: RsaPublicKey, *, fp_rate: float = 0.01):
        self._provider_key = provider_public_key
        self._fp_rate = fp_rate
        self._ids: set[bytes] = set()
        self._bloom = BloomFilter(capacity=64, fp_rate=fp_rate)
        self.version = 0
        #: Opaque resume token for the next ``revocation_sync`` call.
        #: ``0`` initially (= "send everything"); thereafter whatever
        #: the provider returned with the last applied delta — an int
        #: version for a single-store LRL, a per-shard version tuple
        #: for the sharded one.  The device never interprets it.
        self.cursor = 0

    @property
    def count(self) -> int:
        return len(self._ids)

    def apply_sync(
        self,
        entries: list[RevocationEntry],
        snapshot: SignedSnapshot,
        cursor=None,
    ) -> int:
        """Ingest a delta plus signed snapshot; returns entries applied.

        Verifies the provider signature and that the local set now
        matches the signed Merkle root — a lying or lossy channel is
        detected here (:class:`~repro.errors.StoreIntegrityError`).
        ``cursor`` (when given) is stored as :attr:`cursor` for the
        next sync — but only after the integrity checks pass, so a bad
        delta never advances the resume point.
        """
        from ..errors import StoreIntegrityError

        snapshot.verify(self._provider_key)
        applied = 0
        for entry in entries:
            if entry.license_id not in self._ids:
                self._ids.add(entry.license_id)
                applied += 1
        if len(self._ids) != snapshot.count:
            raise StoreIntegrityError(
                f"LRL sync count mismatch: have {len(self._ids)}, "
                f"snapshot says {snapshot.count}"
            )
        local_root = MerkleTree(sorted(self._ids)).root
        if local_root != snapshot.merkle_root:
            raise StoreIntegrityError("LRL sync root mismatch")
        self.version = snapshot.version
        if cursor is not None:
            self.cursor = cursor
        self._rebuild_bloom()
        return applied

    def _rebuild_bloom(self) -> None:
        self._bloom = BloomFilter.build(sorted(self._ids), fp_rate=self._fp_rate)

    def check(self, license_id: bytes) -> bool:
        """True when ``license_id`` is revoked (Bloom fast path first)."""
        if license_id not in self._bloom:
            return False
        return license_id in self._ids

    def check_exact_only(self, license_id: bytes) -> bool:
        """Exact-set check, bypassing the Bloom filter (benchmark arm)."""
        return license_id in self._ids
