"""Catalog and encrypted-content store at the provider.

Content items are packaged once (encrypted under a random content key
``K_C``, see :mod:`repro.core.content`) and the package is what every
buyer downloads — identical bytes for everyone, which is itself a
privacy property (the download reveals *what*, never *who*, and with
superdistribution not even what was *bought*).  The clear content keys
live in a separate table that only licence issuance reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError, UnknownContentError
from .engine import Database

_MIGRATION = [
    """
    CREATE TABLE contents (
        content_id  TEXT    PRIMARY KEY,
        title       TEXT    NOT NULL,
        price_cents INTEGER NOT NULL,
        added_at    INTEGER NOT NULL,
        package     BLOB    NOT NULL
    )
    """,
    """
    CREATE TABLE content_keys (
        content_id  TEXT PRIMARY KEY REFERENCES contents(content_id),
        content_key BLOB NOT NULL
    )
    """,
]

#: Rights granted when the publisher does not specify a template.
DEFAULT_RIGHTS_TEMPLATE = "play; display; transfer[count<=1]"

_MIGRATION_V2 = [
    "ALTER TABLE contents ADD COLUMN rights_template TEXT NOT NULL"
    f" DEFAULT '{DEFAULT_RIGHTS_TEMPLATE}'",
]


@dataclass(frozen=True)
class CatalogEntry:
    """What a browsing user sees (no key material)."""

    content_id: str
    title: str
    price_cents: int
    added_at: int
    package_size: int


class ContentStore:
    """Provider-side catalog, packages and content keys."""

    def __init__(self, db: Database):
        self._db = db
        db.migrate("contents_v1", _MIGRATION)
        db.migrate("contents_v2_rights_template", _MIGRATION_V2)

    def add(
        self,
        content_id: str,
        *,
        title: str,
        price_cents: int,
        added_at: int,
        package: bytes,
        content_key: bytes,
        rights_template: str = DEFAULT_RIGHTS_TEMPLATE,
    ) -> None:
        if price_cents < 0:
            raise StorageError("price must be non-negative")
        # Fail at publish time, not at first sale, if the template is bad.
        from ..rel.parser import parse_rights

        parse_rights(rights_template)
        with self._db.transaction():
            if self.exists(content_id):
                raise StorageError(f"content {content_id!r} already in catalog")
            self._db.execute(
                "INSERT INTO contents(content_id, title, price_cents, added_at,"
                " package, rights_template) VALUES (?, ?, ?, ?, ?, ?)",
                (content_id, title, price_cents, added_at, package, rights_template),
            )
            self._db.execute(
                "INSERT INTO content_keys(content_id, content_key) VALUES (?, ?)",
                (content_id, content_key),
            )

    def rights_template(self, content_id: str) -> str:
        """The rights expression sold with this content."""
        row = self._db.query_one(
            "SELECT rights_template FROM contents WHERE content_id = ?",
            (content_id,),
        )
        if row is None:
            raise UnknownContentError(f"content {content_id!r} not in catalog")
        return row[0]

    def exists(self, content_id: str) -> bool:
        return (
            self._db.query_one(
                "SELECT 1 FROM contents WHERE content_id = ?", (content_id,)
            )
            is not None
        )

    def entry(self, content_id: str) -> CatalogEntry:
        row = self._db.query_one(
            "SELECT content_id, title, price_cents, added_at, LENGTH(package)"
            " FROM contents WHERE content_id = ?",
            (content_id,),
        )
        if row is None:
            raise UnknownContentError(f"content {content_id!r} not in catalog")
        return CatalogEntry(
            content_id=row[0],
            title=row[1],
            price_cents=row[2],
            added_at=row[3],
            package_size=row[4],
        )

    def catalog(self) -> list[CatalogEntry]:
        rows = self._db.query_all(
            "SELECT content_id, title, price_cents, added_at, LENGTH(package)"
            " FROM contents ORDER BY content_id"
        )
        return [
            CatalogEntry(
                content_id=r[0],
                title=r[1],
                price_cents=r[2],
                added_at=r[3],
                package_size=r[4],
            )
            for r in rows
        ]

    def package(self, content_id: str) -> bytes:
        """The encrypted package (what anyone may download)."""
        row = self._db.query_one(
            "SELECT package FROM contents WHERE content_id = ?", (content_id,)
        )
        if row is None:
            raise UnknownContentError(f"content {content_id!r} not in catalog")
        return row[0]

    def content_key(self, content_id: str) -> bytes:
        """The clear content key — licence-issuance path only."""
        row = self._db.query_one(
            "SELECT content_key FROM content_keys WHERE content_id = ?",
            (content_id,),
        )
        if row is None:
            raise UnknownContentError(f"content {content_id!r} has no key")
        return row[0]

    def price(self, content_id: str) -> int:
        return self.entry(content_id).price_cents

    def count(self) -> int:
        return self._db.query_value("SELECT COUNT(*) FROM contents", default=0)
