"""Storage substrate: the databases behind every P2DRM party.

The paper's protocols quietly assume several server-side stores — a
spent-token store ("the CP checks the anonymous licence was not
redeemed before"), a licence revocation list "distributed to devices",
a licence register, the TTP's enrolment registry — without specifying
them.  This package supplies them on sqlite3 (durable file or
in-memory), plus the data structures the distribution story needs:

- :mod:`repro.storage.engine` — connection, migrations, transactions;
- :mod:`repro.storage.spent_tokens` — exactly-once redemption/spend;
- :mod:`repro.storage.revocation` — versioned LRL with signed
  Merkle-root snapshots and delta sync;
- :mod:`repro.storage.licenses` — the provider's licence register;
- :mod:`repro.storage.accounts` — the TTP's enrolment registry
  (identity-tag ↔ user map used by escrow opening);
- :mod:`repro.storage.contents` — catalog + encrypted packages;
- :mod:`repro.storage.audit` — hash-chained append-only audit log;
- :mod:`repro.storage.usage` — device-side persisted usage counters;
- :mod:`repro.storage.bloom` — Bloom filter (device LRL pre-check);
- :mod:`repro.storage.merkle` — Merkle trees with inclusion and
  sorted-adjacency *non*-inclusion proofs.
"""

from .engine import Database
from .bloom import BloomFilter
from .merkle import MerkleTree
from .spent_tokens import SpentTokenStore, SpentRecord
from .revocation import RevocationList, SignedSnapshot
from .licenses import LicenseStore, LicenseRecord
from .accounts import AccountStore, AccountRecord
from .contents import ContentStore, CatalogEntry
from .audit import AuditLog, AuditEntry
from .usage import UsageStore

__all__ = [
    "Database",
    "BloomFilter",
    "MerkleTree",
    "SpentTokenStore",
    "SpentRecord",
    "RevocationList",
    "SignedSnapshot",
    "LicenseStore",
    "LicenseRecord",
    "AccountStore",
    "AccountRecord",
    "ContentStore",
    "CatalogEntry",
    "AuditLog",
    "AuditEntry",
    "UsageStore",
]
