"""Merkle trees over sorted leaves, with inclusion and non-inclusion proofs.

The provider publishes its licence revocation list as a *signed
snapshot*: one signature over ``(version, merkle_root, count)`` instead
of one per entry.  Because leaves are kept sorted, the tree supports
two proof shapes:

- **inclusion** — a licence *is* revoked (audit path to the root);
- **non-inclusion** — a licence is *not* revoked, shown by the two
  adjacent leaves that bracket where it would sit (both proven
  included, adjacency implied by their positions).

Hashing is domain-separated RFC 6962 style: leaf = ``H(0x00 || data)``,
node = ``H(0x01 || left || right)``; an odd node is promoted unchanged,
so the tree of ``n`` leaves is unique.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashes import sha256
from ..errors import StoreIntegrityError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> bytes:
    return sha256(_LEAF_PREFIX + data)


def node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class InclusionProof:
    """Audit path for one leaf: index plus sibling hashes bottom-up."""

    leaf_index: int
    total_leaves: int
    path: tuple[bytes, ...]

    def as_dict(self) -> dict:
        return {
            "index": self.leaf_index,
            "total": self.total_leaves,
            "path": list(self.path),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InclusionProof":
        return cls(
            leaf_index=int(data["index"]),
            total_leaves=int(data["total"]),
            path=tuple(bytes(p) for p in data["path"]),
        )


@dataclass(frozen=True)
class NonInclusionProof:
    """Sorted-adjacency proof that a value is absent.

    ``left``/``right`` are the bracketing leaves (``None`` at the ends)
    with their inclusion proofs; verification checks ordering and that
    the two proofs sit at adjacent indices.
    """

    left_leaf: bytes | None
    left_proof: InclusionProof | None
    right_leaf: bytes | None
    right_proof: InclusionProof | None


class MerkleTree:
    """Merkle tree over a list of (kept-sorted) byte-string leaves."""

    def __init__(self, leaves: list[bytes]):
        ordered = sorted(leaves)
        if any(ordered[i] == ordered[i + 1] for i in range(len(ordered) - 1)):
            raise StoreIntegrityError("duplicate leaves")
        self._leaves = ordered
        self._levels = self._build_levels(ordered)

    @staticmethod
    def _build_levels(leaves: list[bytes]) -> list[list[bytes]]:
        if not leaves:
            return [[sha256(b"empty-tree")]]
        level = [leaf_hash(leaf) for leaf in leaves]
        levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(node_hash(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])  # odd node promoted
            level = nxt
            levels.append(level)
        return levels

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def leaves(self) -> list[bytes]:
        return list(self._leaves)

    def __len__(self) -> int:
        return len(self._leaves)

    # -- inclusion ----------------------------------------------------------

    def prove_inclusion(self, value: bytes) -> InclusionProof:
        """Audit path for ``value``; raises if it is not a leaf."""
        index = self._find(value)
        if index is None:
            raise StoreIntegrityError("value not in tree")
        return self._prove_index(index)

    def _prove_index(self, index: int) -> InclusionProof:
        path: list[bytes] = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            if sibling < len(level):
                path.append(level[sibling])
            position //= 2
        return InclusionProof(
            leaf_index=index, total_leaves=len(self._leaves), path=tuple(path)
        )

    def _find(self, value: bytes) -> int | None:
        # Leaves are sorted: binary search.
        lo, hi = 0, len(self._leaves)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._leaves[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._leaves) and self._leaves[lo] == value:
            return lo
        return None

    # -- non-inclusion --------------------------------------------------------

    def prove_non_inclusion(self, value: bytes) -> NonInclusionProof:
        """Adjacency proof that ``value`` is not a leaf; raises if it is."""
        if self._find(value) is not None:
            raise StoreIntegrityError("value is in the tree")
        lo, hi = 0, len(self._leaves)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._leaves[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        left_index = lo - 1
        right_index = lo
        left_leaf = self._leaves[left_index] if left_index >= 0 else None
        right_leaf = self._leaves[right_index] if right_index < len(self._leaves) else None
        return NonInclusionProof(
            left_leaf=left_leaf,
            left_proof=self._prove_index(left_index) if left_leaf is not None else None,
            right_leaf=right_leaf,
            right_proof=self._prove_index(right_index) if right_leaf is not None else None,
        )


def verify_inclusion(root: bytes, value: bytes, proof: InclusionProof) -> bool:
    """Check an audit path against ``root``."""
    if not 0 <= proof.leaf_index < proof.total_leaves:
        return False
    current = leaf_hash(value)
    position = proof.leaf_index
    level_size = proof.total_leaves
    path = list(proof.path)
    while level_size > 1:
        sibling_index = position ^ 1
        if sibling_index < level_size:
            if not path:
                return False
            sibling = path.pop(0)
            if position % 2:
                current = node_hash(sibling, current)
            else:
                current = node_hash(current, sibling)
        position //= 2
        level_size = (level_size + 1) // 2
    return not path and current == root


def verify_non_inclusion(
    root: bytes, total_leaves: int, value: bytes, proof: NonInclusionProof
) -> bool:
    """Check a sorted-adjacency absence proof against ``root``.

    For an empty tree (``total_leaves == 0``) both sides must be absent.
    """
    if total_leaves == 0:
        return proof.left_leaf is None and proof.right_leaf is None
    if proof.left_leaf is None and proof.right_leaf is None:
        return False
    left_index = -1
    if proof.left_leaf is not None:
        if proof.left_leaf >= value or proof.left_proof is None:
            return False
        if proof.left_proof.total_leaves != total_leaves:
            return False
        if not verify_inclusion(root, proof.left_leaf, proof.left_proof):
            return False
        left_index = proof.left_proof.leaf_index
    if proof.right_leaf is not None:
        if proof.right_leaf <= value or proof.right_proof is None:
            return False
        if proof.right_proof.total_leaves != total_leaves:
            return False
        if not verify_inclusion(root, proof.right_leaf, proof.right_proof):
            return False
        right_index = proof.right_proof.leaf_index
    else:
        # value would sit after the last leaf.
        return left_index == total_leaves - 1
    if proof.left_leaf is None:
        # value would sit before the first leaf.
        return right_index == 0
    return right_index == left_index + 1
