"""sqlite3 engine: connections, migrations, transactions.

Every store in this package holds a :class:`Database` and registers its
schema through :meth:`Database.migrate`.  Migrations are (name, SQL)
pairs applied once and recorded in ``_migrations``, so two stores can
share one database file and a store can be opened repeatedly without
re-running DDL.  ``path=":memory:"`` gives the fast engine used by
benchmarks' in-memory sweeps.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import MigrationError, StorageError


#: How long a connection waits on another process's write lock before
#: giving up.  Service-layer workers share shard files, so a short
#: contention window must block, not fail.
DEFAULT_BUSY_TIMEOUT_MS = 5_000


class Database:
    """A thin, explicit wrapper over one sqlite3 connection."""

    def __init__(
        self,
        path: str = ":memory:",
        *,
        check_same_thread: bool = True,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
    ):
        self._path = path
        self._closed = False
        try:
            # isolation_level=None puts sqlite3 in autocommit mode; all
            # transaction boundaries are explicit BEGIN/COMMIT below.
            # (The legacy mode does not wrap DDL, which would make
            # failed migrations non-atomic.)
            # check_same_thread=False is safe here because every holder
            # of a Database serializes access itself (one worker process
            # or the single-threaded test/benchmark driver); the service
            # layer's shard files need it so a gateway thread can read
            # what a worker-owned connection opened.
            self._conn = sqlite3.connect(
                path, isolation_level=None, check_same_thread=check_same_thread
            )
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open database {path!r}: {exc}") from exc
        self._conn.execute("PRAGMA foreign_keys = ON")
        # WAL only applies to file databases; in-memory silently ignores it.
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode = WAL")
            # WAL + NORMAL is the canonical pairing: commits stop
            # fsyncing individually (the WAL is synced at checkpoints),
            # which is what makes many small exactly-once transactions
            # from several processes affordable.  A process crash loses
            # nothing; only an OS/power crash can lose the tail.
            self._conn.execute("PRAGMA synchronous = NORMAL")
            self._conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS _migrations ("
            " name TEXT PRIMARY KEY,"
            " applied_at TEXT NOT NULL DEFAULT (datetime('now'))"
            ")"
        )
        self._conn.commit()
        self._in_transaction = False

    @property
    def path(self) -> str:
        return self._path

    @property
    def closed(self) -> bool:
        return self._closed

    def migrate(self, name: str, statements: list[str]) -> bool:
        """Apply a named migration once; returns True if it ran now.

        Safe against concurrent processes opening the same file: the
        immediate transaction serializes appliers, and the check is
        repeated under the lock so the loser sees the winner's record.
        """
        try:
            row = self._conn.execute(
                "SELECT 1 FROM _migrations WHERE name = ?", (name,)
            ).fetchone()
            if row:
                return False
            self._conn.execute("BEGIN IMMEDIATE")
        except sqlite3.Error as exc:
            raise MigrationError(f"migration {name!r} failed: {exc}") from exc
        try:
            row = self._conn.execute(
                "SELECT 1 FROM _migrations WHERE name = ?", (name,)
            ).fetchone()
            if row:
                self._conn.execute("COMMIT")
                return False
        except sqlite3.Error as exc:
            # BEGIN succeeded: the write lock must not be left held.
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass  # connection is broken; the original error matters
            raise MigrationError(f"migration {name!r} failed: {exc}") from exc
        try:
            for statement in statements:
                self._conn.execute(statement)
            self._conn.execute("INSERT INTO _migrations(name) VALUES (?)", (name,))
            self._conn.execute("COMMIT")
        except sqlite3.Error as exc:
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass  # connection is broken; the original error matters
            raise MigrationError(f"migration {name!r} failed: {exc}") from exc
        return True

    def applied_migrations(self) -> list[str]:
        """Names of migrations applied, in application order."""
        rows = self._conn.execute(
            "SELECT name FROM _migrations ORDER BY rowid"
        ).fetchall()
        return [row[0] for row in rows]

    @contextmanager
    def transaction(self, *, immediate: bool = False) -> Iterator[None]:
        """All-or-nothing scope; nested use joins the outer transaction.

        ``immediate=True`` takes the write lock up front (``BEGIN
        IMMEDIATE``).  Read-then-write scopes that race other
        *processes* on the same file — the spent-token gate under the
        worker pool — need it: a deferred transaction would let two
        processes both pass the read and then deadlock (or fail) on the
        lock upgrade, instead of serializing cleanly at BEGIN.

        Joining an outer transaction keeps the OUTER semantics: an
        ``immediate=True`` scope nested inside a deferred one does not
        upgrade the lock.  Don't wrap the exactly-once stores in an
        outer deferred transaction on a multi-process file.
        """
        if self._in_transaction:
            yield
            return
        # BEGIN can itself fail (busy_timeout expiry under cross-process
        # contention); the flag is only set once a transaction really
        # is open, so a failed BEGIN cannot wedge this connection into
        # treating every later scope as "nested" (which would silently
        # drop atomicity — the exactly-once gates depend on it).
        try:
            self._conn.execute("BEGIN IMMEDIATE" if immediate else "BEGIN")
        except sqlite3.Error as exc:
            raise StorageError(f"cannot begin transaction: {exc}") from exc
        self._in_transaction = True
        try:
            yield
            self._conn.execute("COMMIT")
        except BaseException:
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass  # connection is broken; the original error matters
            raise
        finally:
            self._in_transaction = False

    def execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one statement (autocommits when outside a transaction)."""
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as exc:
            raise StorageError(f"sql failed: {exc}") from exc

    def executemany(self, sql: str, rows: list[tuple]) -> None:
        """Bulk statement (autocommits when outside a transaction)."""
        try:
            self._conn.executemany(sql, rows)
        except sqlite3.Error as exc:
            raise StorageError(f"sql failed: {exc}") from exc

    def query_one(self, sql: str, params: tuple = ()) -> tuple | None:
        """First row of a query, or ``None``."""
        try:
            return self._conn.execute(sql, params).fetchone()
        except sqlite3.Error as exc:
            raise StorageError(f"query failed: {exc}") from exc

    def query_all(self, sql: str, params: tuple = ()) -> list[tuple]:
        """All rows of a query."""
        try:
            return self._conn.execute(sql, params).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"query failed: {exc}") from exc

    def query_value(self, sql: str, params: tuple = (), default: Any = None) -> Any:
        """First column of the first row, or ``default``."""
        row = self.query_one(sql, params)
        return default if row is None else row[0]

    def close(self) -> None:
        """Release the connection; idempotent.

        Per-shard service files are opened by every worker, so leaked
        handles multiply by ``workers x shards`` — stores and tests
        close what they open (or use the context-manager form).
        """
        if self._closed:
            return
        self._closed = True
        self._conn.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Database(path={self._path!r})"
