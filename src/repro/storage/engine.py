"""sqlite3 engine: connections, migrations, transactions.

Every store in this package holds a :class:`Database` and registers its
schema through :meth:`Database.migrate`.  Migrations are (name, SQL)
pairs applied once and recorded in ``_migrations``, so two stores can
share one database file and a store can be opened repeatedly without
re-running DDL.  ``path=":memory:"`` gives the fast engine used by
benchmarks' in-memory sweeps.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import MigrationError, StorageError


class Database:
    """A thin, explicit wrapper over one sqlite3 connection."""

    def __init__(self, path: str = ":memory:"):
        self._path = path
        try:
            # isolation_level=None puts sqlite3 in autocommit mode; all
            # transaction boundaries are explicit BEGIN/COMMIT below.
            # (The legacy mode does not wrap DDL, which would make
            # failed migrations non-atomic.)
            self._conn = sqlite3.connect(path, isolation_level=None)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open database {path!r}: {exc}") from exc
        self._conn.execute("PRAGMA foreign_keys = ON")
        # WAL only applies to file databases; in-memory silently ignores it.
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS _migrations ("
            " name TEXT PRIMARY KEY,"
            " applied_at TEXT NOT NULL DEFAULT (datetime('now'))"
            ")"
        )
        self._conn.commit()
        self._in_transaction = False

    @property
    def path(self) -> str:
        return self._path

    def migrate(self, name: str, statements: list[str]) -> bool:
        """Apply a named migration once; returns True if it ran now."""
        row = self._conn.execute(
            "SELECT 1 FROM _migrations WHERE name = ?", (name,)
        ).fetchone()
        if row:
            return False
        self._conn.execute("BEGIN")
        try:
            for statement in statements:
                self._conn.execute(statement)
            self._conn.execute("INSERT INTO _migrations(name) VALUES (?)", (name,))
            self._conn.execute("COMMIT")
        except sqlite3.Error as exc:
            self._conn.execute("ROLLBACK")
            raise MigrationError(f"migration {name!r} failed: {exc}") from exc
        return True

    def applied_migrations(self) -> list[str]:
        """Names of migrations applied, in application order."""
        rows = self._conn.execute(
            "SELECT name FROM _migrations ORDER BY rowid"
        ).fetchall()
        return [row[0] for row in rows]

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """All-or-nothing scope; nested use joins the outer transaction."""
        if self._in_transaction:
            yield
            return
        self._in_transaction = True
        self._conn.execute("BEGIN")
        try:
            yield
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        finally:
            self._in_transaction = False

    def execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one statement (autocommits when outside a transaction)."""
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as exc:
            raise StorageError(f"sql failed: {exc}") from exc

    def executemany(self, sql: str, rows: list[tuple]) -> None:
        """Bulk statement (autocommits when outside a transaction)."""
        try:
            self._conn.executemany(sql, rows)
        except sqlite3.Error as exc:
            raise StorageError(f"sql failed: {exc}") from exc

    def query_one(self, sql: str, params: tuple = ()) -> tuple | None:
        """First row of a query, or ``None``."""
        try:
            return self._conn.execute(sql, params).fetchone()
        except sqlite3.Error as exc:
            raise StorageError(f"query failed: {exc}") from exc

    def query_all(self, sql: str, params: tuple = ()) -> list[tuple]:
        """All rows of a query."""
        try:
            return self._conn.execute(sql, params).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"query failed: {exc}") from exc

    def query_value(self, sql: str, params: tuple = (), default: Any = None) -> Any:
        """First column of the first row, or ``default``."""
        row = self.query_one(sql, params)
        return default if row is None else row[0]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Database(path={self._path!r})"
