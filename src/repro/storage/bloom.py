"""Bloom filter — the device-side revocation pre-check.

Devices must refuse licences on the revocation list, but checking a
large list on every play is exactly the kind of cost the paper's
"legacy systems expect different performance" warning is about.  A
Bloom filter over the revoked licence identifiers answers "definitely
not revoked" in a few hashes; only the (rare) positive falls through
to the exact store.  Experiment E5 measures the effect.

Parameters follow the textbook optimum: for capacity ``n`` and target
false-positive rate ``p``, ``m = -n·ln(p)/ln(2)²`` bits and
``k = (m/n)·ln(2)`` hash functions.  Hashes are derived from SHA-256
with an index prefix, so the filter is deterministic and serializable.
"""

from __future__ import annotations

import hashlib
import math

from ..errors import ParameterError, StorageError


class BloomFilter:
    """Fixed-capacity Bloom filter over byte-string items."""

    def __init__(self, capacity: int, fp_rate: float = 0.01):
        if capacity < 1:
            raise ParameterError("capacity must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ParameterError("fp_rate must be in (0, 1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        bits = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
        self.num_bits = max(8, bits)
        self.num_hashes = max(1, round((self.num_bits / capacity) * math.log(2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0

    def _positions(self, item: bytes):
        # Two independent 64-bit hashes combined Kirsch–Mitzenmacher style.
        digest = hashlib.sha256(b"bloom:" + item).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: bytes) -> None:
        """Insert ``item`` (idempotent w.r.t. membership)."""
        for position in self._positions(item):
            self._bits[position // 8] |= 1 << (position % 8)
        self.count += 1

    def __contains__(self, item: bytes) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(item)
        )

    def expected_fp_rate(self) -> float:
        """Predicted false-positive rate at the current fill level."""
        if self.count == 0:
            return 0.0
        exponent = -self.num_hashes * self.count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def fill_ratio(self) -> float:
        """Fraction of bits set (diagnostic)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    # -- serialization (devices receive filters with LRL snapshots) --------

    def to_bytes(self) -> bytes:
        header = (
            self.capacity.to_bytes(8, "big")
            + int(self.fp_rate * 1_000_000).to_bytes(4, "big")
            + self.count.to_bytes(8, "big")
        )
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        if len(data) < 20:
            raise StorageError("bloom filter blob too short")
        capacity = int.from_bytes(data[:8], "big")
        fp_rate = int.from_bytes(data[8:12], "big") / 1_000_000
        count = int.from_bytes(data[12:20], "big")
        filt = cls(capacity=capacity, fp_rate=fp_rate)
        body = data[20:]
        if len(body) != len(filt._bits):
            raise StorageError("bloom filter bit-array size mismatch")
        filt._bits = bytearray(body)
        filt.count = count
        return filt

    @classmethod
    def build(cls, items: list[bytes], fp_rate: float = 0.01) -> "BloomFilter":
        """Filter sized for exactly these items (LRL snapshot helper)."""
        filt = cls(capacity=max(1, len(items)), fp_rate=fp_rate)
        for item in items:
            filt.add(item)
        return filt

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BloomFilter(capacity={self.capacity}, bits={self.num_bits}, "
            f"hashes={self.num_hashes}, count={self.count})"
        )
