"""Spent-token store: the exactly-once gate for bearer instruments.

Two bearer objects circulate in P2DRM — anonymous licences and e-cash
coins.  Both are trivially copyable bytes, so the *only* thing standing
between the system and double redemption is this store: a token
identifier may transition to "spent" exactly once, atomically, and the
original transcript is retained as evidence for the anonymity
revocation protocol.

``kind`` namespaces the table so one database can serve several token
families (coins per denomination, anonymous licence ids) without
cross-talk.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Database

_MIGRATION = [
    """
    CREATE TABLE spent_tokens (
        kind      TEXT    NOT NULL,
        token_id  BLOB    NOT NULL,
        spent_at  INTEGER NOT NULL,
        transcript BLOB   NOT NULL,
        PRIMARY KEY (kind, token_id)
    )
    """,
    "CREATE INDEX idx_spent_tokens_at ON spent_tokens(kind, spent_at)",
]


@dataclass(frozen=True)
class SpentRecord:
    """What the store remembers about a spend event."""

    kind: str
    token_id: bytes
    spent_at: int
    transcript: bytes


class SpentTokenStore:
    """Exactly-once marking of token identifiers."""

    def __init__(self, db: Database, kind: str):
        if not kind:
            raise ValueError("kind must be non-empty")
        self._db = db
        self._kind = kind
        db.migrate("spent_tokens_v1", _MIGRATION)

    @property
    def kind(self) -> str:
        return self._kind

    def try_spend(
        self, token_id: bytes, *, at: int, transcript: bytes = b""
    ) -> SpentRecord | None:
        """Atomically mark ``token_id`` spent.

        Returns ``None`` on success (first spend).  If the token was
        already spent, returns the **original** :class:`SpentRecord` —
        the caller pairs it with the new attempt as double-spend
        evidence.

        The transaction is immediate: when several worker processes
        share one shard file, racing spends of the same token serialize
        at BEGIN, so exactly one caller ever sees ``None``.
        """
        with self._db.transaction(immediate=True):
            row = self._db.query_one(
                "SELECT spent_at, transcript FROM spent_tokens"
                " WHERE kind = ? AND token_id = ?",
                (self._kind, token_id),
            )
            if row is not None:
                return SpentRecord(
                    kind=self._kind,
                    token_id=token_id,
                    spent_at=row[0],
                    transcript=row[1],
                )
            self._db.execute(
                "INSERT INTO spent_tokens(kind, token_id, spent_at, transcript)"
                " VALUES (?, ?, ?, ?)",
                (self._kind, token_id, at, transcript),
            )
            return None

    def is_spent(self, token_id: bytes) -> bool:
        """Read-only check (no state change)."""
        row = self._db.query_one(
            "SELECT 1 FROM spent_tokens WHERE kind = ? AND token_id = ?",
            (self._kind, token_id),
        )
        return row is not None

    def record_for(self, token_id: bytes) -> SpentRecord | None:
        """The spend record for ``token_id`` if any."""
        row = self._db.query_one(
            "SELECT spent_at, transcript FROM spent_tokens"
            " WHERE kind = ? AND token_id = ?",
            (self._kind, token_id),
        )
        if row is None:
            return None
        return SpentRecord(
            kind=self._kind, token_id=token_id, spent_at=row[0], transcript=row[1]
        )

    def count(self) -> int:
        """Number of spent tokens of this kind."""
        return self._db.query_value(
            "SELECT COUNT(*) FROM spent_tokens WHERE kind = ?",
            (self._kind,),
            default=0,
        )

    def spent_between(self, start: int, end: int) -> list[SpentRecord]:
        """Spend events with ``start <= spent_at < end`` (traffic analysis
        experiments read the store the way a curious operator would)."""
        rows = self._db.query_all(
            "SELECT token_id, spent_at, transcript FROM spent_tokens"
            " WHERE kind = ? AND spent_at >= ? AND spent_at < ?"
            " ORDER BY spent_at",
            (self._kind, start, end),
        )
        return [
            SpentRecord(kind=self._kind, token_id=r[0], spent_at=r[1], transcript=r[2])
            for r in rows
        ]

    def unspend(self, token_id: bytes) -> bool:
        """Compensation for a *failed composite operation only*.

        The deposit desk spends a payment's coins one at a time; when a
        later coin turns out double-spent the whole payment is refused,
        and the earlier coins of that same payment — never credited —
        are released here so the payer can respend them.  Returns
        whether a record was removed.  Nothing else may call this: a
        *credited* spend is permanent by design.

        Callers releasing a spend they merely *observed* (rather than
        wrote themselves) must use :meth:`unspend_if` — an unconditional
        delete races a concurrent re-spend and can erase another
        payment's fresh record.
        """
        with self._db.transaction(immediate=True):
            cursor = self._db.execute(
                "DELETE FROM spent_tokens WHERE kind = ? AND token_id = ?",
                (self._kind, token_id),
            )
            return cursor.rowcount > 0

    def prune_oldest(self, max_records: int) -> int:
        """Delete the oldest records past ``max_records`` of this kind.

        This is for *cache*-flavoured kinds only (the idempotent-replay
        response cache bounds itself with it); the bearer-token kinds
        (``ecash``, ``anon-license``) must never be pruned — dropping a
        spend row would re-open double spending.  Eviction order is
        ``spent_at`` (the indexed column), oldest first; ties break on
        token id so the sweep is deterministic.  Returns how many rows
        were deleted.
        """
        if max_records < 0:
            raise ValueError("max_records must be >= 0")
        with self._db.transaction(immediate=True):
            surplus = self.count() - max_records
            if surplus <= 0:
                return 0
            cursor = self._db.execute(
                "DELETE FROM spent_tokens WHERE kind = ? AND token_id IN ("
                " SELECT token_id FROM spent_tokens WHERE kind = ?"
                " ORDER BY spent_at ASC, token_id ASC LIMIT ?)",
                (self._kind, self._kind, surplus),
            )
            return cursor.rowcount

    def unspend_if(self, token_id: bytes, transcript: bytes) -> bool:
        """Release a spend only if it still carries ``transcript``.

        The compare-and-delete shares one immediate transaction, so two
        processes that both read the same stale record (a spend owned by
        an aborted intent, say) cannot both release it: the first delete
        wins, the second sees the winner's *fresh* transcript and leaves
        it alone.  Returns whether a record was removed.
        """
        with self._db.transaction(immediate=True):
            cursor = self._db.execute(
                "DELETE FROM spent_tokens"
                " WHERE kind = ? AND token_id = ? AND transcript = ?",
                (self._kind, token_id, transcript),
            )
            return cursor.rowcount > 0
