"""Hash-chained append-only audit log.

Fair-information-practice "openness and accountability" made concrete:
every privacy-relevant event at the provider and the TTP (licence
issued, anonymous licence redeemed, escrow opened, ...) is appended
here, each entry hashing over its predecessor, so after-the-fact
tampering is detectable by :meth:`AuditLog.verify_chain`.  The escrow-
opening protocol *requires* a log entry — a TTP that de-anonymizes
quietly fails its own audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import codec
from ..crypto.hashes import sha256
from ..errors import StoreIntegrityError
from .engine import Database

_MIGRATION = [
    """
    CREATE TABLE audit_log (
        seq        INTEGER PRIMARY KEY AUTOINCREMENT,
        at         INTEGER NOT NULL,
        actor      TEXT    NOT NULL,
        event      TEXT    NOT NULL,
        payload    BLOB    NOT NULL,
        prev_hash  BLOB    NOT NULL,
        entry_hash BLOB    NOT NULL
    )
    """,
]

_GENESIS = sha256(b"p2drm-audit-genesis")


@dataclass(frozen=True)
class AuditEntry:
    seq: int
    at: int
    actor: str
    event: str
    payload: dict
    prev_hash: bytes
    entry_hash: bytes


def _entry_hash(at: int, actor: str, event: str, payload_bytes: bytes, prev: bytes) -> bytes:
    material = codec.encode(
        {"at": at, "actor": actor, "event": event, "payload": payload_bytes, "prev": prev}
    )
    return sha256(material)


class AuditLog:
    """Append-only, hash-chained event log."""

    def __init__(self, db: Database):
        self._db = db
        db.migrate("audit_v1", _MIGRATION)

    def append(self, *, at: int, actor: str, event: str, payload: dict) -> AuditEntry:
        """Append an event; returns the stored entry with its chain hash."""
        payload_bytes = codec.encode(payload)
        # Immediate: the prev-hash read and the insert must serialize
        # against other processes appending to the same chain.
        with self._db.transaction(immediate=True):
            prev = self._last_hash()
            entry_hash = _entry_hash(at, actor, event, payload_bytes, prev)
            cursor = self._db.execute(
                "INSERT INTO audit_log(at, actor, event, payload, prev_hash,"
                " entry_hash) VALUES (?, ?, ?, ?, ?, ?)",
                (at, actor, event, payload_bytes, prev, entry_hash),
            )
            return AuditEntry(
                seq=cursor.lastrowid,
                at=at,
                actor=actor,
                event=event,
                payload=payload,
                prev_hash=prev,
                entry_hash=entry_hash,
            )

    def _last_hash(self) -> bytes:
        row = self._db.query_one(
            "SELECT entry_hash FROM audit_log ORDER BY seq DESC LIMIT 1"
        )
        return row[0] if row else _GENESIS

    def entries(self, *, event: str | None = None) -> list[AuditEntry]:
        sql = (
            "SELECT seq, at, actor, event, payload, prev_hash, entry_hash"
            " FROM audit_log"
        )
        params: tuple = ()
        if event is not None:
            sql += " WHERE event = ?"
            params = (event,)
        sql += " ORDER BY seq"
        return [
            AuditEntry(
                seq=r[0],
                at=r[1],
                actor=r[2],
                event=r[3],
                payload=codec.decode(r[4]),
                prev_hash=r[5],
                entry_hash=r[6],
            )
            for r in self._db.query_all(sql, params)
        ]

    def count(self) -> int:
        return self._db.query_value("SELECT COUNT(*) FROM audit_log", default=0)

    def verify_chain(self) -> int:
        """Recompute the whole chain; returns the number of entries.

        Raises :class:`~repro.errors.StoreIntegrityError` at the first
        entry whose hash or back-link does not check out.
        """
        previous = _GENESIS
        checked = 0
        for row in self._db.query_all(
            "SELECT seq, at, actor, event, payload, prev_hash, entry_hash"
            " FROM audit_log ORDER BY seq"
        ):
            seq, at, actor, event, payload_bytes, prev_hash, entry_hash = row
            if prev_hash != previous:
                raise StoreIntegrityError(f"audit entry {seq}: broken back-link")
            expected = _entry_hash(at, actor, event, payload_bytes, prev_hash)
            if expected != entry_hash:
                raise StoreIntegrityError(f"audit entry {seq}: hash mismatch")
            previous = entry_hash
            checked += 1
        return checked
