"""Device-side persisted usage counters.

Count-constrained rights ("play at most 10 times") only mean something
if the counter survives device restarts; this store is the persistence
behind :class:`repro.rel.evaluator.UsageState`.  Privacy property worth
stating: usage lives **only on the device** — the provider never sees
these rows, which is exactly the paper's "usage tracking without user
tracking" split.
"""

from __future__ import annotations

from ..rel.evaluator import UsageState
from .engine import Database

_MIGRATION = [
    """
    CREATE TABLE usage_counts (
        license_id BLOB    NOT NULL,
        action     TEXT    NOT NULL,
        count      INTEGER NOT NULL,
        PRIMARY KEY (license_id, action)
    )
    """,
]


class UsageStore:
    """Load/store usage counters for one device."""

    def __init__(self, db: Database):
        self._db = db
        db.migrate("usage_v1", _MIGRATION)

    def record_use(self, license_id: bytes, action: str) -> int:
        """Atomic increment; returns the new count."""
        with self._db.transaction():
            self._db.execute(
                "INSERT INTO usage_counts(license_id, action, count)"
                " VALUES (?, ?, 1)"
                " ON CONFLICT(license_id, action)"
                " DO UPDATE SET count = count + 1",
                (license_id, action),
            )
            return self._db.query_value(
                "SELECT count FROM usage_counts WHERE license_id = ? AND action = ?",
                (license_id, action),
                default=0,
            )

    def uses(self, license_id: bytes, action: str) -> int:
        return self._db.query_value(
            "SELECT count FROM usage_counts WHERE license_id = ? AND action = ?",
            (license_id, action),
            default=0,
        )

    def load_state(self) -> UsageState:
        """Materialize the full counter map for the evaluator."""
        state = UsageState()
        for license_id, action, count in self._db.query_all(
            "SELECT license_id, action, count FROM usage_counts"
        ):
            state.counts[(license_id, action)] = count
        return state

    def save_state(self, state: UsageState) -> None:
        """Write back a counter map (pointwise max — never forget uses)."""
        with self._db.transaction():
            for (license_id, action), count in state.counts.items():
                self._db.execute(
                    "INSERT INTO usage_counts(license_id, action, count)"
                    " VALUES (?, ?, ?)"
                    " ON CONFLICT(license_id, action)"
                    " DO UPDATE SET count = MAX(count, excluded.count)",
                    (license_id, action, count),
                )

    def total_events(self) -> int:
        return self._db.query_value(
            "SELECT COALESCE(SUM(count), 0) FROM usage_counts", default=0
        )
