"""The TTP's enrolment registry.

The smart card issuer is the only party that may ever map protocol
artefacts back to people, and only through the escrow-opening protocol.
This store holds that mapping: each enrolled user's identity tag (the
group element their smart card embeds in escrows) keyed both ways.

The registry also records card status so a de-anonymized cheater's
card can be blocked from future certification (the paper's sanction).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError
from .engine import Database

STATUS_ACTIVE = "active"
STATUS_BLOCKED = "blocked"

_MIGRATION = [
    """
    CREATE TABLE accounts (
        user_id     TEXT    PRIMARY KEY,
        card_id     BLOB    NOT NULL UNIQUE,
        identity_tag BLOB   NOT NULL UNIQUE,
        enrolled_at INTEGER NOT NULL,
        status      TEXT    NOT NULL,
        display_name TEXT   NOT NULL
    )
    """,
]


@dataclass(frozen=True)
class AccountRecord:
    user_id: str
    card_id: bytes
    identity_tag: bytes
    enrolled_at: int
    status: str
    display_name: str


class AccountStore:
    """Enrolled users, addressable by user id, card id or identity tag."""

    def __init__(self, db: Database):
        self._db = db
        db.migrate("accounts_v1", _MIGRATION)

    def enrol(
        self,
        user_id: str,
        *,
        card_id: bytes,
        identity_tag: bytes,
        enrolled_at: int,
        display_name: str = "",
    ) -> None:
        with self._db.transaction():
            if self.get(user_id) is not None:
                raise StorageError(f"user {user_id!r} already enrolled")
            self._db.execute(
                "INSERT INTO accounts(user_id, card_id, identity_tag,"
                " enrolled_at, status, display_name) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    user_id,
                    card_id,
                    identity_tag,
                    enrolled_at,
                    STATUS_ACTIVE,
                    display_name or user_id,
                ),
            )

    def get(self, user_id: str) -> AccountRecord | None:
        row = self._db.query_one(
            "SELECT user_id, card_id, identity_tag, enrolled_at, status,"
            " display_name FROM accounts WHERE user_id = ?",
            (user_id,),
        )
        return self._to_record(row) if row else None

    def by_identity_tag(self, identity_tag: bytes) -> AccountRecord | None:
        """The escrow-opening lookup: tag → enrolled user."""
        row = self._db.query_one(
            "SELECT user_id, card_id, identity_tag, enrolled_at, status,"
            " display_name FROM accounts WHERE identity_tag = ?",
            (identity_tag,),
        )
        return self._to_record(row) if row else None

    def by_card(self, card_id: bytes) -> AccountRecord | None:
        row = self._db.query_one(
            "SELECT user_id, card_id, identity_tag, enrolled_at, status,"
            " display_name FROM accounts WHERE card_id = ?",
            (card_id,),
        )
        return self._to_record(row) if row else None

    def set_status(self, user_id: str, status: str) -> None:
        if status not in (STATUS_ACTIVE, STATUS_BLOCKED):
            raise StorageError(f"unknown status {status!r}")
        cursor = self._db.execute(
            "UPDATE accounts SET status = ? WHERE user_id = ?", (status, user_id)
        )
        if cursor.rowcount != 1:
            raise StorageError(f"user {user_id!r} not found")

    def count(self) -> int:
        return self._db.query_value("SELECT COUNT(*) FROM accounts", default=0)

    @staticmethod
    def _to_record(row: tuple) -> AccountRecord:
        return AccountRecord(
            user_id=row[0],
            card_id=row[1],
            identity_tag=row[2],
            enrolled_at=row[3],
            status=row[4],
            display_name=row[5],
        )
