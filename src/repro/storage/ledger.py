"""Account ledger: durable balances, auditable entries, deposit intents.

The bank's money lived in a process dict until the service layer needed
restart-safe credits; this store is the durable replacement.  Three
tables, one invariant chain:

- ``ledger_accounts`` — the balance authority.  A balance is never a
  free-floating number: every change appends a row to
- ``ledger_entries`` — the append-only journal (signed amounts, sim
  timestamp, a ``kind`` tag and the deposit transcript), so
  ``balance == SUM(entries.amount)`` holds at every commit point and an
  offline auditor can recompute any account from its history;
- ``ledger_intents`` — the two-phase-commit records for multi-shard
  deposits.  An intent is written *pending* before any coin is spent,
  flips to *committed* in the same transaction as the credit, or to
  *aborted* after its spends are released.  Rows are immutable once
  terminal and never deleted — which is what makes the 2PC counters in
  the metrics registry refreshable from a durable scan.

One :class:`LedgerStore` covers one database; the service layer routes
accounts across N shard files by ``sha256(account_id)`` (see
:mod:`repro.service.ledger`), the same partitioning the spent-token
gate uses for coins.

Insufficient funds and unknown accounts raise
:class:`~repro.errors.PaymentError` here, not a storage error: the
ledger *is* the balance authority, so "not enough money" is a payment
verdict the protocol layer passes through verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PaymentError, StoreIntegrityError
from .engine import Database

_MIGRATION = [
    """
    CREATE TABLE ledger_accounts (
        account_id TEXT    PRIMARY KEY,
        balance    INTEGER NOT NULL,
        opened_at  INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE ledger_entries (
        seq        INTEGER PRIMARY KEY AUTOINCREMENT,
        account_id TEXT    NOT NULL,
        amount     INTEGER NOT NULL,
        at         INTEGER NOT NULL,
        kind       TEXT    NOT NULL,
        intent_id  BLOB,
        transcript BLOB    NOT NULL
    )
    """,
    "CREATE INDEX idx_ledger_entries_account ON ledger_entries(account_id, seq)",
    "CREATE INDEX idx_ledger_entries_intent ON ledger_entries(intent_id)",
    """
    CREATE TABLE ledger_intents (
        intent_id  BLOB    PRIMARY KEY,
        account_id TEXT    NOT NULL,
        amount     INTEGER NOT NULL,
        state      TEXT    NOT NULL,
        created_at INTEGER NOT NULL,
        updated_at INTEGER NOT NULL,
        payload    BLOB    NOT NULL
    )
    """,
    "CREATE INDEX idx_ledger_intents_state ON ledger_intents(state, created_at)",
]

#: Intent lifecycle: ``pending`` -> ``committed`` | ``aborted``.
#: Terminal states are immutable; transitions are CAS-guarded.
INTENT_PENDING = "pending"
INTENT_COMMITTED = "committed"
INTENT_ABORTED = "aborted"


@dataclass(frozen=True)
class LedgerEntry:
    """One journal row: a signed balance change with its evidence."""

    seq: int
    account_id: str
    amount: int
    at: int
    kind: str
    intent_id: bytes | None
    transcript: bytes

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "account": self.account_id,
            "amount": self.amount,
            "at": self.at,
            "kind": self.kind,
            "intent": self.intent_id,
            "transcript": self.transcript,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LedgerEntry":
        intent = data.get("intent")
        return cls(
            seq=int(data["seq"]),
            account_id=str(data["account"]),
            amount=int(data["amount"]),
            at=int(data["at"]),
            kind=str(data["kind"]),
            intent_id=None if intent is None else bytes(intent),
            transcript=bytes(data["transcript"]),
        )


@dataclass(frozen=True)
class IntentRecord:
    """One deposit intent: the durable 2PC coordination record."""

    intent_id: bytes
    account_id: str
    amount: int
    state: str
    created_at: int
    updated_at: int
    payload: bytes


class LedgerStore:
    """Balances + journal + deposit intents over one database."""

    def __init__(self, db: Database):
        self._db = db
        db.migrate("ledger_v1", _MIGRATION)

    @property
    def database(self) -> Database:
        return self._db

    # -- accounts ----------------------------------------------------------

    def open_account(
        self, account_id: str, *, at: int, initial_balance: int = 0
    ) -> None:
        """Create an account; raises on duplicates (the bank's contract)."""
        if initial_balance < 0:
            raise PaymentError("initial balance must not be negative")
        with self._db.transaction(immediate=True):
            if self._balance_row(account_id) is not None:
                raise PaymentError(f"account {account_id!r} exists")
            self._db.execute(
                "INSERT INTO ledger_accounts(account_id, balance, opened_at)"
                " VALUES (?, ?, ?)",
                (account_id, initial_balance, at),
            )
            if initial_balance:
                self._append_entry(
                    account_id, initial_balance, at, "open", None, b""
                )

    def ensure_account(self, account_id: str, *, at: int) -> bool:
        """Idempotent open with a zero balance; returns whether a row
        was created.  Merchant accounts service-side auto-open on first
        deposit (an out-of-band opening step would make the deposit
        wire kind unusable for anyone but the provider)."""
        with self._db.transaction(immediate=True):
            if self._balance_row(account_id) is not None:
                return False
            self._db.execute(
                "INSERT INTO ledger_accounts(account_id, balance, opened_at)"
                " VALUES (?, 0, ?)",
                (account_id, at),
            )
            return True

    def has_account(self, account_id: str) -> bool:
        return self._balance_row(account_id) is not None

    def balance(self, account_id: str) -> int | None:
        """The durable balance, or ``None`` for an unknown account (the
        protocol layers translate that to their own typed refusal)."""
        row = self._balance_row(account_id)
        return None if row is None else int(row[0])

    def accounts(self) -> list[str]:
        rows = self._db.query_all(
            "SELECT account_id FROM ledger_accounts ORDER BY account_id"
        )
        return [row[0] for row in rows]

    def _balance_row(self, account_id: str) -> tuple | None:
        return self._db.query_one(
            "SELECT balance FROM ledger_accounts WHERE account_id = ?",
            (account_id,),
        )

    # -- balance changes ---------------------------------------------------

    def credit(
        self,
        account_id: str,
        amount: int,
        *,
        at: int,
        kind: str = "deposit",
        transcript: bytes = b"",
        intent_id: bytes | None = None,
    ) -> int:
        """Add ``amount`` and journal it; returns the new balance."""
        if amount < 0:
            raise PaymentError("credit amount must not be negative")
        return self._adjust(account_id, amount, at, kind, transcript, intent_id)

    def debit(
        self,
        account_id: str,
        amount: int,
        *,
        at: int,
        kind: str = "withdraw",
        transcript: bytes = b"",
    ) -> int:
        """Subtract ``amount`` (funds-checked atomically); returns the
        new balance.  The check and the write share one immediate
        transaction, so two processes debiting the same account
        serialize at the shard file's write lock — no overdraft window."""
        if amount < 0:
            raise PaymentError("debit amount must not be negative")
        return self._adjust(account_id, -amount, at, kind, transcript, None)

    def _adjust(
        self,
        account_id: str,
        amount: int,
        at: int,
        kind: str,
        transcript: bytes,
        intent_id: bytes | None,
    ) -> int:
        with self._db.transaction(immediate=True):
            row = self._balance_row(account_id)
            if row is None:
                raise PaymentError(f"no account {account_id!r}")
            balance = int(row[0])
            if amount < 0 and balance < -amount:
                raise PaymentError(
                    f"insufficient funds: balance {balance} < {-amount}"
                )
            new_balance = balance + amount
            self._db.execute(
                "UPDATE ledger_accounts SET balance = ? WHERE account_id = ?",
                (new_balance, account_id),
            )
            self._append_entry(account_id, amount, at, kind, intent_id, transcript)
            return new_balance

    def _append_entry(
        self,
        account_id: str,
        amount: int,
        at: int,
        kind: str,
        intent_id: bytes | None,
        transcript: bytes,
    ) -> None:
        self._db.execute(
            "INSERT INTO ledger_entries"
            "(account_id, amount, at, kind, intent_id, transcript)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (account_id, amount, at, kind, intent_id, transcript),
        )

    # -- the journal -------------------------------------------------------

    def statement(
        self, account_id: str, *, limit: int | None = None
    ) -> list[LedgerEntry]:
        """The account's journal, oldest first (``limit`` keeps the
        newest N — a statement is read backwards from today)."""
        if limit is None:
            rows = self._db.query_all(
                "SELECT seq, account_id, amount, at, kind, intent_id, transcript"
                " FROM ledger_entries WHERE account_id = ? ORDER BY seq",
                (account_id,),
            )
        else:
            rows = self._db.query_all(
                "SELECT seq, account_id, amount, at, kind, intent_id, transcript"
                " FROM ledger_entries WHERE account_id = ?"
                " ORDER BY seq DESC LIMIT ?",
                (account_id, limit),
            )
            rows = list(reversed(rows))
        return [
            LedgerEntry(
                seq=row[0],
                account_id=row[1],
                amount=row[2],
                at=row[3],
                kind=row[4],
                intent_id=row[5],
                transcript=row[6],
            )
            for row in rows
        ]

    def entry_sum(self, account_id: str) -> int:
        """``SUM(amount)`` over the journal — the auditor's recomputed
        balance (must equal :meth:`balance` at any commit point)."""
        return int(
            self._db.query_value(
                "SELECT COALESCE(SUM(amount), 0) FROM ledger_entries"
                " WHERE account_id = ?",
                (account_id,),
                default=0,
            )
        )

    def entries_for_intent(self, intent_id: bytes) -> list[LedgerEntry]:
        rows = self._db.query_all(
            "SELECT seq, account_id, amount, at, kind, intent_id, transcript"
            " FROM ledger_entries WHERE intent_id = ? ORDER BY seq",
            (intent_id,),
        )
        return [
            LedgerEntry(
                seq=row[0],
                account_id=row[1],
                amount=row[2],
                at=row[3],
                kind=row[4],
                intent_id=row[5],
                transcript=row[6],
            )
            for row in rows
        ]

    # -- deposit intents (2PC) ---------------------------------------------

    def create_intent(
        self,
        intent_id: bytes,
        account_id: str,
        amount: int,
        *,
        at: int,
        payload: bytes,
    ) -> IntentRecord:
        """Durably record a pending deposit intent (2PC prepare).

        Idempotent by id: re-creating an existing intent returns the
        stored record unchanged, so a crashed attempt's retry *adopts*
        its own prior prepare instead of forking a second record.
        """
        with self._db.transaction(immediate=True):
            existing = self._intent_row(intent_id)
            if existing is not None:
                return existing
            self._db.execute(
                "INSERT INTO ledger_intents"
                "(intent_id, account_id, amount, state, created_at,"
                " updated_at, payload)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (intent_id, account_id, amount, INTENT_PENDING, at, at, payload),
            )
            return IntentRecord(
                intent_id=intent_id,
                account_id=account_id,
                amount=amount,
                state=INTENT_PENDING,
                created_at=at,
                updated_at=at,
                payload=payload,
            )

    def intent(self, intent_id: bytes) -> IntentRecord | None:
        return self._intent_row(intent_id)

    def intent_state(self, intent_id: bytes) -> str | None:
        row = self._db.query_one(
            "SELECT state FROM ledger_intents WHERE intent_id = ?",
            (intent_id,),
        )
        return None if row is None else str(row[0])

    def commit_intent(
        self, intent_id: bytes, *, at: int, transcript: bytes = b""
    ) -> bool:
        """2PC commit point: flip pending->committed AND credit the
        account in ONE transaction.  Returns whether this call won the
        transition (False when the intent is already terminal — a twin
        attempt of the same payment committed first).

        Atomicity here is the whole design: after this transaction the
        deposit is credited and every spent coin is attributable to a
        committed intent; before it, recovery treats the intent as
        presumed-abort and releases the spends.  There is no state in
        between.
        """
        with self._db.transaction(immediate=True):
            record = self._intent_row(intent_id)
            if record is None:
                raise StoreIntegrityError(
                    f"commit of unknown intent {intent_id.hex()[:16]}"
                )
            if record.state != INTENT_PENDING:
                return False
            self._db.execute(
                "UPDATE ledger_intents SET state = ?, updated_at = ?"
                " WHERE intent_id = ? AND state = ?",
                (INTENT_COMMITTED, at, intent_id, INTENT_PENDING),
            )
            row = self._balance_row(record.account_id)
            if row is None:
                raise StoreIntegrityError(
                    f"intent {intent_id.hex()[:16]} names unopened account"
                    f" {record.account_id!r}"
                )
            self._db.execute(
                "UPDATE ledger_accounts SET balance = balance + ?"
                " WHERE account_id = ?",
                (record.amount, record.account_id),
            )
            self._append_entry(
                record.account_id,
                record.amount,
                at,
                "deposit",
                intent_id,
                transcript,
            )
            return True

    def abort_intent(self, intent_id: bytes, *, at: int) -> bool:
        """Flip pending->aborted (CAS); returns whether this call won.
        The caller releases the intent's spent coins FIRST — an aborted
        intent must never still own live spends (the audit flags any
        such row as a leaked spend)."""
        with self._db.transaction(immediate=True):
            cursor = self._db.execute(
                "UPDATE ledger_intents SET state = ?, updated_at = ?"
                " WHERE intent_id = ? AND state = ?",
                (INTENT_ABORTED, at, intent_id, INTENT_PENDING),
            )
            return cursor.rowcount > 0

    def intents(self, state: str | None = None) -> list[IntentRecord]:
        if state is None:
            rows = self._db.query_all(
                "SELECT intent_id, account_id, amount, state, created_at,"
                " updated_at, payload FROM ledger_intents ORDER BY created_at"
            )
        else:
            rows = self._db.query_all(
                "SELECT intent_id, account_id, amount, state, created_at,"
                " updated_at, payload FROM ledger_intents"
                " WHERE state = ? ORDER BY created_at",
                (state,),
            )
        return [self._record_from(row) for row in rows]

    def intent_counts(self) -> dict[str, int]:
        """Row counts by state — the durable truth the 2PC metrics are
        refreshed from (rows are never deleted, so every count is
        monotone except ``pending``, which is reported as a gauge)."""
        counts = {INTENT_PENDING: 0, INTENT_COMMITTED: 0, INTENT_ABORTED: 0}
        rows = self._db.query_all(
            "SELECT state, COUNT(*) FROM ledger_intents GROUP BY state"
        )
        for state, count in rows:
            counts[str(state)] = int(count)
        return counts

    def _intent_row(self, intent_id: bytes) -> IntentRecord | None:
        row = self._db.query_one(
            "SELECT intent_id, account_id, amount, state, created_at,"
            " updated_at, payload FROM ledger_intents WHERE intent_id = ?",
            (intent_id,),
        )
        return None if row is None else self._record_from(row)

    @staticmethod
    def _record_from(row: tuple) -> IntentRecord:
        return IntentRecord(
            intent_id=row[0],
            account_id=row[1],
            amount=row[2],
            state=row[3],
            created_at=row[4],
            updated_at=row[5],
            payload=row[6],
        )
