"""Named safe-prime groups for discrete-log constructions.

The identity escrow (ElGamal + Chaum–Pedersen) and Schnorr signatures
work in the order-``q`` subgroup of quadratic residues modulo a safe
prime ``p = 2q + 1``.  Generating safe primes in pure Python is slow,
so production sizes use the well-known RFC 3526 MODP groups; a locally
generated 512-bit group keeps the test suite fast.

Within a safe-prime group, ``g = 4`` (a square, hence a quadratic
residue ≠ 1) always generates the full order-``q`` subgroup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .rand import RandomSource, default_source

# Generated reproducibly (seed 20040601); p and (p-1)/2 both prime.
_P_TEST_512 = int(
    "d78f7044d7be00a90dd8e66a1ab2f293e18557a77a5d64fd4b0f5494e6eabc24"
    "a1f25a0f3465e2b5b6915b08d63464ee317eccaf457070d38032ffe4ff44e1b7",
    16,
)

# RFC 3526, group 5 (1536-bit MODP).
_P_MODP_1536 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)

# RFC 3526, group 14 (2048-bit MODP).
_P_MODP_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)


@dataclass(frozen=True)
class PrimeGroup:
    """Safe-prime group: modulus ``p``, subgroup order ``q``, generator ``g``.

    ``g`` generates the order-``q`` subgroup of quadratic residues; all
    protocol values live in that subgroup so membership is checkable.
    """

    name: str
    p: int
    g: int = 4

    @property
    def q(self) -> int:
        """Order of the quadratic-residue subgroup."""
        return (self.p - 1) // 2

    @property
    def bits(self) -> int:
        return self.p.bit_length()

    def contains(self, element: int) -> bool:
        """Membership test for the order-``q`` subgroup.

        For a safe prime ``p = 2q + 1`` the order-``q`` subgroup is
        exactly the set of quadratic residues, so membership reduces to
        a Jacobi-symbol computation — ``O(log² p)`` instead of the full
        exponentiation ``element^q mod p`` — served by the active
        arithmetic backend (GMP's kernel under gmpy2).
        """
        if not 1 <= element < self.p:
            return False
        from .numbers import jacobi_symbol

        return jacobi_symbol(element, self.p) == 1

    def require_member(self, element: int, what: str = "element") -> int:
        """Return ``element`` or raise if it is outside the subgroup."""
        if not self.contains(element):
            raise ParameterError(f"{what} is not a subgroup member")
        return element

    def random_exponent(self, rng: RandomSource | None = None) -> int:
        """Uniform exponent in ``[1, q)``."""
        rng = rng or default_source()
        return rng.randint_range(1, self.q)

    def power(self, base: int, exponent: int) -> int:
        """``base^exponent mod p``.

        Counted as one ``modexp`` per call; the sub-counters
        ``modexp.fixed_base`` / ``modexp.cold`` record whether a
        precomputed fixed-base table served the call.  The generator's
        table is built lazily on first use (it pays for itself after a
        handful of exponentiations); other long-lived bases are
        registered via :meth:`precompute_base`.
        """
        from ..instrument import tick
        from . import fastexp

        table = fastexp.lookup(base, self.p)
        if table is None and base == self.g and fastexp.tables_enabled():
            table = self.precompute_generator()
        tick("modexp")
        if table is not None:
            tick("modexp.fixed_base")
            return table.pow(exponent)
        tick("modexp.cold")
        if fastexp.exp_mode() == fastexp.MODE_WNAF:
            tick("modexp.cold.wnaf")
        return fastexp.cold_pow(base, exponent, self.p)

    def multi_power(self, pairs: list[tuple[int, int]]) -> int:
        """``Π base_i^{exponent_i} mod p`` in one shared chain.

        Simultaneous multi-exponentiation (Shamir's trick): the whole
        product costs one chain of squarings, so it is counted as one
        ``modexp`` (sub-counter ``modexp.multi``) however many pairs it
        covers.  Exponents must lie in ``[0, q)``.
        """
        from ..instrument import tick
        from . import fastexp

        tick("modexp")
        tick("modexp.multi")
        if fastexp.exp_mode() == fastexp.MODE_WNAF:
            tick("modexp.multi.wnaf")
        return fastexp.multi_pow(pairs, self.p)

    def precompute_generator(self):
        """Build (or fetch) the fixed-base table for ``g``."""
        return self.precompute_base(self.g)

    def precompute_base(self, base: int):
        """Register a long-lived base (e.g. a TTP public key) for
        fixed-base exponentiation; returns the shared table."""
        from . import fastexp

        return fastexp.precompute(base, self.p, exponent_bits=self.p.bit_length())

    def encode_element(self, value_bytes: bytes) -> int:
        """Map arbitrary bytes to a subgroup element (square the hash image).

        Squaring lands any residue class in the QR subgroup, so encoded
        identity tags are always valid protocol values.
        """
        from . import backend
        from .hashes import hash_to_int

        raw = hash_to_int(b"group-encode:" + value_bytes, self.p - 2) + 2
        return backend.powmod(raw, 2, self.p)


_NAMED_GROUPS: dict[str, PrimeGroup] = {
    "test-512": PrimeGroup(name="test-512", p=_P_TEST_512),
    "modp-1536": PrimeGroup(name="modp-1536", p=_P_MODP_1536),
    "modp-2048": PrimeGroup(name="modp-2048", p=_P_MODP_2048),
}


def named_group(name: str) -> PrimeGroup:
    """Look up a named group (``test-512``, ``modp-1536``, ``modp-2048``)."""
    try:
        return _NAMED_GROUPS[name]
    except KeyError:
        raise ParameterError(f"unknown group {name!r}") from None


def available_groups() -> tuple[str, ...]:
    """Names of all built-in groups."""
    return tuple(_NAMED_GROUPS)
