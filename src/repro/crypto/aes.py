"""AES block cipher (128/192/256-bit keys), pure Python, table-based.

Content protection in the DRM system encrypts each content item under a
random content key ``K_C`` (see :mod:`repro.core.content`); the modes
live in :mod:`repro.crypto.modes`.  This module is only the block
primitive: key expansion plus single-block encrypt/decrypt.

The S-box and the GF(2^8) multiplication tables are *computed at
import time* from first principles (multiplicative inverse in
GF(2^8)/0x11B plus the affine transform) rather than pasted in as 256
literals — less surface for silent typos, and the derivation doubles
as documentation.  Correctness is pinned by the FIPS-197 vectors in
the test suite.

Performance note: a few hundred KiB/s in CPython — ample for protocol
experiments; content payloads in the benchmarks are sized accordingly.
"""

from __future__ import annotations

from ..errors import ParameterError

BLOCK_SIZE = 16


def _gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) modulo x^8 + x^4 + x^3 + x + 1 (0x11B)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # Multiplicative inverses via exponentiation tables on generator 3.
    exp = [0] * 255
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)

    def inverse(x: int) -> int:
        return 0 if x == 0 else exp[(255 - log[x]) % 255]

    sbox = [0] * 256
    for x in range(256):
        b = inverse(x)
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        result = 0x63
        for shift in range(5):
            rotated = ((b << shift) | (b >> (8 - shift))) & 0xFF
            result ^= rotated
        sbox[x] = result
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()

# Forward tables: T0[x] = MixColumn of column (S[x],0,0,0) after ShiftRows,
# packed big-endian; T1..T3 are byte rotations.
_T0 = [0] * 256
for _x in range(256):
    _s = _SBOX[_x]
    _T0[_x] = (
        (_gf_mul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gf_mul(_s, 3)
    )
_T1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _T0]
_T2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in _T0]
_T3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in _T0]

# Inverse tables: D0[x] over the inverse S-box with the InvMixColumns row.
_D0 = [0] * 256
for _x in range(256):
    _s = _INV_SBOX[_x]
    _D0[_x] = (
        (_gf_mul(_s, 14) << 24)
        | (_gf_mul(_s, 9) << 16)
        | (_gf_mul(_s, 13) << 8)
        | _gf_mul(_s, 11)
    )
_D1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _D0]
_D2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in _D0]
_D3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in _D0]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}


def _inv_mix_column_word(word: int) -> int:
    a = (word >> 24) & 0xFF
    b = (word >> 16) & 0xFF
    c = (word >> 8) & 0xFF
    d = word & 0xFF
    return (
        ((_gf_mul(a, 14) ^ _gf_mul(b, 11) ^ _gf_mul(c, 13) ^ _gf_mul(d, 9)) << 24)
        | ((_gf_mul(a, 9) ^ _gf_mul(b, 14) ^ _gf_mul(c, 11) ^ _gf_mul(d, 13)) << 16)
        | ((_gf_mul(a, 13) ^ _gf_mul(b, 9) ^ _gf_mul(c, 14) ^ _gf_mul(d, 11)) << 8)
        | (_gf_mul(a, 11) ^ _gf_mul(b, 13) ^ _gf_mul(c, 9) ^ _gf_mul(d, 14))
    )


class AesCipher:
    """Expanded-key AES instance for one key."""

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEY_LEN:
            raise ParameterError("AES key must be 16, 24 or 32 bytes")
        self._rounds = _ROUNDS_BY_KEY_LEN[len(key)]
        self._enc_keys = self._expand_key(key)
        self._dec_keys = self._invert_key_schedule(self._enc_keys)

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        total = 4 * (self._rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _invert_key_schedule(self, enc_keys: list[int]) -> list[int]:
        # Equivalent inverse cipher: reverse round order, InvMixColumns on
        # every round key except the first and last.
        rounds = self._rounds
        dec: list[int] = []
        for r in range(rounds, -1, -1):
            chunk = enc_keys[4 * r : 4 * r + 4]
            if 0 < r < rounds:
                chunk = [_inv_mix_column_word(w) for w in chunk]
            dec.extend(chunk)
        return dec

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ParameterError("block must be 16 bytes")
        rk = self._enc_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        idx = 4
        for _ in range(self._rounds - 1):
            t0 = _T0[(s0 >> 24) & 0xFF] ^ _T1[(s1 >> 16) & 0xFF] ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ rk[idx]
            t1 = _T0[(s1 >> 24) & 0xFF] ^ _T1[(s2 >> 16) & 0xFF] ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ rk[idx + 1]
            t2 = _T0[(s2 >> 24) & 0xFF] ^ _T1[(s3 >> 16) & 0xFF] ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ rk[idx + 2]
            t3 = _T0[(s3 >> 24) & 0xFF] ^ _T1[(s0 >> 16) & 0xFF] ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ rk[idx + 3]
            s0, s1, s2, s3 = t0, t1, t2, t3
            idx += 4
        # Final round: SubBytes + ShiftRows, no MixColumns.
        out = bytearray(16)
        for col, (a, b, c, d) in enumerate(
            ((s0, s1, s2, s3), (s1, s2, s3, s0), (s2, s3, s0, s1), (s3, s0, s1, s2))
        ):
            word = (
                (_SBOX[(a >> 24) & 0xFF] << 24)
                | (_SBOX[(b >> 16) & 0xFF] << 16)
                | (_SBOX[(c >> 8) & 0xFF] << 8)
                | _SBOX[d & 0xFF]
            ) ^ rk[idx + col]
            out[4 * col : 4 * col + 4] = word.to_bytes(4, "big")
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ParameterError("block must be 16 bytes")
        rk = self._dec_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        idx = 4
        for _ in range(self._rounds - 1):
            t0 = _D0[(s0 >> 24) & 0xFF] ^ _D1[(s3 >> 16) & 0xFF] ^ _D2[(s2 >> 8) & 0xFF] ^ _D3[s1 & 0xFF] ^ rk[idx]
            t1 = _D0[(s1 >> 24) & 0xFF] ^ _D1[(s0 >> 16) & 0xFF] ^ _D2[(s3 >> 8) & 0xFF] ^ _D3[s2 & 0xFF] ^ rk[idx + 1]
            t2 = _D0[(s2 >> 24) & 0xFF] ^ _D1[(s1 >> 16) & 0xFF] ^ _D2[(s0 >> 8) & 0xFF] ^ _D3[s3 & 0xFF] ^ rk[idx + 2]
            t3 = _D0[(s3 >> 24) & 0xFF] ^ _D1[(s2 >> 16) & 0xFF] ^ _D2[(s1 >> 8) & 0xFF] ^ _D3[s0 & 0xFF] ^ rk[idx + 3]
            s0, s1, s2, s3 = t0, t1, t2, t3
            idx += 4
        out = bytearray(16)
        for col, (a, b, c, d) in enumerate(
            ((s0, s3, s2, s1), (s1, s0, s3, s2), (s2, s1, s0, s3), (s3, s2, s1, s0))
        ):
            word = (
                (_INV_SBOX[(a >> 24) & 0xFF] << 24)
                | (_INV_SBOX[(b >> 16) & 0xFF] << 16)
                | (_INV_SBOX[(c >> 8) & 0xFF] << 8)
                | _INV_SBOX[d & 0xFF]
            ) ^ rk[idx + col]
            out[4 * col : 4 * col + 4] = word.to_bytes(4, "big")
        return bytes(out)
