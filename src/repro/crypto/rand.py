"""Injectable randomness for the whole system.

Every component that needs randomness — key generation, blinding
factors, nonces, licence identifiers, simulated workloads — receives a
:class:`RandomSource` instead of calling :mod:`secrets` directly.  Two
implementations exist:

- :class:`SystemRandomSource` draws from the operating system CSPRNG
  and is the default for applications;
- :class:`DeterministicRandomSource` expands a seed with SHA-256 in
  counter mode, so tests and benchmarks reproduce bit-for-bit.

The deterministic source is *not* a security construction (it exists
for reproducibility); the protocols themselves never assume more of a
source than "uniform bytes".
"""

from __future__ import annotations

import hashlib
import secrets


class RandomSource:
    """Interface: uniform bytes and derived integer helpers."""

    def random_bytes(self, count: int) -> bytes:
        raise NotImplementedError

    def randbits(self, bits: int) -> int:
        """Uniform integer in ``[0, 2**bits)``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0
        nbytes = (bits + 7) // 8
        raw = int.from_bytes(self.random_bytes(nbytes), "big")
        return raw >> (nbytes * 8 - bits)

    def randint_below(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        bits = upper.bit_length()
        while True:
            candidate = self.randbits(bits)
            if candidate < upper:
                return candidate

    def randint_range(self, lower: int, upper: int) -> int:
        """Uniform integer in ``[lower, upper)``."""
        if lower >= upper:
            raise ValueError("empty range")
        return lower + self.randint_below(upper - lower)

    def random_odd(self, bits: int) -> int:
        """Uniform odd integer with exactly ``bits`` bits (top bit set)."""
        if bits < 2:
            raise ValueError("need at least 2 bits")
        candidate = self.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1
        return candidate

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle driven by this source."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def choice(self, items):
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from empty sequence")
        return items[self.randint_below(len(items))]

    def fork(self, label: str) -> "RandomSource":
        """Derive an independent source for a subcomponent.

        System sources return themselves (entropy is shared anyway);
        deterministic sources derive a child seed, so components can be
        re-ordered without perturbing each other's streams.
        """
        return self


class SystemRandomSource(RandomSource):
    """Operating-system CSPRNG (``secrets``)."""

    def random_bytes(self, count: int) -> bytes:
        if count < 0:
            raise ValueError("count must be non-negative")
        return secrets.token_bytes(count)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "SystemRandomSource()"


class DeterministicRandomSource(RandomSource):
    """SHA-256 counter-mode expansion of a seed — reproducible streams.

    The stream is ``SHA256(seed || counter_0) || SHA256(seed || counter_1)
    || ...``; distinct seeds give computationally independent streams.
    """

    def __init__(self, seed: bytes | str | int):
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        elif isinstance(seed, int):
            seed = seed.to_bytes(8, "big", signed=True)
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = b""

    def random_bytes(self, count: int) -> bytes:
        if count < 0:
            raise ValueError("count must be non-negative")
        while len(self._buffer) < count:
            block = hashlib.sha256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:count], self._buffer[count:]
        return out

    @property
    def seed(self) -> bytes:
        """The seed this stream expands.

        Shipping the seed to another process and constructing a new
        source from it reproduces the same *fork tree* (forks derive
        from the seed, not the stream position) — which is how service
        workers inherit the provider's deterministic-issuance rng.
        """
        return self._seed

    def fork(self, label: str) -> "DeterministicRandomSource":
        child_seed = hashlib.sha256(
            b"fork:" + self._seed + b"/" + label.encode("utf-8")
        ).digest()
        return DeterministicRandomSource(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DeterministicRandomSource(seed={self._seed.hex()[:16]}...)"


def default_source() -> RandomSource:
    """The source used when callers pass ``rng=None``."""
    return SystemRandomSource()
