"""Key (de)serialization and fingerprints.

Keys cross trust boundaries constantly in this system — pseudonym keys
inside certificates, provider keys inside licences, bank keys inside
coins — so they need one canonical wire form.  Keys serialize to codec
dicts tagged with a ``kind`` field; fingerprints are SHA-256 over the
canonical encoding of the *public* form.
"""

from __future__ import annotations

from typing import Any

from .. import codec
from ..errors import KeyFormatError
from .elgamal import ElGamalPrivateKey, ElGamalPublicKey
from .groups import named_group
from .hashes import sha256
from .rsa import RsaPrivateKey, RsaPublicKey
from .schnorr import SchnorrPrivateKey, SchnorrPublicKey

KIND_RSA_PUBLIC = "rsa-pub"
KIND_RSA_PRIVATE = "rsa-priv"
KIND_SCHNORR_PUBLIC = "schnorr-pub"
KIND_SCHNORR_PRIVATE = "schnorr-priv"
KIND_ELGAMAL_PUBLIC = "elgamal-pub"
KIND_ELGAMAL_PRIVATE = "elgamal-priv"

PublicKey = RsaPublicKey | SchnorrPublicKey | ElGamalPublicKey
PrivateKey = RsaPrivateKey | SchnorrPrivateKey | ElGamalPrivateKey


def key_to_dict(key: PublicKey | PrivateKey) -> dict[str, Any]:
    """Serialize any supported key to a codec-friendly dict."""
    if isinstance(key, RsaPublicKey):
        return {"kind": KIND_RSA_PUBLIC, "n": key.n, "e": key.e}
    if isinstance(key, RsaPrivateKey):
        data: dict[str, Any] = {
            "kind": KIND_RSA_PRIVATE,
            "n": key.n,
            "e": key.e,
            "d": key.d,
            "p": key.p,
            "q": key.q,
        }
        if key.extra_primes:
            # Multi-prime keys (RFC 8017 §3.2); absent for the classical
            # two-prime form so old serializations stay valid.
            data["r"] = list(key.extra_primes)
        return data
    if isinstance(key, SchnorrPublicKey):
        return {"kind": KIND_SCHNORR_PUBLIC, "group": key.group.name, "y": key.y}
    if isinstance(key, SchnorrPrivateKey):
        return {"kind": KIND_SCHNORR_PRIVATE, "group": key.group.name, "x": key.x}
    if isinstance(key, ElGamalPublicKey):
        return {"kind": KIND_ELGAMAL_PUBLIC, "group": key.group.name, "y": key.y}
    if isinstance(key, ElGamalPrivateKey):
        return {"kind": KIND_ELGAMAL_PRIVATE, "group": key.group.name, "x": key.x}
    raise KeyFormatError(f"unsupported key type {type(key).__name__}")


def key_from_dict(data: dict[str, Any]) -> PublicKey | PrivateKey:
    """Inverse of :func:`key_to_dict`; raises
    :class:`~repro.errors.KeyFormatError` on malformed input."""
    try:
        kind = data["kind"]
        if kind == KIND_RSA_PUBLIC:
            return RsaPublicKey(n=int(data["n"]), e=int(data["e"]))
        if kind == KIND_RSA_PRIVATE:
            return RsaPrivateKey(
                n=int(data["n"]),
                e=int(data["e"]),
                d=int(data["d"]),
                p=int(data["p"]),
                q=int(data["q"]),
                extra_primes=tuple(int(r) for r in data.get("r", [])),
            )
        if kind == KIND_SCHNORR_PUBLIC:
            return SchnorrPublicKey(group=named_group(data["group"]), y=int(data["y"]))
        if kind == KIND_SCHNORR_PRIVATE:
            return SchnorrPrivateKey(group=named_group(data["group"]), x=int(data["x"]))
        if kind == KIND_ELGAMAL_PUBLIC:
            return ElGamalPublicKey(group=named_group(data["group"]), y=int(data["y"]))
        if kind == KIND_ELGAMAL_PRIVATE:
            return ElGamalPrivateKey(group=named_group(data["group"]), x=int(data["x"]))
    except KeyFormatError:
        raise
    except Exception as exc:
        raise KeyFormatError(f"malformed key dict: {exc}") from exc
    raise KeyFormatError(f"unknown key kind {data.get('kind')!r}")


def public_part(key: PublicKey | PrivateKey) -> PublicKey:
    """The public half of any key (public keys pass through)."""
    if isinstance(key, (RsaPublicKey, SchnorrPublicKey, ElGamalPublicKey)):
        return key
    if isinstance(key, (RsaPrivateKey, SchnorrPrivateKey, ElGamalPrivateKey)):
        return key.public_key
    raise KeyFormatError(f"unsupported key type {type(key).__name__}")


def key_bytes(key: PublicKey | PrivateKey) -> bytes:
    """Canonical byte encoding (codec over :func:`key_to_dict`)."""
    return codec.encode(key_to_dict(key))


def fingerprint(key: PublicKey | PrivateKey) -> bytes:
    """SHA-256 fingerprint of the key's public half."""
    return sha256(b"key-fingerprint:" + key_bytes(public_part(key)))
