"""Pluggable bigint-arithmetic backend (pure Python or gmpy2).

Every protocol in the system bottoms out in a handful of bigint
primitives — modular exponentiation, modular inversion, and the Jacobi
symbol — and all of them exist in two qualities on a typical host:

- **pure** — CPython's C ``pow`` and the binary Jacobi algorithm.
  Always available; this is the historical behavior of the repo and
  the semantics every other backend must reproduce bit-for-bit.

- **gmpy2** — GMP's assembly kernels via the ``gmpy2`` package:
  ``powmod`` / ``invert`` / ``jacobi`` plus ``mpz`` values that make
  every ``*`` and ``%`` in the Python-level exponentiation chains run
  in C.  3-10x on the modexp-dominated screening and redemption
  paths, which is why the ROADMAP deferred the wNAF payoff until this
  backend existed.

The active backend is selected once at import from the
``P2DRM_BACKEND`` environment variable (``pure`` / ``gmpy2``), or — if
unset — defaults to ``gmpy2`` when the package is importable and
``pure`` otherwise, and can be switched at runtime with
:func:`set_backend` (same switch-guard discipline as
``fastexp.set_exp_mode``: benchmarks and tests scope their switches
with :func:`backend_set` or ``fastexp.switch_guard``).  Selecting
``gmpy2`` when the package is missing is a loud
:class:`~repro.errors.ParameterError`, never a silent fallback — the
``backend-gmpy2`` CI lane depends on that.

Two contracts keep backends interchangeable:

- every API function takes and returns **plain ints** (protocol code
  hashes, encodes and pickles the values; an ``mpz`` leaking out would
  change bytes on the wire), and error behavior matches CPython's
  (``invert`` raises :class:`ValueError` for a non-invertible value);

- :meth:`residue` converts an int into the backend's *native* integer
  type for tight arithmetic loops.  ``repro.crypto.fastexp`` keeps its
  precomputed fixed-base tables resident in that type, so the
  per-multiplication int↔mpz conversion cost is paid once per table,
  not once per call.

:func:`batch_invert` (Montgomery's trick) lives here too: ``n``
modular inverses for the price of one inversion plus ``3(n-1)``
multiplications — the aggregated verification paths use it so a wNAF
batch costs one inversion instead of one per member.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from importlib import util as _importlib_util
from typing import Iterator, Sequence

from ..errors import ParameterError

#: Environment variable consulted once at import for the process-wide
#: default backend.
BACKEND_ENV = "P2DRM_BACKEND"


def _jacobi_pure(a: int, n: int) -> int:
    """Binary Jacobi algorithm (``n`` odd and positive).

    All factors of two are stripped in one shift per round and the
    mod-8 / mod-4 sign rules are done bitwise — subgroup membership
    checks run this on full-width elements on every verification path.
    """
    if n <= 0 or not n & 1:
        raise ValueError("n must be odd and positive")
    a %= n
    result = 1
    while a:
        twos = (a & -a).bit_length() - 1
        if twos:
            a >>= twos
            if twos & 1 and n & 7 in (3, 5):
                result = -result
        if a & 3 == 3 and n & 3 == 3:
            result = -result
        a, n = n % a, a
    return result if n == 1 else 0


class PureBackend:
    """CPython-native arithmetic — the reference semantics."""

    name = "pure"

    @staticmethod
    def residue(value: int) -> int:
        """Identity: Python ints *are* the native type."""
        return value

    @staticmethod
    def powmod(base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    @staticmethod
    def invert(value: int, modulus: int) -> int:
        """Modular inverse; :class:`ValueError` when none exists."""
        return pow(value, -1, modulus)

    @staticmethod
    def jacobi(a: int, n: int) -> int:
        return _jacobi_pure(a, n)

    @staticmethod
    def powmod_base_list(
        bases: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        """``[base^exponent mod modulus for base in bases]``."""
        return [pow(base, exponent, modulus) for base in bases]


class Gmpy2Backend:
    """GMP arithmetic via ``gmpy2``, with CPython-identical contracts."""

    name = "gmpy2"

    def __init__(self, gmpy2_module):
        self._gmpy2 = gmpy2_module
        # mpz itself is the residue constructor — one C call.
        self.residue = gmpy2_module.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        # gmpy2 signals a non-invertible base for negative exponents
        # with ZeroDivisionError where CPython raises ValueError.
        try:
            return int(self._gmpy2.powmod(base, exponent, modulus))
        except ZeroDivisionError:
            raise ValueError(
                "base is not invertible for the given modulus"
            ) from None

    def invert(self, value: int, modulus: int) -> int:
        if modulus == 1:
            # Everything is ≡ 0 mod 1; CPython's pow returns 0 where
            # GMP's mpz_invert behavior at 1 is edge-case territory.
            return 0
        try:
            return int(self._gmpy2.invert(value, modulus))
        except ZeroDivisionError:
            raise ValueError(
                "base is not invertible for the given modulus"
            ) from None

    def jacobi(self, a: int, n: int) -> int:
        return int(self._gmpy2.jacobi(a, n))

    def powmod_base_list(
        self, bases: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        batched = getattr(self._gmpy2, "powmod_base_list", None)
        if batched is None:
            # Older gmpy2 without the batched entry point: per-base
            # powmod is still the C kernel, just with n Python calls.
            return [self.powmod(base, exponent, modulus) for base in bases]
        return [int(value) for value in batched(list(bases), exponent, modulus)]


# ---------------------------------------------------------------------------
# Registry and selection
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, object] = {"pure": PureBackend()}


def register_backend(backend) -> None:
    """Register a custom backend instance under ``backend.name``.

    The extension point the "pluggable" in the module name promises:
    tests register instrumented backends, and an alternative C library
    could slot in without touching any call site.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ParameterError("backend must expose a non-empty string name")
    _REGISTRY[name] = backend


def gmpy2_available() -> bool:
    """Whether the gmpy2 package is importable on this host."""
    return _importlib_util.find_spec("gmpy2") is not None


def available_backends() -> tuple[str, ...]:
    """Names selectable on this host (registered, plus gmpy2 if importable)."""
    names = list(_REGISTRY)
    if "gmpy2" not in names and gmpy2_available():
        names.append("gmpy2")
    return tuple(names)


def _instantiate(name: str):
    backend = _REGISTRY.get(name)
    if backend is not None:
        return backend
    if name == "gmpy2":
        try:
            import gmpy2
        except ImportError:
            raise ParameterError(
                "backend 'gmpy2' requested but the gmpy2 package is not"
                " importable (install it, or select P2DRM_BACKEND=pure)"
            ) from None
        backend = Gmpy2Backend(gmpy2)
        _REGISTRY[name] = backend
        return backend
    raise ParameterError(f"unknown arithmetic backend {name!r}")


def _default_name() -> str:
    env = os.environ.get(BACKEND_ENV, "").strip()
    if env:
        # Explicit selection is strict: a CI lane that asked for gmpy2
        # must fail loudly if the install silently didn't happen.
        return env
    return "gmpy2" if gmpy2_available() else "pure"


_BACKEND = _instantiate(_default_name())


def current():
    """The active backend instance."""
    return _BACKEND


def backend_name() -> str:
    """Name of the active backend (``pure`` / ``gmpy2`` / custom)."""
    return _BACKEND.name


def set_backend(name: str) -> None:
    """Select the arithmetic backend for the whole process.

    Precomputed fixed-base tables re-residence themselves lazily on
    next use (see ``fastexp.lookup``), so switching is safe at any
    point; like ``fastexp.set_exp_mode`` it is a performance knob,
    never a correctness one.
    """
    global _BACKEND
    _BACKEND = _instantiate(name)


@contextmanager
def backend_set(name: str) -> Iterator[None]:
    """Scope with the given backend active (benchmark arms, tests)."""
    global _BACKEND
    previous = _BACKEND
    set_backend(name)
    try:
        yield
    finally:
        _BACKEND = previous


# ---------------------------------------------------------------------------
# Module-level conveniences (always dispatch on the *current* backend)
# ---------------------------------------------------------------------------


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base^exponent mod modulus`` through the active backend."""
    return _BACKEND.powmod(base, exponent, modulus)


def invert(value: int, modulus: int) -> int:
    """Modular inverse through the active backend (:class:`ValueError`
    when none exists, matching ``pow(value, -1, modulus)``)."""
    return _BACKEND.invert(value, modulus)


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` through the active backend."""
    return _BACKEND.jacobi(a, n)


def powmod_base_list(bases: Sequence[int], exponent: int, modulus: int) -> list[int]:
    """Many bases, one exponent — batched where the backend can."""
    return _BACKEND.powmod_base_list(bases, exponent, modulus)


def batch_invert(values: Sequence[int], modulus: int) -> list[int]:
    """Invert every value mod ``modulus`` with **one** modular inversion.

    Montgomery's trick: multiply up the running prefix products, invert
    the grand product once, then walk backwards peeling one inverse off
    per step — ``3(n-1)`` multiplications plus a single inversion,
    against ``n`` inversions done naively.  The aggregated verification
    paths use this so a batch costs one inversion however many members
    it folds.

    Raises :class:`ValueError` if *any* value is non-invertible (the
    grand product is then non-invertible too, so the failure cannot be
    missed); callers with possibly-degenerate members catch it and fall
    back to per-item inversion to identify the offender.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    backend = _BACKEND
    reduced = [value % modulus for value in values]
    if not reduced:
        return []
    residue = backend.residue
    modulus_r = residue(modulus)
    prefix: list[int] = []
    acc = residue(1)
    for value in reduced:
        acc = (acc * residue(value)) % modulus_r
        prefix.append(acc)
    inverse = residue(backend.invert(int(acc), modulus))
    out: list[int] = [0] * len(reduced)
    for index in range(len(reduced) - 1, 0, -1):
        out[index] = int((inverse * prefix[index - 1]) % modulus_r)
        inverse = (inverse * residue(reduced[index])) % modulus_r
    out[0] = int(inverse % modulus_r)
    return out
