"""ElGamal encryption over a safe-prime group, plus a hashed-ElGamal KEM.

Two distinct jobs in the P2DRM system:

- **Identity escrow** (:class:`ElGamalCiphertext` of a group element):
  each blind-issued pseudonym certificate embeds an ElGamal encryption
  of the holder's identity tag under the trusted third party's key.
  Only the TTP can open it, and opening is *verifiable* via a
  Chaum–Pedersen decryption proof (:mod:`repro.crypto.schnorr`).

- **Content-key wrapping** (the KEM): pseudonyms are cheap one-
  exponentiation Diffie–Hellman keys ``y = g^x``; a licence wraps the
  content key to the pseudonym with hashed ElGamal (ephemeral DH →
  HKDF → XOR stream + HMAC tag, encrypt-then-MAC).  Using a KEM rather
  than RSA-OAEP keeps *fresh pseudonym per purchase* affordable — an
  RSA pseudonym would cost a prime generation each time.

Re-randomization is provided because unlinkability arguments use it:
a re-randomized escrow decrypts identically but is indistinguishable
from fresh.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DecryptionError, ParameterError
from .groups import PrimeGroup
from .hashes import constant_time_equal, hkdf, hmac_sha256, int_to_bytes
from .numbers import modinv
from .rand import RandomSource, default_source

_KEM_TAG_SIZE = 32

#: Bit length of the KEM's ephemeral exponent.  Short Diffie–Hellman
#: exponents are standard practice (NIST SP 800-56A sizes the private
#: exponent to twice the targeted security strength, not to the group
#: order): generic discrete-log attacks on a 256-bit exponent cost
#: ~2^128, beyond what any of the built-in groups offer against index
#: calculus anyway.  This halves both exponentiations on the licence-
#: issuance hot path.  Only the one-shot KEM ephemeral uses it — Schnorr
#: signing nonces must stay full-width (nonce bias leaks the key).
KEM_EPHEMERAL_BITS = 256


@dataclass(frozen=True)
class ElGamalCiphertext:
    """ElGamal pair ``(c1, c2) = (g^k, m * y^k)``."""

    c1: int
    c2: int

    def as_dict(self) -> dict:
        return {"c1": self.c1, "c2": self.c2}

    @classmethod
    def from_dict(cls, data: dict) -> "ElGamalCiphertext":
        return cls(c1=int(data["c1"]), c2=int(data["c2"]))


@dataclass(frozen=True)
class ElGamalPublicKey:
    """Public key ``y = g^x`` in a named safe-prime group."""

    group: PrimeGroup
    y: int

    def __post_init__(self) -> None:
        self.group.require_member(self.y, "public key")

    def precompute(self) -> None:
        """Register ``y`` for fixed-base exponentiation.

        The TTP's escrow key is raised to a fresh exponent by every
        certified pseudonym (`y^k` in :meth:`encrypt_element` and
        :meth:`kem_wrap`), so a precomputed table amortizes within a
        handful of certifications.
        """
        self.group.precompute_base(self.y)

    def encrypt_element(
        self, element: int, *, rng: RandomSource | None = None
    ) -> ElGamalCiphertext:
        """Encrypt a subgroup element (identity-escrow direction)."""
        rng = rng or default_source()
        group = self.group
        group.require_member(element, "plaintext element")
        k = group.random_exponent(rng)
        return ElGamalCiphertext(
            c1=group.power(group.g, k),
            c2=(element * group.power(self.y, k)) % group.p,
        )

    def encrypt_element_with_randomness(
        self, element: int, k: int
    ) -> ElGamalCiphertext:
        """Deterministic variant used when the randomness is proven in ZK."""
        group = self.group
        group.require_member(element, "plaintext element")
        if not 1 <= k < group.q:
            raise ParameterError("randomness out of range")
        return ElGamalCiphertext(
            c1=group.power(group.g, k),
            c2=(element * group.power(self.y, k)) % group.p,
        )

    def rerandomize(
        self, ciphertext: ElGamalCiphertext, *, rng: RandomSource | None = None
    ) -> ElGamalCiphertext:
        """Multiply by a fresh encryption of 1; same plaintext, unlinkable."""
        rng = rng or default_source()
        group = self.group
        s = group.random_exponent(rng)
        return ElGamalCiphertext(
            c1=(ciphertext.c1 * group.power(group.g, s)) % group.p,
            c2=(ciphertext.c2 * group.power(self.y, s)) % group.p,
        )

    # -- hashed-ElGamal KEM ---------------------------------------------------

    def kem_wrap(
        self,
        payload: bytes,
        *,
        context: bytes = b"",
        rng: RandomSource | None = None,
    ) -> dict:
        """Wrap ``payload`` (e.g. a content key) to this public key.

        Returns a codec-friendly dict ``{"c1": int, "ct": bytes,
        "tag": bytes}``.  ``context`` is bound into the KDF and the MAC,
        so a wrap made for one licence cannot be transplanted into
        another.
        """
        rng = rng or default_source()
        group = self.group
        k = _kem_ephemeral(group, rng)
        c1 = group.power(group.g, k)
        shared = group.power(self.y, k)
        keys = _derive_kem_keys(group, c1, shared, context, len(payload))
        ciphertext = bytes(p ^ s for p, s in zip(payload, keys.stream))
        tag = hmac_sha256(keys.mac_key, _kem_mac_input(group, c1, context, ciphertext))
        return {"c1": c1, "ct": ciphertext, "tag": tag}


@dataclass(frozen=True)
class ElGamalPrivateKey:
    """Private exponent ``x`` with its public half."""

    group: PrimeGroup
    x: int

    def __post_init__(self) -> None:
        if not 1 <= self.x < self.group.q:
            raise ParameterError("private exponent out of range")

    @property
    def public_key(self) -> ElGamalPublicKey:
        return ElGamalPublicKey(group=self.group, y=self.group.power(self.group.g, self.x))

    def decrypt_element(self, ciphertext: ElGamalCiphertext) -> int:
        """Recover the encrypted subgroup element."""
        group = self.group
        group.require_member(ciphertext.c1, "c1")
        shared = group.power(ciphertext.c1, self.x)
        return (ciphertext.c2 * modinv(shared, group.p)) % group.p

    def kem_unwrap(self, wrapped: dict, *, context: bytes = b"") -> bytes:
        """Unwrap a :meth:`ElGamalPublicKey.kem_wrap` payload.

        Raises :class:`~repro.errors.DecryptionError` if the tag fails
        (wrong key, tampered ciphertext, or wrong context).
        """
        group = self.group
        try:
            c1 = int(wrapped["c1"])
            ciphertext = bytes(wrapped["ct"])
            tag = bytes(wrapped["tag"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DecryptionError("malformed KEM blob") from exc
        if not group.contains(c1):
            raise DecryptionError("KEM ephemeral not in subgroup")
        shared = group.power(c1, self.x)
        keys = _derive_kem_keys(group, c1, shared, context, len(ciphertext))
        expected = hmac_sha256(keys.mac_key, _kem_mac_input(group, c1, context, ciphertext))
        if not constant_time_equal(expected, tag):
            raise DecryptionError("KEM tag mismatch")
        return bytes(c ^ s for c, s in zip(ciphertext, keys.stream))


def generate_elgamal_key(
    group: PrimeGroup, *, rng: RandomSource | None = None
) -> ElGamalPrivateKey:
    """Fresh key pair in ``group`` — one modular exponentiation."""
    rng = rng or default_source()
    return ElGamalPrivateKey(group=group, x=group.random_exponent(rng))


def _kem_ephemeral(group: PrimeGroup, rng: RandomSource) -> int:
    """Uniform ephemeral in ``[1, min(2^KEM_EPHEMERAL_BITS, q))``."""
    ceiling = min(1 << KEM_EPHEMERAL_BITS, group.q)
    return rng.randint_range(1, ceiling)


@dataclass(frozen=True)
class _KemKeys:
    stream: bytes
    mac_key: bytes


def _derive_kem_keys(
    group: PrimeGroup, c1: int, shared: int, context: bytes, payload_len: int
) -> _KemKeys:
    element_len = (group.p.bit_length() + 7) // 8
    secret = int_to_bytes(shared, element_len)
    salt = int_to_bytes(c1, element_len)
    material = hkdf(
        secret,
        payload_len + _KEM_TAG_SIZE,
        salt=salt,
        info=b"p2drm-kem:" + group.name.encode() + b":" + context,
    )
    return _KemKeys(stream=material[:payload_len], mac_key=material[payload_len:])


def _kem_mac_input(group: PrimeGroup, c1: int, context: bytes, ciphertext: bytes) -> bytes:
    element_len = (group.p.bit_length() + 7) // 8
    return b"|".join(
        [group.name.encode(), int_to_bytes(c1, element_len), context, ciphertext]
    )
