"""Hashing helpers: SHA-2 wrappers, HKDF, MGF1, integer conversion.

All hashing in the system goes through this module, so the digest
algorithm is a single point of change.  SHA-256 is the default digest,
matching what a careful 2004-era design would have picked (the paper
predates SHA-2 deployment pressure, but SHA-1 would be indefensible in
a release today and changes nothing structural).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

DIGEST_NAME = "sha256"
DIGEST_SIZE = 32


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha512(data: bytes) -> bytes:
    """SHA-512 digest of ``data``."""
    return hashlib.sha512(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(left: bytes, right: bytes) -> bool:
    """Timing-safe equality for MACs and padding checks."""
    return _hmac.compare_digest(left, right)


def hkdf(
    input_key: bytes,
    length: int,
    *,
    salt: bytes = b"",
    info: bytes = b"",
) -> bytes:
    """HKDF-SHA-256 (RFC 5869): extract-then-expand key derivation."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if length > 255 * DIGEST_SIZE:
        raise ValueError("HKDF output too long")
    pseudo_random_key = _hmac.new(
        salt or b"\x00" * DIGEST_SIZE, input_key, hashlib.sha256
    ).digest()
    blocks = []
    previous = b""
    counter = 1
    while sum(len(block) for block in blocks) < length:
        previous = _hmac.new(
            pseudo_random_key, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation (PKCS#1) with SHA-256."""
    if length < 0:
        raise ValueError("length must be non-negative")
    output = bytearray()
    counter = 0
    while len(output) < length:
        output += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bytes(output[:length])


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Big-endian bytes of a non-negative integer.

    With ``length=None`` the minimal width is used (zero encodes to a
    single zero byte, so the function never returns ``b""``).
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian integer from bytes."""
    return int.from_bytes(data, "big")


def hash_to_int(data: bytes, upper: int) -> int:
    """Hash ``data`` to a uniform-ish integer in ``[0, upper)``.

    Expands with counter-mode SHA-256 to at least 64 bits beyond the
    modulus size so that the reduction bias is negligible; used for
    Fiat–Shamir challenges and signature digest mapping.
    """
    if upper <= 0:
        raise ValueError("upper bound must be positive")
    target_bytes = (upper.bit_length() + 7) // 8 + 8
    stream = bytearray()
    counter = 0
    while len(stream) < target_bytes:
        stream += hashlib.sha256(data + counter.to_bytes(4, "big")).digest()
        counter += 1
    return int.from_bytes(stream[:target_bytes], "big") % upper
