"""Schnorr signatures and discrete-log zero-knowledge proofs.

Pseudonyms in this system are Diffie–Hellman keys ``y = g^x``.  Three
constructions over them, all made non-interactive with Fiat–Shamir
(challenges are hashes over a domain-separation label, the full public
statement, the commitment, and a caller-supplied context):

- :class:`SchnorrPrivateKey` / :class:`SchnorrPublicKey` — signatures.
  A purchase or redemption request is signed under the pseudonym, which
  proves possession of the pseudonym secret without identifying anyone.

- :func:`prove_knowledge` / :func:`verify_knowledge` — proof of
  knowledge of a discrete log.  Binds an identity escrow to the
  pseudonym certificate it was created for (the context includes the
  pseudonym), so an escrow cannot be copied between certificates.

- :class:`ChaumPedersenProof` — proof that two pairs share one
  discrete log (a DH tuple).  The TTP attaches one to every anonymity
  revocation: it shows the published identity tag really is the
  decryption of the escrow, making de-anonymization publicly
  auditable instead of "trust me".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidProof, InvalidSignature, ParameterError
from .groups import PrimeGroup
from .hashes import hash_to_int, int_to_bytes
from .rand import RandomSource, default_source


def _element_bytes(group: PrimeGroup, value: int) -> bytes:
    return int_to_bytes(value, (group.p.bit_length() + 7) // 8)


def _challenge(group: PrimeGroup, label: bytes, parts: list[int], context: bytes) -> int:
    material = b"|".join(
        [b"p2drm-zk", label, group.name.encode()]
        + [_element_bytes(group, part) for part in parts]
        + [context]
    )
    return hash_to_int(material, group.q)


@dataclass(frozen=True)
class SchnorrSignature:
    """Fiat–Shamir Schnorr signature ``(challenge, response)``.

    ``commitment`` optionally carries the signing nonce's public image
    ``R = g^nonce``.  It is redundant for single verification (the
    verifier recomputes ``R = g^s · y^c``), but carrying it is what
    makes small-exponent **batch verification** possible: the batch
    verifier checks the cheap hash ``c == H(y, R, m)`` per signature
    and folds all the group equations ``g^s · y^c == R`` into one
    random linear combination.  Signatures without it (e.g. parsed from
    old transcripts) still verify — just not in a batch.
    """

    challenge: int
    response: int
    commitment: int | None = None

    def as_dict(self) -> dict:
        data = {"c": self.challenge, "s": self.response}
        if self.commitment is not None:
            data["R"] = self.commitment
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SchnorrSignature":
        commitment = data.get("R")
        return cls(
            challenge=int(data["c"]),
            response=int(data["s"]),
            commitment=int(commitment) if commitment is not None else None,
        )


@dataclass(frozen=True)
class SchnorrPublicKey:
    """Verification key ``y = g^x``."""

    group: PrimeGroup
    y: int

    def __post_init__(self) -> None:
        self.group.require_member(self.y, "public key")

    def verify(self, message: bytes, signature: SchnorrSignature) -> None:
        """Verify; raises :class:`~repro.errors.InvalidSignature`."""
        group = self.group
        if not 0 <= signature.challenge < group.q or not 0 <= signature.response < group.q:
            raise InvalidSignature("signature scalars out of range")
        # R = g^s * y^c ; valid iff challenge recomputes.  One shared
        # Shamir chain instead of two independent exponentiations.
        commitment = group.multi_power(
            [(group.g, signature.response), (self.y, signature.challenge)]
        )
        if signature.commitment is not None and signature.commitment != commitment:
            # A claimed R that disagrees with (c, s) would slip past the
            # hash check here but poison batch verification; reject it
            # so single and batch verification accept the same set.
            raise InvalidSignature("Schnorr commitment mismatch")
        expected = _challenge(group, b"schnorr-sig", [self.y, commitment], message)
        if expected != signature.challenge:
            raise InvalidSignature("Schnorr signature mismatch")

    def precompute(self) -> None:
        """Register ``y`` for fixed-base exponentiation.

        Worthwhile for long-lived keys that verify or encrypt many
        times (a provider pseudonym, the TTP escrow key); fresh
        per-purchase pseudonyms should not be registered — the table
        costs a few exponentiations to build and registry entries are
        process-lived.
        """
        self.group.precompute_base(self.y)

    def fingerprint(self) -> bytes:
        """Stable identifier for the pseudonym (hash of group+element)."""
        from .hashes import sha256

        return sha256(b"pseudonym:" + self.group.name.encode() + b":" + _element_bytes(self.group, self.y))


@dataclass(frozen=True)
class SchnorrPrivateKey:
    """Signing key ``x`` with its public half."""

    group: PrimeGroup
    x: int

    def __post_init__(self) -> None:
        if not 1 <= self.x < self.group.q:
            raise ParameterError("private exponent out of range")

    @property
    def public_key(self) -> SchnorrPublicKey:
        return SchnorrPublicKey(group=self.group, y=self.group.power(self.group.g, self.x))

    def sign(self, message: bytes, *, rng: RandomSource | None = None) -> SchnorrSignature:
        """Sign ``message`` (randomized nonce; Fiat–Shamir challenge)."""
        rng = rng or default_source()
        group = self.group
        nonce = group.random_exponent(rng)
        commitment = group.power(group.g, nonce)
        challenge = _challenge(
            group, b"schnorr-sig", [self.public_key.y, commitment], message
        )
        response = (nonce - challenge * self.x) % group.q
        return SchnorrSignature(
            challenge=challenge, response=response, commitment=commitment
        )


def generate_schnorr_key(
    group: PrimeGroup, *, rng: RandomSource | None = None
) -> SchnorrPrivateKey:
    """Fresh signing key in ``group``."""
    rng = rng or default_source()
    return SchnorrPrivateKey(group=group, x=group.random_exponent(rng))


# ---------------------------------------------------------------------------
# Batch verification (small-random-exponent aggregation)
# ---------------------------------------------------------------------------

#: Bit width of the random batching exponents; a forged signature
#: survives a batch with probability 2^-BATCH_EXPONENT_BITS.
BATCH_EXPONENT_BITS = 64


def batch_verify(
    items: list[tuple[SchnorrPublicKey, bytes, SchnorrSignature]],
    *,
    rng: RandomSource | None = None,
) -> None:
    """Verify many Schnorr signatures with ~one full-size exponentiation.

    ``items`` is a sequence of ``(public_key, message, signature)``
    triples, all over the same group.  Instead of ``2n`` independent
    exponentiations (or ``n`` Shamir chains), the verifier draws small
    random exponents ``z_i`` and checks the single aggregate equation::

        g^(Σ z_i·s_i)  ·  Π y_i^(z_i·c_i)   ==   Π R_i^(z_i)      (mod p)

    plus the per-signature hash ``c_i == H(y_i, R_i, m_i)`` (hashes,
    not group operations).  The left side is one fixed-base
    exponentiation of ``g`` plus one multi-exponentiation; the right
    side is one multi-exponentiation with 64-bit exponents.  Soundness:
    every ``R_i`` is checked to lie in the prime-order subgroup (a
    Jacobi-symbol test, closing the cofactor-2 sign ambiguity), after
    which a batch containing any forged signature passes with
    probability at most ``2^-64``.

    Signatures that do not carry their commitment (legacy transcripts)
    are verified individually — correctness never depends on the
    fast path.  On an aggregate mismatch the batch falls back to
    individual verification so the error names the offending
    signature.  Raises :class:`~repro.errors.InvalidSignature` on any
    invalid member; returns ``None`` when every signature verifies.
    """
    from ..instrument import tick

    items = list(items)
    if not items:
        return
    group = items[0][0].group
    for public_key, _, _ in items:
        if public_key.group.p != group.p or public_key.group.g != group.g:
            raise ParameterError("batch mixes signatures from different groups")

    batchable: list[tuple[SchnorrPublicKey, bytes, SchnorrSignature]] = []
    for public_key, message, signature in items:
        if signature.commitment is None:
            public_key.verify(message, signature)
        else:
            batchable.append((public_key, message, signature))
    if len(batchable) <= 1:
        for public_key, message, signature in batchable:
            public_key.verify(message, signature)
        return

    tick("schnorr.batch_verify")
    tick("schnorr.batch_verify.signatures", len(batchable))
    for public_key, message, signature in batchable:
        if (
            not 0 <= signature.challenge < group.q
            or not 0 <= signature.response < group.q
        ):
            raise InvalidSignature("signature scalars out of range")
        commitment = signature.commitment
        assert commitment is not None
        if not group.contains(commitment):
            raise InvalidSignature("signature commitment outside the subgroup")
        expected = _challenge(
            group, b"schnorr-sig", [public_key.y, commitment], message
        )
        if expected != signature.challenge:
            raise InvalidSignature("Schnorr signature mismatch")

    rng = rng or default_source()
    scales = [rng.randbits(BATCH_EXPONENT_BITS) | 1 for _ in batchable]
    aggregate_response = (
        sum(z * signature.response for z, (_, _, signature) in zip(scales, batchable))
        % group.q
    )
    left = (
        group.power(group.g, aggregate_response)
        * group.multi_power(
            [
                (public_key.y, (z * signature.challenge) % group.q)
                for z, (public_key, _, signature) in zip(scales, batchable)
            ]
        )
    ) % group.p
    right = group.multi_power(
        [(signature.commitment, z) for z, (_, _, signature) in zip(scales, batchable)]
    )
    if left == right:
        return
    # Aggregate mismatch: find the culprit so the caller learns *which*
    # request to reject (and honest members of the batch still pass).
    for public_key, message, signature in batchable:
        public_key.verify(message, signature)
    raise InvalidSignature("Schnorr batch verification mismatch")


# ---------------------------------------------------------------------------
# Proof of knowledge of a discrete log (Schnorr, Fiat–Shamir)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DlogProof:
    """Non-interactive proof of knowledge of ``x`` in ``public = base^x``.

    ``commitment`` optionally carries the prover's nonce image
    ``R = base^nonce`` — redundant for single verification (the
    verifier recomputes ``R = base^s · public^c``) but what makes
    small-exponent **batch verification** of many proofs possible
    (:func:`batch_verify_knowledge`).  Proofs without it (parsed from
    old transcripts) still verify — just not in a batch.
    """

    challenge: int
    response: int
    commitment: int | None = None

    def as_dict(self) -> dict:
        data = {"c": self.challenge, "s": self.response}
        if self.commitment is not None:
            data["R"] = self.commitment
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DlogProof":
        commitment = data.get("R")
        return cls(
            challenge=int(data["c"]),
            response=int(data["s"]),
            commitment=int(commitment) if commitment is not None else None,
        )


def prove_knowledge(
    group: PrimeGroup,
    base: int,
    public: int,
    secret: int,
    *,
    context: bytes = b"",
    rng: RandomSource | None = None,
) -> DlogProof:
    """Prove knowledge of ``secret`` with ``public == base^secret``."""
    rng = rng or default_source()
    group.require_member(base, "base")
    group.require_member(public, "public value")
    if group.power(base, secret) != public:
        raise ParameterError("secret does not match public value")
    nonce = group.random_exponent(rng)
    commitment = group.power(base, nonce)
    challenge = _challenge(group, b"dlog-pok", [base, public, commitment], context)
    response = (nonce - challenge * secret) % group.q
    return DlogProof(challenge=challenge, response=response, commitment=commitment)


def verify_knowledge(
    group: PrimeGroup,
    base: int,
    public: int,
    proof: DlogProof,
    *,
    context: bytes = b"",
) -> None:
    """Verify a :func:`prove_knowledge` proof; raises on failure."""
    group.require_member(base, "base")
    group.require_member(public, "public value")
    if not 0 <= proof.challenge < group.q or not 0 <= proof.response < group.q:
        raise InvalidProof("proof scalars out of range")
    commitment = group.multi_power(
        [(base, proof.response), (public, proof.challenge)]
    )
    if proof.commitment is not None and proof.commitment != commitment:
        # A claimed R that disagrees with (c, s) would slip past the
        # hash check here but poison batch verification; reject it so
        # single and batch verification accept the same set.
        raise InvalidProof("discrete-log commitment mismatch")
    expected = _challenge(group, b"dlog-pok", [base, public, commitment], context)
    if expected != proof.challenge:
        raise InvalidProof("discrete-log proof mismatch")


def batch_verify_knowledge(
    items: list[tuple[PrimeGroup, int, int, DlogProof, bytes]],
    *,
    rng: RandomSource | None = None,
) -> None:
    """Verify many discrete-log proofs with ~one full-size chain.

    ``items`` is a sequence of ``(group, base, public, proof, context)``
    tuples, all over the same group.  Mirrors
    :func:`batch_verify` for signatures: proofs that carry their
    commitment ``R_i`` are folded into one random linear combination::

        Π base_i^(z_i·s_i) · Π public_i^(z_i·c_i)  ==  Π R_i^(z_i)

    with 64-bit random ``z_i`` (equal bases are merged, so the common
    ``base = g`` case costs one aggregated exponent), plus the cheap
    per-proof hash check ``c_i == H(base_i, public_i, R_i, ctx_i)``.
    Commitments are subgroup-checked via Jacobi symbols, after which a
    batch containing any invalid proof passes with probability at most
    ``2^-64``.

    Proofs without a commitment (legacy transcripts) are verified
    individually.  On an aggregate mismatch the batch falls back to
    individual verification so the error names the offending proof.
    Raises :class:`~repro.errors.InvalidProof` on any invalid member.
    """
    from ..instrument import tick

    items = list(items)
    if not items:
        return
    group = items[0][0]
    for item_group, _, _, _, _ in items:
        if item_group.p != group.p or item_group.g != group.g:
            raise ParameterError("batch mixes proofs from different groups")

    batchable: list[tuple[int, int, DlogProof, bytes]] = []
    for item_group, base, public, proof, context in items:
        if proof.commitment is None:
            verify_knowledge(item_group, base, public, proof, context=context)
        else:
            batchable.append((base, public, proof, context))
    if len(batchable) <= 1:
        for base, public, proof, context in batchable:
            verify_knowledge(group, base, public, proof, context=context)
        return

    tick("schnorr.batch_knowledge")
    tick("schnorr.batch_knowledge.proofs", len(batchable))
    members_checked: set[int] = set()
    for base, public, proof, context in batchable:
        # One membership test per distinct element (the base is
        # typically the shared generator).
        for value, what in ((base, "base"), (public, "public value")):
            if value not in members_checked:
                group.require_member(value, what)
                members_checked.add(value)
        if not 0 <= proof.challenge < group.q or not 0 <= proof.response < group.q:
            raise InvalidProof("proof scalars out of range")
        commitment = proof.commitment
        assert commitment is not None
        if not group.contains(commitment):
            raise InvalidProof("proof commitment outside the subgroup")
        expected = _challenge(
            group, b"dlog-pok", [base, public, commitment], context
        )
        if expected != proof.challenge:
            raise InvalidProof("discrete-log proof mismatch")

    rng = rng or default_source()
    scales = [rng.randbits(BATCH_EXPONENT_BITS) | 1 for _ in batchable]
    left_exponents: dict[int, int] = {}
    for z, (base, public, proof, _) in zip(scales, batchable):
        left_exponents[base] = (
            left_exponents.get(base, 0) + z * proof.response
        ) % group.q
        left_exponents[public] = (
            left_exponents.get(public, 0) + z * proof.challenge
        ) % group.q
    left = group.multi_power(list(left_exponents.items()))
    right = group.multi_power(
        [(proof.commitment, z) for z, (_, _, proof, _) in zip(scales, batchable)]
    )
    if left == right:
        return
    # Aggregate mismatch: find the culprit so the caller learns *which*
    # proof to reject (and honest members of the batch still pass).
    for base, public, proof, context in batchable:
        verify_knowledge(group, base, public, proof, context=context)
    raise InvalidProof("discrete-log batch verification mismatch")


# ---------------------------------------------------------------------------
# Chaum–Pedersen equality-of-discrete-logs proof
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaumPedersenProof:
    """Proof that ``(base1, public1)`` and ``(base2, public2)`` share one
    exponent: ``public1 = base1^x`` and ``public2 = base2^x``."""

    challenge: int
    response: int

    def as_dict(self) -> dict:
        return {"c": self.challenge, "s": self.response}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaumPedersenProof":
        return cls(challenge=int(data["c"]), response=int(data["s"]))


def prove_equality(
    group: PrimeGroup,
    base1: int,
    public1: int,
    base2: int,
    public2: int,
    secret: int,
    *,
    context: bytes = b"",
    rng: RandomSource | None = None,
) -> ChaumPedersenProof:
    """Produce a Chaum–Pedersen proof for a DH tuple."""
    rng = rng or default_source()
    for value, what in ((base1, "base1"), (public1, "public1"), (base2, "base2"), (public2, "public2")):
        group.require_member(value, what)
    if group.power(base1, secret) != public1 or group.power(base2, secret) != public2:
        raise ParameterError("secret does not match the statement")
    nonce = group.random_exponent(rng)
    commitment1 = group.power(base1, nonce)
    commitment2 = group.power(base2, nonce)
    challenge = _challenge(
        group,
        b"chaum-pedersen",
        [base1, public1, base2, public2, commitment1, commitment2],
        context,
    )
    response = (nonce - challenge * secret) % group.q
    return ChaumPedersenProof(challenge=challenge, response=response)


def verify_equality(
    group: PrimeGroup,
    base1: int,
    public1: int,
    base2: int,
    public2: int,
    proof: ChaumPedersenProof,
    *,
    context: bytes = b"",
) -> None:
    """Verify a Chaum–Pedersen proof; raises on failure."""
    for value, what in ((base1, "base1"), (public1, "public1"), (base2, "base2"), (public2, "public2")):
        group.require_member(value, what)
    if not 0 <= proof.challenge < group.q or not 0 <= proof.response < group.q:
        raise InvalidProof("proof scalars out of range")
    commitment1 = group.multi_power(
        [(base1, proof.response), (public1, proof.challenge)]
    )
    commitment2 = group.multi_power(
        [(base2, proof.response), (public2, proof.challenge)]
    )
    expected = _challenge(
        group,
        b"chaum-pedersen",
        [base1, public1, base2, public2, commitment1, commitment2],
        context,
    )
    if expected != proof.challenge:
        raise InvalidProof("Chaum–Pedersen proof mismatch")
