"""Schnorr signatures and discrete-log zero-knowledge proofs.

Pseudonyms in this system are Diffie–Hellman keys ``y = g^x``.  Three
constructions over them, all made non-interactive with Fiat–Shamir
(challenges are hashes over a domain-separation label, the full public
statement, the commitment, and a caller-supplied context):

- :class:`SchnorrPrivateKey` / :class:`SchnorrPublicKey` — signatures.
  A purchase or redemption request is signed under the pseudonym, which
  proves possession of the pseudonym secret without identifying anyone.

- :func:`prove_knowledge` / :func:`verify_knowledge` — proof of
  knowledge of a discrete log.  Binds an identity escrow to the
  pseudonym certificate it was created for (the context includes the
  pseudonym), so an escrow cannot be copied between certificates.

- :class:`ChaumPedersenProof` — proof that two pairs share one
  discrete log (a DH tuple).  The TTP attaches one to every anonymity
  revocation: it shows the published identity tag really is the
  decryption of the escrow, making de-anonymization publicly
  auditable instead of "trust me".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidProof, InvalidSignature, ParameterError
from .groups import PrimeGroup
from .hashes import hash_to_int, int_to_bytes
from .rand import RandomSource, default_source


def _element_bytes(group: PrimeGroup, value: int) -> bytes:
    return int_to_bytes(value, (group.p.bit_length() + 7) // 8)


def _challenge(group: PrimeGroup, label: bytes, parts: list[int], context: bytes) -> int:
    material = b"|".join(
        [b"p2drm-zk", label, group.name.encode()]
        + [_element_bytes(group, part) for part in parts]
        + [context]
    )
    return hash_to_int(material, group.q)


@dataclass(frozen=True)
class SchnorrSignature:
    """Fiat–Shamir Schnorr signature ``(challenge, response)``."""

    challenge: int
    response: int

    def as_dict(self) -> dict:
        return {"c": self.challenge, "s": self.response}

    @classmethod
    def from_dict(cls, data: dict) -> "SchnorrSignature":
        return cls(challenge=int(data["c"]), response=int(data["s"]))


@dataclass(frozen=True)
class SchnorrPublicKey:
    """Verification key ``y = g^x``."""

    group: PrimeGroup
    y: int

    def __post_init__(self) -> None:
        self.group.require_member(self.y, "public key")

    def verify(self, message: bytes, signature: SchnorrSignature) -> None:
        """Verify; raises :class:`~repro.errors.InvalidSignature`."""
        group = self.group
        if not 0 <= signature.challenge < group.q or not 0 <= signature.response < group.q:
            raise InvalidSignature("signature scalars out of range")
        # R = g^s * y^c ; valid iff challenge recomputes.
        commitment = (
            group.power(group.g, signature.response)
            * group.power(self.y, signature.challenge)
        ) % group.p
        expected = _challenge(group, b"schnorr-sig", [self.y, commitment], message)
        if expected != signature.challenge:
            raise InvalidSignature("Schnorr signature mismatch")

    def fingerprint(self) -> bytes:
        """Stable identifier for the pseudonym (hash of group+element)."""
        from .hashes import sha256

        return sha256(b"pseudonym:" + self.group.name.encode() + b":" + _element_bytes(self.group, self.y))


@dataclass(frozen=True)
class SchnorrPrivateKey:
    """Signing key ``x`` with its public half."""

    group: PrimeGroup
    x: int

    def __post_init__(self) -> None:
        if not 1 <= self.x < self.group.q:
            raise ParameterError("private exponent out of range")

    @property
    def public_key(self) -> SchnorrPublicKey:
        return SchnorrPublicKey(group=self.group, y=self.group.power(self.group.g, self.x))

    def sign(self, message: bytes, *, rng: RandomSource | None = None) -> SchnorrSignature:
        """Sign ``message`` (randomized nonce; Fiat–Shamir challenge)."""
        rng = rng or default_source()
        group = self.group
        nonce = group.random_exponent(rng)
        commitment = group.power(group.g, nonce)
        challenge = _challenge(
            group, b"schnorr-sig", [self.public_key.y, commitment], message
        )
        response = (nonce - challenge * self.x) % group.q
        return SchnorrSignature(challenge=challenge, response=response)


def generate_schnorr_key(
    group: PrimeGroup, *, rng: RandomSource | None = None
) -> SchnorrPrivateKey:
    """Fresh signing key in ``group``."""
    rng = rng or default_source()
    return SchnorrPrivateKey(group=group, x=group.random_exponent(rng))


# ---------------------------------------------------------------------------
# Proof of knowledge of a discrete log (Schnorr, Fiat–Shamir)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DlogProof:
    """Non-interactive proof of knowledge of ``x`` in ``public = base^x``."""

    challenge: int
    response: int

    def as_dict(self) -> dict:
        return {"c": self.challenge, "s": self.response}

    @classmethod
    def from_dict(cls, data: dict) -> "DlogProof":
        return cls(challenge=int(data["c"]), response=int(data["s"]))


def prove_knowledge(
    group: PrimeGroup,
    base: int,
    public: int,
    secret: int,
    *,
    context: bytes = b"",
    rng: RandomSource | None = None,
) -> DlogProof:
    """Prove knowledge of ``secret`` with ``public == base^secret``."""
    rng = rng or default_source()
    group.require_member(base, "base")
    group.require_member(public, "public value")
    if group.power(base, secret) != public:
        raise ParameterError("secret does not match public value")
    nonce = group.random_exponent(rng)
    commitment = group.power(base, nonce)
    challenge = _challenge(group, b"dlog-pok", [base, public, commitment], context)
    response = (nonce - challenge * secret) % group.q
    return DlogProof(challenge=challenge, response=response)


def verify_knowledge(
    group: PrimeGroup,
    base: int,
    public: int,
    proof: DlogProof,
    *,
    context: bytes = b"",
) -> None:
    """Verify a :func:`prove_knowledge` proof; raises on failure."""
    group.require_member(base, "base")
    group.require_member(public, "public value")
    if not 0 <= proof.challenge < group.q or not 0 <= proof.response < group.q:
        raise InvalidProof("proof scalars out of range")
    commitment = (
        group.power(base, proof.response) * group.power(public, proof.challenge)
    ) % group.p
    expected = _challenge(group, b"dlog-pok", [base, public, commitment], context)
    if expected != proof.challenge:
        raise InvalidProof("discrete-log proof mismatch")


# ---------------------------------------------------------------------------
# Chaum–Pedersen equality-of-discrete-logs proof
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaumPedersenProof:
    """Proof that ``(base1, public1)`` and ``(base2, public2)`` share one
    exponent: ``public1 = base1^x`` and ``public2 = base2^x``."""

    challenge: int
    response: int

    def as_dict(self) -> dict:
        return {"c": self.challenge, "s": self.response}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaumPedersenProof":
        return cls(challenge=int(data["c"]), response=int(data["s"]))


def prove_equality(
    group: PrimeGroup,
    base1: int,
    public1: int,
    base2: int,
    public2: int,
    secret: int,
    *,
    context: bytes = b"",
    rng: RandomSource | None = None,
) -> ChaumPedersenProof:
    """Produce a Chaum–Pedersen proof for a DH tuple."""
    rng = rng or default_source()
    for value, what in ((base1, "base1"), (public1, "public1"), (base2, "base2"), (public2, "public2")):
        group.require_member(value, what)
    if group.power(base1, secret) != public1 or group.power(base2, secret) != public2:
        raise ParameterError("secret does not match the statement")
    nonce = group.random_exponent(rng)
    commitment1 = group.power(base1, nonce)
    commitment2 = group.power(base2, nonce)
    challenge = _challenge(
        group,
        b"chaum-pedersen",
        [base1, public1, base2, public2, commitment1, commitment2],
        context,
    )
    response = (nonce - challenge * secret) % group.q
    return ChaumPedersenProof(challenge=challenge, response=response)


def verify_equality(
    group: PrimeGroup,
    base1: int,
    public1: int,
    base2: int,
    public2: int,
    proof: ChaumPedersenProof,
    *,
    context: bytes = b"",
) -> None:
    """Verify a Chaum–Pedersen proof; raises on failure."""
    for value, what in ((base1, "base1"), (public1, "public1"), (base2, "base2"), (public2, "public2")):
        group.require_member(value, what)
    if not 0 <= proof.challenge < group.q or not 0 <= proof.response < group.q:
        raise InvalidProof("proof scalars out of range")
    commitment1 = (
        group.power(base1, proof.response) * group.power(public1, proof.challenge)
    ) % group.p
    commitment2 = (
        group.power(base2, proof.response) * group.power(public2, proof.challenge)
    ) % group.p
    expected = _challenge(
        group,
        b"chaum-pedersen",
        [base1, public1, base2, public2, commitment1, commitment2],
        context,
    )
    if expected != proof.challenge:
        raise InvalidProof("Chaum–Pedersen proof mismatch")
