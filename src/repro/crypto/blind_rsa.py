"""Chaum RSA blind signatures.

This primitive carries the paper's two anonymity mechanisms:

- the **smart card issuer** blind-signs pseudonym certificates, so even
  the issuer cannot link a pseudonym to the enrolment that produced it;
- the **bank** blind-signs e-cash coins, so payment at the content
  provider is unlinkable to the withdrawal.

Scheme (full-domain hash variant):  the message ``m`` is hashed into
``Z_n`` as ``h = FDH(m)``; the client picks a blinding factor ``r`` and
submits ``h * r^e mod n``; the signer applies the raw private operation
and returns ``(h * r^e)^d = h^d * r``; the client divides by ``r`` and
holds ``s = h^d``, a standard FDH-RSA signature that the signer has
never seen.  Verification is ``s^e == FDH(m) mod n``.

Each signing *purpose* (certificate issuance, each coin denomination)
uses its **own key pair** — a blind signer will sign anything it is
handed, so key separation is what scopes the signature's meaning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidSignature, ParameterError
from . import backend as _backend
from .hashes import hash_to_int
from .numbers import gcd, modinv
from .rand import RandomSource, default_source
from .rsa import RsaPrivateKey, RsaPublicKey


def full_domain_hash(message: bytes, public_key: RsaPublicKey) -> int:
    """Hash ``message`` into ``Z_n`` (domain-separated from other uses)."""
    return hash_to_int(b"fdh-blind-rsa:" + message, public_key.n)


@dataclass(frozen=True)
class BlindingState:
    """Client-side secret state linking a blinded request to its unblinder."""

    message: bytes
    blinding_factor: int


class BlindingClient:
    """The requesting side: blind, unblind, verify."""

    def __init__(self, public_key: RsaPublicKey, *, rng: RandomSource | None = None):
        self._public_key = public_key
        self._rng = rng or default_source()

    @property
    def public_key(self) -> RsaPublicKey:
        return self._public_key

    def draw_blinding_factor(self) -> int:
        """A fresh blinding factor coprime to the modulus.

        Split out of :meth:`blind` so callers preparing a whole batch
        (e-cash withdrawal) can draw each coin's factor in the same
        rng order as sequential blinding, then run all the ``r^e``
        masks through one batched exponentiation
        (:func:`blind_with_factors`).
        """
        n = self._public_key.n
        while True:
            factor = self._rng.randint_range(2, n - 1)
            if gcd(factor, n) == 1:
                return factor

    def blind(self, message: bytes) -> tuple[int, BlindingState]:
        """Blind ``message``; returns the value to submit and secret state."""
        factor = self.draw_blinding_factor()
        [(blinded, state)] = blind_with_factors(
            [(message, factor)], self._public_key
        )
        return blinded, state

    def unblind(self, blind_signature: int, state: BlindingState) -> bytes:
        """Remove the blinding factor and verify the resulting signature."""
        n = self._public_key.n
        if not 0 <= blind_signature < n:
            raise ParameterError("blind signature out of range")
        signature = (blind_signature * modinv(state.blinding_factor, n)) % n
        raw = signature.to_bytes(self._public_key.byte_length, "big")
        verify_blind_signature(state.message, raw, self._public_key)
        return raw


def blind_with_factors(
    items: list[tuple[bytes, int]], public_key: RsaPublicKey
) -> list[tuple[int, BlindingState]]:
    """Blind many messages whose factors are already drawn, under one key.

    The ``factor^e`` masks all share one exponent and modulus, so they
    run as a single batched exponentiation
    (:func:`repro.crypto.backend.powmod_base_list` — one C call under
    gmpy2).  Returns ``(blinded, state)`` pairs in input order,
    exactly as per-item :meth:`BlindingClient.blind` calls would.
    """
    n = public_key.n
    masks = _backend.powmod_base_list(
        [factor for _, factor in items], public_key.e, n
    )
    blinded_pairs: list[tuple[int, BlindingState]] = []
    for (message, factor), mask in zip(items, masks):
        digest = full_domain_hash(message, public_key)
        blinded_pairs.append(
            (
                (digest * mask) % n,
                BlindingState(message=message, blinding_factor=factor),
            )
        )
    return blinded_pairs


class BlindSigner:
    """The signing side: applies the raw private operation to requests.

    The signer deliberately cannot inspect what it signs — that is the
    point of blinding — so deployments bind meaning via key separation
    and external controls (the bank debits an account per signature;
    the issuer checks enrolment before signing).
    """

    def __init__(self, private_key: RsaPrivateKey):
        self._private_key = private_key

    @property
    def public_key(self) -> RsaPublicKey:
        return self._private_key.public_key

    def sign_blinded(self, blinded: int) -> int:
        """Raw private operation on a blinded request."""
        if not 0 <= blinded < self._private_key.n:
            raise ParameterError("blinded value out of range")
        return self._private_key.private_op(blinded)


def verify_blind_signature(
    message: bytes, signature: bytes, public_key: RsaPublicKey
) -> None:
    """Verify an unblinded FDH-RSA signature.

    Raises :class:`~repro.errors.InvalidSignature` on mismatch.
    """
    value = _checked_signature_int(signature, public_key)
    expected = full_domain_hash(message, public_key)
    if public_key.public_op(value) != expected:
        raise InvalidSignature("blind signature mismatch")


def batch_verify_blind_signatures(
    items: list[tuple[bytes, bytes]], public_key: RsaPublicKey
) -> None:
    """Screen a batch of FDH-RSA signatures with **one** public operation.

    ``items`` is a sequence of ``(message, signature)`` pairs under one
    key.  This is Bellare–Garay–Rabin *screening*: check::

        (Π s_i)^e  ==  Π FDH(m_i)     (mod n)

    Screening guarantees that no message outside the signer's history
    slips through (exactly the e-cash property the bank needs: no coin
    it never blind-signed gets credited); it requires the messages in
    the batch to be pairwise distinct, so duplicates — e.g. one coin
    deposited twice in a batch — are verified individually instead.

    On an aggregate mismatch the batch falls back to individual
    verification so the raised
    :class:`~repro.errors.InvalidSignature` names a real offender.
    """
    from ..instrument import tick

    items = list(items)
    if len(items) <= 1 or len({message for message, _ in items}) != len(items):
        for message, signature in items:
            verify_blind_signature(message, signature, public_key)
        return
    tick("rsa.batch_verify")
    tick("rsa.batch_verify.signatures", len(items))
    n = public_key.n
    signature_product = 1
    digest_product = 1
    for message, signature in items:
        value = _checked_signature_int(signature, public_key)
        signature_product = (signature_product * value) % n
        digest_product = (digest_product * full_domain_hash(message, public_key)) % n
    if public_key.public_op(signature_product) == digest_product:
        return
    # A bad member is in the batch (a product of valid signatures can
    # never fail); verify one by one so the error points at it.
    for message, signature in items:
        verify_blind_signature(message, signature, public_key)
    raise InvalidSignature("blind signature batch mismatch")


def _checked_signature_int(signature: bytes, public_key: RsaPublicKey) -> int:
    """Range-check and decode a signature into its integer form."""
    if len(signature) != public_key.byte_length:
        raise InvalidSignature("blind signature length mismatch")
    value = int.from_bytes(signature, "big")
    if value >= public_key.n:
        raise InvalidSignature("blind signature out of range")
    return value
