"""Fast modular exponentiation: fixed-base tables and multi-exponentiation.

Every protocol in the system bottoms out in ``pow(base, e, m)`` over a
:class:`~repro.crypto.groups.PrimeGroup` or an RSA modulus, and most of
those exponentiations share structure that naive ``pow`` cannot see:

- **Fixed bases** — the group generator ``g``, the TTP's escrow key and
  other long-lived public keys are raised to fresh exponents thousands
  of times.  :class:`FixedBaseExp` precomputes a BGMW/comb-style
  windowed table ``base^(d · 2^(w·j))`` once, after which each
  exponentiation costs only ~``bits/w`` multiplications and **zero**
  squarings (versus ~``1.5 · bits`` multiplications for square-and-
  multiply).

- **Simultaneous products** — verification equations have the shape
  ``g^s · y^c`` (Schnorr) or ``Π b_i^{e_i}`` (batch verification).
  :func:`multi_pow` evaluates the whole product in one shared
  square-and-multiply chain (Shamir's trick, generalized with chunked
  combination tables), so ``n`` exponentiations cost one chain of
  squarings plus ~``n/4`` multiplications per bit.

Tables live in a process-wide registry keyed by ``(base, modulus)`` so
that every holder of the issuer's escrow key — cards, the TTP, the
analysis code — shares one table.  Only explicitly registered bases
(plus group generators, which :class:`~repro.crypto.groups.PrimeGroup`
registers lazily) get tables; ephemeral pseudonym keys do not, keeping
the registry bounded.

The registry can be switched off globally (:func:`set_tables_enabled`,
or the :func:`tables_disabled` context manager) so benchmarks can
measure the speedup honestly.

Instrumentation happens at the call sites (``PrimeGroup.power`` /
``PrimeGroup.multi_power``), not here — this module is pure integer
arithmetic.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

from ..errors import ParameterError

#: Bases per combination table in :func:`multi_pow`.  2^chunk products
#: are precomputed per chunk, so 4 keeps precomputation at 16 entries
#: while cutting per-bit multiplications by ~4x.
_MULTI_CHUNK = 4


def _default_window(exponent_bits: int) -> int:
    """Window width balancing table size against per-exponent savings."""
    if exponent_bits <= 256:
        return 4
    if exponent_bits <= 1024:
        return 5
    return 6


class FixedBaseExp:
    """Windowed fixed-base exponentiation table (BGMW/comb style).

    For window width ``w`` the table stores ``base^(d · 2^(w·j))`` for
    every window index ``j`` and digit ``d < 2^w``.  Raising the base to
    any exponent up to ``exponent_bits`` bits is then the product of one
    table entry per non-zero window digit.
    """

    __slots__ = ("base", "modulus", "window", "exponent_bits", "_rows")

    def __init__(
        self,
        base: int,
        modulus: int,
        *,
        exponent_bits: int,
        window: int | None = None,
    ):
        if modulus <= 1:
            raise ParameterError("modulus must exceed 1")
        if exponent_bits <= 0:
            raise ParameterError("exponent_bits must be positive")
        if window is None:
            window = _default_window(exponent_bits)
        if not 1 <= window <= 16:
            raise ParameterError("window width out of range")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self.exponent_bits = exponent_bits
        radix = 1 << window
        rows: list[list[int]] = []
        row_base = self.base
        for _ in range((exponent_bits + window - 1) // window):
            row = [1] * radix
            for digit in range(1, radix):
                row[digit] = (row[digit - 1] * row_base) % modulus
            rows.append(row)
            row_base = (row[radix - 1] * row_base) % modulus
        self._rows = rows

    @property
    def table_entries(self) -> int:
        """Total precomputed entries (memory diagnostic)."""
        return sum(len(row) for row in self._rows)

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus``.

        Exponents outside the precomputed range (negative, or wider
        than ``exponent_bits``) fall back to plain ``pow`` so the table
        is never a correctness hazard.
        """
        if exponent < 0 or exponent.bit_length() > self.exponent_bits:
            return pow(self.base, exponent, self.modulus)
        modulus = self.modulus
        mask = (1 << self.window) - 1
        acc = 1
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = (acc * self._rows[index][digit]) % modulus
            exponent >>= self.window
            index += 1
        return acc % modulus


# ---------------------------------------------------------------------------
# Table registry
# ---------------------------------------------------------------------------

_TABLES: dict[tuple[int, int], FixedBaseExp] = {}
_ENABLED = True


def precompute(
    base: int,
    modulus: int,
    *,
    exponent_bits: int,
    window: int | None = None,
) -> FixedBaseExp:
    """Build (or fetch) the shared table for ``base`` mod ``modulus``.

    Idempotent: a second registration with at least as many exponent
    bits reuses the existing table.
    """
    key = (base % modulus, modulus)
    table = _TABLES.get(key)
    if table is not None and table.exponent_bits >= exponent_bits:
        return table
    table = FixedBaseExp(base, modulus, exponent_bits=exponent_bits, window=window)
    _TABLES[key] = table
    return table


def lookup(base: int, modulus: int) -> FixedBaseExp | None:
    """The registered table for ``(base, modulus)``, or ``None``.

    Returns ``None`` while tables are disabled, which is how
    benchmarks compare warm and cold paths.
    """
    if not _ENABLED:
        return None
    return _TABLES.get((base % modulus, modulus))


def has_table(base: int, modulus: int) -> bool:
    """Whether a table is registered (ignores the enabled switch)."""
    return (base % modulus, modulus) in _TABLES


def clear_tables() -> None:
    """Drop every registered table (test isolation)."""
    _TABLES.clear()


def table_count() -> int:
    return len(_TABLES)


def tables_enabled() -> bool:
    return _ENABLED


def set_tables_enabled(enabled: bool) -> None:
    """Globally enable/disable table lookups (tables stay registered)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def tables_disabled() -> Iterator[None]:
    """Scope in which every exponentiation takes the cold path."""
    previous = _ENABLED
    set_tables_enabled(False)
    try:
        yield
    finally:
        set_tables_enabled(previous)


# ---------------------------------------------------------------------------
# Simultaneous multi-exponentiation
# ---------------------------------------------------------------------------


def multi_pow(pairs: Iterable[tuple[int, int]], modulus: int) -> int:
    """``Π base_i^{exponent_i} mod modulus`` in one shared chain.

    Implements interleaved Shamir's trick: bases are grouped into
    chunks of :data:`_MULTI_CHUNK`; each chunk precomputes the 2^chunk
    products of its bases; one squaring chain over the longest exponent
    then consumes one bit of every exponent per step.  Exponents must
    be non-negative (callers reduce modulo the group order first).
    """
    if modulus <= 0:
        raise ParameterError("modulus must be positive")
    entries: list[tuple[int, int]] = []
    for base, exponent in pairs:
        if exponent < 0:
            raise ParameterError("multi_pow exponents must be non-negative")
        base %= modulus
        if exponent == 0 or base == 1:
            continue
        if base == 0:
            return 0
        entries.append((base, exponent))
    if not entries:
        return 1 % modulus

    chunks = [
        entries[i : i + _MULTI_CHUNK] for i in range(0, len(entries), _MULTI_CHUNK)
    ]
    prepared: list[tuple[list[int], list[int]]] = []
    for chunk in chunks:
        table = [1] * (1 << len(chunk))
        for index in range(1, len(table)):
            low = index & -index
            table[index] = (
                table[index ^ low] * chunk[low.bit_length() - 1][0]
            ) % modulus
        prepared.append((table, [exponent for _, exponent in chunk]))

    top = max(exponent.bit_length() for _, exponent in entries)
    acc = 1
    for bit in range(top - 1, -1, -1):
        acc = (acc * acc) % modulus
        for table, exponents in prepared:
            index = 0
            for position, exponent in enumerate(exponents):
                index |= ((exponent >> bit) & 1) << position
            if index:
                acc = (acc * table[index]) % modulus
    return acc
