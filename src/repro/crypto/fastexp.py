"""Fast modular exponentiation: fixed-base tables and multi-exponentiation.

Every protocol in the system bottoms out in ``pow(base, e, m)`` over a
:class:`~repro.crypto.groups.PrimeGroup` or an RSA modulus, and most of
those exponentiations share structure that naive ``pow`` cannot see:

- **Fixed bases** — the group generator ``g``, the TTP's escrow key and
  other long-lived public keys are raised to fresh exponents thousands
  of times.  :class:`FixedBaseExp` precomputes a BGMW/comb-style
  windowed table ``base^(d · 2^(w·j))`` once, after which each
  exponentiation costs only ~``bits/w`` multiplications and **zero**
  squarings (versus ~``1.5 · bits`` multiplications for square-and-
  multiply).

- **Simultaneous products** — verification equations have the shape
  ``g^s · y^c`` (Schnorr) or ``Π b_i^{e_i}`` (batch verification).
  :func:`multi_pow` evaluates the whole product in one shared
  square-and-multiply chain (Shamir's trick, generalized with chunked
  combination tables), so ``n`` exponentiations cost one chain of
  squarings plus ~``n/4`` multiplications per bit.

- **Cold bases** — a base seen once (a fresh pseudonym key, a batch
  commitment) gets no table.  :func:`wnaf_pow` implements windowed-NAF
  (signed-digit) exponentiation for that case: recoding the exponent
  into sparse odd digits cuts the expected multiplications from
  ~``bits/2`` to ~``bits/(w+1)`` at the cost of one modular inverse.
  :func:`multi_pow_wnaf` is the interleaved-wNAF variant of
  :func:`multi_pow`.  :func:`set_exp_mode` selects which implementation
  :func:`cold_pow` / :func:`multi_pow` dispatch to (``"naive"`` —
  CPython's C ``pow`` and the binary Shamir chain — or ``"wnaf"``), so
  the benchmarks can report comb vs wNAF vs naive honestly.

Tables live in a process-wide registry keyed by ``(base, modulus)`` so
that every holder of the issuer's escrow key — cards, the TTP, the
analysis code — shares one table.  Only explicitly registered bases
(plus group generators, which :class:`~repro.crypto.groups.PrimeGroup`
registers lazily) get tables; ephemeral pseudonym keys do not, keeping
the registry bounded.

The registry can be switched off globally (:func:`set_tables_enabled`,
or the :func:`tables_disabled` context manager) so benchmarks can
measure the speedup honestly.

All arithmetic here runs through the pluggable bigint backend
(:mod:`repro.crypto.backend`): cold exponentiations and inversions
dispatch to the active backend's C kernels when gmpy2 is selected, and
the precomputed tables keep their entries **resident** in the
backend's native integer type (``mpz`` under gmpy2), so the tight
multiply-reduce loops never pay a per-call int↔mpz conversion.  A
table built under one backend re-residences itself lazily the first
time it is used under another.

Instrumentation happens at the call sites (``PrimeGroup.power`` /
``PrimeGroup.multi_power``), not here — this module is pure integer
arithmetic.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from typing import Iterable, Iterator

from ..errors import ParameterError
from . import backend as _backend

#: Bases per combination table in :func:`multi_pow`.  2^chunk products
#: are precomputed per chunk, so 4 keeps precomputation at 16 entries
#: while cutting per-bit multiplications by ~4x.
_MULTI_CHUNK = 4

#: Chunk width for large products (the aggregated batch-verification
#: equations).  Each chunk costs ~one multiplication per exponent bit
#: regardless of width, so once enough bases share the chain the wider
#: 2^7-entry tables pay for themselves within one equation.
_MULTI_CHUNK_WIDE = 7

#: Base count at which :func:`multi_pow_shamir` switches to wide chunks
#: (precomputation of 2^7 entries amortizes past ~2 full chunks).
_MULTI_WIDE_THRESHOLD = 16


def _default_window(exponent_bits: int) -> int:
    """Window width balancing table size against per-exponent savings."""
    if exponent_bits <= 256:
        return 4
    if exponent_bits <= 1024:
        return 5
    return 6


class FixedBaseExp:
    """Windowed fixed-base exponentiation table (BGMW/comb style).

    For window width ``w`` the table stores ``base^(d · 2^(w·j))`` for
    every window index ``j`` and digit ``d < 2^w``.  Raising the base to
    any exponent up to ``exponent_bits`` bits is then the product of one
    table entry per non-zero window digit.
    """

    __slots__ = (
        "base",
        "modulus",
        "window",
        "exponent_bits",
        "_rows",
        "_modulus_r",
        "_backend_name",
    )

    def __init__(
        self,
        base: int,
        modulus: int,
        *,
        exponent_bits: int,
        window: int | None = None,
    ):
        if modulus <= 1:
            raise ParameterError("modulus must exceed 1")
        if exponent_bits <= 0:
            raise ParameterError("exponent_bits must be positive")
        if window is None:
            window = _default_window(exponent_bits)
        if not 1 <= window <= 16:
            raise ParameterError("window width out of range")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self.exponent_bits = exponent_bits
        # Entries live in the active backend's native type (mpz under
        # gmpy2), so the multiply-reduce loop in :meth:`pow` never
        # converts per call.
        active = _backend.current()
        residue = active.residue
        modulus_r = residue(modulus)
        one = residue(1)
        radix = 1 << window
        rows: list[list] = []
        row_base = residue(self.base)
        for _ in range((exponent_bits + window - 1) // window):
            row = [one] * radix
            for digit in range(1, radix):
                row[digit] = (row[digit - 1] * row_base) % modulus_r
            rows.append(row)
            row_base = (row[radix - 1] * row_base) % modulus_r
        self._rows = rows
        self._modulus_r = modulus_r
        self._backend_name = active.name

    @classmethod
    def _from_serialized(
        cls,
        base: int,
        modulus: int,
        *,
        exponent_bits: int,
        window: int,
        rows,
    ) -> "FixedBaseExp":
        """A table over already-computed rows — no precomputation.

        The shared-table path (:func:`load_shared_tables`) lands here
        with a :class:`_SharedRows` view into a shared-memory segment;
        nothing is exponentiated, so "building" the table is O(header).
        """
        table = object.__new__(cls)
        table.base = base % modulus
        table.modulus = modulus
        table.window = window
        table.exponent_bits = exponent_bits
        active = _backend.current()
        table._rows = rows
        table._modulus_r = active.residue(modulus)
        table._backend_name = active.name
        return table

    @property
    def table_entries(self) -> int:
        """Total precomputed entries (memory diagnostic)."""
        rows = self._rows
        if isinstance(rows, _SharedRows):
            return len(rows) * rows.radix
        return sum(len(row) for row in rows)

    def rebind(self, active) -> None:
        """Re-residence the table entries in ``active``'s native type.

        Called lazily by :func:`lookup` / :func:`precompute` the first
        time a table built under one backend is used under another —
        a linear pass over the entries, far cheaper than rebuilding.
        Shared (lazily materialized) rows simply drop their caches and
        re-materialize under the new backend on next use.
        """
        residue = active.residue
        rows = self._rows
        if isinstance(rows, _SharedRows):
            self._rows = rows.rebound(residue)
        else:
            self._rows = [[residue(int(entry)) for entry in row] for row in rows]
        self._modulus_r = residue(self.modulus)
        self._backend_name = active.name

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus``.

        Exponents outside the precomputed range (negative, or wider
        than ``exponent_bits``) fall back to a plain backend ``powmod``
        so the table is never a correctness hazard.
        """
        if exponent < 0 or exponent.bit_length() > self.exponent_bits:
            return _backend.powmod(self.base, exponent, self.modulus)
        modulus = self._modulus_r
        mask = (1 << self.window) - 1
        acc = 1
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = (acc * self._rows[index][digit]) % modulus
            exponent >>= self.window
            index += 1
        return int(acc % modulus)


# ---------------------------------------------------------------------------
# Table registry
# ---------------------------------------------------------------------------

_TABLES: dict[tuple[int, int], FixedBaseExp] = {}
_ENABLED = True


def precompute(
    base: int,
    modulus: int,
    *,
    exponent_bits: int,
    window: int | None = None,
) -> FixedBaseExp:
    """Build (or fetch) the shared table for ``base`` mod ``modulus``.

    Idempotent: a second registration with at least as many exponent
    bits reuses the existing table.
    """
    key = (base % modulus, modulus)
    table = _TABLES.get(key)
    if table is not None and table.exponent_bits >= exponent_bits:
        return _rebound(table)
    table = FixedBaseExp(base, modulus, exponent_bits=exponent_bits, window=window)
    _TABLES[key] = table
    return table


def _rebound(table: FixedBaseExp) -> FixedBaseExp:
    """``table``, re-residenced if the arithmetic backend has changed."""
    if table._backend_name != _backend.backend_name():
        table.rebind(_backend.current())
    return table


def lookup(base: int, modulus: int) -> FixedBaseExp | None:
    """The registered table for ``(base, modulus)``, or ``None``.

    Returns ``None`` while tables are disabled, which is how
    benchmarks compare warm and cold paths.  A table built under a
    different arithmetic backend is re-residenced before being
    returned, so :func:`repro.crypto.backend.set_backend` never
    invalidates the registry.
    """
    if not _ENABLED:
        return None
    table = _TABLES.get((base % modulus, modulus))
    if table is None:
        return None
    return _rebound(table)


def has_table(base: int, modulus: int) -> bool:
    """Whether a table is registered (ignores the enabled switch)."""
    return (base % modulus, modulus) in _TABLES


def clear_tables() -> None:
    """Drop every registered table (test isolation)."""
    _TABLES.clear()


def table_count() -> int:
    return len(_TABLES)


def tables_enabled() -> bool:
    return _ENABLED


def set_tables_enabled(enabled: bool) -> None:
    """Globally enable/disable table lookups (tables stay registered)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def tables_disabled() -> Iterator[None]:
    """Scope in which every exponentiation takes the cold path."""
    previous = _ENABLED
    set_tables_enabled(False)
    try:
        yield
    finally:
        set_tables_enabled(previous)


def reset() -> None:
    """Restore the module's pristine global state.

    Drops every registered table, re-enables lookups and selects the
    active backend's *default* cold-exponentiation mode (see
    :func:`default_exp_mode` — ``naive`` for both built-in backends).
    Benchmark arms and service workers mutate all three globals; a
    worker process (or a test following a bench module) must not
    inherit whatever the previous occupant left behind, so both call
    this before warming their own tables.  The arithmetic-backend
    selection is deliberately *not* touched — it is a process-level
    deployment choice (workers pin it explicitly from their
    :class:`~repro.service.workers.ServiceConfig`).
    """
    global _ENABLED, _EXP_MODE, _WARM_TOKEN
    _TABLES.clear()
    _ENABLED = True
    _WARM_TOKEN = None
    _EXP_MODE = default_exp_mode()


@contextmanager
def switch_guard() -> Iterator[None]:
    """Scope restoring the exp-mode, enabled and backend switches only.

    The narrower sibling of :func:`isolated_state` for test/benchmark
    fixtures: the table registry is deliberately left alone, because
    session-scoped deployments warm tables once and later tests rely
    on them staying registered.
    """
    saved_enabled = _ENABLED
    saved_mode = _EXP_MODE
    saved_backend = _backend.backend_name()
    try:
        yield
    finally:
        set_tables_enabled(saved_enabled)
        set_exp_mode(saved_mode)
        _backend.set_backend(saved_backend)


@contextmanager
def isolated_state() -> Iterator[None]:
    """Scope whose table/enabled/mode/backend mutations do not leak out.

    On exit the registry contents, the enabled switch, the
    exponentiation mode and the arithmetic backend are restored
    exactly as they were on entry — the containment wrapper for
    anything that calls :func:`set_exp_mode`,
    :func:`set_tables_enabled`,
    :func:`repro.crypto.backend.set_backend` or :func:`precompute`
    and cannot be trusted to undo it.
    """
    saved_tables = dict(_TABLES)
    saved_enabled = _ENABLED
    saved_mode = _EXP_MODE
    saved_backend = _backend.backend_name()
    try:
        yield
    finally:
        _TABLES.clear()
        _TABLES.update(saved_tables)
        set_tables_enabled(saved_enabled)
        set_exp_mode(saved_mode)
        _backend.set_backend(saved_backend)


# ---------------------------------------------------------------------------
# Shared tables: serialization and lazy attachment
# ---------------------------------------------------------------------------
#
# The service's worker processes all warm the *same* tables (the group
# generator, the escrow key).  Building them costs one exponentiation
# per entry — per process.  Instead, the gateway builds once and shares:
#
# - **fork** (Linux default): children inherit the parent's registry by
#   copy-on-write; nothing to do.  The warm *token* below is how a
#   child recognizes the inheritance (module globals survive fork, so a
#   matching token means the tables in ``_TABLES`` are the gateway's).
# - **spawn**: children start from a blank interpreter.  The gateway
#   serializes the registry (:func:`serialize_tables`) into a
#   ``multiprocessing.shared_memory`` segment; children map it and
#   register lazily-materializing tables (:func:`load_shared_tables`)
#   whose rows decode out of the shared page into the active backend's
#   native type on first use — attach cost is O(bytes mapped), not
#   O(exponentiations).
#
# Layout (all integers big-endian)::
#
#     b"P2FX"  u8 version  u8 reserved  u16 table count
#     per table:
#       u16 window   u32 exponent_bits   u32 row count   u32 entry size
#       modulus  (entry-size bytes)
#       base     (entry-size bytes, already reduced mod modulus)
#       rows     (row count × 2^window entries, entry-size bytes each)
#
# Entries are fixed-width at the modulus byte length, so row ``j`` digit
# ``d`` lives at a computable offset — exactly what lazy row
# materialization needs.

_SHARED_MAGIC = b"P2FX"
_SHARED_VERSION = 1
_SHARED_HEADER = struct.Struct("!4sBBH")
_SHARED_TABLE_HEADER = struct.Struct("!HIII")

#: Opaque marker identifying *whose* warm tables this process holds
#: (set by ``warm_fastexp`` after a build; compared by forked workers
#: to detect copy-on-write inheritance).  ``None`` = nobody warmed us.
_WARM_TOKEN: str | None = None


def warm_token() -> str | None:
    """The warm marker stamped by the last full table build, if any."""
    return _WARM_TOKEN


def set_warm_token(token: str | None) -> None:
    """Stamp (or clear) the warm marker (see ``warm_fastexp``)."""
    global _WARM_TOKEN
    _WARM_TOKEN = token


class _SharedRows:
    """The rows of one table, materialized lazily out of a shared buffer.

    Presents just enough of the list-of-lists protocol for
    :meth:`FixedBaseExp.pow`: ``len()`` and indexing.  A row is decoded
    from its fixed-width entries into the bound backend's residue type
    the first time any digit of it is touched, then cached — a worker
    that only ever exponentiates 256-bit exponents against a 2048-bit
    table materializes a quarter of the rows and shares the rest as
    untouched page-cache bytes.
    """

    __slots__ = ("_buffer", "_offset", "_entry_size", "radix", "_rows", "_residue")

    def __init__(self, buffer, offset: int, entry_size: int, radix: int,
                 count: int, residue):
        self._buffer = buffer
        self._offset = offset
        self._entry_size = entry_size
        self.radix = radix
        self._rows: list = [None] * count
        self._residue = residue

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index: int):
        row = self._rows[index]
        if row is None:
            size = self._entry_size
            start = self._offset + index * self.radix * size
            buffer = self._buffer
            residue = self._residue
            row = [
                residue(int.from_bytes(
                    buffer[start + digit * size: start + (digit + 1) * size],
                    "big",
                ))
                for digit in range(self.radix)
            ]
            self._rows[index] = row
        return row

    def rebound(self, residue) -> "_SharedRows":
        """A fresh lazy view bound to another backend's residue type."""
        return _SharedRows(
            self._buffer, self._offset, self._entry_size, self.radix,
            len(self._rows), residue,
        )


def serialize_tables() -> bytes:
    """Every registered table as one relocatable blob.

    The inverse is :func:`load_shared_tables`; the blob is position-
    independent, so it can live in a shared-memory segment, a file, or
    a plain bytes object.  Table order is deterministic (sorted by
    registry key) — two processes holding the same registry serialize
    byte-identically.
    """
    out = bytearray()
    tables = sorted(_TABLES.items())
    out += _SHARED_HEADER.pack(_SHARED_MAGIC, _SHARED_VERSION, 0, len(tables))
    for (base, modulus), table in tables:
        entry_size = (modulus.bit_length() + 7) // 8
        rows = table._rows
        radix = 1 << table.window
        out += _SHARED_TABLE_HEADER.pack(
            table.window, table.exponent_bits, len(rows), entry_size
        )
        out += modulus.to_bytes(entry_size, "big")
        out += base.to_bytes(entry_size, "big")
        for index in range(len(rows)):
            for entry in rows[index]:
                out += int(entry).to_bytes(entry_size, "big")
    return bytes(out)


def load_shared_tables(buffer) -> int:
    """Register lazily-materializing tables from a serialized blob.

    ``buffer`` is anything sliceable to bytes — typically a
    ``memoryview`` over a shared-memory segment, which the registered
    tables keep referencing: the caller must keep the mapping alive
    for the life of the registry (workers park the segment in a
    module-level holder).  Existing registrations under the same key
    are replaced.  Returns the number of tables registered.

    Raises :class:`~repro.errors.ParameterError` on a malformed blob —
    wrong magic, unknown version, or truncation.
    """
    view = memoryview(buffer)
    if len(view) < _SHARED_HEADER.size:
        raise ParameterError("shared-table blob shorter than its header")
    magic, version, _reserved, count = _SHARED_HEADER.unpack_from(view)
    if magic != _SHARED_MAGIC:
        raise ParameterError(f"bad shared-table magic {bytes(magic)!r}")
    if version != _SHARED_VERSION:
        raise ParameterError(f"unsupported shared-table version {version}")
    active = _backend.current()
    offset = _SHARED_HEADER.size
    registered = 0
    for _ in range(count):
        if len(view) < offset + _SHARED_TABLE_HEADER.size:
            raise ParameterError("truncated shared-table blob (table header)")
        window, exponent_bits, row_count, entry_size = (
            _SHARED_TABLE_HEADER.unpack_from(view, offset)
        )
        offset += _SHARED_TABLE_HEADER.size
        radix = 1 << window
        body = 2 * entry_size + row_count * radix * entry_size
        if len(view) < offset + body:
            raise ParameterError("truncated shared-table blob (table body)")
        modulus = int.from_bytes(view[offset:offset + entry_size], "big")
        offset += entry_size
        base = int.from_bytes(view[offset:offset + entry_size], "big")
        offset += entry_size
        if modulus <= 1:
            raise ParameterError("shared table carries a degenerate modulus")
        rows = _SharedRows(
            view, offset, entry_size, radix, row_count, active.residue
        )
        offset += row_count * radix * entry_size
        _TABLES[(base % modulus, modulus)] = FixedBaseExp._from_serialized(
            base, modulus, exponent_bits=exponent_bits, window=window, rows=rows
        )
        registered += 1
    return registered


# ---------------------------------------------------------------------------
# Exponentiation mode (naive vs windowed-NAF)
# ---------------------------------------------------------------------------

#: Cold exponentiations go through CPython's C ``pow`` and products
#: through the binary Shamir chain.
MODE_NAIVE = "naive"
#: Cold exponentiations use signed-digit wNAF recoding and products the
#: interleaved-wNAF chain.
MODE_WNAF = "wnaf"

_EXP_MODES = (MODE_NAIVE, MODE_WNAF)
_EXP_MODE = MODE_NAIVE

#: The measured-best cold mode per arithmetic backend (the PR 4 open
#: question, settled by the E3 wNAF and E12 rows — numbers in the
#: README's "Choosing the cold-exponentiation default" section):
#:
#: - ``pure``: CPython's C ``pow`` already runs a left-to-right
#:   windowed chain entirely in C; the Python-level wNAF loop pays
#:   interpreter overhead per digit and *loses* on cold single
#:   exponentiations (~0.8x at 512-bit, parity at 1536-bit).  Its only
#:   wins are interleaved multi-exps at large moduli, which the warm
#:   paths route through :func:`multi_pow_shamir`'s adaptive chunks
#:   anyway.
#: - ``gmpy2``: one ``powmod`` call keeps the whole chain inside GMP's
#:   own sliding-window code; a Python-level recoded loop re-crosses
#:   the interpreter boundary ~bits/(w+1) times per exponentiation and
#:   cannot compete with a single C call.
#:
#: Both answers are ``naive``; the table exists so the decision is a
#: recorded, per-backend fact (and the seam for a future backend whose
#: answer differs) rather than a hard-coded accident.
_DEFAULT_EXP_MODES = {"pure": MODE_NAIVE, "gmpy2": MODE_NAIVE}


def default_exp_mode(backend: str | None = None) -> str:
    """The measured-best cold mode for a backend (default: the active
    one).  Unknown/custom backends get ``naive`` — the conservative
    choice, since it delegates to whatever ``powmod`` the backend
    provides."""
    name = backend if backend is not None else _backend.backend_name()
    return _DEFAULT_EXP_MODES.get(name, MODE_NAIVE)


def exp_mode() -> str:
    """The active cold-exponentiation implementation."""
    return _EXP_MODE


def set_exp_mode(mode: str) -> None:
    """Select the implementation behind :func:`cold_pow` / :func:`multi_pow`."""
    global _EXP_MODE
    if mode not in _EXP_MODES:
        raise ParameterError(f"unknown exponentiation mode {mode!r}")
    _EXP_MODE = mode


@contextmanager
def exp_mode_set(mode: str) -> Iterator[None]:
    """Scope with the given exponentiation mode active (benchmark arms)."""
    previous = _EXP_MODE
    set_exp_mode(mode)
    try:
        yield
    finally:
        set_exp_mode(previous)


def cold_pow(base: int, exponent: int, modulus: int) -> int:
    """``base^exponent mod modulus`` for a base with no table.

    Dispatches on the active mode; both implementations are exact, so
    switching modes is a performance knob, never a correctness one.
    """
    if _EXP_MODE == MODE_WNAF:
        return wnaf_pow(base, exponent, modulus)
    return _backend.powmod(base, exponent, modulus)


# ---------------------------------------------------------------------------
# Windowed-NAF (signed-digit) exponentiation
# ---------------------------------------------------------------------------

#: Default wNAF window width: odd digits ``|d| < 2^(w-1)``, expected
#: non-zero digit density ``1/(w+1)``.
_WNAF_WIDTH = 5


def wnaf_digits(exponent: int, width: int = _WNAF_WIDTH) -> list[int]:
    """Width-``w`` NAF recoding of a non-negative exponent.

    Returns little-endian digits, each either zero or odd with
    ``|digit| < 2^(width-1)``; at most one of any ``width`` consecutive
    digits is non-zero, which is what makes the multiplication count
    ``~bits/(width+1)`` instead of ``bits/2``.
    """
    if exponent < 0:
        raise ParameterError("wNAF exponents must be non-negative")
    if not 2 <= width <= 16:
        raise ParameterError("wNAF width out of range")
    radix = 1 << width
    half = radix >> 1
    digits: list[int] = []
    while exponent:
        if exponent & 1:
            digit = exponent & (radix - 1)
            if digit >= half:
                digit -= radix
            exponent -= digit
        else:
            digit = 0
        digits.append(digit)
        exponent >>= 1
    return digits


def _wnaf_odd_powers(base_r, modulus_r, width: int) -> list:
    """``[base^1, base^3, …, base^(2^(width-1)-1)]`` over backend residues."""
    square = (base_r * base_r) % modulus_r
    powers = [base_r]
    for _ in range((1 << (width - 2)) - 1):
        powers.append((powers[-1] * square) % modulus_r)
    return powers


def wnaf_pow(
    base: int, exponent: int, modulus: int, *, width: int = _WNAF_WIDTH
) -> int:
    """``base^exponent mod modulus`` via width-``w`` NAF recoding.

    Negative digits multiply by precomputed inverse odd powers, so the
    base must be invertible; when it is not, the call falls back to a
    plain backend ``powmod`` — the recoding is never a correctness
    hazard.  A negative exponent inverts the base once (the inverse
    the signed recoding needs anyway) and exponentiates the wNAF way,
    raising :class:`ValueError` for a non-invertible base exactly as
    ``pow`` would.
    """
    if modulus <= 1:
        raise ParameterError("modulus must exceed 1")
    active = _backend.current()
    base %= modulus
    inverse = None
    if exponent < 0:
        # One inversion, then signed recoding of the positive exponent
        # — and the pre-inversion base *is* the new base's inverse, so
        # the negative digits below get their table for free.
        base, inverse = active.invert(base, modulus), base
        exponent = -exponent
    if base == 0 or exponent.bit_length() < 2 * width:
        # Tiny exponents never amortize the inverse; let powmod have them.
        return active.powmod(base, exponent, modulus)
    if inverse is None:
        try:
            inverse = active.invert(base, modulus)
        except ValueError:
            return active.powmod(base, exponent, modulus)
    residue = active.residue
    modulus_r = residue(modulus)
    powers = _wnaf_odd_powers(residue(base), modulus_r, width)
    inverse_powers = _wnaf_odd_powers(residue(inverse), modulus_r, width)
    acc = 1
    for digit in reversed(wnaf_digits(exponent, width)):
        acc = (acc * acc) % modulus_r
        if digit > 0:
            acc = (acc * powers[digit >> 1]) % modulus_r
        elif digit < 0:
            acc = (acc * inverse_powers[(-digit) >> 1]) % modulus_r
    return int(acc)


def multi_pow_wnaf(
    pairs: Iterable[tuple[int, int]], modulus: int, *, width: int = 4
) -> int:
    """``Π base_i^{exponent_i} mod modulus`` via interleaved wNAF.

    One shared squaring chain; every base contributes one multiplication
    per non-zero signed digit (density ``1/(width+1)``), against one per
    set bit (density ``1/2``) for the binary interleaving.  The signed
    digits need every base's inverse, and the whole batch gets them
    from **one** modular inversion (Montgomery's trick,
    :func:`repro.crypto.backend.batch_invert`) instead of one per
    member.  Bases that are not invertible fall back into a plain
    product, keeping the contract of :func:`multi_pow` exactly.
    """
    if modulus <= 0:
        raise ParameterError("modulus must be positive")
    active = _backend.current()
    pending: list[tuple[int, int]] = []
    fallback = 1
    for base, exponent in pairs:
        if exponent < 0:
            raise ParameterError("multi_pow exponents must be non-negative")
        base %= modulus
        if exponent == 0 or base == 1:
            continue
        if base == 0:
            return 0
        pending.append((base, exponent))
    if not pending:
        return fallback % modulus

    try:
        inverses = _backend.batch_invert([base for base, _ in pending], modulus)
    except ValueError:
        # Some member shares a factor with the modulus: find it the
        # slow way, folding non-invertible bases into a plain product.
        inverses = []
        invertible: list[tuple[int, int]] = []
        for base, exponent in pending:
            try:
                inverse = active.invert(base, modulus)
            except ValueError:
                fallback = (fallback * active.powmod(base, exponent, modulus)) % modulus
                continue
            invertible.append((base, exponent))
            inverses.append(inverse)
        pending = invertible
        if not pending:
            return fallback % modulus

    residue = active.residue
    modulus_r = residue(modulus)
    prepared = []
    for (base, exponent), inverse in zip(pending, inverses):
        prepared.append(
            (
                _wnaf_odd_powers(residue(base), modulus_r, width),
                _wnaf_odd_powers(residue(inverse), modulus_r, width),
                wnaf_digits(exponent, width),
            )
        )
    top = max(len(digits) for _, _, digits in prepared)
    acc = 1
    for position in range(top - 1, -1, -1):
        acc = (acc * acc) % modulus_r
        for powers, inverse_powers, digits in prepared:
            if position >= len(digits):
                continue
            digit = digits[position]
            if digit > 0:
                acc = (acc * powers[digit >> 1]) % modulus_r
            elif digit < 0:
                acc = (acc * inverse_powers[(-digit) >> 1]) % modulus_r
    return int((acc * fallback) % modulus_r)


# ---------------------------------------------------------------------------
# Simultaneous multi-exponentiation
# ---------------------------------------------------------------------------


def multi_pow(pairs: Iterable[tuple[int, int]], modulus: int) -> int:
    """``Π base_i^{exponent_i} mod modulus`` in one shared chain.

    Dispatches on the active exponentiation mode:
    :func:`multi_pow_shamir` (binary interleaving, the default) or
    :func:`multi_pow_wnaf` (signed-digit interleaving).  Exponents must
    be non-negative (callers reduce modulo the group order first).
    """
    if _EXP_MODE == MODE_WNAF:
        return multi_pow_wnaf(pairs, modulus)
    return multi_pow_shamir(pairs, modulus)


def multi_pow_shamir(pairs: Iterable[tuple[int, int]], modulus: int) -> int:
    """Binary interleaved Shamir's trick: bases are grouped into
    chunks of :data:`_MULTI_CHUNK`; each chunk precomputes the 2^chunk
    products of its bases; one squaring chain over the longest exponent
    then consumes one bit of every exponent per step.
    """
    if modulus <= 0:
        raise ParameterError("modulus must be positive")
    entries: list[tuple[int, int]] = []
    for base, exponent in pairs:
        if exponent < 0:
            raise ParameterError("multi_pow exponents must be non-negative")
        base %= modulus
        if exponent == 0 or base == 1:
            continue
        if base == 0:
            return 0
        entries.append((base, exponent))
    if not entries:
        return 1 % modulus

    active = _backend.current()
    residue = active.residue
    modulus_r = residue(modulus)
    chunk_size = (
        _MULTI_CHUNK_WIDE if len(entries) >= _MULTI_WIDE_THRESHOLD else _MULTI_CHUNK
    )
    chunks = [
        entries[i : i + chunk_size] for i in range(0, len(entries), chunk_size)
    ]
    one = residue(1)
    prepared: list[tuple[list, list[int]]] = []
    for chunk in chunks:
        bases = [residue(base) for base, _ in chunk]
        table = [one] * (1 << len(chunk))
        for index in range(1, len(table)):
            low = index & -index
            table[index] = (
                table[index ^ low] * bases[low.bit_length() - 1]
            ) % modulus_r
        prepared.append((table, [exponent for _, exponent in chunk]))

    top = max(exponent.bit_length() for _, exponent in entries)
    acc = 1
    for bit in range(top - 1, -1, -1):
        acc = (acc * acc) % modulus_r
        for table, exponents in prepared:
            index = 0
            for position, exponent in enumerate(exponents):
                index |= ((exponent >> bit) & 1) << position
            if index:
                acc = (acc * table[index]) % modulus_r
    return int(acc % modulus_r)
