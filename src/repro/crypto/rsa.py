"""RSA keys and the three PKCS#1 constructions the system needs.

- **PKCS#1 v1.5 signatures** — licence and certificate signatures
  (verifier-friendly, deterministic, what 2004 deployments used);
- **PSS signatures** — available for comparison benchmarks;
- **OAEP encryption** — wrapping content keys to a pseudonym;
- **raw private operation** — the building block Chaum blinding needs
  (:mod:`repro.crypto.blind_rsa`).

Private operations use the CRT form.  Every modular exponentiation
dispatches through the pluggable arithmetic backend
(:mod:`repro.crypto.backend`) — CPython ``pow`` by default, GMP via
gmpy2 when selected.  Not constant-time (see package docstring).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DecryptionError, InvalidSignature, ParameterError
from . import backend as _backend
from .hashes import (
    DIGEST_SIZE,
    bytes_to_int,
    constant_time_equal,
    int_to_bytes,
    mgf1,
    sha256,
)
from .numbers import gcd, lcm, modinv
from .rand import RandomSource, default_source

# DER DigestInfo prefix for SHA-256 (EMSA-PKCS1-v1_5).
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

_PUBLIC_EXPONENT = 65537
_MIN_MODULUS_BITS = 384


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)`` with verify/encrypt operations."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    # -- raw operation -----------------------------------------------------

    def public_op(self, value: int) -> int:
        """Raw ``value^e mod n`` (used by blind-signature verification)."""
        if not 0 <= value < self.n:
            raise ParameterError("value out of range for modulus")
        from ..instrument import tick

        tick("rsa.public_op")
        return _backend.powmod(value, self.e, self.n)

    # -- PKCS#1 v1.5 signatures ---------------------------------------------

    def verify_pkcs1(self, message: bytes, signature: bytes) -> None:
        """Verify an EMSA-PKCS1-v1_5/SHA-256 signature.

        Raises :class:`~repro.errors.InvalidSignature` on any mismatch.
        """
        if len(signature) != self.byte_length:
            raise InvalidSignature("signature length mismatch")
        encoded = self.public_op(bytes_to_int(signature))
        expected = _emsa_pkcs1_encode(message, self.byte_length)
        if not constant_time_equal(int_to_bytes(encoded, self.byte_length), expected):
            raise InvalidSignature("PKCS#1 v1.5 signature mismatch")

    # -- PSS signatures ------------------------------------------------------

    def verify_pss(self, message: bytes, signature: bytes) -> None:
        """Verify an EMSA-PSS/SHA-256 signature (salt length = 32)."""
        if len(signature) != self.byte_length:
            raise InvalidSignature("signature length mismatch")
        em_bits = self.n.bit_length() - 1
        em_len = (em_bits + 7) // 8
        encoded = self.public_op(bytes_to_int(signature))
        em = int_to_bytes(encoded, self.byte_length)[-em_len:]
        _emsa_pss_verify(message, em, em_bits)

    # -- OAEP encryption ------------------------------------------------------

    def encrypt_oaep(
        self,
        plaintext: bytes,
        *,
        label: bytes = b"",
        rng: RandomSource | None = None,
    ) -> bytes:
        """RSAES-OAEP/SHA-256 encryption of ``plaintext``."""
        rng = rng or default_source()
        k = self.byte_length
        max_len = k - 2 * DIGEST_SIZE - 2
        if max_len < 0:
            raise ParameterError("modulus too small for OAEP")
        if len(plaintext) > max_len:
            raise ParameterError(
                f"plaintext too long for OAEP ({len(plaintext)} > {max_len})"
            )
        label_hash = sha256(label)
        padding = b"\x00" * (max_len - len(plaintext))
        data_block = label_hash + padding + b"\x01" + plaintext
        seed = rng.random_bytes(DIGEST_SIZE)
        masked_db = _xor(data_block, mgf1(seed, len(data_block)))
        masked_seed = _xor(seed, mgf1(masked_db, DIGEST_SIZE))
        em = b"\x00" + masked_seed + masked_db
        return int_to_bytes(self.public_op(bytes_to_int(em)), k)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key in CRT form with sign/decrypt operations.

    ``extra_primes`` holds any primes beyond ``p`` and ``q`` —
    multi-prime RSA per RFC 8017 §3.2.  Splitting the modulus over
    ``k`` primes makes the private operation ~``k²/4`` times cheaper
    (``k`` exponentiations costing ``(n/k)³`` each instead of two
    costing ``(n/2)³``; ~2.25x for ``k = 3``), which is why the
    content provider's licence-signing key uses three primes: licence
    issuance is the one private operation on the redemption/purchase
    hot path that nothing else amortizes.  Factoring hardness is
    unchanged for NFS and still far beyond ECM range for the prime
    sizes any supported modulus yields.
    """

    n: int
    e: int
    d: int
    p: int
    q: int
    extra_primes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        primes = (self.p, self.q, *self.extra_primes)
        product = 1
        for prime in primes:
            product *= prime
        if product != self.n:
            raise ParameterError("prime product != n")
        # CRT parameters are fixed per key; computing them (big
        # divisions and modular inverses) once instead of per private
        # operation matters on the bank/issuer signing hot paths.
        # Garner recombination: residue exponents per prime plus the
        # inverse of each partial product modulo the next prime.
        exponents = tuple(self.d % (prime - 1) for prime in primes)
        coefficients = []
        partial = primes[0]
        for prime in primes[1:]:
            coefficients.append(modinv(partial % prime, prime))
            partial *= prime
        object.__setattr__(self, "_crt_primes", primes)
        object.__setattr__(self, "_crt_exponents", exponents)
        object.__setattr__(self, "_crt_coefficients", tuple(coefficients))

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    # -- raw operation -----------------------------------------------------

    def private_op(self, value: int) -> int:
        """Raw ``value^d mod n`` via CRT (blind-signature building block)."""
        if not 0 <= value < self.n:
            raise ParameterError("value out of range for modulus")
        from ..instrument import tick

        tick("rsa.private_op")
        primes = self._crt_primes
        residues = [
            _backend.powmod(value % prime, exponent, prime)
            for prime, exponent in zip(primes, self._crt_exponents)
        ]
        # Garner recombination with the cached partial-product inverses.
        result = residues[0]
        partial = primes[0]
        for prime, residue, coefficient in zip(
            primes[1:], residues[1:], self._crt_coefficients
        ):
            step = ((residue - result) * coefficient) % prime
            result += partial * step
            partial *= prime
        return result % self.n

    # -- PKCS#1 v1.5 signatures ---------------------------------------------

    def sign_pkcs1(self, message: bytes) -> bytes:
        """Deterministic EMSA-PKCS1-v1_5/SHA-256 signature."""
        encoded = _emsa_pkcs1_encode(message, self.byte_length)
        return int_to_bytes(self.private_op(bytes_to_int(encoded)), self.byte_length)

    # -- PSS signatures ------------------------------------------------------

    def sign_pss(self, message: bytes, *, rng: RandomSource | None = None) -> bytes:
        """Randomized EMSA-PSS/SHA-256 signature (salt length = 32)."""
        rng = rng or default_source()
        em_bits = self.n.bit_length() - 1
        em = _emsa_pss_encode(message, em_bits, rng)
        return int_to_bytes(self.private_op(bytes_to_int(em)), self.byte_length)

    # -- OAEP decryption ------------------------------------------------------

    def decrypt_oaep(self, ciphertext: bytes, *, label: bytes = b"") -> bytes:
        """RSAES-OAEP/SHA-256 decryption.

        Raises :class:`~repro.errors.DecryptionError` on any padding or
        label failure (single error type; no padding oracle surface).
        """
        k = self.byte_length
        if len(ciphertext) != k or k < 2 * DIGEST_SIZE + 2:
            raise DecryptionError("OAEP ciphertext malformed")
        value = bytes_to_int(ciphertext)
        if value >= self.n:
            raise DecryptionError("OAEP ciphertext out of range")
        em = int_to_bytes(self.private_op(value), k)
        first_byte, masked_seed, masked_db = em[0], em[1 : DIGEST_SIZE + 1], em[DIGEST_SIZE + 1 :]
        seed = _xor(masked_seed, mgf1(masked_db, DIGEST_SIZE))
        data_block = _xor(masked_db, mgf1(seed, len(masked_db)))
        label_hash = sha256(label)
        ok = first_byte == 0
        ok &= constant_time_equal(data_block[:DIGEST_SIZE], label_hash)
        separator = data_block.find(b"\x01", DIGEST_SIZE)
        ok &= separator != -1
        if separator != -1:
            ok &= data_block[DIGEST_SIZE:separator] == b"\x00" * (
                separator - DIGEST_SIZE
            )
        if not ok:
            raise DecryptionError("OAEP decoding failed")
        return data_block[separator + 1 :]


def batch_verify_pkcs1(
    items: list[tuple[bytes, bytes]], public_key: RsaPublicKey
) -> None:
    """Screen a batch of PKCS#1 v1.5 signatures with **one** public op.

    ``items`` is a sequence of ``(message, signature)`` pairs under one
    key.  Bellare–Garay–Rabin screening over the deterministic
    EMSA-PKCS1 encodings::

        (Π s_i)^e  ==  Π EM(m_i)     (mod n)

    Screening guarantees no message outside the signer's history slips
    through — exactly what the provider's redemption desk needs: no
    anonymous licence it never signed gets personalized.  It requires
    pairwise-distinct messages, so duplicates (the same bearer token
    presented twice in one batch) are verified individually instead.
    On an aggregate mismatch the batch falls back to individual
    verification so the raised
    :class:`~repro.errors.InvalidSignature` names a real offender.
    """
    from ..instrument import tick

    items = list(items)
    if len(items) <= 1 or len({message for message, _ in items}) != len(items):
        for message, signature in items:
            public_key.verify_pkcs1(message, signature)
        return
    tick("rsa.batch_verify")
    tick("rsa.batch_verify.signatures", len(items))
    n = public_key.n
    k = public_key.byte_length
    signature_product = 1
    encoded_product = 1
    try:
        for message, signature in items:
            if len(signature) != k:
                raise InvalidSignature("signature length mismatch")
            value = bytes_to_int(signature)
            if value >= n:
                raise InvalidSignature("signature out of range")
            signature_product = (signature_product * value) % n
            encoded_product = (
                encoded_product * bytes_to_int(_emsa_pkcs1_encode(message, k))
            ) % n
    except InvalidSignature:
        # A malformed member: point at it via the individual path.
        for message, signature in items:
            public_key.verify_pkcs1(message, signature)
        raise
    if public_key.public_op(signature_product) == encoded_product:
        return
    # A bad member is in the batch (a product of valid signatures can
    # never fail); verify one by one so the error names it.
    for message, signature in items:
        public_key.verify_pkcs1(message, signature)
    raise InvalidSignature("PKCS#1 batch verification mismatch")


def generate_rsa_key(
    bits: int = 2048,
    *,
    rng: RandomSource | None = None,
    public_exponent: int = _PUBLIC_EXPONENT,
    prime_count: int = 2,
) -> RsaPrivateKey:
    """Generate an RSA key whose modulus has exactly ``bits`` bits.

    ``prime_count > 2`` produces a multi-prime key (RFC 8017 §3.2):
    same modulus, same public operation, but the CRT private operation
    runs over narrower primes — roughly ``prime_count²/4`` times
    faster.  Callers on a private-op hot path (the provider's licence
    signing) opt in; everything else keeps the classical two-prime
    form.
    """
    if bits < _MIN_MODULUS_BITS:
        raise ParameterError(f"modulus must be at least {_MIN_MODULUS_BITS} bits")
    if bits % 2:
        raise ParameterError("modulus size must be even")
    if not 2 <= prime_count <= 4:
        raise ParameterError("prime_count must be between 2 and 4")
    rng = rng or default_source()
    share = bits // prime_count
    sizes = [bits - share * (prime_count - 1)] + [share] * (prime_count - 1)
    while True:
        primes = [
            _generate_rsa_prime(size, public_exponent, rng) for size in sizes
        ]
        if len(set(primes)) != prime_count:
            continue
        n = 1
        for prime in primes:
            n *= prime
        if n.bit_length() != bits:
            continue
        lam = primes[0] - 1
        for prime in primes[1:]:
            lam = lcm(lam, prime - 1)
        d = modinv(public_exponent, lam)
        return RsaPrivateKey(
            n=n,
            e=public_exponent,
            d=d,
            p=primes[0],
            q=primes[1],
            extra_primes=tuple(primes[2:]),
        )


def _generate_rsa_prime(bits: int, public_exponent: int, rng: RandomSource) -> int:
    """Prime with the top two bits set (so p*q reaches full width) and
    ``gcd(e, p-1) == 1``."""
    while True:
        candidate = rng.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if gcd(public_exponent, candidate - 1) != 1:
            continue
        from .numbers import is_probable_prime

        if is_probable_prime(candidate, rng):
            return candidate


# ---------------------------------------------------------------------------
# Encoding helpers (EMSA-PKCS1-v1_5, EMSA-PSS)
# ---------------------------------------------------------------------------


def _emsa_pkcs1_encode(message: bytes, em_len: int) -> bytes:
    digest_info = _SHA256_DIGEST_INFO + sha256(message)
    padding_len = em_len - len(digest_info) - 3
    if padding_len < 8:
        raise ParameterError("modulus too small for PKCS#1 v1.5")
    return b"\x00\x01" + b"\xff" * padding_len + b"\x00" + digest_info


def _emsa_pss_encode(message: bytes, em_bits: int, rng: RandomSource) -> bytes:
    em_len = (em_bits + 7) // 8
    salt_len = DIGEST_SIZE
    if em_len < DIGEST_SIZE + salt_len + 2:
        raise ParameterError("modulus too small for PSS")
    message_hash = sha256(message)
    salt = rng.random_bytes(salt_len)
    h = sha256(b"\x00" * 8 + message_hash + salt)
    padding = b"\x00" * (em_len - salt_len - DIGEST_SIZE - 2)
    data_block = padding + b"\x01" + salt
    masked_db = bytearray(_xor(data_block, mgf1(h, len(data_block))))
    # Clear the leftmost 8*em_len - em_bits bits.
    masked_db[0] &= 0xFF >> (8 * em_len - em_bits)
    return bytes(masked_db) + h + b"\xbc"


def _emsa_pss_verify(message: bytes, em: bytes, em_bits: int) -> None:
    em_len = (em_bits + 7) // 8
    salt_len = DIGEST_SIZE
    if em_len < DIGEST_SIZE + salt_len + 2 or em[-1] != 0xBC:
        raise InvalidSignature("PSS trailer mismatch")
    masked_db = bytearray(em[: em_len - DIGEST_SIZE - 1])
    h = em[em_len - DIGEST_SIZE - 1 : -1]
    top_bits = 8 * em_len - em_bits
    if masked_db[0] >> (8 - top_bits) if top_bits else 0:
        raise InvalidSignature("PSS leftmost bits not zero")
    data_block = bytearray(_xor(bytes(masked_db), mgf1(h, len(masked_db))))
    data_block[0] &= 0xFF >> top_bits
    padding_len = em_len - salt_len - DIGEST_SIZE - 2
    if bytes(data_block[:padding_len]) != b"\x00" * padding_len:
        raise InvalidSignature("PSS padding mismatch")
    if data_block[padding_len] != 0x01:
        raise InvalidSignature("PSS separator mismatch")
    salt = bytes(data_block[padding_len + 1 :])
    message_hash = sha256(message)
    expected = sha256(b"\x00" * 8 + message_hash + salt)
    if not constant_time_equal(expected, h):
        raise InvalidSignature("PSS hash mismatch")


def _xor(left: bytes, right: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(left, right, strict=True))
