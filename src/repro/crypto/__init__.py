"""From-scratch cryptographic substrate for the P2DRM system.

The 2004 paper assumes a conventional toolbox — RSA signatures and
encryption, blind signatures for anonymous credentials and e-cash,
a discrete-log group for the identity escrow, and a block cipher for
content protection.  No third-party crypto package is available in the
reproduction environment, so this package implements the toolbox
directly on Python integers and ``hashlib``:

- :mod:`repro.crypto.backend` — pluggable bigint arithmetic (pure
  Python always, GMP via gmpy2 when installed/selected) serving every
  modexp, inversion and Jacobi symbol below;
- :mod:`repro.crypto.numbers` — primality, prime generation, CRT;
- :mod:`repro.crypto.rand` — injectable randomness (deterministic in
  tests and benchmarks, system entropy otherwise);
- :mod:`repro.crypto.hashes` — SHA-2 helpers, HKDF, MGF1;
- :mod:`repro.crypto.rsa` — RSA keys, PKCS#1 v1.5 / PSS signatures,
  OAEP encryption;
- :mod:`repro.crypto.blind_rsa` — Chaum blind signatures;
- :mod:`repro.crypto.groups` — named safe-prime groups (RFC 3526);
- :mod:`repro.crypto.fastexp` — fixed-base precomputation tables and
  simultaneous multi-exponentiation (the fast-exponentiation kernel
  under every hot protocol path);
- :mod:`repro.crypto.elgamal` — ElGamal encryption for the identity
  escrow;
- :mod:`repro.crypto.schnorr` — Schnorr signatures and the
  Chaum–Pedersen equality proof used to make the escrow verifiable;
- :mod:`repro.crypto.aes` / :mod:`repro.crypto.modes` — AES and
  CBC/CTR/GCM for content packaging;
- :mod:`repro.crypto.keys` — key (de)serialization and fingerprints.

**This code is for research reproduction.**  It is not constant-time
and must not be used to protect real data.
"""

from .backend import available_backends, backend_name, set_backend
from .rand import SystemRandomSource, DeterministicRandomSource, RandomSource
from .rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_key
from .blind_rsa import BlindSigner, BlindingClient
from .elgamal import ElGamalPrivateKey, ElGamalPublicKey, ElGamalCiphertext
from .schnorr import SchnorrPrivateKey, SchnorrPublicKey, batch_verify
from .groups import PrimeGroup, named_group
from .fastexp import FixedBaseExp, multi_pow, tables_disabled

__all__ = [
    "available_backends",
    "backend_name",
    "set_backend",
    "FixedBaseExp",
    "batch_verify",
    "multi_pow",
    "tables_disabled",
    "RandomSource",
    "SystemRandomSource",
    "DeterministicRandomSource",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_rsa_key",
    "BlindSigner",
    "BlindingClient",
    "ElGamalPrivateKey",
    "ElGamalPublicKey",
    "ElGamalCiphertext",
    "SchnorrPrivateKey",
    "SchnorrPublicKey",
    "PrimeGroup",
    "named_group",
]
