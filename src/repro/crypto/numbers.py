"""Number-theoretic primitives: primality, prime generation, CRT.

These routines back every public-key operation in the system.  Modular
exponentiation, inversion and the Jacobi symbol dispatch through the
pluggable arithmetic backend (:mod:`repro.crypto.backend`): CPython's
C-level ``pow`` by default — fast enough to generate 2048-bit RSA
moduli in seconds on a laptop — or GMP's kernels when the gmpy2
backend is selected.
"""

from __future__ import annotations

from . import backend as _backend
from .rand import RandomSource, default_source

# Small primes for cheap trial division before Miller–Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
    281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
)

# Number of Miller–Rabin rounds for a 2^-128 error bound at the sizes
# we use (conservative; random bases).
_MR_ROUNDS = 40


def is_probable_prime(candidate: int, rng: RandomSource | None = None) -> bool:
    """Miller–Rabin primality test with trial division pre-filter."""
    if candidate < 2:
        return False
    for small in _SMALL_PRIMES:
        if candidate % small == 0:
            return candidate == small
    rng = rng or default_source()
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MR_ROUNDS):
        base = rng.randint_range(2, candidate - 1)
        x = _backend.powmod(base, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = x * x % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: RandomSource | None = None) -> int:
    """Uniform-ish prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size too small")
    rng = rng or default_source()
    while True:
        candidate = rng.random_odd(bits)
        if is_probable_prime(candidate, rng):
            return candidate


def generate_safe_prime(bits: int, rng: RandomSource | None = None) -> int:
    """Safe prime ``p = 2q + 1`` with ``p`` of exactly ``bits`` bits.

    Slow (minutes at 1024+ bits in pure Python) — production code uses
    the named RFC 3526 groups in :mod:`repro.crypto.groups`; this
    exists for small test groups and completeness.
    """
    if bits < 16:
        raise ValueError("safe prime size too small")
    rng = rng or default_source()
    while True:
        q = rng.random_odd(bits - 1)
        # Cheap pre-filters on both q and p before full Miller–Rabin.
        p = 2 * q + 1
        if any(q % small == 0 or p % small == 0 for small in _SMALL_PRIMES[1:]):
            continue
        if is_probable_prime(q, rng) and is_probable_prime(p, rng):
            return p


def modinv(value: int, modulus: int) -> int:
    """Modular inverse of ``value`` mod ``modulus``.

    Raises :class:`ValueError` if the inverse does not exist
    (whichever backend serves the call).
    """
    return _backend.invert(value, modulus)


def crt_pair(remainder_p: int, prime_p: int, remainder_q: int, prime_q: int) -> int:
    """Chinese remainder reconstruction for two coprime moduli."""
    q_inv = modinv(prime_q, prime_p)
    difference = (remainder_p - remainder_q) % prime_p
    return remainder_q + prime_q * ((difference * q_inv) % prime_p)


def gcd(a: int, b: int) -> int:
    """Greatest common divisor (non-negative)."""
    while b:
        a, b = b, a % b
    return abs(a)


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // gcd(a, b)


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``.

    Subgroup membership checks run this on full-width elements on
    every verification path, so constant factors matter: the pure
    backend uses a bitwise binary algorithm, the gmpy2 backend GMP's
    C kernel.  The validation lives here so the documented contract
    (``ValueError`` for even or non-positive ``n``) holds for every
    backend.
    """
    if n <= 0 or not n & 1:
        raise ValueError("n must be odd and positive")
    return _backend.jacobi(a, n)
