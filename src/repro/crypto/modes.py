"""Block cipher modes over :class:`~repro.crypto.aes.AesCipher`.

Content packaging uses :class:`EtmCipher` — AES-CTR with an
HMAC-SHA-256 tag, encrypt-then-MAC.  The 2004 paper predates AEAD
standardization (GCM arrived in 2007); CTR+HMAC is exactly the
construction a careful 2004 design would have shipped, and it avoids
a slow pure-Python GF(2^128).  CBC and ECB are provided for tests,
benchmarks and completeness.
"""

from __future__ import annotations

from ..errors import DecryptionError, ParameterError
from .aes import BLOCK_SIZE, AesCipher
from .hashes import constant_time_equal, hkdf, hmac_sha256
from .rand import RandomSource, default_source

TAG_SIZE = 32
NONCE_SIZE = 12


def pkcs7_pad(data: bytes) -> bytes:
    """Pad to a whole number of blocks (always adds at least one byte)."""
    pad_len = BLOCK_SIZE - len(data) % BLOCK_SIZE
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes) -> bytes:
    """Strip PKCS#7 padding; raises on malformed padding."""
    if not data or len(data) % BLOCK_SIZE:
        raise DecryptionError("padded data length invalid")
    pad_len = data[-1]
    if not 1 <= pad_len <= BLOCK_SIZE:
        raise DecryptionError("invalid padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise DecryptionError("invalid padding bytes")
    return data[:-pad_len]


def encrypt_ecb(key: bytes, plaintext: bytes) -> bytes:
    """ECB with PKCS#7 padding.  Test/benchmark primitive only —
    deterministic and structure-leaking by construction."""
    cipher = AesCipher(key)
    padded = pkcs7_pad(plaintext)
    return b"".join(
        cipher.encrypt_block(padded[i : i + BLOCK_SIZE])
        for i in range(0, len(padded), BLOCK_SIZE)
    )


def decrypt_ecb(key: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt_ecb`."""
    if len(ciphertext) % BLOCK_SIZE:
        raise DecryptionError("ciphertext length invalid")
    cipher = AesCipher(key)
    padded = b"".join(
        cipher.decrypt_block(ciphertext[i : i + BLOCK_SIZE])
        for i in range(0, len(ciphertext), BLOCK_SIZE)
    )
    return pkcs7_unpad(padded)


def encrypt_cbc(
    key: bytes, plaintext: bytes, *, iv: bytes | None = None, rng: RandomSource | None = None
) -> bytes:
    """CBC with PKCS#7 padding; returns ``iv || ciphertext``."""
    if iv is None:
        iv = (rng or default_source()).random_bytes(BLOCK_SIZE)
    if len(iv) != BLOCK_SIZE:
        raise ParameterError("IV must be one block")
    cipher = AesCipher(key)
    padded = pkcs7_pad(plaintext)
    blocks = [iv]
    previous = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(padded[i : i + BLOCK_SIZE], previous))
        previous = cipher.encrypt_block(block)
        blocks.append(previous)
    return b"".join(blocks)


def decrypt_cbc(key: bytes, data: bytes) -> bytes:
    """Inverse of :func:`encrypt_cbc` (expects ``iv || ciphertext``)."""
    if len(data) < 2 * BLOCK_SIZE or len(data) % BLOCK_SIZE:
        raise DecryptionError("CBC data length invalid")
    cipher = AesCipher(key)
    iv, ciphertext = data[:BLOCK_SIZE], data[BLOCK_SIZE:]
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(decrypted, previous))
        previous = block
    return pkcs7_unpad(bytes(out))


def ctr_transform(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-CTR keystream XOR (encryption and decryption are identical).

    Counter block layout: ``nonce (12 bytes) || counter (4 bytes BE)``.
    """
    if len(nonce) != NONCE_SIZE:
        raise ParameterError(f"nonce must be {NONCE_SIZE} bytes")
    if len(data) > (2**32 - 1) * BLOCK_SIZE:
        raise ParameterError("data too long for 32-bit counter")
    cipher = AesCipher(key)
    out = bytearray(len(data))
    for counter in range((len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE):
        keystream = cipher.encrypt_block(nonce + counter.to_bytes(4, "big"))
        offset = counter * BLOCK_SIZE
        chunk = data[offset : offset + BLOCK_SIZE]
        out[offset : offset + len(chunk)] = bytes(
            a ^ b for a, b in zip(chunk, keystream)
        )
    return bytes(out)


class EtmCipher:
    """Authenticated encryption: AES-CTR + HMAC-SHA-256, encrypt-then-MAC.

    The caller's key is split by HKDF into independent encryption and
    MAC keys; the tag covers ``nonce || len(aad) || aad || ciphertext``
    so truncation and AAD-swapping are caught.
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ParameterError("key must be 16, 24 or 32 bytes")
        material = hkdf(key, len(key) + 32, info=b"p2drm-etm-split")
        self._enc_key = material[: len(key)]
        self._mac_key = material[len(key) :]

    def encrypt(
        self,
        plaintext: bytes,
        *,
        aad: bytes = b"",
        nonce: bytes | None = None,
        rng: RandomSource | None = None,
    ) -> bytes:
        """Returns ``nonce || ciphertext || tag``."""
        if nonce is None:
            nonce = (rng or default_source()).random_bytes(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise ParameterError(f"nonce must be {NONCE_SIZE} bytes")
        ciphertext = ctr_transform(self._enc_key, nonce, plaintext)
        tag = hmac_sha256(self._mac_key, self._mac_input(nonce, aad, ciphertext))
        return nonce + ciphertext + tag

    def decrypt(self, blob: bytes, *, aad: bytes = b"") -> bytes:
        """Verify the tag then decrypt; raises
        :class:`~repro.errors.DecryptionError` on any failure."""
        if len(blob) < NONCE_SIZE + TAG_SIZE:
            raise DecryptionError("AEAD blob too short")
        nonce = blob[:NONCE_SIZE]
        ciphertext = blob[NONCE_SIZE:-TAG_SIZE]
        tag = blob[-TAG_SIZE:]
        expected = hmac_sha256(self._mac_key, self._mac_input(nonce, aad, ciphertext))
        if not constant_time_equal(expected, tag):
            raise DecryptionError("AEAD tag mismatch")
        return ctr_transform(self._enc_key, nonce, ciphertext)

    @staticmethod
    def _mac_input(nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        return nonce + len(aad).to_bytes(8, "big") + aad + ciphertext
